"""Legacy setup shim.

All metadata and dependencies live in ``pyproject.toml`` ([project] table);
``pip install -e .`` uses them directly in CI.  This shim exists for
offline environments lacking the ``wheel`` package (which setuptools'
PEP 660 editable builds require): there, ``python setup.py develop``
still works.
"""

from setuptools import setup

setup()
