"""The repro.api façade: spec parsing, registries, solve/check/simulate."""

import pytest

from repro import api
from repro.checkers import CheckResult
from repro.graphs import bipartite_double_cover, cage
from repro.local import Network, RunResult
from repro.problems.registry import (
    available_families,
    build_problem,
    build_problem_from_spec,
    family_parameters,
    parse_spec,
)
from repro.utils import InvalidParameterError


class TestSpecParsing:
    def test_aliases_resolve_to_constructor_names(self):
        family, params = parse_spec("matching:Δ=4,x=0,y=1")
        assert family == "matching"
        assert params == {"delta": 4, "x": 0, "y": 1}

    def test_plain_names_accepted(self):
        family, params = parse_spec("ruling-set:delta=3,colors=1,beta=2")
        assert (family, params) == ("ruling-set", {"delta": 3, "colors": 1, "beta": 2})

    def test_parameterless_spec(self):
        assert parse_spec("mis") == ("mis", {})

    def test_unknown_family_lists_available(self):
        with pytest.raises(InvalidParameterError) as exc:
            parse_spec("matchings:Δ=4")
        message = str(exc.value)
        for family in available_families():
            assert family in message

    def test_unknown_parameter_lists_expected_names(self):
        with pytest.raises(InvalidParameterError) as exc:
            parse_spec("matching:Δ=4,z=1")
        message = str(exc.value)
        assert "z" in message
        for name in family_parameters("matching"):
            assert name in message

    def test_malformed_item_rejected(self):
        with pytest.raises(InvalidParameterError, match="malformed"):
            parse_spec("matching:Δ4")

    def test_non_integer_value_rejected(self):
        with pytest.raises(InvalidParameterError, match="non-integer"):
            parse_spec("matching:Δ=four")

    def test_duplicate_after_aliasing_rejected(self):
        with pytest.raises(InvalidParameterError, match="twice"):
            parse_spec("matching:Δ=4,delta=5,x=0,y=1")

    def test_build_problem_from_spec(self):
        problem = build_problem_from_spec("matching:Δ=4,x=0,y=1")
        assert problem.name == "Π_4(0,1)"

    def test_build_problem_missing_parameters_lists_expected(self):
        with pytest.raises(InvalidParameterError) as exc:
            build_problem("coloring", delta=3)
        message = str(exc.value)
        assert "delta" in message and "colors" in message

    def test_build_problem_accepts_aliases(self):
        problem = build_problem("arbdefective", **{"Δ": 3, "c": 2})
        assert problem.name.startswith("Π")


class TestProblemSpec:
    def test_parse_and_canonical_render(self):
        spec = api.ProblemSpec.parse("matching:y=1,x=0,Δ=4")
        assert spec.spec == "matching:delta=4,x=0,y=1"
        assert spec.param("delta") == 4
        assert api.ProblemSpec.parse(spec) is spec

    def test_create_with_alias_keywords(self):
        spec = api.ProblemSpec.create("ruling-set", **{"Δ": 3, "c": 1, "β": 2})
        assert spec.parameters == {"delta": 3, "colors": 1, "beta": 2}

    def test_out_of_range_parameters_rejected_at_parse(self):
        """Range violations are caught without building the (exponentially
        expanding) formalism problem."""
        with pytest.raises(InvalidParameterError, match="x \\+ y"):
            api.ProblemSpec.parse("matching:Δ=2,x=2,y=2")
        with pytest.raises(InvalidParameterError, match="out of range"):
            api.ProblemSpec.parse("coloring:Δ=1,c=2")
        with pytest.raises(InvalidParameterError, match="out of range"):
            api.ProblemSpec.parse("ruling-set:Δ=3,c=0,β=1")

    def test_non_string_rejected(self):
        with pytest.raises(InvalidParameterError, match="spec"):
            api.ProblemSpec.parse(42)


class TestRegistries:
    def test_all_six_algorithm_modules_registered(self):
        names = api.available_algorithms()
        assert {
            "matching:proposal",
            "mis:aapr23",
            "mis:luby",
            "coloring:class-sweep",
            "ruling-set:class-sweep",
            "arbdefective:class-sweep",
            "sinkless-orientation:global",
        } <= set(names)

    def test_family_filter(self):
        assert "matching:proposal" in api.available_algorithms("matching")
        assert "matching:proposal" not in api.available_algorithms("mis")
        assert "ruling-set:class-sweep" in api.available_algorithms("mis")

    def test_unknown_algorithm_lists_registered(self):
        with pytest.raises(InvalidParameterError, match="matching:proposal"):
            api.resolve_algorithm("matching:nope")

    def test_register_algorithm_validates(self):
        class Nameless(api.Algorithm):
            name = "no-colon"
            families = ("mis",)

        with pytest.raises(InvalidParameterError, match="family.*variant"):
            api.register_algorithm(Nameless())

        class NoFamilies(api.Algorithm):
            name = "x:y"
            families = ()

        with pytest.raises(InvalidParameterError, match="families"):
            api.register_algorithm(NoFamilies())

    def test_engines_registered(self):
        engines = api.available_engines()
        # "vectorized" joins the list only where numpy is installed.
        assert [e for e in engines if e != "vectorized"] == ["batched", "object"]
        assert api.resolve_engine("object").name == "object"

    def test_unknown_engine_rejected(self):
        with pytest.raises(InvalidParameterError, match="batched"):
            api.resolve_engine("gpu")


class TestSolve:
    def test_acceptance_call(self):
        report = api.solve(
            "matching:Δ=4,x=0,y=1",
            algorithm="matching:proposal",
            engine="batched",
            seed=0,
        )
        assert isinstance(report, api.SolveReport)
        assert report.valid is True
        assert report.rounds > 0
        assert report.engine == "batched"
        assert report.n > 0
        assert report.messages_delivered > 0

    def test_family_algorithm_mismatch_names_compatible(self):
        with pytest.raises(InvalidParameterError) as exc:
            api.solve("mis:Δ=3", algorithm="matching:proposal")
        assert "mis:aapr23" in str(exc.value)

    def test_graph_and_network_are_exclusive(self):
        graph, _d, _g = cage("petersen")
        with pytest.raises(InvalidParameterError, match="not both"):
            api.solve(
                "mis:Δ=3",
                algorithm="mis:aapr23",
                graph=graph,
                network=Network(graph=graph),
            )

    def test_check_false_skips_validation(self):
        report = api.solve(
            "mis:Δ=3", algorithm="mis:aapr23", n=16, check=False
        )
        assert report.valid is None
        assert report.check is None
        assert report.as_record()["valid"] is None

    def test_explicit_graph_used(self):
        graph, _d, _g = cage("petersen")
        report = api.solve("mis:Δ=3", algorithm="mis:aapr23", graph=graph)
        assert report.n == 10
        assert report.valid is True

    def test_options_forwarded(self):
        graph, _d, _g = cage("heawood")
        cover = bipartite_double_cover(graph)
        u, v = next(iter(graph.edges))
        single = frozenset({frozenset(((u, 0), (v, 1)))})
        report = api.solve(
            "maximal-matching:Δ=3",
            algorithm="matching:proposal",
            graph=cover,
            check=False,
            input_edges=single,
        )
        assert report.rounds == 2  # Δ' = 1: one phase of two rounds
        assert report.outputs == single  # the lone input edge gets matched

    def test_global_algorithm_zero_rounds(self):
        report = api.solve(
            "sinkless-orientation:Δ=3",
            algorithm="sinkless-orientation:global",
            n=16,
        )
        assert report.rounds == 0
        assert report.valid is True
        assert report.messages_delivered == 0

    def test_as_record_excludes_execution_details(self):
        report = api.solve(
            "mis:Δ=3", algorithm="mis:aapr23", n=16
        )
        record = report.as_record()
        assert "engine" not in record
        assert "wall_seconds" not in record
        assert record["rounds"] == report.rounds


class TestCheck:
    def test_valid_and_invalid_matching(self):
        graph, _d, _g = cage("heawood")
        cover = bipartite_double_cover(graph)
        report = api.solve(
            "maximal-matching:Δ=3", algorithm="matching:proposal", graph=cover
        )
        assert bool(api.check("maximal-matching:Δ=3", cover, report.outputs))
        verdict = api.check("maximal-matching:Δ=3", cover, set())
        assert isinstance(verdict, CheckResult)
        assert not verdict
        assert verdict.reason

    def test_accepts_network(self):
        graph, _d, _g = cage("petersen")
        network = Network(graph=graph)
        mis = api.solve("mis:Δ=3", algorithm="mis:aapr23", network=network)
        assert bool(api.check("mis", network, mis.outputs))

    def test_uncheckable_family_lists_checkable(self):
        with pytest.raises(InvalidParameterError, match="checkable"):
            api.check("outdegree-dominating:Δ=3,α=1", None, set())


class TestSimulate:
    def test_returns_raw_result_and_measurement(self):
        result, measurement = api.simulate(
            "mis:Δ=3", algorithm="mis:aapr23", n=16, seed=3
        )
        assert isinstance(result, RunResult)
        assert measurement.rounds == result.rounds
        assert measurement.messages_delivered > 0

    def test_probe_observer_is_chained(self):
        seen = []
        result, measurement = api.simulate(
            "mis:Δ=3",
            algorithm="mis:aapr23",
            n=16,
            probe=seen.append,
        )
        assert len(seen) == result.rounds
        assert measurement.rounds == result.rounds

    def test_global_algorithm_simulates_directly(self):
        # All shipped algorithms are message-kind since the vectorized
        # port, so exercise the global path with a scratch instance
        # (simulate accepts Algorithm instances directly).
        class _GlobalEmptySet(api.Algorithm):
            name = "mis:global-empty"
            families = ("mis",)
            kind = "global"

            def run_global(self, network, spec, options, seed):
                return set(), 0

        result, measurement = api.simulate(
            "mis:Δ=3", algorithm=_GlobalEmptySet(), n=16
        )
        assert isinstance(result.outputs, set)
        assert measurement.rounds == result.rounds == 0
        assert measurement.messages_delivered == 0

    def test_engine_validated_even_for_global_algorithms(self):
        class _GlobalEmptySet(api.Algorithm):
            name = "mis:global-empty"
            families = ("mis",)
            kind = "global"

            def run_global(self, network, spec, options, seed):
                return set(), 0

        with pytest.raises(InvalidParameterError, match="unknown engine"):
            api.simulate(
                "mis:Δ=3",
                algorithm=_GlobalEmptySet(),
                engine="warp",
                n=16,
            )
