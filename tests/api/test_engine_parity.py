"""Engine equivalence: every registered algorithm, on both engines, over
seeded random graphs, produces identical outputs, round counts and
canonical JSON — the contract that makes engines freely interchangeable."""

import networkx as nx
import pytest

from repro import api

#: (spec, algorithm) covering every registered algorithm at least once.
CASES = [
    ("matching:Δ=3,x=0,y=1", "matching:proposal"),
    ("maximal-matching:Δ=4", "matching:proposal"),
    ("mis:Δ=3", "mis:aapr23"),
    ("mis:Δ=3", "mis:luby"),
    ("mis:Δ=3", "ruling-set:class-sweep"),
    ("coloring:Δ=3,c=4", "coloring:class-sweep"),
    ("ruling-set:Δ=3,c=1,β=2", "ruling-set:class-sweep"),
    ("arbdefective:Δ=4,c=2", "arbdefective:class-sweep"),
    ("sinkless-orientation:Δ=3", "sinkless-orientation:global"),
]


def test_cases_cover_every_registered_algorithm():
    assert {algorithm for _spec, algorithm in CASES} == set(
        api.available_algorithms()
    )


@pytest.mark.parametrize("spec,algorithm", CASES)
@pytest.mark.parametrize("seed", [0, 7])
def test_identical_reports_on_default_random_networks(spec, algorithm, seed):
    reports = {
        engine: api.solve(
            spec, algorithm=algorithm, engine=engine, seed=seed, n=40
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for engine, report in reports.items():
        assert report.outputs == reference.outputs, engine
        assert report.rounds == reference.rounds, engine
        assert report.messages_delivered == reference.messages_delivered, engine
        assert report.messages_dropped == reference.messages_dropped, engine
        assert report.canonical_json() == reference.canonical_json(), engine


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("algorithm", ["mis:aapr23", "mis:luby"])
def test_identical_reports_on_irregular_random_graphs(seed, algorithm):
    """Parity must hold on non-regular graphs too (isolated nodes, mixed
    degrees — the shapes the default regular substrates never produce)."""
    graph = nx.gnp_random_graph(48, 0.08, seed=seed)
    delta = max((d for _n, d in graph.degree), default=0)
    reports = {
        engine: api.solve(
            f"mis:Δ={max(delta, 2)}",
            algorithm=algorithm,
            engine=engine,
            graph=graph,
            seed=seed,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for report in reports.values():
        assert report.canonical_json() == reference.canonical_json()
        assert report.outputs == reference.outputs


@pytest.mark.parametrize("seed", [0, 5])
def test_identical_matching_on_random_bipartite_subgraphs(seed):
    """The proposal algorithm with a strict input subgraph G' ⊂ G."""
    rng_graph = nx.random_regular_graph(4, 24, seed=seed)
    from repro.graphs import bipartite_double_cover

    cover = bipartite_double_cover(rng_graph)
    edges = sorted(cover.edges, key=str)
    input_edges = frozenset(
        frozenset(edge) for index, edge in enumerate(edges) if index % 3 != 0
    )
    reports = {
        engine: api.solve(
            "matching:Δ=4,x=0,y=1",
            algorithm="matching:proposal",
            engine=engine,
            graph=cover,
            seed=seed,
            check=False,
            input_edges=input_edges,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    for report in reports.values():
        assert report.outputs == reference.outputs
        assert report.rounds == reference.rounds
        assert report.canonical_json() == reference.canonical_json()
