"""Engine equivalence: every registered algorithm, on every engine, over
seeded random graphs, produces identical outputs, round counts and
canonical JSON — the contract that makes engines freely interchangeable.
The same holds for protocol violations: every engine must reject the same
malformed ``send()`` dicts with the same ``SimulationError`` text."""

from fractions import Fraction

import networkx as nx
import pytest

from repro import api
from repro.api.engines import resolve_engine
from repro.api.types import MessagePassingProgram
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm
from repro.utils import SimulationError

#: (spec, algorithm) covering every registered algorithm at least once.
CASES = [
    ("matching:Δ=3,x=0,y=1", "matching:proposal"),
    ("maximal-matching:Δ=4", "matching:proposal"),
    ("mis:Δ=3", "mis:aapr23"),
    ("mis:Δ=3", "mis:luby"),
    ("mis:Δ=3", "ruling-set:class-sweep"),
    ("coloring:Δ=3,c=4", "coloring:class-sweep"),
    ("ruling-set:Δ=3,c=1,β=2", "ruling-set:class-sweep"),
    ("arbdefective:Δ=4,c=2", "arbdefective:class-sweep"),
    ("sinkless-orientation:Δ=3", "sinkless-orientation:global"),
]


def test_cases_cover_every_registered_algorithm():
    assert {algorithm for _spec, algorithm in CASES} == set(
        api.available_algorithms()
    )


@pytest.mark.parametrize("spec,algorithm", CASES)
@pytest.mark.parametrize("seed", [0, 7])
def test_identical_reports_on_default_random_networks(spec, algorithm, seed):
    reports = {
        engine: api.solve(
            spec, algorithm=algorithm, engine=engine, seed=seed, n=40
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for engine, report in reports.items():
        assert report.outputs == reference.outputs, engine
        assert report.rounds == reference.rounds, engine
        assert report.messages_delivered == reference.messages_delivered, engine
        assert report.messages_dropped == reference.messages_dropped, engine
        assert report.canonical_json() == reference.canonical_json(), engine


@pytest.mark.parametrize("seed", [1, 2, 3])
@pytest.mark.parametrize("algorithm", ["mis:aapr23", "mis:luby"])
def test_identical_reports_on_irregular_random_graphs(seed, algorithm):
    """Parity must hold on non-regular graphs too (isolated nodes, mixed
    degrees — the shapes the default regular substrates never produce)."""
    graph = nx.gnp_random_graph(48, 0.08, seed=seed)
    delta = max((d for _n, d in graph.degree), default=0)
    reports = {
        engine: api.solve(
            f"mis:Δ={max(delta, 2)}",
            algorithm=algorithm,
            engine=engine,
            graph=graph,
            seed=seed,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for report in reports.values():
        assert report.canonical_json() == reference.canonical_json()
        assert report.outputs == reference.outputs


def _sender(messages_factory):
    """A probe algorithm: every node emits ``messages_factory()`` once and
    halts with whatever its inbox was (so delivery itself is compared)."""

    class Probe(NodeAlgorithm):
        def send(self):
            return messages_factory()

        def receive(self, messages):
            self.halt(dict(messages))

    return Probe


def _run_probe(engine, messages_factory):
    network = Network(graph=nx.path_graph(2))
    program = MessagePassingProgram(factory=_sender(messages_factory))
    return resolve_engine(engine).run(network, program)


#: Port keys every engine must accept as port 1 (set-membership equality:
#: anything == 1 names port 1) on a degree-1 node, and keys every engine
#: must reject as stray.  The matrix pins the coercion contract the
#: batched engine documents in a comment — bools, integral floats and
#: integral Fractions are ports; strings, fractional values and
#: out-of-range ints are violations.
ACCEPTED_PORT_KEYS = [1, True, 1.0, Fraction(1, 1)]
REJECTED_PORT_KEYS = [0, 99, -1, "1", "a", 2.5, Fraction(3, 2), None, (1,)]


@pytest.mark.parametrize("key", ACCEPTED_PORT_KEYS, ids=repr)
def test_engines_agree_on_accepted_port_keys(key):
    results = {
        engine: _run_probe(engine, lambda: {key: "ping"})
        for engine in api.available_engines()
    }
    reference = results["object"]
    assert reference.outputs == {0: {1: "ping"}, 1: {1: "ping"}}
    for engine, result in results.items():
        assert result.outputs == reference.outputs, engine
        assert result.rounds == reference.rounds, engine


@pytest.mark.parametrize("key", REJECTED_PORT_KEYS, ids=repr)
def test_engines_agree_on_rejected_port_keys(key):
    errors = {}
    for engine in api.available_engines():
        with pytest.raises(SimulationError) as info:
            _run_probe(engine, lambda: {key: "ping"})
        errors[engine] = str(info.value)
    reference = errors["object"]
    assert "invalid ports" in reference
    for engine, text in errors.items():
        assert text == reference, engine


def test_heterogeneous_invalid_ports_raise_simulation_error():
    """Regression: mixed-type port keys (``{"a": m, 99: m}``) used to hit
    ``sorted()``'s cross-type comparison and escape as ``TypeError``; the
    protocol violation must surface as a ``SimulationError`` with one text
    on every engine."""
    errors = {}
    for engine in api.available_engines():
        with pytest.raises(SimulationError) as info:
            _run_probe(engine, lambda: {"a": "x", 99: "y"})
        errors[engine] = str(info.value)
    reference = errors["object"]
    assert "invalid ports [99, 'a']" in reference
    for engine, text in errors.items():
        assert text == reference, engine


def test_heterogeneous_ports_after_halt_raise_simulation_error():
    """The halted-during-send violation takes the same heterogeneous-key
    path; it too must stay a SimulationError with one text everywhere."""

    class HaltsButSends(NodeAlgorithm):
        def send(self):
            self.halt(None)
            return {"a": "x", 99: "y"}

    errors = {}
    for engine in api.available_engines():
        network = Network(graph=nx.path_graph(2))
        program = MessagePassingProgram(factory=HaltsButSends)
        with pytest.raises(SimulationError) as info:
            resolve_engine(engine).run(network, program)
        errors[engine] = str(info.value)
    reference = errors["object"]
    assert "halted during send()" in reference
    assert "[99, 'a']" in reference
    for engine, text in errors.items():
        assert text == reference, engine


@pytest.mark.parametrize("seed", [0, 5])
def test_identical_matching_on_random_bipartite_subgraphs(seed):
    """The proposal algorithm with a strict input subgraph G' ⊂ G."""
    rng_graph = nx.random_regular_graph(4, 24, seed=seed)
    from repro.graphs import bipartite_double_cover

    cover = bipartite_double_cover(rng_graph)
    edges = sorted(cover.edges, key=str)
    input_edges = frozenset(
        frozenset(edge) for index, edge in enumerate(edges) if index % 3 != 0
    )
    reports = {
        engine: api.solve(
            "matching:Δ=4,x=0,y=1",
            algorithm="matching:proposal",
            engine=engine,
            graph=cover,
            seed=seed,
            check=False,
            input_edges=input_edges,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    for report in reports.values():
        assert report.outputs == reference.outputs
        assert report.rounds == reference.rounds
        assert report.canonical_json() == reference.canonical_json()
