"""Introspection helpers, typed error hierarchy, report schema round-trip."""

import json

import pytest

from repro import api
from repro.api import (
    REPORT_SCHEMA,
    AlgorithmMismatchError,
    ApiError,
    EngineMismatchError,
    SolveReport,
    SpecError,
    UnknownAlgorithmError,
    UnknownEngineError,
    describe,
    error_code,
    list_algorithms,
    list_engines,
)
from repro.utils import InvalidParameterError, ReproError, SolverLimitError


class TestListAlgorithms:
    def test_all_registered(self):
        names = [entry["name"] for entry in list_algorithms()]
        assert names == sorted(names)
        assert "matching:proposal" in names
        assert "mis:luby" in names

    def test_entry_shape(self):
        entry = next(
            e for e in list_algorithms() if e["name"] == "matching:proposal"
        )
        assert entry["kind"] == "message"
        assert "matching" in entry["families"]
        assert "maximal-matching" in entry["families"]
        assert entry["description"]

    def test_family_filter(self):
        mis_only = list_algorithms(family="mis")
        assert {e["name"] for e in mis_only} >= {"mis:aapr23", "mis:luby"}
        assert all("mis" in e["families"] for e in mis_only)

    def test_unknown_family_is_empty(self):
        assert list_algorithms(family="martian") == []


class TestListEngines:
    def test_default_marked(self):
        engines = list_engines()
        assert [e["name"] for e in engines] == sorted(
            e["name"] for e in engines
        )
        defaults = [e["name"] for e in engines if e["default"]]
        assert defaults == ["object"]
        # "vectorized" appears only where numpy is installed.
        names = {e["name"] for e in engines} - {"vectorized"}
        assert names == {"object", "batched"}


class TestDescribe:
    def test_matching_spec(self):
        info = describe("matching:Δ=3,x=0,y=1")
        assert info["spec"] == "matching:delta=3,x=0,y=1"
        assert info["family"] == "matching"
        assert info["parameters"] == {"delta": 3, "x": 0, "y": 1}
        assert "matching:proposal" in info["algorithms"]
        assert info["checkable"] is True
        assert "object" in info["engines"]

    def test_bad_spec_raises_typed(self):
        with pytest.raises(SpecError):
            describe("martian:delta=3")


class TestErrorHierarchy:
    def test_typed_errors_subclass_invalid_parameter(self):
        # Existing callers catch InvalidParameterError; the typed
        # hierarchy must stay inside it.
        for cls in (
            ApiError, SpecError, UnknownAlgorithmError, UnknownEngineError,
            AlgorithmMismatchError, EngineMismatchError,
        ):
            assert issubclass(cls, InvalidParameterError)

    def test_registry_raises_unknown_algorithm(self):
        with pytest.raises(UnknownAlgorithmError) as excinfo:
            api.resolve_algorithm("no:algo")
        assert excinfo.value.code == "unknown-algorithm"
        assert "matching:proposal" in str(excinfo.value)

    def test_engines_raise_unknown_engine(self):
        with pytest.raises(UnknownEngineError) as excinfo:
            api.resolve_engine("warp")
        assert excinfo.value.code == "unknown-engine"

    def test_solve_raises_algorithm_mismatch(self):
        with pytest.raises(AlgorithmMismatchError) as excinfo:
            api.solve("coloring:delta=3,colors=4",
                      algorithm="matching:proposal", n=8)
        assert excinfo.value.code == "algorithm-mismatch"
        assert "coloring" in str(excinfo.value)

    def test_spec_error_on_unknown_family(self):
        with pytest.raises(SpecError) as excinfo:
            api.solve("martian:delta=3", algorithm="matching:proposal", n=8)
        assert excinfo.value.code == "bad-spec"

    def test_error_code_mapping(self):
        assert error_code(SpecError("x")) == "bad-spec"
        assert error_code(SolverLimitError("x")) == "budget-exhausted"
        assert error_code(InvalidParameterError("x")) == "bad-parameter"
        assert error_code(ReproError("x")) == "library-error"
        assert error_code(ValueError("x")) == "internal"


class TestReportSchema:
    def solve(self, **kw):
        return api.solve(
            "maximal-matching:delta=3", algorithm="matching:proposal",
            n=16, **kw,
        )

    def test_record_carries_schema_tag(self):
        record = self.solve().as_record()
        assert record["schema"] == REPORT_SCHEMA

    def test_encode_decode_encode_stable(self):
        report = self.solve()
        first = report.canonical_json()
        rebuilt = SolveReport.from_record(json.loads(first))
        assert rebuilt.canonical_json() == first
        # Twice: from_record output must itself round-trip.
        again = SolveReport.from_record(json.loads(rebuilt.canonical_json()))
        assert again.canonical_json() == first

    def test_from_record_restores_fields(self):
        report = self.solve(seed=5)
        rebuilt = SolveReport.from_record(json.loads(report.canonical_json()))
        assert rebuilt.problem == report.problem
        assert rebuilt.algorithm == report.algorithm
        assert rebuilt.seed == 5
        assert rebuilt.rounds == report.rounds
        assert rebuilt.valid == report.valid
        assert rebuilt.engine == ""  # execution detail, not serialized

    def test_unchecked_report_round_trips_none(self):
        report = self.solve(check=False)
        rebuilt = SolveReport.from_record(json.loads(report.canonical_json()))
        assert rebuilt.valid is None
        assert rebuilt.check is None

    def test_from_record_rejects_wrong_schema(self):
        record = json.loads(self.solve().canonical_json())
        record["schema"] = "repro.api/report-v999"
        with pytest.raises(SpecError):
            SolveReport.from_record(record)

    def test_from_record_rejects_missing_fields(self):
        record = json.loads(self.solve().canonical_json())
        del record["rounds"]
        with pytest.raises(SpecError) as excinfo:
            SolveReport.from_record(record)
        assert "rounds" in str(excinfo.value)

    def test_from_record_rejects_non_dict(self):
        with pytest.raises(SpecError):
            SolveReport.from_record("not a record")
