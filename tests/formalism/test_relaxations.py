"""Unit tests for relaxation checking and search."""

import pytest

from repro.formalism.problems import problem_from_lines
from repro.formalism.relaxations import (
    find_label_relaxation,
    is_relaxation_via_config_map,
    is_relaxation_via_label_map,
    is_trivially_self_relaxing,
    receiver_sets,
)
from repro.utils import FormalismError


@pytest.fixture
def matching():
    return problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"], name="MM")


class TestLabelMapRelaxation:
    def test_identity_relaxes(self, matching):
        assert is_trivially_self_relaxing(matching)

    def test_missing_labels_raise(self, matching):
        with pytest.raises(FormalismError):
            is_relaxation_via_label_map(matching, matching, {"M": "M"})

    def test_matching_relaxes_to_weaker_matching(self):
        """Dropping the maximality label P relaxes the problem.

        The target allows unmatched white nodes to output O^Δ: mapping
        P → O witnesses the relaxation.
        """
        strict = problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"])
        relaxed = problem_from_lines(["M O^2", "O^3"], ["M O^2", "O^3"])
        mapping = {"M": "M", "O": "O", "P": "O"}
        assert is_relaxation_via_label_map(strict, relaxed, mapping)

    def test_non_relaxation_detected(self):
        strict = problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"])
        # Target black constraint forbids two O's — identity map fails.
        relaxed = problem_from_lines(["M O^2", "P^3"], ["M [OP]^2"])
        mapping = {"M": "M", "O": "O", "P": "P"}
        assert not is_relaxation_via_label_map(strict, relaxed, mapping)


class TestFindLabelRelaxation:
    def test_finds_identity_for_self(self, matching):
        mapping = find_label_relaxation(matching, matching)
        assert mapping is not None
        assert is_relaxation_via_label_map(matching, matching, mapping)

    def test_finds_nontrivial_map(self):
        strict = problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"])
        relaxed = problem_from_lines(["M O^2", "O^3"], ["M O^2", "O^3"])
        mapping = find_label_relaxation(strict, relaxed)
        assert mapping is not None
        assert is_relaxation_via_label_map(strict, relaxed, mapping)

    def test_returns_none_when_no_map_exists(self):
        strict = problem_from_lines(["A A"], ["A A"])
        # Target has no configuration at all on the black side of arity 2.
        relaxed = problem_from_lines(["B B"], ["B C"])
        # Mapping A→B: white BB ok; black: A A → B B not allowed. A→C: white
        # fails. So no map exists.
        assert find_label_relaxation(strict, relaxed) is None

    def test_found_map_respects_paper_definition(self, matching):
        """Any map the search returns must satisfy the checker."""
        relaxed = problem_from_lines(
            ["M O^2", "P^3", "O^3"], ["M [OP]^2", "O^3", "[OP]^3"]
        )
        mapping = find_label_relaxation(matching, relaxed)
        assert mapping is not None
        assert is_relaxation_via_label_map(matching, relaxed, mapping)


class TestConfigMapRelaxation:
    def test_receiver_sets(self):
        config_map = {("M", "O", "O"): ("M", "O", "X")}
        receivers = receiver_sets(config_map)
        assert receivers["M"] == frozenset("M")
        assert receivers["O"] == frozenset("OX")

    def test_arity_change_rejected(self):
        with pytest.raises(FormalismError):
            receiver_sets({("M", "O"): ("M",)})

    def test_config_map_matches_label_map_semantics(self, matching):
        """A config map induced by a label map passes iff the label map does."""
        relaxed = problem_from_lines(["M O^2", "O^3"], ["M O^2", "O^3"])
        label_map = {"M": "M", "O": "O", "P": "O"}
        config_map = {}
        for config in matching.white:
            source = tuple(config.labels)
            config_map[source] = tuple(label_map[lab] for lab in source)
        assert is_relaxation_via_config_map(matching, relaxed, config_map)

    def test_config_map_must_cover_all_white_configs(self, matching):
        config_map = {("M", "O", "O"): ("M", "O", "O")}
        assert not is_relaxation_via_config_map(matching, matching, config_map)

    def test_per_config_map_is_more_general_than_label_maps(self):
        """A map sending the same label to different targets in different
        configurations — inexpressible as a label map."""
        strict = problem_from_lines(["A A", "B B"], ["A B"])
        relaxed = problem_from_lines(["C C", "D D"], ["C D"])
        config_map = {
            ("A", "A"): ("C", "C"),
            ("B", "B"): ("D", "D"),
        }
        assert is_relaxation_via_config_map(strict, relaxed, config_map)
