"""Property tests for the canonical normal form.

The contract the exploration engine rests on: the canonical form (and
its digest) is invariant under label renaming and constraint-line
reordering, complete (non-isomorphic problems do not collide), and
idempotent.  Random problems come from the differential-verification
generators, so the distributions match what the fuzzer exercises —
including unused-alphabet-label paths.
"""

import random

import pytest

from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.normalize import (
    DIGEST_LENGTH,
    NORMAL_FORM_SCHEMA,
    canonical_digest,
    canonical_label,
    normal_form,
    problem_from_payload,
)
from repro.formalism.problems import Problem
from repro.problems import (
    maximal_matching_problem,
    pi_arbdefective,
    pi_matching,
    pi_ruling,
)
from repro.utils import SolverLimitError
from repro.utils.serialization import canonical_dumps
from repro.verification.generators import build_problem, random_problem_params


def random_problems(tag: str, count: int):
    for index in range(count):
        rng = random.Random(f"{tag}:{index}")
        yield build_problem(random_problem_params(rng)), rng


def shuffled_renaming(problem: Problem, rng: random.Random) -> Problem:
    """A random bijective re-spelling of the alphabet (fresh names)."""
    labels = sorted(problem.alphabet)
    images = [f"fresh{value}" for value in rng.sample(range(1000), len(labels))]
    return problem.rename(dict(zip(labels, images)))


def reordered_constraints(problem: Problem, rng: random.Random) -> Problem:
    """The same problem with its configuration lines rebuilt in a random
    order (Constraint is a set, so this exercises construction-order
    independence end to end)."""

    def rebuild(constraint: Constraint) -> Constraint:
        configs = [Configuration(config.labels) for config in constraint]
        rng.shuffle(configs)
        return Constraint(configs)

    return Problem(
        alphabet=frozenset(sorted(problem.alphabet, key=lambda lab: rng.random())),
        white=rebuild(problem.white),
        black=rebuild(problem.black),
        name=problem.name,
    )


class TestRenamingInvariance:
    def test_random_label_permutations_share_digest_and_problem(self):
        for problem, rng in random_problems("perm", 150):
            renamed = shuffled_renaming(problem, rng)
            original = normal_form(problem)
            image = normal_form(renamed)
            assert original.digest == image.digest, problem.describe()
            assert original.problem.same_constraints(image.problem)
            assert canonical_dumps(original.payload) == canonical_dumps(image.payload)

    def test_constraint_reordering_shares_digest(self):
        for problem, rng in random_problems("reorder", 100):
            reordered = reordered_constraints(problem, rng)
            assert canonical_digest(problem) == canonical_digest(reordered)

    def test_paper_families_invariant_under_renaming(self):
        rng = random.Random("families")
        for problem in (
            pi_matching(3, 0, 1),
            pi_matching(4, 1, 1),
            maximal_matching_problem(3),
            pi_arbdefective(3, 2),
            pi_ruling(3, 1, 2),
        ):
            renamed = shuffled_renaming(problem, rng)
            assert canonical_digest(problem) == canonical_digest(renamed)

    def test_mapping_witnesses_the_canonical_form(self):
        for problem, _rng in random_problems("witness", 40):
            form = normal_form(problem)
            assert form.problem.same_constraints(problem.rename(form.mapping))


class TestCompleteness:
    def test_non_isomorphic_corpus_does_not_collide(self):
        """Digest equality must coincide with isomorphism on a seeded
        corpus of random problem pairs."""
        problems = [
            build_problem(random_problem_params(random.Random(f"corpus:{index}")))
            for index in range(60)
        ]
        digests = [canonical_digest(problem) for problem in problems]
        for i in range(len(problems)):
            for j in range(i + 1, len(problems)):
                collide = digests[i] == digests[j]
                isomorphic = problems[i].is_isomorphic_to(problems[j])
                assert collide == isomorphic, (
                    problems[i].describe(),
                    problems[j].describe(),
                )

    def test_unused_alphabet_labels_are_part_of_identity(self):
        base = build_problem(
            {"alphabet": ["A", "B"], "white": [["A"]], "black": [["A", "A"]]}
        )
        padded = Problem(
            alphabet=base.alphabet | {"C"},
            white=base.white,
            black=base.black,
            name=base.name,
        )
        assert canonical_digest(base) != canonical_digest(padded)
        # ...but *which* unused label is spelled how does not matter.
        repadded = Problem(
            alphabet=base.alphabet | {"ZZZ"},
            white=base.white,
            black=base.black,
            name=base.name,
        )
        assert canonical_digest(padded) == canonical_digest(repadded)

    def test_sides_are_not_interchangeable(self):
        problem = build_problem(
            {"alphabet": ["A", "B"], "white": [["A", "B"]], "black": [["A", "A"]]}
        )
        assert canonical_digest(problem) != canonical_digest(problem.swap_sides())


class TestNormalFormShape:
    def test_idempotent(self):
        for problem, _rng in random_problems("idem", 50):
            form = normal_form(problem)
            again = normal_form(form.problem)
            assert form.digest == again.digest
            assert form.problem.same_constraints(again.problem)

    def test_payload_roundtrips_through_problem_from_payload(self):
        for problem, _rng in random_problems("roundtrip", 50):
            form = normal_form(problem)
            rebuilt = problem_from_payload(form.payload)
            assert rebuilt.same_constraints(form.problem)
            assert rebuilt.alphabet == form.problem.alphabet
            assert normal_form(rebuilt).digest == form.digest

    def test_payload_schema_and_digest_length(self):
        form = normal_form(pi_matching(3, 0, 1))
        assert form.payload["schema"] == NORMAL_FORM_SCHEMA
        assert len(form.digest) == DIGEST_LENGTH
        assert form.payload["alphabet_size"] == 5
        assert form.payload["white_arity"] == 3
        assert form.payload["black_arity"] == 3

    def test_canonical_labels_enumerate_the_alphabet(self):
        form = normal_form(maximal_matching_problem(3))
        expected = {canonical_label(index) for index in range(3)}
        assert form.problem.alphabet == expected

    def test_empty_constraint_sides_normalize(self):
        problem = Problem(
            alphabet=frozenset({"A"}),
            white=Constraint([Configuration(["A"])]),
            black=Constraint([]),
            name="half-empty",
        )
        form = normal_form(problem)
        assert form.payload["black"] == []
        assert canonical_digest(problem) == form.digest

    def test_pathologically_symmetric_problem_raises(self):
        """A fully label-transitive problem with a huge orbit must refuse
        (deterministically) rather than stall the minimizer."""
        labels = [f"s{index}" for index in range(9)]
        problem = Problem(
            alphabet=frozenset(labels),
            white=Constraint([Configuration([label]) for label in labels]),
            black=Constraint([Configuration([label]) for label in labels]),
            name="symmetric",
        )
        with pytest.raises(SolverLimitError):
            normal_form(problem)

    def test_small_symmetric_orbits_are_fine(self):
        labels = ["p", "q", "r"]
        problem = Problem(
            alphabet=frozenset(labels),
            white=Constraint([Configuration([label]) for label in labels]),
            black=Constraint([Configuration([label]) for label in labels]),
            name="tiny-symmetric",
        )
        form = normal_form(problem)
        rotated = problem.rename({"p": "q", "q": "r", "r": "p"})
        assert canonical_digest(rotated) == form.digest
