"""Unit tests for the Problem class: renaming, isomorphism, arities."""

import pytest

from repro.formalism.problems import Problem, problem_from_lines
from repro.utils import FormalismError, UnknownLabelError


@pytest.fixture
def matching():
    return problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"], name="MM")


class TestProblemBasics:
    def test_arities(self, matching):
        assert matching.white_arity == 3
        assert matching.black_arity == 3

    def test_alphabet_is_used_labels(self, matching):
        assert matching.alphabet == frozenset("MOP")

    def test_alphabet_checked(self):
        from repro.formalism.constraints import Constraint
        from repro.formalism.configurations import Configuration

        with pytest.raises(UnknownLabelError):
            Problem(
                alphabet=frozenset("M"),
                white=Constraint([Configuration("MO")]),
                black=Constraint([Configuration("MO")]),
            )

    def test_swap_sides(self, matching):
        swapped = matching.swap_sides()
        assert swapped.white == matching.black
        assert swapped.black == matching.white

    def test_describe_mentions_every_configuration(self, matching):
        text = matching.describe()
        assert "M O^2" in text
        assert "P^3" in text


class TestRenaming:
    def test_rename(self, matching):
        renamed = matching.rename({"M": "Q", "O": "R", "P": "S"})
        assert renamed.alphabet == frozenset("QRS")

    def test_non_injective_rename_rejected(self, matching):
        with pytest.raises(FormalismError):
            matching.rename({"M": "O"})

    def test_partial_rename_keeps_other_labels(self, matching):
        renamed = matching.rename({"M": "Q"})
        assert renamed.alphabet == frozenset("QOP")


class TestIsomorphism:
    def test_identical_problems_are_isomorphic(self, matching):
        assert matching.is_isomorphic_to(matching)

    def test_renamed_problem_is_isomorphic(self, matching):
        renamed = matching.rename({"M": "Q", "O": "R", "P": "S"})
        mapping = matching.find_isomorphism(renamed)
        assert mapping == {"M": "Q", "O": "R", "P": "S"}

    def test_different_alphabet_sizes_not_isomorphic(self, matching):
        other = problem_from_lines(["M O^2"], ["M O^2"])
        assert not matching.is_isomorphic_to(other)

    def test_different_constraint_counts_not_isomorphic(self, matching):
        other = problem_from_lines(["M O^2", "P^3", "O^3"], ["M [OP]^2", "O^3"])
        assert not matching.is_isomorphic_to(other)

    def test_structurally_different_not_isomorphic(self):
        one = problem_from_lines(["A A"], ["A B"])
        two = problem_from_lines(["A B"], ["A B"])
        assert not one.is_isomorphic_to(two)

    def test_isomorphism_requires_both_sides(self):
        """Problems equal on white but not black sides are not isomorphic."""
        one = problem_from_lines(["A B"], ["A A"])
        two = problem_from_lines(["A B"], ["B B"])
        # These *are* isomorphic (swap A and B) — the white side permits it.
        assert one.is_isomorphic_to(two)
        three = problem_from_lines(["A B"], ["A B"])
        assert not one.is_isomorphic_to(three)

    def test_symmetric_signature_needs_backtracking(self):
        """Labels with identical signatures force the search to branch."""
        one = problem_from_lines(["A B", "C D"], ["A C", "B D"])
        two = problem_from_lines(["A B", "C D"], ["A D", "B C"])
        mapping = one.find_isomorphism(two)
        assert mapping is not None
        renamed = one.rename(mapping)
        assert renamed.same_constraints(two)
