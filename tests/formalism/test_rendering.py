"""Golden-output tests for :mod:`repro.formalism.rendering`.

Rendering is how humans audit problems and diagrams against the paper's
figures; a formatting change must show up as a test diff, not be noticed
by eye.  The expected strings are frozen literals on purpose — update
them only when a rendering change is intended."""

import networkx as nx
import pytest

from repro.formalism.problems import problem_from_lines
from repro.formalism.rendering import (
    condensed_listing,
    render_diagram,
    render_label_sets,
    render_problem,
)
from repro.problems import maximal_matching_problem


@pytest.fixture
def demo_problem():
    return problem_from_lines(["M O^2", "P^3"], ["[MP] O", "O O"], name="demo")


class TestRenderProblem:
    def test_condensed_problem_golden(self, demo_problem):
        assert render_problem(demo_problem) == (
            "Problem demo\n"
            "  Σ = {M, O, P}\n"
            "  white constraint (arity 3):\n"
            "    M O^2\n"
            "    P^3\n"
            "  black constraint (arity 2):\n"
            "    M O\n"
            "    O P\n"
            "    O^2"
        )

    def test_maximal_matching_golden(self):
        assert render_problem(maximal_matching_problem(3)) == (
            "Problem MM_3\n"
            "  Σ = {M, O, P}\n"
            "  white constraint (arity 3):\n"
            "    M O^2\n"
            "    P^3\n"
            "  black constraint (arity 3):\n"
            "    M O P\n"
            "    M O^2\n"
            "    M P^2\n"
            "    O^3"
        )


class TestCondensedListing:
    def test_exponent_compression(self, demo_problem):
        assert condensed_listing(demo_problem, "white") == ["M O^2", "P^3"]
        assert condensed_listing(demo_problem, "black") == ["M O", "O P", "O^2"]

    def test_single_occurrence_has_no_exponent(self, demo_problem):
        listing = condensed_listing(demo_problem, "black")
        assert "M O" in listing and "M^1" not in " ".join(listing)


class TestRenderDiagram:
    def test_diagram_with_reduction_golden(self):
        graph = nx.DiGraph()
        graph.add_edges_from(
            [("O", "M"), ("O", "P"), ("M", "X"), ("P", "X"), ("O", "X")]
        )
        assert render_diagram(graph, title="demo diagram") == (
            "demo diagram:\n"
            "  labels: M, O, P, X\n"
            "  strength relation (weak -> strong):\n"
            "    M -> X\n"
            "    O -> M\n"
            "    O -> P\n"
            "    O -> X\n"
            "    P -> X\n"
            "  transitive reduction (as drawn in the paper):\n"
            "    M -> X\n"
            "    O -> M\n"
            "    O -> P\n"
            "    P -> X"
        )

    def test_empty_relation_golden(self):
        graph = nx.DiGraph()
        graph.add_nodes_from(["A", "B"])
        assert render_diagram(graph) == (
            "diagram:\n  labels: A, B\n  strength relation: (empty)"
        )


class TestRenderLabelSets:
    def test_compact_sorted_rendering(self):
        rendered = render_label_sets(
            [frozenset({"O", "M"}), frozenset({"P"}), frozenset({"M"})]
        )
        assert rendered == "M, MO, P"

    def test_empty_list(self):
        assert render_label_sets([]) == ""
