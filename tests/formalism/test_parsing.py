"""Unit tests for the configuration / constraint parser."""

import pytest

from repro.formalism.configurations import Configuration
from repro.formalism.parsing import (
    parse_condensed,
    parse_configuration,
    parse_constraint,
)
from repro.utils import ParseError


class TestParseConfiguration:
    def test_plain(self):
        assert parse_configuration("M O O") == Configuration("MOO")

    def test_exponent(self):
        assert parse_configuration("M O^3") == Configuration("MOOO")

    def test_exponent_one(self):
        assert parse_configuration("M^1 O") == Configuration("MO")

    def test_multichar_labels(self):
        assert parse_configuration("P1 U1^2") == Configuration(["P1", "U1", "U1"])

    def test_set_labels(self):
        config = parse_configuration("{A,B} X")
        assert config == Configuration(["{A,B}", "X"])

    def test_brackets_rejected(self):
        with pytest.raises(ParseError):
            parse_configuration("[MO] X")

    def test_empty_rejected(self):
        with pytest.raises(ParseError):
            parse_configuration("   ")

    def test_leading_exponent_rejected(self):
        with pytest.raises(ParseError):
            parse_configuration("^2 M")


class TestParseCondensed:
    def test_single_char_bracket(self):
        cc = parse_condensed("[MX] O")
        assert cc.slots == (frozenset("MX"), frozenset("O"))

    def test_bracket_exponent(self):
        cc = parse_condensed("[PO]^2 M")
        assert cc.slots == (frozenset("PO"), frozenset("PO"), frozenset("M"))

    def test_multichar_bracket_with_spaces(self):
        cc = parse_condensed("[P1 U1] X")
        assert cc.slots == (frozenset({"P1", "U1"}), frozenset("X"))

    def test_multichar_bracket_with_commas(self):
        cc = parse_condensed("[P1,U1] X")
        assert cc.slots == (frozenset({"P1", "U1"}), frozenset("X"))

    def test_set_labels_in_bracket(self):
        cc = parse_condensed("[{A},{A,B}] X")
        assert cc.slots == (frozenset({"{A}", "{A,B}"}), frozenset("X"))

    def test_set_labels_character_mode(self):
        # Braces stay atomic even without separators.
        cc = parse_condensed("[{1}{2}X]")
        assert cc.slots == (frozenset({"{1}", "{2}", "X"}),)

    def test_paper_style_matching_constraint(self):
        # ΠB line from Definition 4.2 at Δ=4, y=1, x=1:
        cc = parse_condensed("[MX] [POX] [OX]^2")
        assert cc.size == 4
        assert cc.slots[0] == frozenset("MX")

    def test_empty_bracket_rejected(self):
        with pytest.raises(ParseError):
            parse_condensed("[] X")

    def test_unbalanced_brace_rejected(self):
        with pytest.raises(ParseError):
            parse_condensed("[{A X]")


class TestParseConstraint:
    def test_multi_line_with_comments(self):
        constraint = parse_constraint(
            """
            # maximal matching, white side, Δ=3
            M O^2
            P^3
            """
        )
        assert Configuration("MOO") in constraint
        assert Configuration("PPP") in constraint
        assert len(constraint) == 2

    def test_condensed_lines_expand(self):
        constraint = parse_constraint("M [OP]^2\nO^3")
        assert len(constraint) == 4

    def test_round_trip_with_rendering(self):
        from repro.formalism.problems import problem_from_lines
        from repro.formalism.rendering import condensed_listing

        problem = problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"])
        listing = condensed_listing(problem, "white")
        reparsed = parse_constraint("\n".join(listing))
        assert reparsed == problem.white
