"""Unit tests for configurations and condensed configurations."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formalism.configurations import (
    CondensedConfiguration,
    Configuration,
    condensed,
    render_configuration,
)
from repro.utils import ArityMismatchError

LABELS = ["A", "B", "C", "M", "O", "P", "X"]
label_strategy = st.sampled_from(LABELS)
config_strategy = st.lists(label_strategy, min_size=1, max_size=6).map(Configuration)


class TestConfiguration:
    def test_canonical_order(self):
        assert Configuration(["B", "A", "B"]).labels == ("A", "B", "B")

    def test_equality_is_multiset_equality(self):
        assert Configuration("MOO") == Configuration(["O", "M", "O"])
        assert Configuration("MO") != Configuration("MOO")

    def test_size_counts_multiplicity(self):
        assert Configuration("MOO").size == 3

    def test_support(self):
        assert Configuration("MOO").support == frozenset({"M", "O"})

    def test_count(self):
        config = Configuration("MOO")
        assert config.count("O") == 2
        assert config.count("Z") == 0

    def test_replace_one(self):
        assert Configuration("MOO").replace_one("O", "X") == Configuration("MOX")

    def test_replace_one_missing_label_raises(self):
        with pytest.raises(ValueError):
            Configuration("MO").replace_one("Z", "X")

    def test_replace_all(self):
        assert Configuration("MOO").replace_all("O", "X") == Configuration("MXX")

    def test_map_labels_keeps_unmapped(self):
        config = Configuration("MOO").map_labels({"O": "P"})
        assert config == Configuration("MPP")

    def test_is_submultiset_of(self):
        assert Configuration("MO").is_submultiset_of(Configuration("MOO"))
        assert not Configuration("MOO").is_submultiset_of(Configuration("MO"))

    def test_hashable(self):
        assert len({Configuration("MO"), Configuration("OM")}) == 1

    def test_render_round_trips_via_parser(self):
        from repro.formalism.parsing import parse_configuration

        config = Configuration(["M", "O", "O", "O"])
        assert parse_configuration(render_configuration(config)) == config

    @given(config_strategy)
    def test_canonical_is_sorted(self, config):
        assert list(config.labels) == sorted(config.labels)

    @given(config_strategy, label_strategy, label_strategy)
    def test_replace_one_preserves_size(self, config, old, new):
        if config.contains(old):
            assert config.replace_one(old, new).size == config.size

    @given(config_strategy)
    def test_counter_agrees_with_labels(self, config):
        assert sum(config.counter.values()) == config.size


class TestCondensedConfiguration:
    def test_expand_example_from_paper(self):
        # [AB][CD]E denotes {ACE, ADE, BCE, BDE} (paper §2).
        cc = condensed("AB", "CD", "E")
        assert cc.expand() == frozenset(
            {
                Configuration("ACE"),
                Configuration("ADE"),
                Configuration("BCE"),
                Configuration("BDE"),
            }
        )

    def test_expand_deduplicates(self):
        cc = condensed("AB", "AB")
        assert len(cc.expand()) == 3  # AA, AB, BB

    def test_contains_agrees_with_expand_positive(self):
        cc = condensed("AB", "CD", "E")
        for config in cc.expand():
            assert cc.contains(config)

    def test_contains_rejects_wrong_size(self):
        assert not condensed("AB").contains(Configuration("AB"))

    def test_contains_needs_bijective_assignment(self):
        # [AB][A] contains AB (A in slot 2, B in slot 1) but not BB.
        cc = condensed("AB", "A")
        assert cc.contains(Configuration("AB"))
        assert not cc.contains(Configuration("BB"))

    def test_contains_tricky_matching(self):
        # [AB][AC][BC]: the greedy assignment can fail where matching works.
        cc = condensed("AB", "AC", "BC")
        assert cc.contains(Configuration("ABC"))
        assert cc.contains(Configuration("ACB"))
        assert not cc.contains(Configuration("AAA"))

    def test_empty_slot_rejected(self):
        with pytest.raises(ArityMismatchError):
            CondensedConfiguration([[]])

    @given(
        st.lists(
            st.sets(label_strategy, min_size=1, max_size=3), min_size=1, max_size=4
        )
    )
    def test_contains_matches_expansion(self, slots):
        cc = CondensedConfiguration(slots)
        expansion = cc.expand()
        for config in expansion:
            assert cc.contains(config)
        # A configuration using a label absent from every slot is rejected.
        outside = Configuration(["Z"] * cc.size)
        assert not cc.contains(outside)
