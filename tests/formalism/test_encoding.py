"""Unit tests for the integer encoding layer (repro.formalism.encoding)."""

import pytest

from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.encoding import (
    ConstraintTable,
    LabelEncoding,
    ProblemEncoding,
    bits_of,
    mask_sort_key,
)
from repro.formalism.parsing import parse_constraint
from repro.problems import maximal_matching_problem
from repro.utils import UnknownLabelError


class TestBits:
    def test_bits_of_zero(self):
        assert bits_of(0) == ()

    def test_bits_ascending(self):
        assert bits_of(0b101101) == (0, 2, 3, 5)

    def test_mask_sort_key_orders_by_size_then_members(self):
        # {0} < {2} < {0,1} — exactly the (len, sorted members) order the
        # reference implementation uses on decoded label sets.
        masks = [0b011, 0b100, 0b001]
        assert sorted(masks, key=mask_sort_key) == [0b001, 0b100, 0b011]


class TestLabelEncoding:
    def test_labels_sorted_and_order_preserving(self):
        encoding = LabelEncoding.for_alphabet(frozenset("OMP"))
        assert encoding.labels == ("M", "O", "P")
        assert [encoding.encode_label(label) for label in "MOP"] == [0, 1, 2]

    def test_label_round_trip(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MOPXZ"))
        for label in "MOPXZ":
            assert encoding.decode_label(encoding.encode_label(label)) == label

    def test_unknown_label_raises(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MO"))
        with pytest.raises(UnknownLabelError):
            encoding.encode_label("Q")

    def test_config_round_trip_is_sorted(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MOP"))
        config = Configuration(["P", "M", "O", "M"])
        encoded = encoding.encode_config(config)
        assert encoded == tuple(sorted(encoded))
        assert encoding.decode_config(encoded) == config

    def test_config_with_unknown_label_raises(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MO"))
        with pytest.raises(UnknownLabelError):
            encoding.encode_config(Configuration(["M", "Q"]))

    def test_set_round_trip(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MOPXZ"))
        members = frozenset("MXZ")
        assert encoding.decode_mask(encoding.encode_set(members)) == members

    def test_full_mask(self):
        encoding = LabelEncoding.for_alphabet(frozenset("MOP"))
        assert encoding.full_mask == 0b111
        assert encoding.decode_mask(encoding.full_mask) == frozenset("MOP")


class TestConstraintTable:
    def setup_method(self):
        self.constraint = parse_constraint("M O O\nP P P")
        self.encoding = LabelEncoding.for_alphabet(frozenset("MOP"))
        self.table = ConstraintTable.compile(self.constraint, self.encoding)

    def test_allowed_matches_constraint(self):
        decoded = {
            self.encoding.decode_config(items) for items in self.table.allowed
        }
        assert decoded == set(self.constraint.configurations)

    def test_arity(self):
        assert self.table.arity == 3

    def test_partials_are_exactly_the_sub_multisets(self):
        # M O O has sub-multisets (), M, O, MO, OO, MOO; P P P adds
        # P, PP, PPP.
        encode = self.encoding.encode_config
        expected = {
            (),
            *(
                encode(Configuration(labels))
                for labels in (
                    ["M"], ["O"], ["M", "O"], ["O", "O"], ["M", "O", "O"],
                    ["P"], ["P", "P"], ["P", "P", "P"],
                )
            ),
        }
        assert set(self.table.partials) == expected

    def test_extends_and_allows(self):
        encode = self.encoding.encode_config
        assert self.table.allows(encode(Configuration(["M", "O", "O"])))
        assert not self.table.allows(encode(Configuration(["M", "M", "O"])))
        assert self.table.extends(encode(Configuration(["M", "O"])))
        assert not self.table.extends(encode(Configuration(["M", "P"])))

    def test_empty_constraint(self):
        table = ConstraintTable.compile(Constraint([]), self.encoding)
        assert table.allowed == frozenset()
        assert table.partials == frozenset()
        assert table.arity == 0


class TestProblemEncoding:
    def test_compile_covers_both_sides(self):
        problem = maximal_matching_problem(3)
        compiled = ProblemEncoding.compile(problem)
        assert compiled.encoding.size == len(problem.alphabet)
        assert len(compiled.white.allowed) == len(problem.white)
        assert len(compiled.black.allowed) == len(problem.black)
