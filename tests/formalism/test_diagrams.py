"""Unit tests for strength relations, diagrams and right-closed sets.

The ground truths come straight from the paper: Appendix A states the black
diagram of maximal matching is the single edge (P, O); §4.2 lists the exact
right-closed label-sets of the matching problem Π.
"""

import networkx as nx
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.diagrams import (
    black_diagram,
    diagram,
    diagram_reduction,
    is_at_least_as_strong,
    is_right_closed,
    right_closed_subsets,
    right_closure,
    successors_closure,
)
from repro.formalism.problems import problem_from_lines


@pytest.fixture
def maximal_matching():
    return problem_from_lines(["M O^2", "P^3"], ["M [OP]^2", "O^3"], name="MM")


class TestStrengthRelation:
    def test_matching_O_stronger_than_P(self, maximal_matching):
        assert is_at_least_as_strong("O", "P", maximal_matching.black)

    def test_matching_no_other_pairs(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        assert set(graph.edges) == {("P", "O")}

    def test_reflexivity(self, maximal_matching):
        for label in "MOP":
            assert is_at_least_as_strong(label, label, maximal_matching.black)

    def test_strength_is_transitive(self):
        """Strength must be transitive by definition; check on a chain."""
        constraint = Constraint(
            [Configuration("A"), Configuration("B"), Configuration("C")]
        )
        # In a unary constraint allowing all three, all labels are equivalent.
        graph = diagram("ABC", constraint)
        assert nx.is_strongly_connected(graph)

    @given(st.sets(st.sampled_from(["AA", "AB", "BB", "BC", "CC", "AC"]), min_size=1))
    def test_diagram_relation_is_transitive(self, config_strings):
        constraint = Constraint(Configuration(s) for s in config_strings)
        graph = diagram("ABC", constraint)
        for a in graph.nodes:
            for b in graph.nodes:
                for c in graph.nodes:
                    if graph.has_edge(a, b) and graph.has_edge(b, c) and a != c:
                        assert graph.has_edge(a, c), (a, b, c)


class TestRightClosedSets:
    def test_matching_right_closed_sets(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        sets = {frozenset(s) for s in right_closed_subsets(graph)}
        assert sets == {
            frozenset("M"),
            frozenset("O"),
            frozenset("MO"),
            frozenset("OP"),
            frozenset("MO" "P"),
        }

    def test_closure_of_P_contains_O(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        assert right_closure(graph, ["P"]) == frozenset("OP")

    def test_is_right_closed(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        assert is_right_closed(graph, frozenset("OP"))
        assert not is_right_closed(graph, frozenset("P"))

    def test_unknown_label_raises(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        with pytest.raises(KeyError):
            successors_closure(graph, ["Z"])

    def test_every_enumerated_subset_is_right_closed(self, maximal_matching):
        graph = black_diagram(maximal_matching)
        for subset in right_closed_subsets(graph):
            assert is_right_closed(graph, subset)

    def test_enumeration_is_complete(self, maximal_matching):
        """Cross-check against brute-force enumeration of all subsets."""
        from itertools import chain, combinations

        graph = black_diagram(maximal_matching)
        labels = sorted(graph.nodes)
        brute = {
            frozenset(combo)
            for combo in chain.from_iterable(
                combinations(labels, k) for k in range(1, len(labels) + 1)
            )
            if is_right_closed(graph, frozenset(combo))
        }
        assert set(right_closed_subsets(graph)) == brute


class TestDiagramReduction:
    def test_reduction_of_chain(self):
        graph = nx.DiGraph([("A", "B"), ("B", "C"), ("A", "C")])
        reduced = diagram_reduction(graph)
        assert set(reduced.edges) == {("A", "B"), ("B", "C")}

    def test_reduction_collapses_equivalent_labels(self):
        graph = nx.DiGraph([("A", "B"), ("B", "A"), ("B", "C"), ("A", "C")])
        reduced = diagram_reduction(graph)
        assert set(reduced.nodes) == {"A≡B", "C"}
        assert set(reduced.edges) == {("A≡B", "C")}
