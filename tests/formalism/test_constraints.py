"""Unit tests for constraints."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.formalism.configurations import Configuration, condensed
from repro.formalism.constraints import Constraint, sub_multiset_closure
from repro.utils import ArityMismatchError, UnknownLabelError

label_strategy = st.sampled_from(["A", "B", "C", "D"])
config_strategy = st.lists(label_strategy, min_size=3, max_size=3).map(Configuration)
constraint_strategy = st.sets(config_strategy, min_size=1, max_size=8).map(Constraint)


def mm_black(delta: int = 3) -> Constraint:
    """Black constraint of maximal matching: M[OP]^{Δ-1} | O^Δ."""
    return Constraint.from_condensed(
        [condensed("M", *(["OP"] * (delta - 1))), condensed(*(["O"] * delta))]
    )


class TestConstraint:
    def test_mixed_sizes_rejected(self):
        with pytest.raises(ArityMismatchError):
            Constraint([Configuration("A"), Configuration("AB")])

    def test_size_of_empty_constraint(self):
        assert Constraint([]).size == 0
        assert Constraint([]).is_empty

    def test_from_condensed_expands_union(self):
        constraint = mm_black(3)
        assert Configuration("MOO") in constraint
        assert Configuration("MOP") in constraint
        assert Configuration("MPP") in constraint
        assert Configuration("OOO") in constraint
        assert Configuration("POO") not in constraint
        assert len(constraint) == 4

    def test_labels(self):
        assert mm_black().labels == frozenset("MOP")

    def test_allows_multiset(self):
        assert mm_black().allows_multiset(["O", "M", "P"])

    def test_allows_partial(self):
        constraint = mm_black(3)
        assert constraint.allows_partial(Counter("M"), 1)
        assert constraint.allows_partial(Counter("PP"), 2)
        # Two M's can never extend.
        assert not constraint.allows_partial(Counter("MM"), 2)
        # Too many labels placed.
        assert not constraint.allows_partial(Counter("MOPO"), 4)

    def test_completions(self):
        constraint = mm_black(3)
        assert constraint.completions(Counter("PP")) == frozenset("M")
        assert constraint.completions(Counter("OO")) == frozenset("MO")
        assert constraint.completions(Counter("MOP")) == frozenset()

    def test_restrict_labels(self):
        restricted = mm_black(3).restrict_labels(frozenset("MO"))
        assert Configuration("MOO") in restricted
        assert Configuration("OOO") in restricted
        assert Configuration("MOP") not in restricted

    def test_map_labels(self):
        mapped = mm_black(3).map_labels({"P": "O"})
        assert Configuration("MOO") in mapped
        assert len(mapped) == 2  # MOO and OOO

    def test_check_alphabet(self):
        with pytest.raises(UnknownLabelError):
            mm_black().check_alphabet(frozenset("MO"))
        mm_black().check_alphabet(frozenset("MOPX"))

    def test_occurrence_signature_invariant_under_renaming(self):
        constraint = mm_black(3)
        renamed = constraint.map_labels({"M": "Q", "O": "R", "P": "S"})
        assert constraint.label_occurrence_signature(
            "M"
        ) == renamed.label_occurrence_signature("Q")

    @given(constraint_strategy)
    def test_partial_query_agrees_with_closure(self, constraint):
        """allows_partial must agree with the explicit sub-multiset closure."""
        closure = sub_multiset_closure(constraint)
        for partial in closure:
            counter = Counter(partial)
            assert constraint.allows_partial(counter, len(partial))

    @given(constraint_strategy, st.lists(label_strategy, min_size=1, max_size=3))
    def test_partial_query_no_false_positives(self, constraint, labels):
        counter = Counter(labels)
        expected = tuple(sorted(labels)) in sub_multiset_closure(constraint)
        assert constraint.allows_partial(counter, len(labels)) == expected

    @given(constraint_strategy, st.lists(label_strategy, min_size=0, max_size=2))
    def test_completions_are_sound_and_complete(self, constraint, labels):
        counter = Counter(labels)
        completions = constraint.completions(counter)
        closure = sub_multiset_closure(constraint)
        for label in ["A", "B", "C", "D"]:
            extended = tuple(sorted(labels + [label]))
            assert (label in completions) == (extended in closure)
