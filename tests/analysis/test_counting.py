"""Direct unit tests for the §4.2 counting certificates
(:mod:`repro.analysis.counting`) — previously exercised only indirectly
through the extraction pipelines."""

import networkx as nx
import pytest

from repro.analysis.counting import (
    MatchingCountingCertificate,
    classify_matching_nodes,
    contradiction_region,
    count_label_edges,
    matching_counting_certificate,
)
from repro.utils import CertificateError


def biregular_colored(delta: int, n_half: int) -> nx.Graph:
    """A (Δ,Δ)-biregular 2-colored multigraph stand-in: a complete
    bipartite block repeated — easiest exact construction is
    K_{Δ,Δ} components, n_half/Δ of them (n_half divisible by Δ)."""
    assert n_half % delta == 0
    graph = nx.Graph()
    for block in range(n_half // delta):
        whites = [f"w{block}.{i}" for i in range(delta)]
        blacks = [f"b{block}.{i}" for i in range(delta)]
        for node in whites:
            graph.add_node(node, color="white")
        for node in blacks:
            graph.add_node(node, color="black")
        for white in whites:
            for black in blacks:
                graph.add_edge(white, black)
    return graph


def uniform_assignment(graph: nx.Graph, label_set: frozenset) -> dict:
    return {frozenset(edge): label_set for edge in graph.edges}


class TestCountLabelEdges:
    def test_counts_membership_not_equality(self):
        assignment = {
            frozenset(("a", "b")): frozenset({"M", "O"}),
            frozenset(("c", "d")): frozenset({"O"}),
            frozenset(("e", "f")): frozenset({"M"}),
        }
        assert count_label_edges(assignment, "M") == 2
        assert count_label_edges(assignment, "O") == 2
        assert count_label_edges(assignment, "P") == 0

    def test_empty_assignment(self):
        assert count_label_edges({}, "M") == 0


class TestCertificate:
    def test_empty_graph_certificate(self):
        """The degenerate 2n = 0 case: all counts and bounds are zero and
        every lemma holds vacuously."""
        certificate = matching_counting_certificate(
            nx.Graph(), {}, delta=10, delta_prime=2, y=1
        )
        assert certificate.n_half == 0
        assert certificate.m_edges == certificate.p_edges == 0
        assert certificate.lemma_47_holds
        assert certificate.lemma_48_holds
        assert certificate.lemma_49_holds
        assert not certificate.bounds_contradict

    def test_single_node_graph_rejected(self):
        graph = nx.Graph()
        graph.add_node("only", color="white")
        with pytest.raises(CertificateError):
            matching_counting_certificate(graph, {}, delta=3, delta_prime=1, y=1)

    def test_missing_edge_assignment_rejected(self):
        graph = biregular_colored(2, 2)
        with pytest.raises(CertificateError):
            matching_counting_certificate(graph, {}, delta=2, delta_prime=1, y=1)

    def test_counts_on_a_biregular_graph(self):
        graph = biregular_colored(2, 2)  # one K_{2,2}: 4 nodes, 4 edges
        assignment = uniform_assignment(graph, frozenset({"M", "P"}))
        certificate = matching_counting_certificate(
            graph, assignment, delta=2, delta_prime=1, y=1
        )
        assert certificate.n_half == 2
        assert certificate.m_edges == 4
        assert certificate.p_edges == 4
        assert certificate.lemma_47_bound == 2  # n·y
        assert certificate.lemma_49_bound == 0  # n(Δ′−1)
        assert not certificate.lemma_47_holds
        assert not certificate.lemma_49_holds

    def test_lemma_48_lower_bound_direction(self):
        graph = biregular_colored(3, 3)
        assignment = uniform_assignment(graph, frozenset({"O"}))
        certificate = matching_counting_certificate(
            graph, assignment, delta=3, delta_prime=1, y=1
        )
        # P-edges = 0; bound n((Δ−Δ′)/2 − y) = 3·0 = 0 → holds at equality.
        assert certificate.lemma_48_bound == 0
        assert certificate.lemma_48_holds

    def test_bounds_contradict_matches_closed_form(self):
        for delta, delta_prime, y in (
            (10, 2, 1),
            (5, 1, 1),
            (4, 2, 1),
            (50, 10, 1),
            (3, 1, 1),
        ):
            certificate = MatchingCountingCertificate(
                n_half=7,
                delta=delta,
                delta_prime=delta_prime,
                y=y,
                m_edges=0,
                p_edges=0,
                lemma_47_bound=7 * y,
                lemma_48_bound=7 * ((delta - delta_prime) / 2 - y),
                lemma_49_bound=7 * (delta_prime - 1),
            )
            assert certificate.bounds_contradict == contradiction_region(
                delta, delta_prime, y
            )


class TestContradictionRegion:
    def test_paper_regime_delta_5x(self):
        # The paper's c = 5 instantiation: Δ = 5Δ′, y = 1 is inside the
        # contradiction region for every Δ′ ≥ 1.
        for delta_prime in (1, 2, 5, 10):
            assert contradiction_region(5 * delta_prime, delta_prime, 1)

    def test_outside_the_regime(self):
        assert not contradiction_region(3, 1, 1)
        assert not contradiction_region(4, 2, 1)


class TestClassifyMatchingNodes:
    def test_empty_graph_yields_empty_split(self):
        m_nodes, p_nodes = classify_matching_nodes(nx.Graph(), {}, 4, 2)
        assert m_nodes == set() and p_nodes == set()

    def test_single_white_node_without_edges_is_a_p_node_at_zero_threshold(self):
        graph = nx.Graph()
        graph.add_node("w", color="white")
        # threshold (Δ−Δ′)/2 = 1 > 0 M-edges → P-node.
        m_nodes, p_nodes = classify_matching_nodes(graph, {}, delta=4, delta_prime=2)
        assert m_nodes == set() and p_nodes == {"w"}
        # threshold 0 ≤ 0 M-edges → M-node.
        m_nodes, p_nodes = classify_matching_nodes(graph, {}, delta=2, delta_prime=2)
        assert m_nodes == {"w"} and p_nodes == set()

    def test_black_nodes_are_ignored(self):
        graph = nx.Graph()
        graph.add_node("b", color="black")
        m_nodes, p_nodes = classify_matching_nodes(graph, {}, 4, 2)
        assert m_nodes == set() and p_nodes == set()

    def test_threshold_split_on_a_star(self):
        graph = nx.Graph()
        graph.add_node("w", color="white")
        for index in range(4):
            graph.add_node(f"b{index}", color="black")
            graph.add_edge("w", f"b{index}")
        assignment = {
            frozenset(("w", "b0")): frozenset({"M"}),
            frozenset(("w", "b1")): frozenset({"M"}),
            frozenset(("w", "b2")): frozenset({"O"}),
            frozenset(("w", "b3")): frozenset({"P"}),
        }
        # threshold (4−2)/2 = 1 ≤ 2 M-edges → M-node.
        m_nodes, _ = classify_matching_nodes(graph, assignment, 4, 2)
        assert m_nodes == {"w"}
        # threshold (8−2)/2 = 3 > 2 → P-node.
        _, p_nodes = classify_matching_nodes(graph, assignment, 8, 2)
        assert p_nodes == {"w"}
