"""Direct unit tests for the executable Lemma 6.6
(:mod:`repro.analysis.ruling_peeling`) — node typing, the |S′| ≥ |S|/4
counting certificate, the peeling transformation and the ¯Π checker,
including empty-graph and single-node edge cases."""

import networkx as nx
import pytest

from repro.analysis.ruling_peeling import (
    BarPiChecker,
    classify_types,
    peel_once,
    type1_fraction_certificate,
)
from repro.formalism.labels import color_label
from repro.problems.ruling_sets import pointer_label, unpointed_label
from repro.utils import CertificateError

P2 = pointer_label(2)
U2 = unpointed_label(2)
C1 = color_label([1])


def star(leaves: int) -> nx.Graph:
    graph = nx.Graph()
    graph.add_node("center")
    for index in range(leaves):
        graph.add_node(f"leaf{index}")
        graph.add_edge("center", f"leaf{index}")
    return graph


def star_assignment(graph: nx.Graph, center_sets: dict, leaf_set) -> dict:
    """Half-edge assignment: the center's per-edge sets are given, every
    leaf sees ``leaf_set`` on its side of each edge."""
    assignment = {}
    for neighbor in graph.neighbors("center"):
        assignment[("center", neighbor)] = center_sets[neighbor]
        assignment[(neighbor, "center")] = leaf_set
    return assignment


class TestClassifyTypes:
    def test_empty_graph_and_empty_s(self):
        type1, type2, type3, untouched = classify_types(
            nx.Graph(), set(), {}, delta=6, delta_prime=2, beta=2
        )
        assert type1 == type2 == type3 == untouched == set()

    def test_single_isolated_node_is_untouched(self):
        graph = nx.Graph()
        graph.add_node("solo")
        type1, type2, type3, untouched = classify_types(
            graph, {"solo"}, {}, delta=6, delta_prime=2, beta=2
        )
        # No incident edges → no P_β/U_β anywhere → untouched.
        assert untouched == {"solo"}
        assert type1 == type2 == type3 == set()

    def test_type3_some_set_lacks_u_beta(self):
        graph = star(2)
        assignment = star_assignment(
            graph,
            {"leaf0": frozenset({P2, U2}), "leaf1": frozenset({C1})},
            frozenset({C1}),
        )
        type1, type2, type3, untouched = classify_types(
            graph, {"center"}, assignment, delta=6, delta_prime=2, beta=2
        )
        assert type3 == {"center"}
        assert type1 == type2 == untouched == set()

    def test_type1_all_u_and_many_p(self):
        graph = star(4)
        sets = {f"leaf{i}": frozenset({P2, U2}) for i in range(4)}
        assignment = star_assignment(graph, sets, frozenset({C1}))
        type1, type2, _type3, _untouched = classify_types(
            graph, {"center"}, assignment, delta=6, delta_prime=2, beta=2
        )
        # 4 P-edges ≥ Δ−Δ′ = 4 → type 1.
        assert type1 == {"center"} and type2 == set()

    def test_type2_all_u_few_p(self):
        graph = star(4)
        sets = {"leaf0": frozenset({P2, U2})}
        sets.update({f"leaf{i}": frozenset({U2, C1}) for i in (1, 2, 3)})
        assignment = star_assignment(graph, sets, frozenset({C1}))
        type1, type2, _type3, _untouched = classify_types(
            graph, {"center"}, assignment, delta=6, delta_prime=2, beta=2
        )
        assert type2 == {"center"} and type1 == set()


class TestType1FractionCertificate:
    def test_requires_delta_at_least_3_delta_prime(self):
        with pytest.raises(CertificateError):
            type1_fraction_certificate(10, 1, delta=5, delta_prime=2)

    def test_empty_s_holds_trivially(self):
        assert type1_fraction_certificate(0, 0, delta=6, delta_prime=2)

    def test_bound_accepted_and_violated(self):
        # Δ/(2(Δ−Δ′)) = 6/8 = 3/4: 3 of 4 pass, 4 of 4 fail.
        assert type1_fraction_certificate(4, 3, delta=6, delta_prime=2)
        assert not type1_fraction_certificate(4, 4, delta=6, delta_prime=2)


class TestPeelOnce:
    def test_beta_zero_rejected(self):
        with pytest.raises(CertificateError):
            peel_once(nx.Graph(), set(), {}, delta=6, delta_prime=2, k=1, beta=0)

    def test_empty_instance_peels_to_empty(self):
        result = peel_once(
            nx.Graph(), set(), {}, delta=6, delta_prime=2, k=1, beta=2
        )
        assert result.s_prime == set()
        assert result.assignment == {}
        assert result.fraction_ok

    def test_single_node_survives_untouched(self):
        graph = nx.Graph()
        graph.add_node("solo")
        result = peel_once(
            graph, {"solo"}, {}, delta=6, delta_prime=2, k=1, beta=2
        )
        assert result.s_prime == {"solo"}
        assert result.type1 == set()

    def test_type3_drops_deepest_pointers(self):
        graph = star(2)
        assignment = star_assignment(
            graph,
            {"leaf0": frozenset({P2, U2, C1}), "leaf1": frozenset({C1})},
            frozenset({C1}),
        )
        result = peel_once(
            graph, {"center"}, assignment, delta=6, delta_prime=2, k=1, beta=2
        )
        assert result.s_prime == {"center"}
        assert result.assignment[("center", "leaf0")] == frozenset({C1})
        assert result.assignment[("center", "leaf1")] == frozenset({C1})

    def test_type1_removed_from_s(self):
        graph = star(4)
        sets = {f"leaf{i}": frozenset({P2, U2}) for i in range(4)}
        assignment = star_assignment(graph, sets, frozenset({C1}))
        result = peel_once(
            graph, {"center"}, assignment, delta=6, delta_prime=2, k=1, beta=2
        )
        assert result.type1 == {"center"}
        assert result.s_prime == set()

    def test_type2_shifts_palette_and_adds_x(self):
        graph = star(4)
        sets = {"leaf0": frozenset({P2, U2})}
        sets.update({f"leaf{i}": frozenset({U2, C1}) for i in (1, 2, 3)})
        assignment = star_assignment(graph, sets, frozenset({C1}))
        result = peel_once(
            graph, {"center"}, assignment, delta=6, delta_prime=2, k=1, beta=2
        )
        shifted = color_label([2])  # {1} shifted by k = 1
        assert result.s_prime == {"center"}
        # The P-edge receives the union of the shifted U-edge sets + X.
        assert result.assignment[("center", "leaf0")] == frozenset({shifted, "X"})
        # U-edges shift their own color labels and gain X; U_2 is gone.
        for leaf in ("leaf1", "leaf2", "leaf3"):
            assert result.assignment[("center", leaf)] == frozenset({shifted, "X"})


class TestBarPiChecker:
    def test_empty_graph_checks_vacuously(self):
        checker = BarPiChecker(delta_prime=2, x=0, k=1, beta=1)
        assert checker.check(nx.Graph(), set(), {})

    def test_single_node_no_edges(self):
        graph = nx.Graph()
        graph.add_node("solo")
        checker = BarPiChecker(delta_prime=2, x=0, k=1, beta=1)
        # No incident label-sets: no y ∈ {0..x} gives a feasible arity,
        # so the node condition fails — an S-node must carry labels.
        assert not checker.check(graph, {"solo"}, {})
        # Nodes outside S are unconstrained.
        assert checker.check(graph, set(), {})

    def test_node_condition_accepts_a_real_family_solution(self):
        graph = star(2)
        pointer = frozenset({pointer_label(1)})
        unpointed = frozenset({unpointed_label(1)})
        assignment = star_assignment(
            graph, {"leaf0": pointer, "leaf1": unpointed}, unpointed
        )
        checker = BarPiChecker(delta_prime=2, x=0, k=1, beta=1)
        # P_1 U_1 is a white configuration of Π_2(1,1) → node ok.
        assert checker.check(graph, {"center"}, assignment)

    def test_edge_condition_follows_the_pointer_rule(self):
        checker = BarPiChecker(delta_prime=2, x=0, k=1, beta=1)
        pointer = frozenset({pointer_label(1)})
        unpointed = frozenset({unpointed_label(1)})
        # Definition 6.2's pointer rule: P_i U_j needs j < i, so both
        # P_1 P_1 and P_1 U_1 are forbidden; U_i U_j is always allowed
        # and P_i is compatible with X and every ℓ(C).
        assert not checker.edge_ok(pointer, pointer)
        assert not checker.edge_ok(pointer, unpointed)
        assert checker.edge_ok(unpointed, unpointed)
        assert checker.edge_ok(pointer, frozenset({"X"}))
        assert checker.edge_ok(pointer, frozenset({C1}))

    def test_edge_condition_rejected_through_check(self):
        """A rotating P_1/U_1 labeling of a triangle satisfies every node
        (each sees P_1 U_1, a white configuration) but pairs P_1 against
        U_1 across each edge — so ``check`` must reject on the edge
        condition specifically."""
        graph = nx.Graph()
        graph.add_edges_from([("u", "v"), ("v", "w"), ("w", "u")])
        pointer = frozenset({pointer_label(1)})
        unpointed = frozenset({unpointed_label(1)})
        assignment = {
            ("u", "v"): pointer, ("u", "w"): unpointed,
            ("v", "w"): pointer, ("v", "u"): unpointed,
            ("w", "u"): pointer, ("w", "v"): unpointed,
        }
        checker = BarPiChecker(delta_prime=2, x=0, k=1, beta=1)
        for node in ("u", "v", "w"):
            sets = [assignment[(node, nb)] for nb in graph.neighbors(node)]
            assert checker.node_ok(sets)
        assert not checker.check(graph, {"u", "v", "w"}, assignment)
