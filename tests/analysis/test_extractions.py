"""Executable-proof tests: Lemmas 4.7-4.9, 5.9, 5.10, 6.6.

Real solutions are produced by the Lemma 5.3 / 6.3 conversions from
concrete colorings/ruling sets computed by the algorithms package, then
pushed through the paper's extraction lemmas; corrupted solutions must be
rejected (failure injection).
"""

import networkx as nx
import pytest

from repro.algorithms import class_sweep_arbdefective_coloring, class_sweep_coloring
from repro.analysis import (
    BarPiChecker,
    classify_types,
    contradiction_region,
    count_label_edges,
    decode_color_union,
    extract_coloring,
    extract_family_solution,
    hall_violator,
    matching_counting_certificate,
    palette_size,
    peel_once,
    type1_fraction_certificate,
)
from repro.checkers import check_half_edge_labeling, check_proper_coloring
from repro.formalism.diagrams import black_diagram, right_closure
from repro.graphs import cage, cycle
from repro.problems import (
    arbdefective_to_family_labels,
    pi_arbdefective,
    pi_ruling,
    ruling_set_to_family_labels,
)
from repro.utils import CertificateError


def _family_solution(graph, colors):
    """An honest Π_Δ((α+1)c) half-edge solution from a real coloring."""
    base = class_sweep_coloring(graph)[0]
    color_of, orientation, alpha, _rounds = class_sweep_arbdefective_coloring(
        graph, {n: c + 1 for n, c in base.items()}, colors
    )
    labels = arbdefective_to_family_labels(graph, color_of, orientation, alpha)
    return labels, (alpha + 1) * colors


class TestLemma53Conversion:
    # c = 1 would give α = ⌊Δ/c⌋ = Δ, outside Lemma 5.3's (α+1)c ≤ Δ-ish
    # regime (a node may orient all Δ edges outward, leaving no ℓ(C)
    # copies); c ≥ 2 keeps the class-sweep construction inside it.
    @pytest.mark.parametrize("colors", [2, 3])
    def test_conversion_is_valid_family_solution(self, colors):
        graph, _d, _g = cage("petersen")
        labels, k = _family_solution(graph, colors)
        problem = pi_arbdefective(3, k)
        assert check_half_edge_labeling(graph, problem, labels)


class TestHallViolator:
    def test_none_when_halls_condition_holds(self):
        # Each color missing from a distinct edge: perfect matching exists.
        sets = [frozenset({2, 3}), frozenset({1, 3}), frozenset({1, 2})]
        assert hall_violator(range(1, 4), sets) is None

    def test_violator_found(self):
        # Colors 1 and 2 are both present everywhere: H has no edges for
        # them; N({1,2}) = ∅.
        sets = [frozenset({1, 2}), frozenset({1, 2}), frozenset({1, 2})]
        violator = hall_violator(range(1, 3), sets)
        assert violator == {1, 2}

    def test_decode_color_union(self):
        assert decode_color_union(frozenset({"{1,2}", "{3}", "X"})) == frozenset(
            {1, 2, 3}
        )


class TestLemma59And510:
    def test_extraction_pipeline_on_real_solution(self):
        """Π_Δ(k) solution → (Lemma 5.9 on its trivial lift: singleton
        right-closed sets) → Π_Δ(k) solution → (Lemma 5.10) → 2k-coloring."""
        graph, _d, _g = cage("petersen")
        labels, k = _family_solution(graph, 2)
        problem = pi_arbdefective(3, k)
        diagram = black_diagram(problem)
        # Lift the concrete solution to label-sets by right-closure —
        # a valid lift_{Δ,2} solution (Theorem 3.2's closure step).
        half_edge_sets = {
            key: right_closure(diagram, [label]) for key, label in labels.items()
        }
        s_nodes = set(graph.nodes)
        family = extract_family_solution(graph, s_nodes, half_edge_sets, k)
        assert check_half_edge_labeling(graph, pi_arbdefective(3, k), family)

        coloring = extract_coloring(graph, s_nodes, family)
        assert check_proper_coloring(graph, coloring)
        assert palette_size(coloring) <= 2 * k

    def test_subset_s_extraction(self):
        graph, _d, _g = cage("heawood")
        labels, k = _family_solution(graph, 2)
        problem = pi_arbdefective(3, k)
        diagram = black_diagram(problem)
        half_edge_sets = {
            key: right_closure(diagram, [label]) for key, label in labels.items()
        }
        s_nodes = set(sorted(graph.nodes)[:8])
        family = extract_family_solution(graph, s_nodes, half_edge_sets, k)
        coloring = extract_coloring(graph, s_nodes, family)
        induced = graph.subgraph(s_nodes)
        assert check_proper_coloring(induced, coloring)

    def test_corrupted_solution_rejected(self):
        """Failure injection: intersecting color sets across an edge."""
        graph = cycle(4)
        bad = {}
        for u, v in graph.edges:
            bad[(u, v)] = frozenset({"{1}"})
            bad[(v, u)] = frozenset({"{1}"})
        with pytest.raises(CertificateError):
            extract_family_solution(graph, set(graph.nodes), bad, 1)


class TestLemma47Through49:
    def test_counting_certificate_on_assignment(self):
        """Synthetic assignment on a (Δ,Δ)-biregular graph: the counts and
        bound arithmetic are exact."""
        graph, _d, _g = cage("pappus")  # bipartite 3-regular, 18 nodes
        assignment = {}
        for index, edge in enumerate(sorted(graph.edges, key=str)):
            label_set = frozenset("OX") if index % 3 else frozenset("POX")
            assignment[frozenset(edge)] = label_set
        certificate = matching_counting_certificate(
            graph, assignment, delta=3, delta_prime=2, y=1
        )
        expected_p = sum(
            1 for index in range(graph.number_of_edges()) if index % 3 == 0
        )
        assert certificate.p_edges == expected_p
        assert certificate.m_edges == 0
        assert certificate.lemma_47_holds

    def test_contradiction_region_matches_paper(self):
        """§4.2 fixes Δ = 5Δ′ and derives the contradiction for y ≤ Δ′."""
        assert contradiction_region(delta=50, delta_prime=10, y=1)
        assert not contradiction_region(delta=12, delta_prime=10, y=1)

    def test_odd_graph_rejected(self):
        graph = cycle(5)
        with pytest.raises(CertificateError):
            matching_counting_certificate(graph, {}, 2, 2, 1)

    def test_count_label_edges(self):
        assignment = {1: frozenset("MP"), 2: frozenset("O"), 3: frozenset("MP")}
        assert count_label_edges(assignment, "M") == 2
        assert count_label_edges(assignment, "O") == 1


class TestLemma66Peeling:
    def _ruling_instance(self, beta):
        graph, _d, _g = cage("tutte_coxeter")
        from repro.algorithms import ruling_set_by_class_sweep

        selected, _rounds = ruling_set_by_class_sweep(graph, beta=beta)
        color_of = {node: 1 for node in selected}
        labels = ruling_set_to_family_labels(
            graph, selected, color_of, set(), alpha=0, beta=beta
        )
        return graph, labels

    def test_conversion_valid_for_family(self):
        graph, labels = self._ruling_instance(beta=2)
        problem = pi_ruling(3, 1, 2)
        assert check_half_edge_labeling(graph, problem, labels)

    def test_classification_covers_s(self):
        graph, labels = self._ruling_instance(beta=2)
        problem = pi_ruling(3, 1, 2)
        diagram = black_diagram(problem)
        sets = {key: right_closure(diagram, [label]) for key, label in labels.items()}
        type1, type2, type3, untouched = classify_types(
            graph, set(graph.nodes), sets, delta=3, delta_prime=1, beta=2
        )
        assert type1 | type2 | type3 | untouched == set(graph.nodes)

    def test_fraction_certificate_guard(self):
        with pytest.raises(CertificateError):
            type1_fraction_certificate(10, 1, delta=4, delta_prime=2)
        assert type1_fraction_certificate(10, 5, delta=9, delta_prime=3)

    def test_peel_removes_deepest_pointers(self):
        graph, labels = self._ruling_instance(beta=2)
        problem = pi_ruling(3, 1, 2)
        diagram = black_diagram(problem)
        sets = {key: right_closure(diagram, [label]) for key, label in labels.items()}
        result = peel_once(
            graph, set(graph.nodes), sets, delta=3, delta_prime=1, k=1, beta=2
        )
        assert result.fraction_ok
        for node in result.s_prime:
            for neighbor in graph.neighbors(node):
                label_set = result.assignment[(node, neighbor)]
                assert "P2" not in label_set
                assert "U2" not in label_set

    def test_bar_pi_checker_accepts_base_solution(self):
        """A lift of an honest Π_Δ'(k,β) solution passes the ¯Π checker at
        x = Δ − Δ'… here checked in the base form (x large enough that
        some y matches the node's effective arity)."""
        graph, labels = self._ruling_instance(beta=1)
        problem = pi_ruling(3, 1, 1)
        diagram = black_diagram(problem)
        sets = {key: right_closure(diagram, [label]) for key, label in labels.items()}
        checker = BarPiChecker(delta_prime=3, x=0, k=1, beta=1)
        assert checker.check(graph, set(graph.nodes), sets)
