"""The exploration engine: store semantics, search behaviour, parallel
determinism, kill-and-resume, and the Δ=3 matching acceptance criterion
(rediscovering the Corollary 4.6 chain and the family fixed point)."""

import json

import pytest

from repro.formalism.normalize import canonical_digest, normal_form
from repro.problems import pi_arbdefective, pi_matching
from repro.roundelim.explore import (
    ExplorationLimits,
    ExplorationPolicy,
    ProblemStore,
    STATUS_BUDGET,
    STATUS_OK,
    compute_step,
    explore,
    reports_identical,
)
from repro.utils import InvalidParameterError
from repro.utils.serialization import canonical_dumps


MATCHING_ROOTS = [pi_matching(3, x, 1) for x in (0, 1, 2)]
MATCHING_LIMITS = ExplorationLimits(max_depth=1, max_nodes=8)


@pytest.fixture(scope="module")
def matching_report():
    return explore(MATCHING_ROOTS, limits=MATCHING_LIMITS)


class TestProblemStore:
    def test_intern_shares_identity_across_renamings(self):
        store = ProblemStore()
        problem = pi_matching(3, 0, 1)
        renamed = problem.rename(
            {label: f"Q{index}" for index, label in enumerate(sorted(problem.alphabet))}
        )
        assert store.intern(problem).digest == store.intern(renamed).digest

    def test_apply_memoizes_in_memory(self):
        store = ProblemStore()
        form = store.intern(pi_matching(3, 1, 1))
        first = store.apply(form.digest, "RE", 200_000)
        computed = store.stats.computed
        second = store.apply(form.digest, "RE", 200_000)
        assert first == second
        assert store.stats.computed == computed
        assert store.stats.memory_hits >= 1

    def test_memo_key_includes_budget(self):
        store = ProblemStore()
        form = store.intern(pi_matching(3, 0, 1))
        generous = store.apply(form.digest, "RE", 200_000)
        starved = store.apply(form.digest, "RE", 10)
        assert generous["status"] == STATUS_OK
        assert starved["status"] == STATUS_BUDGET
        # Both outcomes coexist under their own keys.
        assert store.apply(form.digest, "RE", 200_000) == generous
        assert store.apply(form.digest, "RE", 10) == starved

    def test_lru_capacity_evicts_but_disk_tier_retains(self, tmp_path):
        store = ProblemStore(capacity=1, root=tmp_path)
        form = store.intern(pi_matching(3, 1, 1))
        store.apply(form.digest, "R", 200_000)
        store.apply(form.digest, "R_bar", 200_000)  # evicts the R entry
        assert store.stats.evictions >= 1
        computed = store.stats.computed
        store.apply(form.digest, "R", 200_000)  # comes back from disk
        assert store.stats.computed == computed
        assert store.stats.disk_hits >= 1

    def test_disk_tier_resumes_across_store_instances(self, tmp_path):
        first = ProblemStore(root=tmp_path)
        form = first.intern(pi_matching(3, 1, 1))
        entry = first.apply(form.digest, "RE", 200_000)
        second = ProblemStore(root=tmp_path)
        assert second.lookup(form.digest, "RE", 200_000) == entry
        assert second.stats.disk_hits == 1
        assert second.stats.computed == 0
        # The child problem payload is also recoverable from disk.
        rebuilt = second.problem_of(entry["child"])
        assert canonical_digest(rebuilt) == entry["child"]

    def test_compute_step_budget_exhaustion_is_an_outcome(self):
        payload = normal_form(pi_matching(3, 0, 1)).payload
        outcome = compute_step(payload, "RE", 10, "kernel")
        assert outcome == {
            "status": STATUS_BUDGET,
            "child": None,
            "child_payload": None,
        }

    def test_compute_step_engines_agree_byte_for_byte(self):
        payload = normal_form(pi_matching(3, 1, 1)).payload
        kernel = compute_step(payload, "RE", 200_000, "kernel")
        reference = compute_step(payload, "RE", 200_000, "reference")
        assert canonical_dumps(kernel) == canonical_dumps(reference)

    def test_unknown_operator_rejected(self):
        payload = normal_form(pi_matching(3, 2, 1)).payload
        with pytest.raises(InvalidParameterError):
            compute_step(payload, "RE2", 100, "kernel")

    def test_unknown_digest_rejected(self):
        with pytest.raises(InvalidParameterError):
            ProblemStore().payload_of("no-such-digest")


class TestAcceptanceCriterion:
    """Exploration of the Δ=3 matching family."""

    def test_rediscovers_a_verified_lower_bound_sequence(self, matching_report):
        verified = matching_report.verified_sequences
        assert verified, "no verified sequences discovered"
        assert matching_report.best_sequence_length >= 2
        # The paper's chain appears as a verified path: the three family
        # problems in x-order.
        family_digests = [canonical_digest(problem) for problem in MATCHING_ROOTS]
        assert any(
            entry["kind"] == "path"
            and entry["digests"][: len(family_digests)] == family_digests
            for entry in verified
        ), "the Corollary 4.6 chain was not rediscovered"

    def test_classifies_the_family_fixed_point(self, matching_report):
        endpoint = canonical_digest(pi_matching(3, 2, 1))
        assert endpoint in matching_report.relaxation_fixed_points
        constant = [
            entry
            for entry in matching_report.verified_sequences
            if entry["kind"] == "constant" and entry["digests"][0] == endpoint
        ]
        assert constant and constant[0]["length"] >= 2

    def test_classifies_zero_round_nodes(self, matching_report):
        # RE(Π_3(2,1)) collapses to a single-label, trivially solvable
        # problem — the chain's natural endpoint.
        assert matching_report.zero_round_nodes
        for digest in matching_report.zero_round_nodes:
            assert matching_report.nodes[digest]["alphabet_size"] >= 1

    def test_arbdefective_exact_fixed_point(self):
        report = explore(
            [pi_arbdefective(3, 2)],
            limits=ExplorationLimits(max_depth=2, max_nodes=4),
        )
        assert report.visited == 1  # RE(Π) collapses onto Π itself
        assert report.fixed_points == [canonical_digest(pi_arbdefective(3, 2))]
        constant = [e for e in report.sequences if e["kind"] == "constant"]
        assert constant and constant[0]["verified"]


class TestDeterminism:
    def test_jobs_4_report_is_byte_identical_to_serial(self):
        serial = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS, jobs=1)
        parallel = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS, jobs=4)
        assert reports_identical(serial, parallel)
        assert serial.canonical_json() == parallel.canonical_json()

    def test_root_order_and_spelling_do_not_change_node_identity(self):
        forward = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS)
        renamed_roots = [
            problem.rename(
                {
                    label: f"Y{index}"
                    for index, label in enumerate(sorted(problem.alphabet))
                }
            )
            for problem in MATCHING_ROOTS
        ]
        respelled = explore(renamed_roots, limits=MATCHING_LIMITS)
        # Node names track the given problems, but digests, edges, steps
        # and sequences are identity-level and must match exactly.
        assert set(forward.nodes) == set(respelled.nodes)
        assert forward.edges == respelled.edges
        assert forward.steps == respelled.steps
        assert [s["digests"] for s in forward.sequences] == [
            s["digests"] for s in respelled.sequences
        ]

    def test_report_does_not_depend_on_store_capacity(self):
        """Regression: a capacity-1 LRU evicts RE memo entries mid-search;
        classification must recompute (store.apply), not silently skip
        (store.lookup), so the report stays byte-identical."""
        default = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS)
        tiny = explore(
            MATCHING_ROOTS, limits=MATCHING_LIMITS, store=ProblemStore(capacity=1)
        )
        assert reports_identical(default, tiny)
        assert tiny.relaxation_fixed_points == default.relaxation_fixed_points

    def test_best_first_order_is_deterministic(self):
        policy = ExplorationPolicy(order="min-alphabet", batch_size=2)
        first = explore(MATCHING_ROOTS, policy=policy, limits=MATCHING_LIMITS)
        second = explore(MATCHING_ROOTS, policy=policy, limits=MATCHING_LIMITS)
        assert reports_identical(first, second)

    def test_payload_is_canonical_json(self, matching_report):
        payload = matching_report.payload()
        assert json.loads(canonical_dumps(payload)) == json.loads(
            canonical_dumps(json.loads(canonical_dumps(payload)))
        )
        assert payload["schema"] == "repro.explore/report-v1"
        assert payload["digest"]


class TestResumability:
    def test_kill_and_resume_revisits_zero_expanded_nodes(self, tmp_path):
        # Cold full run on a disk store.
        cold_store = ProblemStore(root=tmp_path)
        cold = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS, store=cold_store)
        assert cold_store.stats.computed > 0

        # "Kill": a fresh process would reopen the same directory.  The
        # resumed run must recompute nothing and reproduce the report
        # byte for byte.
        warm_store = ProblemStore(root=tmp_path)
        warm = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS, store=warm_store)
        assert warm_store.stats.computed == 0
        assert warm_store.stats.disk_hits > 0
        assert reports_identical(cold, warm)

    def test_partial_run_resumes_into_a_larger_budget(self, tmp_path):
        # Interrupted run: only one expansion allowed.
        small = ExplorationLimits(max_depth=1, max_nodes=1)
        first_store = ProblemStore(root=tmp_path)
        explore(MATCHING_ROOTS, limits=small, store=first_store)
        already = first_store.stats.computed
        assert already >= 1

        # Resume with the full budget: only the *new* nodes compute.
        second_store = ProblemStore(root=tmp_path)
        full = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS, store=second_store)
        assert second_store.stats.computed == full.expanded - already
        # And the resumed report equals a from-scratch full run.
        scratch = explore(MATCHING_ROOTS, limits=MATCHING_LIMITS)
        assert reports_identical(full, scratch)


class TestPolicyValidation:
    def test_unknown_order_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExplorationPolicy(order="dfs")

    def test_unknown_move_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExplorationPolicy(moves=("RE", "teleport"))

    def test_unknown_zero_round_mode_rejected(self):
        with pytest.raises(InvalidParameterError):
            ExplorationPolicy(zero_round="oracle")

    def test_limits_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            ExplorationLimits(max_depth=0)

    def test_empty_roots_rejected(self):
        with pytest.raises(InvalidParameterError):
            explore([])

    def test_merge_moves_grow_the_frontier(self):
        policy = ExplorationPolicy(moves=("RE", "merge"), merge_alphabet_cap=3)
        problem = pi_matching(3, 2, 1)
        report = explore(
            [problem],
            policy=policy,
            limits=ExplorationLimits(max_depth=2, max_nodes=6),
        )
        merges = [e for e in report.edges if e["move"].startswith("merge:")]
        # Π_3(2,1) has 5 labels (over the cap); its single-label RE child
        # has none to merge — so merges appear only below nodes small
        # enough, and every merge target is a visited node.
        for edge in merges:
            assert edge["target"] in report.nodes
        # Unordered quotients only: no (source, move) pair may repeat,
        # and moves are tagged i+j with i < j.
        tags = [(e["source"], e["move"]) for e in merges]
        assert len(tags) == len(set(tags))
        for _source, move in tags:
            i, j = move.removeprefix("merge:").split("+")
            assert int(i) < int(j)

    def test_budget_exhaustion_is_recorded_not_raised(self):
        policy = ExplorationPolicy(step_budget=10)
        report = explore(
            [pi_matching(3, 0, 1)],
            policy=policy,
            limits=ExplorationLimits(max_depth=1, max_nodes=2),
        )
        assert report.counts["budget_exhausted_ops"] == 1
        assert report.visited == 1
        (edge,) = report.edges
        assert edge["status"] == STATUS_BUDGET and edge["target"] is None
