"""Mechanical verification of the paper's lower bound sequences.

Corollary 4.6 / Lemma 4.5 ([BO20]): Π_Δ(x,y), Π_Δ(x+y,y), … is a lower
bound sequence.  The steps need the *general* configuration-map relaxation
notion — a reproduction finding documented in EXPERIMENTS.md: no label map
witnesses the Lemma 4.5 steps, while ordered-configuration maps do.
"""

import pytest

from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
    is_relaxation_via_config_map,
)
from repro.problems import matching_sequence_problems, pi_matching
from repro.roundelim import (
    LowerBoundSequence,
    compress_labels,
    round_elimination,
    sequence_from_family,
)
from repro.utils import InvalidParameterError


class TestLemma45:
    def test_step_delta3(self):
        """Π_3(1,1) is a relaxation of RE(Π_3(0,1)) — via a config map."""
        eliminated, _ = compress_labels(round_elimination(pi_matching(3, 0, 1)))
        target = pi_matching(3, 1, 1)
        witness = find_config_map_relaxation(eliminated, target)
        assert witness is not None
        assert is_relaxation_via_config_map(eliminated, target, witness)

    def test_step_needs_general_relaxation_notion(self):
        """Reproduction finding: no *label map* witnesses the step."""
        eliminated, _ = compress_labels(round_elimination(pi_matching(3, 0, 1)))
        assert find_label_relaxation(eliminated, pi_matching(3, 1, 1)) is None

    def test_step_delta4_second_step(self):
        """Π_4(2,1) is a relaxation of RE(Π_4(1,1))."""
        eliminated, _ = compress_labels(round_elimination(pi_matching(4, 1, 1)))
        target = pi_matching(4, 2, 1)
        witness = find_config_map_relaxation(eliminated, target)
        assert witness is not None


class TestCorollary46:
    def test_full_sequence_delta4(self):
        problems = matching_sequence_problems(4, 0, 1, steps=2)
        sequence = LowerBoundSequence(problems=tuple(problems))
        witnesses = sequence.verify()
        assert len(witnesses) == 2

    def test_parameter_guard(self):
        with pytest.raises(InvalidParameterError):
            matching_sequence_problems(3, 0, 1, steps=3)  # x+(k+1)y > Δ

    def test_sequence_from_family_builder(self):
        sequence = sequence_from_family(
            lambda index: pi_matching(4, index, 1), [0, 1, 2]
        )
        assert sequence.length == 2
        assert sequence.first.name == "Π_4(0,1)"
        assert sequence.last.name == "Π_4(2,1)"


class TestSequenceBasics:
    def test_empty_sequence_rejected(self):
        with pytest.raises(ValueError):
            LowerBoundSequence(problems=())

    def test_invalid_step_raises(self):
        # Π_3(0,1) is not a relaxation of RE(Π_3(1,1)) (wrong direction —
        # the sequence must weaken over time).
        sequence = LowerBoundSequence(
            problems=(pi_matching(3, 1, 1), pi_matching(3, 0, 1))
        )
        with pytest.raises(ValueError):
            sequence.verify()
