"""Mechanical verification of Lemma 5.4 and related fixed point facts.

Lemma 5.4 ([BBKO22]): for (α+1)c ≤ Δ, RE(Π_Δ((α+1)c)) = Π_Δ((α+1)c).
These tests run RE literally and check isomorphism — the paper's central
imported ingredient for the §5 lower bound, reproduced exactly.
"""

import pytest

from repro.problems import pi_arbdefective, sinkless_orientation_problem
from repro.roundelim import (
    analyze_fixed_point,
    constant_sequence,
    is_fixed_point,
    is_fixed_point_up_to_relaxation,
    round_elimination,
    compress_labels,
)


class TestLemma54:
    @pytest.mark.parametrize("delta,k", [(2, 2), (3, 2), (3, 3), (4, 2)])
    def test_arbdefective_family_is_exact_fixed_point(self, delta, k):
        assert is_fixed_point(pi_arbdefective(delta, k))

    @pytest.mark.parametrize("delta,k", [(3, 2), (4, 2)])
    def test_fixed_point_implies_relaxation_fixed_point(self, delta, k):
        report = analyze_fixed_point(pi_arbdefective(delta, k))
        assert report.is_exact_fixed_point
        assert report.is_relaxation_fixed_point

    def test_corollary_55_constant_sequence_verifies(self):
        """Corollary 5.5: the constant sequence is a lower bound sequence."""
        problem = pi_arbdefective(3, 2)
        sequence = constant_sequence(problem, length=3)
        witnesses = sequence.verify()
        assert len(witnesses) == 3
        for witness in witnesses:
            assert (
                witness.relaxation_map is not None
                or witness.config_map is not None
            )


class TestSinklessOrientationBehaviour:
    def test_so_is_not_itself_a_fixed_point_in_rank2_encoding(self):
        """SO on graphs (rank-2 edges) converges after one step."""
        so = sinkless_orientation_problem(3)
        assert not is_fixed_point(so)

    def test_re_of_so_is_a_fixed_point(self):
        so = sinkless_orientation_problem(3)
        once, _ = compress_labels(round_elimination(so))
        report = analyze_fixed_point(once)
        assert report.is_exact_fixed_point

    def test_iterating_re_stays_at_the_fixed_point(self):
        so = sinkless_orientation_problem(3)
        once, _ = compress_labels(round_elimination(so))
        twice, _ = compress_labels(round_elimination(once))
        assert once.is_isomorphic_to(twice)
