"""ProblemStore crash-safety: corrupt nodes/ops, quarantine, resume parity.

Extends the kill-and-resume property from the frontier tests: not only
may a run stop at any point, the directory it left behind may also be
*damaged* — truncated, zeroed, tampered — and a reopened store must
quarantine the rot, recompute exactly the lost steps, and hand back
byte-identical results.
"""

import json

import pytest

from repro.api import ProblemSpec
from repro.reliability.atomic import QUARANTINE_DIR
from repro.reliability.faults import FaultClock, FaultPlan
from repro.roundelim.explore import (
    ExplorationLimits,
    ExplorationPolicy,
    ProblemStore,
    explore,
)
from repro.utils.serialization import canonical_dumps


@pytest.fixture
def problem():
    return ProblemSpec.parse("sinkless-orientation:delta=3").build()


CORRUPTIONS = {
    "truncated": lambda p: p.write_text(p.read_text()[: len(p.read_text()) // 2]),
    "zero-byte": lambda p: p.write_text(""),
    "bad-json": lambda p: p.write_text("{]not json"),
    "bad-checksum": lambda p: p.write_text(
        json.dumps({**json.loads(p.read_text()), "status": "tampered"})
    ),
}


def seeded_store(root, problem):
    """A flushed store holding one interned problem and one RE step."""
    store = ProblemStore(root=root)
    form = store.intern(problem)
    outcome = store.apply(form.digest, "RE", 20_000)
    store.flush()
    return form.digest, outcome


class TestOpEntryCorruption:
    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS), ids=str)
    def test_corrupt_op_entry_recomputes_identically(
        self, tmp_path, problem, corruption
    ):
        digest, outcome = seeded_store(tmp_path, problem)
        (op_entry,) = (tmp_path / "ops").glob("*.json")
        CORRUPTIONS[corruption](op_entry)
        store = ProblemStore(root=tmp_path)
        store.intern(problem)
        assert store.lookup(digest, "RE", 20_000) is None
        recomputed = store.apply(digest, "RE", 20_000)
        assert recomputed == {
            "status": outcome["status"], "child": outcome["child"],
        }
        assert store.stats.computed == 1
        assert list((tmp_path / QUARANTINE_DIR).iterdir())


class TestNodeEntryCorruption:
    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS), ids=str)
    def test_corrupt_child_node_quarantines_the_op_entry_too(
        self, tmp_path, problem, corruption
    ):
        """An intact op entry pointing at an unloadable child node must
        not count as a hit — both entries are quarantined and the
        recompute brings the payload back."""
        digest, outcome = seeded_store(tmp_path, problem)
        child = outcome["child"]
        CORRUPTIONS[corruption](tmp_path / "nodes" / f"{child}.json")
        store = ProblemStore(root=tmp_path)
        store.intern(problem)
        assert store.lookup(digest, "RE", 20_000) is None
        recomputed = store.apply(digest, "RE", 20_000)
        assert recomputed["child"] == child
        assert store.payload_of(child)  # the payload is back on disk
        assert len(list((tmp_path / QUARANTINE_DIR).iterdir())) == 2

    def test_recovered_payload_bytes_match_the_original(self, tmp_path, problem):
        digest, outcome = seeded_store(tmp_path, problem)
        child = outcome["child"]
        original = canonical_dumps(
            ProblemStore(root=tmp_path).payload_of(child)
        )
        CORRUPTIONS["truncated"](tmp_path / "nodes" / f"{child}.json")
        store = ProblemStore(root=tmp_path)
        store.intern(problem)
        store.apply(digest, "RE", 20_000)
        # Compare through the same (disk) tier: the rewritten node entry
        # must serve the exact bytes the original one did.
        recovered = ProblemStore(root=tmp_path).payload_of(child)
        assert canonical_dumps(recovered) == original


class TestManifestLifecycle:
    def test_flush_marks_graceful_and_writes_census(self, tmp_path, problem):
        seeded_store(tmp_path, problem)
        store = ProblemStore(root=tmp_path)
        assert store.recovery["graceful"] is True
        manifest = json.loads((tmp_path / "manifest.json").read_text())
        assert manifest["entries"]["nodes"] == 2
        assert manifest["entries"]["ops"] == 1

    def test_first_write_drops_the_manifest(self, tmp_path, problem):
        digest, _outcome = seeded_store(tmp_path, problem)
        store = ProblemStore(root=tmp_path)
        store.intern(problem)
        store.apply(digest, "R", 20_000)  # a fresh step: first mutation
        assert not (tmp_path / "manifest.json").exists()
        store.flush()
        assert (tmp_path / "manifest.json").exists()

    def test_missing_manifest_triggers_the_eager_sweep(self, tmp_path, problem):
        seeded_store(tmp_path, problem)
        (tmp_path / "manifest.json").unlink()
        (tmp_path / "ops" / "stray.json.1.tmp").write_text("half a write")
        store = ProblemStore(root=tmp_path)
        assert store.recovery["graceful"] is False
        assert store.recovery["tmp_removed"] == 1
        assert store.recovery["checked"] == 3  # 2 nodes + 1 op


class TestFaultedWrites:
    def test_write_faults_degrade_durability_not_answers(self, tmp_path, problem):
        clock = FaultClock(
            FaultPlan.from_faults([("store.write", 2, "torn_write")])
        )
        store = ProblemStore(root=tmp_path, fault_clock=clock)
        form = store.intern(problem)
        outcome = store.apply(form.digest, "RE", 20_000)
        assert outcome["status"] == "ok"
        assert store.stats.write_failures == 1
        # The same answer still comes back from the memory tier.
        assert store.apply(form.digest, "RE", 20_000) == outcome


class TestResumeParity:
    def test_exploration_resume_over_a_damaged_store(self, tmp_path, problem):
        """The satellite end-to-end: explore, damage the store, resume —
        report payloads byte-identical, recompute bounded by the damage."""
        policy = ExplorationPolicy(moves=("RE",), zero_round="uniform")
        limits = ExplorationLimits(max_depth=2, max_nodes=6)
        first = explore(
            [problem], policy=policy, limits=limits,
            store=ProblemStore(root=tmp_path),
        )
        damaged = sorted((tmp_path / "ops").glob("*.json"))[:1]
        for entry in damaged:
            CORRUPTIONS["bad-checksum"](entry)
        resumed_store = ProblemStore(root=tmp_path)
        second = explore(
            [problem], policy=policy, limits=limits, store=resumed_store,
        )
        assert second.canonical_json() == first.canonical_json()
        assert resumed_store.stats.computed <= len(damaged)
