"""Unit tests for R, R̄ and RE (Appendix B)."""

import pytest

from repro.formalism.configurations import Configuration
from repro.formalism.labels import set_label_members
from repro.formalism.parsing import parse_constraint
from repro.formalism.problems import problem_from_lines
from repro.problems import sinkless_orientation_problem
from repro.roundelim.operators import (
    apply_R,
    apply_R_bar,
    compress_labels,
    decode_label_sets,
    maximal_set_configurations,
    round_elimination,
)
from repro.utils import SolverLimitError


class TestMaximalSetConfigurations:
    def test_sinkless_orientation_black(self):
        """The only maximal pair with all choices = {O,I} is ({O},{I})."""
        so = sinkless_orientation_problem(3)
        maximal = maximal_set_configurations(so.black, so.alphabet)
        assert maximal == frozenset(
            {tuple(sorted([frozenset("I"), frozenset("O")], key=sorted))}
        )

    def test_full_constraint_gives_full_sets(self):
        """If every configuration is allowed, the unique maximal config is
        all-slots-full."""
        problem = problem_from_lines(
            ["A A"], ["A A", "A B", "B B"]
        )
        maximal = maximal_set_configurations(problem.black, frozenset("AB"))
        assert maximal == frozenset({(frozenset("AB"), frozenset("AB"))})

    def test_downward_closure_reachability(self):
        """Every maximal configuration dominates some seed configuration."""
        so = sinkless_orientation_problem(4)
        maximal = maximal_set_configurations(so.black, so.alphabet)
        for config in maximal:
            # Some choice across the config is an allowed base config.
            from itertools import product

            assert any(
                so.black.allows_multiset(choice)
                for choice in product(*config)
            )

    def test_budget_enforced(self):
        problem = problem_from_lines(["A A"], ["A A", "A B", "B B"])
        with pytest.raises(SolverLimitError):
            maximal_set_configurations(problem.black, frozenset("AB"), budget=1)

    def test_budget_counts_every_popped_configuration(self):
        """The budget bounds *pops*, and push-time dedup means the pop
        count equals the number of distinct valid configurations — so a
        tight budget raises on both engines at exactly the same value.

        The full AB constraint visits the 6 valid pair-configurations
        over {A}, {B}, {A,B}: budget 5 must raise, budget 6 suffice.
        """
        problem = problem_from_lines(["A A"], ["A A", "A B", "B B"])
        for engine in ("reference", "kernel"):
            with pytest.raises(SolverLimitError):
                maximal_set_configurations(
                    problem.black, frozenset("AB"), budget=5, engine=engine
                )
            result = maximal_set_configurations(
                problem.black, frozenset("AB"), budget=6, engine=engine
            )
            assert result == frozenset({(frozenset("AB"), frozenset("AB"))})

    def test_budget_threshold_is_hash_seed_independent(self):
        """The seed ordering is explicitly sorted, so the step at which
        a tight budget raises cannot depend on hash randomization."""
        import os
        import subprocess
        import sys

        import repro

        src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
        script = (
            "from repro.formalism.problems import problem_from_lines\n"
            "from repro.roundelim.operators import maximal_set_configurations\n"
            "from repro.utils import SolverLimitError\n"
            "problem = problem_from_lines(['A A'], ['A A', 'A B', 'B B'])\n"
            "outcomes = []\n"
            "for engine in ('reference', 'kernel'):\n"
            "    for budget in range(1, 8):\n"
            "        try:\n"
            "            maximal_set_configurations(\n"
            "                problem.black, frozenset('AB'),\n"
            "                budget=budget, engine=engine)\n"
            "            outcomes.append('ok')\n"
            "        except SolverLimitError:\n"
            "            outcomes.append('limit')\n"
            "print(','.join(outcomes))\n"
        )
        transcripts = []
        for hash_seed in ("0", "1"):
            completed = subprocess.run(
                [sys.executable, "-c", script],
                capture_output=True,
                text=True,
                env={
                    **os.environ,
                    "PYTHONHASHSEED": hash_seed,
                    "PYTHONPATH": src_dir,
                },
                check=True,
            )
            transcripts.append(completed.stdout.strip())
        assert transcripts[0] == transcripts[1]
        assert "limit" in transcripts[0] and "ok" in transcripts[0]

    def test_no_config_dominates_another(self):
        """Maximality: no output config is component-wise below another."""
        so = sinkless_orientation_problem(3)
        maximal = list(maximal_set_configurations(so.black, so.alphabet))
        for first in maximal:
            for second in maximal:
                if first is second:
                    continue
                from itertools import permutations

                for perm in permutations(range(len(second))):
                    if all(
                        first[i] <= second[perm[i]] for i in range(len(first))
                    ):
                        assert first == tuple(second[p] for p in perm)


class TestApplyR:
    def test_arities_preserved(self):
        so = sinkless_orientation_problem(3)
        result = apply_R(so)
        assert result.white_arity == so.white_arity
        assert result.black_arity == so.black_arity

    def test_R_of_sinkless_orientation(self):
        """R(SO_3): black {({O},{I})}; white = triples of the two
        singletons containing at least one {O}."""
        so = sinkless_orientation_problem(3)
        result = apply_R(so)
        assert len(result.black) == 1
        assert len(result.white) == 3
        decoded = decode_label_sets(result)
        assert set(decoded.values()) == {frozenset("O"), frozenset("I")}

    def test_white_configs_have_choice_in_base(self):
        so = sinkless_orientation_problem(3)
        result = apply_R(so)
        decoded = decode_label_sets(result)
        from itertools import product

        for config in result.white:
            slots = [decoded[label] for label in config]
            assert any(
                so.white.allows_multiset(choice) for choice in product(*slots)
            )


class TestApplyRBar:
    def test_is_R_with_roles_swapped(self):
        so = sinkless_orientation_problem(3)
        direct = apply_R_bar(so)
        via_swap = apply_R(so.swap_sides()).swap_sides()
        assert direct.white == via_swap.white
        assert direct.black == via_swap.black


class TestRoundElimination:
    def test_arities_preserved(self):
        so = sinkless_orientation_problem(4)
        result = round_elimination(so)
        assert result.white_arity == 4
        assert result.black_arity == 2

    def test_RE_of_sinkless_orientation_structure(self):
        """RE(SO_3): white a0²a1 with a1 = {{O}}, a0 = {{O},{I}};
        black {a0², a0a1} (computed in the development log and stable)."""
        so = sinkless_orientation_problem(3)
        result, _mapping = compress_labels(round_elimination(so))
        assert len(result.alphabet) == 2
        assert len(result.white) == 1
        assert len(result.black) == 2

    def test_compress_labels_round_trip(self):
        so = sinkless_orientation_problem(3)
        eliminated = round_elimination(so)
        compressed, mapping = compress_labels(eliminated)
        assert compressed.is_isomorphic_to(eliminated)
        assert set(mapping) == set(eliminated.alphabet)
