"""Kernel/reference equivalence for the round elimination operators.

The bitmask kernel must be *observationally identical* to the reference
implementation: the same maximal set configurations, the same decoded
set-label names, the same ``Problem`` (equality includes constraints and
name), the same rendered text, and the same budget behavior.  This
module enforces that over a property-style randomized problem matrix,
golden instances from the paper, and the budget semantics.
"""

import random

import pytest

from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.problems import (
    maximal_matching_problem,
    pi_matching,
    sinkless_orientation_problem,
)
from repro.roundelim.operators import (
    apply_R,
    apply_R_bar,
    maximal_set_configurations,
    round_elimination,
)
from repro.utils import InvalidParameterError, SolverLimitError
from repro.utils.multiset import all_multisets


def random_problem(seed: int) -> Problem:
    """A random small problem: alphabet ≤ 6, arities 2–4, random
    non-empty constraints drawn from the full multiset space."""
    rng = random.Random(seed)
    alphabet_size = rng.randint(2, 6)
    alphabet = "ABCDEF"[:alphabet_size]
    white_arity = rng.randint(2, 4)
    black_arity = rng.randint(2, 4)

    def random_constraint(arity: int) -> Constraint:
        universe = list(all_multisets(alphabet, arity))
        count = rng.randint(1, min(len(universe), 6))
        return Constraint(
            Configuration(labels) for labels in rng.sample(universe, count)
        )

    return Problem(
        alphabet=frozenset(alphabet),
        white=random_constraint(white_arity),
        black=random_constraint(black_arity),
        name=f"rand{seed}",
    )


class TestRandomizedEquivalenceMatrix:
    @pytest.mark.parametrize("seed", range(40))
    def test_round_elimination_identical(self, seed):
        problem = random_problem(seed)
        reference = round_elimination(problem, engine="reference")
        kernel = round_elimination(problem, engine="kernel")
        assert reference == kernel
        # Byte-identical canonical rendering, not merely equal objects.
        assert str(reference) == str(kernel)

    @pytest.mark.parametrize("seed", range(40, 50))
    def test_apply_R_and_R_bar_identical(self, seed):
        problem = random_problem(seed)
        assert apply_R(problem, engine="reference") == apply_R(
            problem, engine="kernel"
        )
        assert apply_R_bar(problem, engine="reference") == apply_R_bar(
            problem, engine="kernel"
        )

    @pytest.mark.parametrize("seed", range(50, 60))
    def test_maximal_set_configurations_identical(self, seed):
        problem = random_problem(seed)
        assert maximal_set_configurations(
            problem.black, problem.alphabet, engine="reference"
        ) == maximal_set_configurations(
            problem.black, problem.alphabet, engine="kernel"
        )


class TestGoldenPaperProblems:
    """The paper's Δ=3,4 matching problems, byte-identical across engines
    and pinned to their known output shapes."""

    @pytest.mark.parametrize(
        "delta, expected_shape",
        [(3, (9, 6, 96)), (4, (9, 6, 231))],
    )
    def test_pi_matching_golden(self, delta, expected_shape):
        problem = pi_matching(delta, 0, 1)
        reference = round_elimination(problem, engine="reference")
        kernel = round_elimination(problem, engine="kernel")
        assert reference == kernel
        assert str(reference) == str(kernel)
        shape = (len(kernel.alphabet), len(kernel.white), len(kernel.black))
        assert shape == expected_shape

    @pytest.mark.parametrize(
        "delta, expected_shape",
        [(3, (6, 3, 31)), (4, (6, 3, 56))],
    )
    def test_maximal_matching_golden(self, delta, expected_shape):
        problem = maximal_matching_problem(delta)
        reference = round_elimination(problem, engine="reference")
        kernel = round_elimination(problem, engine="kernel")
        assert reference == kernel
        shape = (len(kernel.alphabet), len(kernel.white), len(kernel.black))
        assert shape == expected_shape

    def test_sinkless_orientation_structure(self):
        so = sinkless_orientation_problem(3)
        assert round_elimination(so, engine="kernel") == round_elimination(
            so, engine="reference"
        )


class TestBudgetParity:
    def test_engines_raise_at_the_same_budget(self):
        """Both engines pop identical configuration sequences, so the
        minimal sufficient budget is the same and anything below raises."""
        problem = maximal_matching_problem(3)

        def minimal_budget(engine: str) -> int:
            for budget in range(1, 10_000):
                try:
                    maximal_set_configurations(
                        problem.black, problem.alphabet, budget=budget, engine=engine
                    )
                    return budget
                except SolverLimitError:
                    continue
            raise AssertionError("no budget below 10000 sufficed")

        reference_min = minimal_budget("reference")
        assert minimal_budget("kernel") == reference_min
        for engine in ("reference", "kernel"):
            with pytest.raises(SolverLimitError):
                maximal_set_configurations(
                    problem.black,
                    problem.alphabet,
                    budget=reference_min - 1,
                    engine=engine,
                )

    def test_round_elimination_budget_threading(self):
        so = sinkless_orientation_problem(3)
        for engine in ("reference", "kernel"):
            with pytest.raises(SolverLimitError):
                round_elimination(so, budget=1, engine=engine)


class TestEngineValidation:
    def test_unknown_engine_rejected(self):
        so = sinkless_orientation_problem(3)
        with pytest.raises(InvalidParameterError):
            round_elimination(so, engine="turbo")
        with pytest.raises(InvalidParameterError):
            maximal_set_configurations(so.black, so.alphabet, engine="turbo")
