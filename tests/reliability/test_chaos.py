"""The chaos harness: byte parity under faults, plan minimization."""

import pytest

from repro.reliability.chaos import (
    SCENARIO_SITES,
    SCENARIOS,
    chaos_matrix,
    explore_baseline,
    minimize_plan,
    run_case,
    run_explore_case,
    run_service_case,
    run_transport_case,
    seeded_case_plan,
    service_baseline,
)
from repro.reliability.faults import FAULT_SITES, FaultPlan
from repro.utils import InvalidParameterError


@pytest.fixture(scope="module")
def service_clean():
    return service_baseline()


@pytest.fixture(scope="module")
def explore_clean():
    return explore_baseline()


class TestBaselines:
    def test_service_baseline_shape(self, service_clean):
        assert len(service_clean["bodies"]) == 5
        assert all(isinstance(body, str) for body in service_clean["bodies"])
        # Request 3 duplicates request 0: the cache answers it, so only
        # four distinct computations run in a clean pass.
        assert service_clean["bodies"][3] == service_clean["bodies"][0]
        assert service_clean["executions"] == 4

    def test_explore_baseline_is_reproducible(self, explore_clean):
        assert explore_clean["bytes"] == explore_baseline()["bytes"]


class TestScenarioPlans:
    def test_seeded_case_plans_are_deterministic(self):
        for scenario in SCENARIOS:
            plan = seeded_case_plan(scenario, 3)
            assert plan == seeded_case_plan(scenario, 3)
            assert {spec.site for spec in plan.faults} <= set(
                SCENARIO_SITES[scenario]
            )

    def test_scenario_sites_are_catalog_sites(self):
        for scenario, sites in SCENARIO_SITES.items():
            assert set(sites) <= set(FAULT_SITES), scenario


class TestServiceCase:
    def test_storage_faults_preserve_bytes(self, tmp_path, service_clean):
        plan = FaultPlan.from_faults(
            [("cache.write", 1, "torn_write"), ("cache.write", 3, "corrupt")]
        )
        case = run_service_case(plan, tmp_path, baseline=service_clean)
        assert case["ok"], case["failures"]
        assert case["cold"]["executions"] == service_clean["executions"]
        # Exactly the two lost entries may be recomputed after restart.
        assert case["warm"]["solves_computed"] <= 2
        assert case["warm"]["recovery"]["graceful"] is False

    def test_crash_and_hang_heal_without_extra_executions(
        self, tmp_path, service_clean
    ):
        plan = FaultPlan.from_faults(
            [("worker.exec", 1, "crash"), ("worker.exec", 3, "hang")]
        )
        case = run_service_case(plan, tmp_path, baseline=service_clean)
        assert case["ok"], case["failures"]
        assert case["cold"]["executions"] == service_clean["executions"]
        assert len(case["cold"]["faults_fired"]) == 2


class TestExploreCase:
    def test_store_faults_preserve_report_bytes(self, tmp_path, explore_clean):
        plan = FaultPlan.from_faults(
            [("store.write", 1, "corrupt"), ("store.write", 3, "torn_write")]
        )
        case = run_explore_case(plan, tmp_path, baseline=explore_clean)
        assert case["ok"], case["failures"]
        # A completed exploration flushes its manifest, so the reopen is
        # graceful — and still recomputes at most the lost entries.
        assert case["recovery"]["graceful"] is True
        assert case["warm"]["computed"] <= case["warm"]["lossy_faults"]
        assert len(case["cold"]["faults_fired"]) == 2


class TestTransportCase:
    def test_connection_drops_are_retried_transparently(
        self, tmp_path, service_clean
    ):
        plan = FaultPlan.from_faults(
            [("client.send", 1, "drop"), ("client.recv", 2, "drop")]
        )
        case = run_transport_case(plan, tmp_path, baseline=service_clean)
        assert case["ok"], case["failures"]
        assert case["cold"]["retried"] >= 2


class TestDispatch:
    def test_unknown_scenario_rejected(self, tmp_path):
        with pytest.raises(InvalidParameterError):
            run_case("nope", FaultPlan(), tmp_path)


class TestMinimizePlan:
    def test_shrinks_to_the_single_culprit(self):
        plan = FaultPlan.from_faults(
            [
                ("cache.write", 1, "error"),
                ("store.write", 2, "corrupt"),
                ("worker.exec", 3, "crash"),
            ]
        )

        def still_fails(candidate):
            return any(
                spec.site == "store.write" for spec in candidate.faults
            )

        minimized = minimize_plan(plan, still_fails)
        assert [spec.site for spec in minimized.faults] == ["store.write"]

    def test_keeps_a_jointly_necessary_pair(self):
        plan = FaultPlan.from_faults(
            [
                ("cache.write", 1, "error"),
                ("store.write", 2, "corrupt"),
                ("worker.exec", 3, "crash"),
            ]
        )

        def still_fails(candidate):
            sites = {spec.site for spec in candidate.faults}
            return {"cache.write", "worker.exec"} <= sites

        minimized = minimize_plan(plan, still_fails)
        assert [spec.site for spec in minimized.faults] == [
            "cache.write",
            "worker.exec",
        ]


class TestMatrix:
    def test_explore_matrix_aggregates_green(self, tmp_path, explore_clean):
        summary = chaos_matrix([0, 1], tmp_path, scenarios=("explore",))
        assert summary["ok"] is True
        assert summary["failures"] == []
        assert len(summary["cases"]) == 2
        assert {case["scenario"] for case in summary["cases"]} == {"explore"}
