"""Worker supervision: exactly-once re-dispatch, deadlines, degradation."""

import time

import pytest

from repro.reliability.faults import FaultClock, FaultPlan
from repro.reliability.supervise import (
    RequestTimeoutError,
    SupervisedWorkerPool,
    WorkerCrashError,
    timeout_result,
)
from repro.utils import InvalidParameterError


def _echo(canonical):
    return {"ok": True, "echo": canonical.get("seed"), "solver": canonical.get("solver")}


def _sleepy(canonical):
    if canonical.get("seed") == 99:
        time.sleep(10)
    return {"ok": True, "echo": canonical.get("seed")}


def clock_for(*faults):
    return FaultClock(FaultPlan.from_faults(list(faults)))


class TestValidation:
    def test_jobs_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            SupervisedWorkerPool(0, worker_fn=_echo)

    def test_deadline_must_be_positive(self):
        with pytest.raises(InvalidParameterError):
            SupervisedWorkerPool(1, deadline=0, worker_fn=_echo)

    def test_timeout_result_shape(self):
        result = timeout_result(2.5)
        assert result["ok"] is False
        assert result["code"] == RequestTimeoutError.code == "timeout"
        assert "2.5" in result["message"]


class TestInjectedCrash:
    def test_crash_redispatches_exactly_once(self):
        calls = []

        def counting(canonical):
            calls.append(canonical["seed"])
            return {"ok": True, "echo": canonical["seed"]}

        pool = SupervisedWorkerPool(
            1,
            fault_clock=clock_for(("worker.exec", 1, "crash")),
            worker_fn=counting,
        )
        results = pool.run_batch([{"seed": 0}, {"seed": 1}])
        assert [r["echo"] for r in results] == [0, 1]
        # seed 0's first dispatch was "killed" before completing; the
        # re-dispatch is the only completed execution for it.
        assert calls == [0, 1]
        assert pool.executions == 2
        assert pool.worker_crashes == 1
        assert pool.worker_restarts == 1
        assert pool.redispatched == 1

    def test_second_death_becomes_a_worker_crash_result(self):
        def dying(canonical):
            raise RuntimeError("worker body exploded")

        pool = SupervisedWorkerPool(
            1,
            fault_clock=clock_for(("worker.exec", 1, "crash")),
            worker_fn=dying,
        )
        (result,) = pool.run_batch([{"seed": 0}])
        assert result["ok"] is False
        assert result["code"] == WorkerCrashError.code == "worker-crash"
        assert pool.redispatched == 1  # no retry loop past the one re-dispatch


class TestInjectedHang:
    def test_hang_resolves_to_timeout_without_executing(self):
        pool = SupervisedWorkerPool(
            1,
            deadline=5.0,
            fault_clock=clock_for(("worker.exec", 1, "hang")),
            worker_fn=_echo,
        )
        results = pool.run_batch([{"seed": 0}, {"seed": 1}])
        assert results[0]["code"] == "timeout"
        assert results[1]["ok"] is True
        # The hung request never completed: only seed 1 counts.
        assert pool.executions == 1
        assert pool.timeouts == 1


class TestDegradation:
    def test_solver_fault_degrades_to_default_backend(self):
        pool = SupervisedWorkerPool(
            1,
            fault_clock=clock_for(("worker.solver", 1, "crash")),
            worker_fn=_echo,
        )
        (result,) = pool.run_batch([{"seed": 0, "solver": "sat"}])
        # The request ran, on the default backend, and only telemetry
        # shows it — the result is still a success.
        assert result["ok"] is True
        assert result["solver"] == "csp"
        assert pool.degraded == 1

    def test_default_backend_requests_are_not_degraded(self):
        pool = SupervisedWorkerPool(
            1,
            fault_clock=clock_for(("worker.solver", 1, "crash")),
            worker_fn=_echo,
        )
        (result,) = pool.run_batch([{"seed": 0, "solver": "csp"}])
        assert result["solver"] == "csp"
        assert pool.degraded == 0


class TestPooledSupervision:
    def test_pooled_hang_times_out_and_recycles_the_pool(self):
        pool = SupervisedWorkerPool(2, deadline=0.5, worker_fn=_sleepy)
        try:
            results = pool.run_batch([{"seed": 1}, {"seed": 99}])
            assert results[0] == {"ok": True, "echo": 1}
            assert results[1]["code"] == "timeout"
            assert pool.timeouts == 1
            assert pool.worker_restarts == 1
            # The recycled pool serves the next batch normally.
            results = pool.run_batch([{"seed": 2}, {"seed": 3}])
            assert [r["echo"] for r in results] == [2, 3]
        finally:
            pool.close()


class TestTelemetry:
    def test_telemetry_shape(self):
        pool = SupervisedWorkerPool(1, worker_fn=_echo)
        pool.run_batch([{"seed": 0}])
        assert pool.telemetry() == {
            "executions": 1,
            "worker_crashes": 0,
            "worker_restarts": 0,
            "redispatched": 0,
            "timeouts": 0,
            "degraded": 0,
        }
