"""Crash-safe storage primitives: atomicity, checksums, quarantine, sweep."""

import json
import os

import pytest

from repro.reliability.atomic import (
    CHECKSUM_KEY,
    QUARANTINE_DIR,
    CorruptEntryError,
    body_checksum,
    open_with_recovery,
    quarantine_entry,
    read_checked_json,
    sweep_tree,
    write_checked_json,
)
from repro.reliability.faults import (
    FaultClock,
    FaultPlan,
    StorageFault,
    TornWriteFault,
)


def clock_for(*faults):
    return FaultClock(FaultPlan.from_faults(list(faults)))


class TestWriteReadRoundTrip:
    def test_round_trip_strips_the_footer(self, tmp_path):
        path = tmp_path / "entry.json"
        write_checked_json(path, {"a": 1, "b": [2, 3]})
        assert read_checked_json(path) == {"a": 1, "b": [2, 3]}
        assert json.loads(path.read_text())[CHECKSUM_KEY] == body_checksum(
            {"a": 1, "b": [2, 3]}
        )

    def test_write_replaces_atomically(self, tmp_path):
        path = tmp_path / "entry.json"
        write_checked_json(path, {"v": 1})
        write_checked_json(path, {"v": 2})
        assert read_checked_json(path) == {"v": 2}
        assert not list(tmp_path.glob("*.tmp"))

    def test_legacy_entry_without_footer_accepted(self, tmp_path):
        path = tmp_path / "legacy.json"
        path.write_text('{"old": true}')
        assert read_checked_json(path) == {"old": True}


class TestCorruptionDetection:
    @pytest.mark.parametrize(
        "mutate",
        [
            lambda p: p.write_text(""),
            lambda p: p.write_text(p.read_text()[: len(p.read_text()) // 2]),
            lambda p: p.write_text("not json {{{"),
            lambda p: p.write_text("[1, 2, 3]"),
        ],
        ids=["zero-byte", "truncated", "bad-json", "non-object"],
    )
    def test_damaged_entries_raise(self, tmp_path, mutate):
        path = tmp_path / "entry.json"
        write_checked_json(path, {"payload": list(range(40))})
        mutate(path)
        with pytest.raises(CorruptEntryError):
            read_checked_json(path)

    def test_bad_checksum_raises(self, tmp_path):
        path = tmp_path / "entry.json"
        write_checked_json(path, {"v": 1})
        body = json.loads(path.read_text())
        body["v"] = 2  # tamper without refreshing the footer
        path.write_text(json.dumps(body))
        with pytest.raises(CorruptEntryError):
            read_checked_json(path)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CorruptEntryError):
            read_checked_json(tmp_path / "absent.json")


class TestInjectedFaults:
    def test_error_fault_writes_nothing(self, tmp_path):
        clock = clock_for(("store.write", 1, "error"))
        path = tmp_path / "entry.json"
        with pytest.raises(StorageFault):
            write_checked_json(path, {"v": 1}, fault_clock=clock, site="store.write")
        assert not path.exists()

    def test_torn_write_tears_only_the_tmp(self, tmp_path):
        clock = clock_for(("store.write", 1, "torn_write"))
        path = tmp_path / "entry.json"
        write_checked_json(path, {"v": 1})
        with pytest.raises(TornWriteFault):
            write_checked_json(path, {"v": 2}, fault_clock=clock, site="store.write")
        # The visible entry is still the previous complete version; the
        # torn bytes live in a stray *.tmp for recovery to sweep.
        assert read_checked_json(path) == {"v": 1}
        assert list(tmp_path.glob("*.tmp"))

    def test_corrupt_fault_is_silent_but_checksums_catch_it(self, tmp_path):
        clock = clock_for(("store.write", 1, "corrupt"))
        path = tmp_path / "entry.json"
        write_checked_json(path, {"v": 1}, fault_clock=clock, site="store.write")
        assert path.exists()  # the write "succeeded"
        with pytest.raises(CorruptEntryError):
            read_checked_json(path)


class TestQuarantine:
    def test_moves_not_deletes(self, tmp_path):
        path = tmp_path / "sub" / "bad.json"
        path.parent.mkdir()
        path.write_text("garbage")
        home = quarantine_entry(path, tmp_path)
        assert not path.exists()
        assert home == tmp_path / QUARANTINE_DIR / "bad.json"
        assert home.read_text() == "garbage"

    def test_collisions_get_numeric_suffixes(self, tmp_path):
        for round_number in range(3):
            path = tmp_path / "bad.json"
            path.write_text(f"garbage {round_number}")
            quarantine_entry(path, tmp_path)
        names = sorted(p.name for p in (tmp_path / QUARANTINE_DIR).iterdir())
        assert names == ["bad.json", "bad.json.1", "bad.json.2"]

    def test_vanished_entry_returns_none(self, tmp_path):
        assert quarantine_entry(tmp_path / "gone.json", tmp_path) is None


class TestSweepAndRecovery:
    def _populate(self, root):
        write_checked_json(root / "nodes" / "good.json", {"v": 1})
        write_checked_json(root / "nodes" / "bad.json", {"v": 2})
        (root / "nodes" / "bad.json").write_text("torn{")
        (root / "nodes" / "stray.json.123.tmp").write_text("half")

    def test_sweep_quarantines_and_removes_tmp(self, tmp_path):
        self._populate(tmp_path)
        summary = sweep_tree(tmp_path, ("nodes",))
        assert summary == {"checked": 2, "quarantined": 1, "tmp_removed": 1}
        assert (tmp_path / QUARANTINE_DIR / "bad.json").exists()
        assert read_checked_json(tmp_path / "nodes" / "good.json") == {"v": 1}

    def test_graceful_manifest_skips_the_sweep(self, tmp_path):
        self._populate(tmp_path)
        write_checked_json(tmp_path / "manifest.json", {"entries": 2})
        summary = open_with_recovery(tmp_path, ("nodes",))
        assert summary["graceful"] is True
        assert summary["checked"] == 0
        # Lazy validation: the bad entry is still in place, to be caught
        # (and quarantined) on first read.
        assert (tmp_path / "nodes" / "bad.json").exists()

    def test_missing_manifest_sweeps_eagerly(self, tmp_path):
        self._populate(tmp_path)
        summary = open_with_recovery(tmp_path, ("nodes",))
        assert summary == {
            "graceful": False, "checked": 2, "quarantined": 1, "tmp_removed": 1,
        }

    def test_corrupt_manifest_is_quarantined_and_sweeps(self, tmp_path):
        self._populate(tmp_path)
        (tmp_path / "manifest.json").write_text("{broken")
        summary = open_with_recovery(tmp_path, ("nodes",))
        assert summary["graceful"] is False
        assert (tmp_path / QUARANTINE_DIR / "manifest.json").exists()

    def test_creates_subdirectories(self, tmp_path):
        open_with_recovery(tmp_path / "fresh", ("a", "b"))
        assert (tmp_path / "fresh" / "a").is_dir()
        assert (tmp_path / "fresh" / "b").is_dir()
