"""Fault plans and clocks: validation, seeded determinism, exactly-once."""

import threading

import pytest

from repro.reliability.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    PLAN_SCHEMA,
    SITE_DESCRIPTIONS,
    BackendCrashFault,
    FaultClock,
    FaultPlan,
    FaultSpec,
    HungSolveFault,
    InjectedFault,
    StorageFault,
    TornWriteFault,
    TransportDropFault,
    WorkerCrashFault,
    check_fault,
    fault_error,
)
from repro.utils import InvalidParameterError


class TestCatalog:
    def test_every_site_kind_is_a_known_kind(self):
        for site, kinds in FAULT_SITES.items():
            assert kinds, site
            assert set(kinds) <= set(FAULT_KINDS)

    def test_every_site_is_documented(self):
        assert set(SITE_DESCRIPTIONS) == set(FAULT_SITES)


class TestFaultSpec:
    def test_valid_spec_round_trips(self):
        spec = FaultSpec(site="cache.write", hit=2, kind="torn_write")
        assert FaultSpec.from_dict(spec.as_dict()) == spec

    def test_unknown_site_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="nope", hit=1, kind="error")

    def test_unsupported_kind_for_site_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="worker.exec", hit=1, kind="torn_write")

    @pytest.mark.parametrize("hit", [0, -1, True, "1"])
    def test_bad_hit_rejected(self, hit):
        with pytest.raises(InvalidParameterError):
            FaultSpec(site="cache.write", hit=hit, kind="error")

    def test_typed_errors_carry_the_spec(self):
        expectations = {
            ("cache.write", "error"): StorageFault,
            ("cache.write", "torn_write"): TornWriteFault,
            ("worker.exec", "crash"): WorkerCrashFault,
            ("worker.exec", "hang"): HungSolveFault,
            ("worker.solver", "crash"): BackendCrashFault,
            ("client.send", "drop"): TransportDropFault,
        }
        for (site, kind), expected in expectations.items():
            spec = FaultSpec(site=site, hit=1, kind=kind)
            error = fault_error(spec)
            assert isinstance(error, expected)
            assert isinstance(error, InjectedFault)
            assert error.spec == spec
            assert error.code == "injected-fault"


class TestFaultPlan:
    def test_duplicate_site_hit_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_faults(
                [("cache.write", 1, "error"), ("cache.write", 1, "corrupt")]
            )

    def test_round_trip_through_dict(self):
        plan = FaultPlan.seeded(5)
        restored = FaultPlan.from_dict(plan.as_dict())
        assert restored == plan
        assert plan.as_dict()["schema"] == PLAN_SCHEMA

    def test_wrong_schema_rejected(self):
        payload = {**FaultPlan.seeded(5).as_dict(), "schema": "other/v0"}
        with pytest.raises(InvalidParameterError):
            FaultPlan.from_dict(payload)

    def test_seeded_is_deterministic_and_seed_sensitive(self):
        assert FaultPlan.seeded(7) == FaultPlan.seeded(7)
        assert any(
            FaultPlan.seeded(7) != FaultPlan.seeded(other)
            for other in range(8, 16)
        )

    def test_seeded_respects_site_restriction(self):
        plan = FaultPlan.seeded(3, sites=("store.write",), max_faults=5)
        assert plan.faults
        assert {spec.site for spec in plan.faults} == {"store.write"}

    def test_seeded_unknown_site_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultPlan.seeded(0, sites=("nope",))

    def test_without_drops_exactly_one_fault(self):
        plan = FaultPlan.from_faults(
            [("cache.write", 1, "error"), ("store.write", 2, "corrupt")]
        )
        smaller = plan.without(0)
        assert len(smaller) == 1
        assert smaller.faults[0].site == "store.write"

    def test_from_faults_accepts_specs_dicts_and_triples(self):
        spec = FaultSpec(site="cache.write", hit=1, kind="error")
        plan = FaultPlan.from_faults(
            [spec, {"site": "store.write", "hit": 1, "kind": "corrupt"},
             ("worker.exec", 1, "crash")]
        )
        assert len(plan) == 3


class TestFaultClock:
    def test_fires_exactly_once_on_the_scheduled_hit(self):
        plan = FaultPlan.from_faults([("cache.write", 2, "error")])
        clock = FaultClock(plan)
        assert clock.check("cache.write") is None
        fired = clock.check("cache.write")
        assert fired is not None and fired.hit == 2
        assert clock.check("cache.write") is None
        assert clock.fired == [fired.as_dict()]
        assert clock.exhausted()

    def test_raise_if_raises_the_typed_error(self):
        clock = FaultClock(FaultPlan.from_faults([("client.send", 1, "drop")]))
        with pytest.raises(TransportDropFault):
            clock.raise_if("client.send")

    def test_unknown_site_rejected(self):
        with pytest.raises(InvalidParameterError):
            FaultClock().check("nope")

    def test_check_fault_tolerates_no_clock(self):
        assert check_fault(None, "cache.write") is None

    def test_hits_census(self):
        clock = FaultClock()
        for _ in range(3):
            clock.check("store.write")
        clock.check("cache.write")
        assert clock.hits() == {"store.write": 3, "cache.write": 1}

    def test_thread_safe_single_fire(self):
        """Many threads hammering one site must fire the fault exactly
        once and count every hit."""
        plan = FaultPlan.from_faults([("cache.write", 50, "error")])
        clock = FaultClock(plan)
        fired = []
        barrier = threading.Barrier(8)

        def worker():
            barrier.wait()
            for _ in range(25):
                if clock.check("cache.write") is not None:
                    fired.append(1)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(fired) == 1
        assert clock.hits() == {"cache.write": 200}
