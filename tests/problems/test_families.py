"""Tests for the paper's problem family constructions (§4-§6, App. A)."""

import pytest

from repro.formalism import (
    black_diagram,
    diagram_edges,
    is_relaxation_via_config_map,
    parse_configuration,
    right_closed_subsets,
)
from repro.problems import (
    arbdefective_alphabet,
    available_families,
    build_problem,
    maximal_matching_problem,
    mis_family_problem,
    nonempty_color_subsets,
    pi_arbdefective,
    pi_matching,
    pi_matching_endpoint,
    pi_ruling,
    proper_coloring_problem,
    sinkless_coloring_problem,
    sinkless_orientation_problem,
    xy_relaxation_config_map,
)
from repro.utils import InvalidParameterError


class TestMatchingFamily:
    def test_appendix_a_diagram(self):
        """Appendix A: the black diagram of maximal matching is {P→O}."""
        problem = maximal_matching_problem(4)
        assert diagram_edges(black_diagram(problem)) == frozenset({("P", "O")})

    def test_white_constraint_shapes(self):
        problem = pi_matching(5, 1, 2)
        assert parse_configuration("X M O^3") in problem.white
        assert parse_configuration("X^2 O P^2") in problem.white
        assert parse_configuration("X^2 Z O^2") in problem.white
        assert len(problem.white) == 3

    def test_figure1_diagram_at_generic_parameters(self):
        """At x = 0 the mechanical diagram matches Figure 1 exactly:
        {Z→M, Z→P, Z→O, Z→X, P→O, P→X, O→X, M→X} (full relation;
        its reduction is the drawn Z→{M,P}, P→O, O→X, M→X)."""
        problem = pi_matching(5, 0, 1)
        edges = diagram_edges(black_diagram(problem))
        assert edges == frozenset(
            {
                ("Z", "M"),
                ("Z", "P"),
                ("Z", "O"),
                ("Z", "X"),
                ("P", "O"),
                ("P", "X"),
                ("O", "X"),
                ("M", "X"),
            }
        )

    def test_endpoint_diagram_refines_figure1(self):
        """Reproduction finding: at the endpoint x' = Δ'−1−y the relation
        gains M→O and X→O (O ≡ X), shrinking the right-closed family from
        the 7 sets listed in §4.2 to 5 — which only strengthens the
        Lemmas 4.8/4.9 counting (documented in EXPERIMENTS.md)."""
        problem = pi_matching_endpoint(4, 1)
        edges = diagram_edges(black_diagram(problem))
        assert ("X", "O") in edges and ("M", "O") in edges
        sets = {frozenset(s) for s in right_closed_subsets(black_diagram(problem))}
        paper_listed = {
            frozenset("X"),
            frozenset("OX"),
            frozenset("MX"),
            frozenset("MOX"),
            frozenset("POX"),
            frozenset("MPOX"),
            frozenset("MOPXZ"),
        }
        assert sets <= paper_listed
        assert len(sets) == 5

    def test_observation_43_witness(self):
        """Observation 4.3, executed: Π_Δ(x₂,y₂) relaxes Π_Δ(x,y)."""
        strict = pi_matching(6, 0, 1)
        relaxed = pi_matching(6, 2, 2)
        witness = xy_relaxation_config_map(6, 0, 1, 2, 2)
        assert is_relaxation_via_config_map(strict, relaxed, witness)

    def test_observation_43_direction_guard(self):
        with pytest.raises(InvalidParameterError):
            xy_relaxation_config_map(6, 2, 2, 0, 1)

    def test_parameter_validation(self):
        with pytest.raises(InvalidParameterError):
            pi_matching(3, 3, 1)  # x + y > Δ
        with pytest.raises(InvalidParameterError):
            pi_matching(3, 0, 0)  # y < 1


class TestArbdefectiveFamily:
    def test_alphabet_size(self):
        assert len(arbdefective_alphabet(3)) == 2**3  # 7 subsets + X

    def test_white_configurations(self):
        problem = pi_arbdefective(3, 2)
        assert parse_configuration("{1} {1} {1}") in problem.white
        assert parse_configuration("{1,2} {1,2} X") in problem.white
        assert parse_configuration("{1} {2} {1}") not in problem.white

    def test_black_disjointness(self):
        problem = pi_arbdefective(3, 2)
        assert parse_configuration("{1} {2}") in problem.black
        assert parse_configuration("{1} {1,2}") not in problem.black
        assert parse_configuration("X {1,2}") in problem.black
        assert parse_configuration("X X") in problem.black

    def test_sinkless_coloring_alias(self):
        problem = sinkless_coloring_problem(3)
        assert problem.white_arity == 3
        assert len(problem.alphabet) == 2**3

    def test_color_cap(self):
        with pytest.raises(InvalidParameterError):
            pi_arbdefective(3, 7)

    def test_subset_enumeration(self):
        subsets = nonempty_color_subsets(3)
        assert len(subsets) == 7
        assert frozenset({1, 2, 3}) in subsets


class TestRulingFamily:
    def test_beta_zero_is_arbdefective(self):
        assert pi_ruling(3, 2, 0).same_constraints(pi_arbdefective(3, 2))

    def test_pointer_configurations(self):
        problem = pi_ruling(3, 1, 2)
        assert parse_configuration("P1 U1 U1") in problem.white
        assert parse_configuration("P2 U2 U2") in problem.white
        assert parse_configuration("P2 U1") in problem.black  # j < i
        assert parse_configuration("P1 U2") not in problem.black
        assert parse_configuration("U1 U2") in problem.black
        assert parse_configuration("P1 {1}") in problem.black
        assert parse_configuration("U1 {1}") in problem.black
        assert parse_configuration("P1 P2") not in problem.black

    def test_figure2_diagram_chain(self):
        """Figure 2 (c = 3, β = 2): the pointer chain P1→P2→U2→U1 and the
        color-set containment edges are present in the mechanical diagram."""
        problem = pi_ruling(3, 3, 2)
        edges = diagram_edges(black_diagram(problem))
        for chain_edge in [("P1", "P2"), ("P2", "U2"), ("U2", "U1")]:
            assert chain_edge in edges
        # Color containment: {1,2} → {1} (smaller sets are stronger).
        assert ("{1,2}", "{1}") in edges
        assert ("{1}", "{1,2}") not in edges
        # X is the top label.
        for label in sorted(problem.alphabet - {"X"}):
            assert (label, "X") in edges

    def test_mis_special_case(self):
        problem = mis_family_problem(3)
        assert problem.name == "Π_3(1,1)"


class TestClassicAndRegistry:
    def test_sinkless_orientation_shape(self):
        problem = sinkless_orientation_problem(4)
        # Configurations with ≥1 O out of 4 slots: multisets O^k I^{4-k}, k ≥ 1.
        assert len(problem.white) == 4

    def test_proper_coloring_shape(self):
        problem = proper_coloring_problem(3, 3)
        assert len(problem.white) == 3
        assert len(problem.black) == 3

    def test_registry_round_trip(self):
        problem = build_problem("matching", delta=4, x=0, y=1)
        assert problem.same_constraints(pi_matching(4, 0, 1))
        assert "matching" in available_families()

    def test_registry_unknown_family(self):
        with pytest.raises(InvalidParameterError):
            build_problem("nonsense")
