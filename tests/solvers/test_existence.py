"""Direct coverage for :mod:`repro.solvers.existence` — every wrapper
(bipartite, non-bipartite, S-solution, lift solvability) exercised on its
own, with results cross-validated by the checkers."""

import networkx as nx
import pytest

from repro.checkers import check_bipartite_solution
from repro.formalism.problems import problem_from_lines
from repro.graphs import Hypergraph, cycle, mark_bipartition
from repro.problems import maximal_matching_problem, sinkless_orientation_problem
from repro.solvers.existence import (
    bipartite_solvable,
    lift_solvable_bipartite,
    lift_solvable_non_bipartite,
    non_bipartite_solvable,
    solve_bipartite,
    solve_non_bipartite,
    solve_s_solution,
)
from repro.utils import SolverLimitError

TWO_COLORING = problem_from_lines(
    ["{1} {1}", "{2} {2}"], ["{1} {2}", "X {1}", "X {2}", "X X"], name="2col"
)


class TestBipartitePath:
    def test_solution_validates_against_checker(self):
        graph = mark_bipartition(cycle(6))
        problem = maximal_matching_problem(2)
        solution = solve_bipartite(graph, problem)
        assert solution is not None
        assert bipartite_solvable(graph, problem)
        assert check_bipartite_solution(graph, problem, solution)

    def test_unsat_and_budget_propagation(self):
        graph = mark_bipartition(cycle(6))
        forced = problem_from_lines(["M M"], ["M O"], name="forced")
        assert solve_bipartite(graph, forced) is None
        assert not bipartite_solvable(graph, forced)
        with pytest.raises(SolverLimitError):
            bipartite_solvable(graph, maximal_matching_problem(2), budget=2)


class TestNonBipartitePath:
    def test_hypergraph_and_plain_graph_inputs_agree(self):
        """A plain graph is its own rank-2 hypergraph — both input shapes
        must decide identically."""
        graph = cycle(6)
        as_hypergraph = Hypergraph.from_graph(graph)
        assert non_bipartite_solvable(graph, TWO_COLORING)
        assert non_bipartite_solvable(as_hypergraph, TWO_COLORING)

    def test_solution_keys_are_incidence_edges(self):
        graph = cycle(4)
        solution = solve_non_bipartite(graph, TWO_COLORING)
        assert solution is not None
        # Keys pair an original node with an ("edge", i) hyperedge node.
        for key in solution:
            edge_nodes = [
                member
                for member in key
                if isinstance(member, tuple) and member[0] == "edge"
            ]
            assert len(edge_nodes) == 1
        assert len(solution) == 2 * graph.number_of_edges()

    def test_odd_cycle_two_coloring_unsolvable(self):
        assert not non_bipartite_solvable(cycle(5), TWO_COLORING)

    def test_rank_three_hypergraph(self):
        """White arity 2 nodes / black arity 3 hyperedges: one node per
        hyperedge elects itself ({1}), the others abstain (X)."""
        election = problem_from_lines(
            ["{1} {1}", "X X", "X {1}", "{1} X"],
            ["{1} X X"],
            name="elect",
        )
        hypergraph = Hypergraph.from_edges(
            [(0, 1, 2), (2, 3, 4), (4, 5, 0)]
        )
        assert hypergraph.rank == 3
        assert non_bipartite_solvable(hypergraph, election)


class TestSSolutionPath:
    def test_s_solution_exists_where_full_solution_cannot(self):
        graph = cycle(5)  # odd cycle: proper 2-coloring impossible
        full = solve_s_solution(graph, TWO_COLORING, set(graph.nodes))
        assert full is None
        partial = solve_s_solution(graph, TWO_COLORING, set(list(graph.nodes)[:3]))
        assert partial is not None

    def test_empty_s_is_trivially_solvable(self):
        graph = cycle(5)
        assert solve_s_solution(graph, TWO_COLORING, set()) is not None


class TestLiftSolvabilityPath:
    def test_bipartite_lift_decision_returns_all_three_parts(self):
        graph = mark_bipartition(cycle(4))
        so = sinkless_orientation_problem(2)
        solvable, solution, lifted = lift_solvable_bipartite(graph, so, 2, 2)
        assert lifted.delta == 2 and lifted.rank == 2
        assert solvable == (solution is not None)
        if solvable:
            explicit = lifted.to_problem()
            assert check_bipartite_solution(graph, explicit, solution)

    def test_solution_is_none_exactly_when_unsolvable(self):
        """lift(SO_2) on a single-edge support: white degree-1 nodes are
        unconstrained, so the lift is decided by the black side only."""
        graph = nx.Graph()
        graph.add_node("w", color="white")
        graph.add_node("b", color="black")
        graph.add_edge("w", "b")
        so = sinkless_orientation_problem(2)
        solvable, solution, _lifted = lift_solvable_bipartite(graph, so, 2, 2)
        assert solvable and solution is not None

    def test_non_bipartite_lift_on_plain_graph_and_hypergraph(self):
        so = sinkless_orientation_problem(2)
        graph = cycle(4)
        solvable_graph, _sol, lifted = lift_solvable_non_bipartite(
            graph, so, 2, 2
        )
        solvable_hyper, _sol2, _lifted2 = lift_solvable_non_bipartite(
            Hypergraph.from_graph(graph), so, 2, 2
        )
        assert solvable_graph == solvable_hyper
        assert lifted.base is so
