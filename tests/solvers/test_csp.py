"""CSP solver tests, including property-based agreement with brute force."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem, sinkless_orientation_problem
from repro.solvers.csp import EdgeLabelingCSP, check_edge_labeling
from repro.solvers.enumeration import brute_force_solutions, brute_force_solvable
from repro.solvers.existence import (
    bipartite_solvable,
    non_bipartite_solvable,
    solve_bipartite,
    solve_s_solution,
)
from repro.utils import SolverError, SolverLimitError


@pytest.fixture
def c6():
    return mark_bipartition(cycle(6))


class TestEdgeLabelingCSP:
    def test_solves_matching_on_even_cycle(self, c6):
        problem = maximal_matching_problem(2)
        solution = solve_bipartite(c6, problem)
        assert solution is not None
        assert check_edge_labeling(c6, problem, solution)

    def test_unsat_is_definitive(self, c6):
        problem = problem_from_lines(["M M"], ["M O"], name="forced")
        assert solve_bipartite(c6, problem) is None

    def test_missing_colors_rejected(self):
        graph = cycle(4)  # no color attributes
        with pytest.raises(SolverError):
            EdgeLabelingCSP(graph, maximal_matching_problem(2))

    def test_monochromatic_edge_rejected(self):
        graph = nx.path_graph(3)
        graph.nodes[0]["color"] = "white"
        graph.nodes[1]["color"] = "white"
        graph.nodes[2]["color"] = "black"
        with pytest.raises(SolverError):
            EdgeLabelingCSP(graph, maximal_matching_problem(2))

    def test_budget_enforced(self, c6):
        problem = maximal_matching_problem(2)
        with pytest.raises(SolverLimitError):
            EdgeLabelingCSP(c6, problem, budget=2).solve()

    def test_count_agrees_with_enumeration(self, c6):
        problem = sinkless_orientation_problem(2)
        csp_count = EdgeLabelingCSP(c6, problem).count_solutions()
        brute_count = sum(1 for _ in brute_force_solutions(c6, problem))
        assert csp_count == brute_count

    def test_degree_mismatch_nodes_unconstrained(self):
        """A path's endpoints (degree 1 < arity 2) are unconstrained."""
        graph = nx.path_graph(4)
        for node in graph.nodes:
            graph.nodes[node]["color"] = "white" if node % 2 == 0 else "black"
        problem = problem_from_lines(["M M"], ["M O"], name="forced")
        # Only interior nodes are constrained; with 4 nodes, node 1 and 2.
        solution = solve_bipartite(graph, problem)
        # Node 1 (black, degree 2) needs M O; node 2 (white, degree 2)
        # needs M M → edge (1,2) must be M (white side) and node 1's other
        # edge O.  Endpoint constraints vacuous → solvable.
        assert solution is not None


SMALL_PROBLEMS = [
    maximal_matching_problem(2),
    sinkless_orientation_problem(2),
    problem_from_lines(["M M"], ["M O"], name="forced"),
    problem_from_lines(["A A", "B B"], ["A B"], name="alt"),
    problem_from_lines(["A B", "B B"], ["A A", "A B", "B B"], name="loose"),
]


class TestCSPAgainstBruteForce:
    @pytest.mark.parametrize("problem", SMALL_PROBLEMS, ids=lambda p: p.name)
    @pytest.mark.parametrize("n", [4, 6])
    def test_solvability_agrees_on_cycles(self, problem, n):
        graph = mark_bipartition(cycle(n))
        assert bipartite_solvable(graph, problem) == brute_force_solvable(
            graph, problem
        )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=2, max_value=3), st.randoms(use_true_random=False))
    def test_solvability_agrees_on_random_trees(self, half, rng):
        """Random small bipartite graphs: CSP == brute force."""
        graph = nx.Graph()
        whites = [("w", i) for i in range(half)]
        blacks = [("b", i) for i in range(half)]
        graph.add_nodes_from(whites, color="white")
        graph.add_nodes_from(blacks, color="black")
        for w in whites:
            for b in blacks:
                if rng.random() < 0.7:
                    graph.add_edge(w, b)
        problem = maximal_matching_problem(2)
        if graph.number_of_edges() == 0:
            return
        assert bipartite_solvable(graph, problem) == brute_force_solvable(
            graph, problem
        )


class TestSSolutions:
    def test_s_solution_ignores_outside(self):
        """Constraints outside S don't block an S-solution."""
        graph = cycle(5)  # odd cycle, plain graph
        problem = problem_from_lines(
            ["{1} {1}", "{2} {2}"], ["{1} {2}", "X {1}", "X {2}", "X X"]
        )
        # Proper 2-coloring-ish on all of C5 is impossible (odd cycle),
        # but on a 4-node S it is fine.
        s_small = set(list(sorted(graph.nodes))[:4])
        assert solve_s_solution(graph, problem, s_small) is not None

    def test_full_s_equals_non_bipartite(self):
        graph = cycle(5)
        problem = problem_from_lines(
            ["{1} {1}", "{2} {2}"], ["{1} {2}", "X {1}", "X {2}", "X X"]
        )
        full = solve_s_solution(graph, problem, set(graph.nodes))
        assert (full is not None) == non_bipartite_solvable(graph, problem)
        assert full is None  # odd cycle: 2-coloring impossible
