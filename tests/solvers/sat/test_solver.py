"""CDCL solver: agreement with brute force, determinism, proofs, budgets."""

import random
from itertools import product

import pytest

from repro.solvers.budget import SolverBudget
from repro.solvers.sat.cnf import CnfFormula
from repro.solvers.sat.solver import (
    SAT_BUDGET_UNIT,
    CdclSolver,
    check_rup_proof,
    _luby,
)
from repro.utils import SolverLimitError


def brute_force(num_vars: int, clauses) -> list[dict[int, bool]]:
    models = []
    for bits in product((False, True), repeat=num_vars):
        assignment = {var: bits[var - 1] for var in range(1, num_vars + 1)}
        if all(
            any(assignment[abs(lit)] == (lit > 0) for lit in clause)
            for clause in clauses
        ):
            models.append(assignment)
    return models


def random_formula(rng: random.Random) -> tuple[CnfFormula, int, list]:
    num_vars = rng.randint(1, 6)
    formula = CnfFormula()
    for var in range(num_vars):
        formula.var(("v", var))
    clauses = []
    for _ in range(rng.randint(1, 14)):
        width = rng.randint(1, 3)
        clause = sorted(
            {
                rng.choice((1, -1)) * rng.randint(1, num_vars)
                for _ in range(width)
            }
        )
        clauses.append(clause)
        formula.add_clause(clause)
    return formula, num_vars, clauses


class TestAgreementWithBruteForce:
    def test_200_random_formulas(self):
        rng = random.Random(0xC0FFEE)
        for trial in range(200):
            formula, num_vars, clauses = random_formula(rng)
            solver = CdclSolver(formula, seed=trial)
            expected = brute_force(num_vars, clauses)
            if solver.solve():
                model = solver.model()
                assert expected, f"trial {trial}: solver sat, brute force unsat"
                assert all(
                    any(model[abs(lit)] == (lit > 0) for lit in clause)
                    for clause in clauses
                ), f"trial {trial}: model violates a clause"
            else:
                assert not expected, (
                    f"trial {trial}: solver unsat, brute force found a model"
                )
                assert check_rup_proof(formula, solver.proof), (
                    f"trial {trial}: RUP proof rejected"
                )

    def test_enumeration_matches_model_sets(self):
        rng = random.Random(0xBEEF)
        for trial in range(60):
            formula, num_vars, clauses = random_formula(rng)
            expected = {
                tuple(sorted(model.items()))
                for model in brute_force(num_vars, clauses)
            }
            solver = CdclSolver(formula, seed=trial)
            found = set()
            while solver.solve():
                model = solver.model()
                key = tuple(sorted(model.items()))
                assert key not in found, f"trial {trial}: repeated model"
                found.add(key)
                solver.add_clause(
                    [(-var if value else var) for var, value in model.items()]
                )
            assert found == expected, f"trial {trial}"


class TestDeterminism:
    def test_same_seed_same_search(self):
        rng = random.Random(7)
        formula, _n, _clauses = random_formula(rng)
        runs = []
        for _ in range(2):
            solver = CdclSolver(formula, seed="fixed")
            result = solver.solve()
            runs.append(
                (result, solver.decisions, solver.conflicts, solver.proof)
            )
        assert runs[0] == runs[1]

    def test_string_and_int_seeds_accepted(self):
        formula = CnfFormula()
        formula.add_clause([formula.var("a")])
        assert CdclSolver(formula, seed="abc").solve()
        assert CdclSolver(formula, seed=123).solve()


class TestEdgeCases:
    def test_empty_formula_is_sat(self):
        solver = CdclSolver(CnfFormula(), seed=0)
        assert solver.solve()
        assert solver.model() == {}

    def test_empty_clause_is_certifiably_unsat(self):
        formula = CnfFormula()
        formula.var("a")
        formula.add_clause([])
        solver = CdclSolver(formula, seed=0)
        assert not solver.solve()
        assert check_rup_proof(formula, solver.proof)

    def test_incremental_blocking_after_forced_model(self):
        # All variables forced at level 0: the blocking clause must still
        # be noticed by the next solve() (regression for the qhead reset).
        formula = CnfFormula()
        a, b = formula.var("a"), formula.var("b")
        formula.add_clause([a])
        formula.add_clause([-a, b])
        solver = CdclSolver(formula, seed=0)
        assert solver.solve()
        model = solver.model()
        assert model == {a: True, b: True}
        solver.add_clause([(-var if value else var) for var, value in model.items()])
        assert not solver.solve()

    def test_propagation_budget_exhausts(self):
        formula = CnfFormula()
        variables = [formula.var(("q", i)) for i in range(12)]
        for first in range(len(variables)):
            for second in range(first + 1, len(variables)):
                formula.add_clause([-variables[first], -variables[second]])
        formula.add_clause(variables)
        with pytest.raises(SolverLimitError, match=SAT_BUDGET_UNIT):
            CdclSolver(formula, budget=2, seed=0).solve()

    def test_shared_budget_instance_is_honored(self):
        formula = CnfFormula()
        formula.add_clause([formula.var("a")])
        shared = SolverBudget(1_000, unit=SAT_BUDGET_UNIT)
        solver = CdclSolver(formula, budget=shared, seed=0)
        assert solver.solve()
        assert shared.spent > 0


class TestRupChecker:
    def test_rejects_a_bogus_proof(self):
        formula = CnfFormula()
        a, b = formula.var("a"), formula.var("b")
        formula.add_clause([a, b])
        assert not check_rup_proof(formula, [()])

    def test_requires_a_final_empty_clause(self):
        formula = CnfFormula()
        a = formula.var("a")
        formula.add_clause([a])
        formula.add_clause([-a])
        assert not check_rup_proof(formula, [])


def test_luby_sequence_prefix():
    assert [_luby(i) for i in range(1, 10)] == [1, 1, 2, 1, 1, 2, 4, 1, 1]
