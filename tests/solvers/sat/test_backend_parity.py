"""The backend contract: csp and sat are observationally equivalent —
same existence verdicts, same solution sets, same budget-exhaustion
behavior — across every instance shape the repo produces."""

import random

import pytest

from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem, pi_matching
from repro.solvers import (
    BACKENDS,
    DEFAULT_BACKEND,
    make_solver,
    resolve_backend,
    solution_set,
)
from repro.utils import InvalidParameterError
from repro.verification.generators import build_sat_case, random_sat_case_params


class TestRegistry:
    def test_backends_and_default(self):
        assert set(BACKENDS) == {"csp", "sat"}
        assert DEFAULT_BACKEND == "csp"
        assert resolve_backend(None) == "csp"
        assert resolve_backend("sat") == "sat"
        with pytest.raises(InvalidParameterError):
            resolve_backend("z3")

    def test_make_solver_rejects_unknown_backend(self):
        graph = mark_bipartition(cycle(4))
        with pytest.raises(InvalidParameterError):
            make_solver(graph, maximal_matching_problem(2), backend="nope")


class TestNamedInstances:
    @pytest.mark.parametrize("n", [4, 6, 8])
    def test_matching_solution_sets_agree(self, n):
        graph = mark_bipartition(cycle(n))
        problem = maximal_matching_problem(2)
        assert solution_set(graph, problem, backend="csp") == solution_set(
            graph, problem, backend="sat"
        )

    @pytest.mark.parametrize("x", [0, 1])
    def test_pi_matching_family_agrees(self, x):
        graph = mark_bipartition(cycle(6))
        problem = pi_matching(2, x, 1)
        csp = solution_set(graph, problem, backend="csp")
        sat = solution_set(graph, problem, backend="sat")
        assert csp == sat


class TestSeededRandomInstances:
    """A bounded in-tree slice of the ``sat`` differential oracle: all
    four case kinds (bipartite, s_solution, hypergraph, lift), exact
    solution-set equality.  CI's fuzz job runs the ≥200-case version."""

    def test_40_seeded_cases(self):
        rng = random.Random("backend-parity")
        kinds = set()
        for _ in range(40):
            params = random_sat_case_params(rng)
            kinds.add(params["kind"])
            graph, problem, white_active, black_active = build_sat_case(params)
            csp = solution_set(
                graph,
                problem,
                backend="csp",
                white_active=white_active,
                black_active=black_active,
            )
            sat = solution_set(
                graph,
                problem,
                backend="sat",
                white_active=white_active,
                black_active=black_active,
            )
            assert csp == sat, params
            solver = make_solver(
                graph,
                problem,
                backend="sat",
                white_active=white_active,
                black_active=black_active,
            )
            assert (solver.solve() is not None) == bool(csp), params
        assert kinds == {"bipartite", "s_solution", "hypergraph", "lift"}

    def test_unsat_answers_carry_checkable_proofs(self):
        rng = random.Random("unsat-proofs")
        certified = 0
        for _ in range(60):
            params = random_sat_case_params(rng)
            graph, problem, white_active, black_active = build_sat_case(params)
            solver = make_solver(
                graph,
                problem,
                backend="sat",
                white_active=white_active,
                black_active=black_active,
            )
            if solver.solve() is None:
                assert solver.certify_unsat(), params
                certified += 1
        assert certified > 0  # the sample must actually contain unsat cases
