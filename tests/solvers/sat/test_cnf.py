"""Clause database: canonical ordering, DIMACS round trips, digests."""

import pytest

from repro.solvers.sat.cnf import CnfFormula, parse_dimacs
from repro.utils import InvalidParameterError


class TestInterning:
    def test_vars_are_one_based_and_stable(self):
        formula = CnfFormula()
        x = formula.var(("x", 0, 0))
        y = formula.var(("x", 0, 1))
        assert (x, y) == (1, 2)
        assert formula.var(("x", 0, 0)) == x  # re-intern is a lookup
        assert formula.key_of(x) == ("x", 0, 0)

    def test_clause_literals_must_name_interned_vars(self):
        formula = CnfFormula()
        formula.var("a")
        with pytest.raises(InvalidParameterError):
            formula.add_clause([2])
        with pytest.raises(InvalidParameterError):
            formula.add_clause([0])


class TestCanonicalForm:
    def test_clause_canonicalization_sorts_and_dedups(self):
        formula = CnfFormula()
        a, b = formula.var("a"), formula.var("b")
        formula.add_clause([-b, a, a])
        assert formula.canonical_clauses() == [(a, -b)]

    def test_tautologies_are_dropped(self):
        formula = CnfFormula()
        a = formula.var("a")
        formula.add_clause([a, -a])
        assert formula.canonical_clauses() == []
        assert not formula.has_empty_clause

    def test_duplicate_clauses_collapse(self):
        formula = CnfFormula()
        a, b = formula.var("a"), formula.var("b")
        formula.add_clause([a, b])
        formula.add_clause([b, a])
        assert len(formula.canonical_clauses()) == 1

    def test_empty_clause_is_recorded(self):
        formula = CnfFormula()
        formula.add_clause([])
        assert formula.has_empty_clause

    def test_digest_ignores_insertion_order(self):
        first = CnfFormula()
        a, b = first.var("a"), first.var("b")
        first.add_clause([a, b])
        first.add_clause([-a])
        second = CnfFormula()
        a2, b2 = second.var("a"), second.var("b")
        second.add_clause([-a2])
        second.add_clause([b2, a2])
        assert first.digest() == second.digest()

    def test_digest_sees_clause_changes(self):
        first = CnfFormula()
        first.add_clause([first.var("a")])
        second = CnfFormula()
        second.add_clause([-second.var("a")])
        assert first.digest() != second.digest()


class TestDimacs:
    def test_round_trip_preserves_digest(self):
        formula = CnfFormula()
        a, b, c = (formula.var(("k", i)) for i in range(3))
        formula.add_clause([a, -b])
        formula.add_clause([b, c])
        formula.add_clause([-a, -c])
        parsed = parse_dimacs(formula.to_dimacs())
        assert parsed.digest() == formula.digest()

    def test_export_is_byte_deterministic(self):
        def build():
            formula = CnfFormula()
            x, y = formula.var("x"), formula.var("y")
            formula.add_clause([y, x])
            formula.add_clause([-x])
            return formula.to_dimacs(comments=("note",))

        assert build() == build()

    def test_header_var_count_is_honored(self):
        parsed = parse_dimacs("p cnf 4 1\n1 -2 0\n")
        assert parsed.num_vars == 4

    def test_comments_do_not_change_digest(self):
        formula = CnfFormula()
        formula.add_clause([formula.var("a")])
        with_comment = parse_dimacs(formula.to_dimacs(comments=("hello",)))
        assert with_comment.digest() == formula.digest()
