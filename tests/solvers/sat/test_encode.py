"""CNF compilation of edge-labeling CSPs: one-hot shape, symmetry breaking,
automorphism discovery, and byte-determinism of the emitted formula."""

import pytest

from repro.formalism.normalize import label_automorphisms
from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.solvers.csp import EdgeLabelingCSP
from repro.solvers.sat import SatLabelingSolver, encode_csp
from repro.solvers.sat.solver import CdclSolver


@pytest.fixture
def c6():
    return mark_bipartition(cycle(6))


def symmetric_problem():
    """A/B are interchangeable: the label automorphism group has order 2."""
    return problem_from_lines(["A A", "B B"], ["A A", "B B"], name="sym")


class TestLabelAutomorphisms:
    def test_symmetric_problem_has_order_two_group(self):
        group = label_automorphisms(symmetric_problem())
        assert group is not None and len(group) == 2
        identity = group[0]
        assert identity == {"A": "A", "B": "B"}  # identity listed first

    def test_asymmetric_problem_is_identity_only(self):
        problem = problem_from_lines(["A A"], ["A B"], name="asym")
        group = label_automorphisms(problem)
        assert group is not None and len(group) == 1

    def test_matching_problem_keeps_m_fixed(self):
        group = label_automorphisms(maximal_matching_problem(2))
        assert group is not None
        assert all(pi["M"] == "M" for pi in group)


class TestEncodingShape:
    def test_one_hot_selectors_per_edge(self, c6):
        csp = EdgeLabelingCSP(c6, symmetric_problem())
        encoding = encode_csp(csp)
        assert len(encoding.edges) == 6
        solver = CdclSolver(encoding.formula, seed=0)
        assert solver.solve()
        model = solver.model()
        for edge_index in range(len(encoding.edges)):
            chosen = [
                label_index
                for label_index in range(len(encoding.alphabet))
                if model[encoding.var(edge_index, label_index)]
            ]
            assert len(chosen) == 1

    def test_decode_labels_every_edge(self, c6):
        csp = EdgeLabelingCSP(c6, symmetric_problem())
        encoding = encode_csp(csp)
        solver = CdclSolver(encoding.formula, seed=0)
        assert solver.solve()
        labeling = encoding.decode(solver.model())
        assert set(labeling) == {frozenset(edge) for edge in c6.edges}
        assert set(labeling.values()) <= set(encoding.alphabet)

    def test_formula_is_byte_deterministic(self, c6):
        def build():
            csp = EdgeLabelingCSP(c6, maximal_matching_problem(2))
            return encode_csp(csp).formula.to_dimacs()

        assert build() == build()

    def test_active_node_with_wrong_degree_is_unsat(self):
        # A white node of degree 1 on an arity-2 problem: default activity
        # leaves it inactive; forcing it active makes the instance unsat,
        # exactly as the CSP backend treats it.
        import networkx as nx

        graph = nx.Graph()
        graph.add_node("w", color="white")
        graph.add_node("b", color="black")
        graph.add_edge("w", "b")
        problem = symmetric_problem()
        solver = SatLabelingSolver(
            graph, problem, white_active=lambda node: True
        )
        assert solver.solve() is None
        assert solver.certify_unsat()


class TestSymmetryBreaking:
    def test_breaking_prunes_models_but_not_solutions(self, c6):
        problem = symmetric_problem()
        broken = SatLabelingSolver(c6, problem, symmetry_breaking=True)
        unbroken = SatLabelingSolver(c6, problem, symmetry_breaking=False)
        assert broken.encoding.symmetry_broken
        assert not unbroken.encoding.symmetry_broken
        # Orbit re-expansion makes the enumerated sets identical...
        canonical = lambda labeling: tuple(
            sorted((tuple(sorted(map(str, edge))), label)
                   for edge, label in labeling.items())
        )
        assert {canonical(s) for s in broken.iter_solutions()} == {
            canonical(s) for s in unbroken.iter_solutions()
        }
        # ...while the broken formula itself admits strictly fewer models
        # (the A/B swap's lex-leader constraint halves them here).
        def raw_models(solver):
            cdcl = CdclSolver(solver.encoding.formula, seed=0)
            count = 0
            while cdcl.solve():
                model = cdcl.model()
                count += 1
                cdcl.add_clause(solver.encoding.blocking_clause(model))
            return count

        assert raw_models(broken) < raw_models(unbroken)

    def test_existence_agrees_with_breaking_disabled(self, c6):
        problem = maximal_matching_problem(2)
        broken = SatLabelingSolver(c6, problem, symmetry_breaking=True)
        unbroken = SatLabelingSolver(c6, problem, symmetry_breaking=False)
        assert (broken.solve() is None) == (unbroken.solve() is None)

    def test_unused_alphabet_labels_are_harmless(self, c6):
        # A label no configuration mentions can never be selected; both
        # the encoding and enumeration must simply ignore it.
        base = problem_from_lines(["A A", "B B"], ["A A", "B B"], name="padded")
        problem = type(base)(
            alphabet=base.alphabet | {"C"},
            white=base.white,
            black=base.black,
            name=base.name,
        )
        solver = SatLabelingSolver(c6, problem)
        solutions = list(solver.iter_solutions())
        assert solutions
        assert all("C" not in s.values() for s in solutions)
