"""Direct coverage for :mod:`repro.solvers.enumeration` — the brute-force
oracle itself must be trustworthy before the fuzzer leans on it."""

import networkx as nx
import pytest

from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.solvers.csp import EdgeLabelingCSP, check_edge_labeling
from repro.solvers.enumeration import brute_force_solutions, brute_force_solvable
from repro.utils import SolverError


@pytest.fixture
def c6():
    return mark_bipartition(cycle(6))


class TestBruteForceSolutions:
    def test_edge_limit_enforced(self):
        graph = mark_bipartition(cycle(14))
        with pytest.raises(SolverError):
            list(
                brute_force_solutions(
                    graph, maximal_matching_problem(2), edge_limit=12
                )
            )

    def test_every_yielded_labeling_is_valid(self, c6):
        problem = maximal_matching_problem(2)
        solutions = list(brute_force_solutions(c6, problem))
        assert solutions
        for labeling in solutions:
            assert set(labeling) == {frozenset(edge) for edge in c6.edges}
            assert check_edge_labeling(c6, problem, labeling)

    def test_solution_set_equals_csp_solution_set(self, c6):
        """Not just the count: the exact sets of labelings agree."""
        problem = problem_from_lines(["A A", "B B"], ["A B"], name="alt")
        brute = {
            frozenset(labeling.items())
            for labeling in brute_force_solutions(c6, problem)
        }
        via_csp = {
            frozenset(labeling.items())
            for labeling in EdgeLabelingCSP(c6, problem).iter_solutions()
        }
        assert brute == via_csp

    def test_degree_mismatch_nodes_are_unconstrained(self):
        """Path endpoints (degree 1 < arity 2) never filter labelings."""
        graph = nx.path_graph(3)
        graph.nodes[0]["color"] = "white"
        graph.nodes[1]["color"] = "black"
        graph.nodes[2]["color"] = "white"
        problem = problem_from_lines(["A A"], ["A B"], name="mixed")
        solutions = list(brute_force_solutions(graph, problem))
        # Node 1 (black, degree 2) needs A B; endpoints are free.
        assert len(solutions) == 2  # {A,B} and {B,A} over the two edges

    def test_custom_activity_predicates(self, c6):
        """Deactivating the black side turns 'forced' solvable."""
        forced = problem_from_lines(["M M"], ["M O"], name="forced")
        assert not brute_force_solvable(c6, forced)
        everything_m = list(
            brute_force_solutions(
                c6, forced, black_active=lambda node: False
            )
        )
        assert everything_m
        for labeling in everything_m:
            assert set(labeling.values()) == {"M"}


class TestBruteForceSolvable:
    def test_sat_and_unsat(self, c6):
        assert brute_force_solvable(c6, maximal_matching_problem(2))
        assert not brute_force_solvable(
            c6, problem_from_lines(["M M"], ["M O"], name="forced")
        )

    def test_empty_graph_is_trivially_solvable(self):
        graph = nx.Graph()
        graph.add_node("w", color="white")
        assert brute_force_solvable(graph, maximal_matching_problem(2))
