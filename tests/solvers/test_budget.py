"""SolverBudget: the one metering abstraction both backends share."""

import pytest

from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.solvers import SolverBudget, make_solver
from repro.solvers.csp import CSP_BUDGET_UNIT
from repro.solvers.sat.solver import SAT_BUDGET_UNIT
from repro.utils import InvalidParameterError, SolverLimitError


class TestSolverBudget:
    def test_spend_and_remaining(self):
        budget = SolverBudget(5, unit="steps")
        assert budget.remaining == 5 and not budget.exhausted
        budget.spend(3)
        assert budget.spent == 3 and budget.remaining == 2
        budget.spend(2)
        assert budget.exhausted and budget.remaining == 0

    def test_overspend_raises_with_unit_in_message(self):
        budget = SolverBudget(2, unit="propagations")
        budget.spend(2)
        with pytest.raises(SolverLimitError, match="propagations"):
            budget.spend()

    @pytest.mark.parametrize("bad", [0, -1, True, "10", 1.5])
    def test_invalid_limits_rejected(self, bad):
        with pytest.raises(InvalidParameterError):
            SolverBudget(bad, unit="steps")

    def test_coerce_passes_instances_through(self):
        shared = SolverBudget(10, unit="steps")
        assert SolverBudget.coerce(shared, "other") is shared
        fresh = SolverBudget.coerce(7, "edge placements")
        assert fresh.limit == 7 and fresh.unit == "edge placements"


class TestExhaustionParity:
    """Both backends must report exhaustion as SolverLimitError, and a
    starved budget must starve either backend on the same instance."""

    @pytest.fixture
    def instance(self):
        graph = mark_bipartition(cycle(8))
        problem = problem_from_lines(
            ["A A", "B B"], ["A A", "B B", "A B"], name="parity"
        )
        return graph, problem

    @pytest.mark.parametrize("backend", ["csp", "sat"])
    def test_tiny_budget_exhausts(self, instance, backend):
        # The SAT backend may exhaust during encoding (construction), the
        # CSP one during search — both surface as SolverLimitError.
        graph, problem = instance
        with pytest.raises(SolverLimitError):
            make_solver(graph, problem, backend=backend, budget=1).solve()

    @pytest.mark.parametrize("backend", ["csp", "sat"])
    def test_default_budget_succeeds(self, instance, backend):
        graph, problem = instance
        solver = make_solver(graph, problem, backend=backend)
        assert solver.solve() is not None

    def test_shared_budget_is_cumulative_on_both_backends(self, instance):
        graph, problem = instance
        for backend, unit in (("csp", CSP_BUDGET_UNIT), ("sat", SAT_BUDGET_UNIT)):
            shared = SolverBudget(10_000_000, unit=unit)
            solver = make_solver(graph, problem, backend=backend, budget=shared)
            solver.solve()
            after_first = shared.spent
            assert after_first > 0
            solver.solve()
            assert shared.spent > after_first

    def test_units_differ_by_backend(self, instance):
        graph, problem = instance
        assert CSP_BUDGET_UNIT != SAT_BUDGET_UNIT
        with pytest.raises(SolverLimitError, match=CSP_BUDGET_UNIT):
            make_solver(graph, problem, backend="csp", budget=1).solve()
        with pytest.raises(SolverLimitError, match=SAT_BUDGET_UNIT):
            make_solver(graph, problem, backend="sat", budget=1).solve()
