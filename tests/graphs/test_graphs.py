"""Tests for the graph substrates: girth, independence, chromatic,
cages, double covers, hypergraphs, generators."""

import math

import networkx as nx
import pytest

from repro.graphs import (
    Hypergraph,
    analyze_support_graph,
    available_cages,
    bipartite_double_cover,
    biregular_tree,
    cage,
    chromatic_lower_bound_from_independence,
    complete_bipartite,
    complete_graph,
    cycle,
    exact_chromatic_number,
    exact_girth,
    exact_independence_number,
    greedy_coloring,
    greedy_independent_set,
    hypergraph_girth,
    is_independent_set,
    lemma21_graph,
    linear_uniform_hypergraph,
    mark_bipartition,
    padded_support_graph,
    random_regular_with_girth,
)
from repro.utils import GraphConstructionError


class TestGirth:
    @pytest.mark.parametrize(
        "builder,expected",
        [
            (lambda: cycle(5), 5),
            (lambda: cycle(8), 8),
            (lambda: complete_graph(4), 3),
            (lambda: complete_bipartite(2, 3), 4),
            (lambda: nx.path_graph(5), math.inf),
        ],
    )
    def test_known_girths(self, builder, expected):
        assert exact_girth(builder()) == expected

    def test_cage_girths_certified(self):
        """The cage library's claimed girths are re-certified exactly."""
        for name in available_cages():
            graph, degree, girth = cage(name)
            assert exact_girth(graph) == girth, name
            assert all(graph.degree(v) == degree for v in graph.nodes), name

    def test_hypergraph_girth_convention(self):
        petersen, _d, girth = cage("petersen")
        hyper = Hypergraph.from_graph(petersen)
        assert hypergraph_girth(hyper.incidence_graph()) == girth


class TestIndependenceAndChromatic:
    def test_petersen_values(self):
        petersen, _d, _g = cage("petersen")
        assert exact_independence_number(petersen) == 4
        assert exact_chromatic_number(petersen) == 3

    def test_greedy_is_independent(self):
        graph, _d, _g = cage("heawood")
        chosen = greedy_independent_set(graph)
        assert is_independent_set(graph, chosen)
        assert len(chosen) <= exact_independence_number(graph)

    def test_chromatic_lower_bound(self):
        petersen, _d, _g = cage("petersen")
        assert chromatic_lower_bound_from_independence(petersen) == 3

    def test_greedy_coloring_proper(self):
        graph, _d, _g = cage("mcgee")
        coloring = greedy_coloring(graph)
        for u, v in graph.edges:
            assert coloring[u] != coloring[v]

    def test_odd_cycle_chromatic(self):
        assert exact_chromatic_number(cycle(7)) == 3
        assert exact_chromatic_number(cycle(8)) == 2

    def test_size_caps(self):
        big = nx.random_regular_graph(3, 100, seed=1)
        with pytest.raises(ValueError):
            exact_independence_number(big)
        with pytest.raises(ValueError):
            exact_chromatic_number(big)


class TestDoubleCover:
    def test_cover_is_bipartite_and_biregular(self):
        petersen, degree, girth = cage("petersen")
        cover = bipartite_double_cover(petersen)
        assert nx.is_bipartite(cover)
        assert cover.number_of_nodes() == 2 * petersen.number_of_nodes()
        assert all(cover.degree(v) == degree for v in cover.nodes)

    def test_cover_girth_at_least_original(self):
        petersen, _degree, girth = cage("petersen")
        cover = bipartite_double_cover(petersen)
        assert exact_girth(cover) >= girth

    def test_colors_assigned(self):
        cover = bipartite_double_cover(cycle(5))
        colors = {data["color"] for _n, data in cover.nodes(data=True)}
        assert colors == {"white", "black"}

    def test_mark_bipartition_raises_on_odd_cycle(self):
        with pytest.raises(Exception):
            mark_bipartition(cycle(5))


class TestGenerators:
    def test_random_regular_with_girth_certifies(self):
        certified = random_regular_with_girth(20, 3, min_girth=5, seed=3)
        assert certified.girth >= 5
        assert certified.independence_number is not None
        assert certified.n == 20

    def test_parity_guard(self):
        with pytest.raises(GraphConstructionError):
            random_regular_with_girth(7, 3, min_girth=4)

    def test_unreachable_girth_raises(self):
        with pytest.raises(GraphConstructionError):
            random_regular_with_girth(8, 3, min_girth=12, attempts=5)

    def test_lemma21_graph_interface(self):
        certified = lemma21_graph(24, 3, seed=1)
        assert certified.girth >= 5
        assert certified.independence_ratio is not None

    def test_biregular_tree_interior_degrees(self):
        tree = biregular_tree(3, 2, depth=3)
        for node, data in tree.nodes(data=True):
            degree = tree.degree(node)
            cap = 3 if data["color"] == "white" else 2
            assert degree <= cap

    def test_padded_support_graph(self):
        core = bipartite_double_cover(cycle(5))
        padded = padded_support_graph(core, 16)
        assert padded.number_of_nodes() == 16
        with pytest.raises(GraphConstructionError):
            padded_support_graph(core, 5)


class TestHypergraphs:
    def test_incidence_graph_colors(self):
        hyper = Hypergraph.from_edges([(0, 1, 2), (2, 3, 4)])
        incidence = hyper.incidence_graph()
        whites = [n for n, d in incidence.nodes(data=True) if d["color"] == "white"]
        blacks = [n for n, d in incidence.nodes(data=True) if d["color"] == "black"]
        assert len(whites) == 5 and len(blacks) == 2

    def test_degree_and_rank(self):
        hyper = Hypergraph.from_edges([(0, 1, 2), (2, 3, 4), (0, 3)])
        assert hyper.rank == 3
        assert hyper.degree(2) == 2
        assert hyper.max_degree == 2

    def test_linearity(self):
        linear = Hypergraph.from_edges([(0, 1, 2), (2, 3, 4)])
        assert linear.is_linear()
        nonlinear = Hypergraph.from_edges([(0, 1, 2), (0, 1, 3)])
        assert not nonlinear.is_linear()

    def test_empty_hyperedge_rejected(self):
        with pytest.raises(GraphConstructionError):
            Hypergraph(nodes=(0,), edges=(frozenset(),))

    def test_linear_uniform_generator(self):
        hyper = linear_uniform_hypergraph(9, 2, 3, seed=5)
        assert hyper.is_regular(2)
        assert hyper.is_uniform(3)
        assert hyper.is_linear()

    def test_divisibility_guard(self):
        with pytest.raises(GraphConstructionError):
            linear_uniform_hypergraph(10, 3, 4)


class TestSupportGraphReport:
    def test_report_on_petersen(self):
        petersen, _d, _g = cage("petersen")
        report = analyze_support_graph(petersen)
        assert report.is_regular
        assert report.degree == 3
        assert report.girth == 5
        assert report.chromatic_number == 3
        assert not report.is_bipartite
        assert report.theorem_b2_round_budget() == 0.5
