"""Tests for the LOCAL / Supported LOCAL simulator."""

import networkx as nx
import pytest

from repro.graphs import cage, cycle
from repro.local import (
    EngineProbe,
    Network,
    NodeAlgorithm,
    SupportedInstance,
    collect_supported_view,
    collect_view,
    measured_run_synchronous,
    run_supported_view_algorithm,
    run_synchronous,
    run_view_algorithm,
)
from repro.utils import LocalityViolationError, SimulationError


class TestNetwork:
    def test_canonical_ids(self):
        network = Network(graph=cycle(4))
        assert sorted(network.ids.values()) == [1, 2, 3, 4]

    def test_ports_are_consistent(self):
        network = Network(graph=cycle(5))
        for node in network.graph.nodes:
            for port in range(1, network.graph.degree(node) + 1):
                neighbor = network.via_port(node, port)
                assert network.port_to(node, neighbor) == port

    def test_random_ids_distinct(self):
        network = Network(graph=cycle(6)).with_random_ids(seed=1)
        assert len(set(network.ids.values())) == 6

    def test_renormalized_ids(self):
        network = Network(graph=cycle(6)).with_random_ids(seed=2)
        renormalized = network.renormalized_ids()
        assert sorted(renormalized.values()) == list(range(1, 7))
        # Order preserved.
        original_order = sorted(network.ids, key=lambda n: network.ids[n])
        renorm_order = sorted(renormalized, key=lambda n: renormalized[n])
        assert original_order == renorm_order

    def test_duplicate_ids_rejected(self):
        with pytest.raises(SimulationError):
            Network(graph=cycle(3), ids={0: 1, 1: 1, 2: 2})


class _EchoIds(NodeAlgorithm):
    """One round: send own ID, collect neighbor IDs, halt."""

    def init(self):
        self.collected = {}

    def send(self):
        return {port: self.ctx.node_id for port in self.ctx.ports}

    def receive(self, messages):
        self.collected = dict(messages)
        self.halt(sorted(self.collected.values()))


class TestMessagePassing:
    def test_one_round_id_exchange(self):
        network = Network(graph=cycle(4))
        result = run_synchronous(network, _EchoIds)
        assert result.rounds == 1
        for node in network.graph.nodes:
            expected = sorted(
                network.ids[neighbor] for neighbor in network.graph.neighbors(node)
            )
            assert result.outputs[node] == expected

    def test_nonhalting_algorithm_detected(self):
        class Forever(NodeAlgorithm):
            pass

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError):
            run_synchronous(network, Forever, max_rounds=5)

    def test_invalid_port_detected(self):
        class BadPort(NodeAlgorithm):
            def send(self):
                return {99: "boom"}

            def receive(self, messages):
                self.halt(None)

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError):
            run_synchronous(network, BadPort)


class TestViews:
    def test_view_radius_content(self):
        network = Network(graph=cycle(8))
        view = collect_view(network, 0, radius=2)
        assert set(view.subgraph.nodes) == {6, 7, 0, 1, 2}

    def test_view_locality_enforced(self):
        network = Network(graph=cycle(8))
        view = collect_view(network, 0, radius=1)
        with pytest.raises(LocalityViolationError):
            view.id_of(4)

    def test_view_algorithm_runner(self):
        network = Network(graph=cycle(6))
        result = run_view_algorithm(
            network, radius=1, rule=lambda view: len(view.subgraph)
        )
        assert result.rounds == 1
        assert all(value == 3 for value in result.outputs.values())


class TestSupportedViews:
    def test_support_graph_fully_visible(self):
        petersen, _d, _g = cage("petersen")
        instance = SupportedInstance.from_graphs(
            petersen, [list(petersen.edges)[0]]
        )
        view = instance.view(0, radius=0)
        assert view.support.number_of_nodes() == 10  # all of G, radius 0

    def test_input_marks_limited_by_radius(self):
        graph = cycle(8)
        edges = list(graph.edges)
        instance = SupportedInstance.from_graphs(graph, edges)
        view = instance.view(0, radius=0)
        # Own edges visible…
        assert view.is_input_edge(0, 1)
        # …distant marks are not.
        with pytest.raises(LocalityViolationError):
            view.is_input_edge(4, 5)

    def test_marks_propagate_with_radius(self):
        graph = cycle(8)
        instance = SupportedInstance.from_graphs(graph, list(graph.edges))
        view = instance.view(0, radius=3)
        assert view.is_input_edge(3, 4)  # incident to distance-3 node

    def test_foreign_input_edge_rejected(self):
        graph = cycle(4)
        with pytest.raises(SimulationError):
            SupportedInstance.from_graphs(graph, [(0, 2)])

    def test_input_degree(self):
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [(0, 1), (1, 2)])
        assert instance.input_degree == 2

    def test_supported_runner(self):
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [(0, 1)])
        result = run_supported_view_algorithm(
            instance,
            radius=1,
            rule=lambda view: len(view.input_neighbors(view.center)),
        )
        assert result.outputs[0] == 1
        assert result.outputs[3] == 0


class _InitHalter(NodeAlgorithm):
    """Halts during init() when told to; otherwise pings all neighbors once."""

    def init(self):
        if self.ctx.extra["halts_in_init"]:
            self.halt("init-halted")

    def send(self):
        return {port: "ping" for port in self.ctx.ports}

    def receive(self, messages):
        self.halt(sorted(messages.values()))


class TestInitHalting:
    """Nodes that halt during init() stay silent and unreachable.

    Regression tests: before the delivery guard, messages addressed to an
    init-halted node were retained in its inbox; now they are dropped and
    counted, and the run completes with only live nodes exchanging data.
    """

    def test_messages_to_init_halted_nodes_are_dropped(self):
        # C4 with IDs 1..4 on nodes 0..3: halt the even nodes in init.
        network = Network(graph=cycle(4))
        halted_nodes = {node for node in network.graph.nodes if node % 2 == 0}
        result, measurement = measured_run_synchronous(
            network,
            _InitHalter,
            extra=lambda node: {"halts_in_init": node in halted_nodes},
        )
        assert result.rounds == 1
        for node in halted_nodes:
            assert result.outputs[node] == "init-halted"
        # On C4 both neighbors of a live node halted in init, so every live
        # node received nothing and every sent message was dropped.
        for node in set(network.graph.nodes) - halted_nodes:
            assert result.outputs[node] == []
        assert measurement.messages_delivered == 0
        assert measurement.messages_dropped == 4  # 2 live nodes x 2 ports

    def test_live_nodes_still_communicate(self):
        # C6 with a single init-halted node: its two neighbors lose one
        # inbox entry each; everyone else has a full inbox.
        network = Network(graph=cycle(6))
        result, measurement = measured_run_synchronous(
            network,
            _InitHalter,
            extra=lambda node: {"halts_in_init": node == 0},
        )
        assert result.outputs[0] == "init-halted"
        assert result.outputs[1] == ["ping"]   # lost the message from 0
        assert result.outputs[5] == ["ping"]
        assert result.outputs[3] == ["ping", "ping"]
        assert measurement.messages_dropped == 2
        assert measurement.messages_delivered == 8

    def test_all_nodes_halting_in_init_is_a_zero_round_run(self):
        network = Network(graph=cycle(5))
        result = run_synchronous(
            network, _InitHalter, extra=lambda node: {"halts_in_init": True}
        )
        assert result.rounds == 0
        assert set(result.outputs.values()) == {"init-halted"}

    def test_halting_during_send_with_messages_rejected(self):
        class SilenceViolator(NodeAlgorithm):
            def send(self):
                self.halt("done")
                return {port: "x" for port in self.ctx.ports}

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError, match="halted during send"):
            run_synchronous(network, SilenceViolator)

    def test_halting_silently_during_send_is_allowed(self):
        class SilentQuitter(NodeAlgorithm):
            def send(self):
                self.halt("quit")
                return {}

        network = Network(graph=cycle(3))
        result = run_synchronous(network, SilentQuitter)
        assert result.rounds == 1
        assert set(result.outputs.values()) == {"quit"}


class TestMeasurement:
    def test_probe_traces_every_round(self):
        network = Network(graph=cycle(4))
        probe = EngineProbe()
        result = run_synchronous(network, _EchoIds, on_round=probe)
        assert len(probe.traces) == result.rounds == 1
        trace = probe.traces[0]
        assert trace.live_nodes == 4
        assert trace.messages_delivered == 8
        assert trace.messages_dropped == 0

    def test_measured_run_summary(self):
        network = Network(graph=cycle(4))
        result, measurement = measured_run_synchronous(network, _EchoIds)
        assert measurement.rounds == result.rounds
        assert measurement.wall_seconds > 0
        assert measurement.peak_live_nodes == 4
        assert measurement.as_record() == {
            "rounds": 1,
            "messages_delivered": 8,
            "messages_dropped": 0,
            "peak_live_nodes": 4,
        }
