"""Round-complexity bracketing via the Supported LOCAL view runner,
plus rendering round-trips."""

import pytest

from repro.formalism import render_diagram, render_problem, black_diagram
from repro.graphs import cycle
from repro.local import SupportedInstance, minimum_rounds
from repro.problems import maximal_matching_problem


class TestMinimumRounds:
    def test_component_detection_needs_radius(self):
        """Toy task: every node must report the exact number of input
        edges within its view; with the full cycle as input this needs
        radius ⌈n/2⌉ to see everything, and minimum_rounds finds the
        smallest sufficient radius for a weaker target."""
        graph = cycle(8)
        instance = SupportedInstance.from_graphs(graph, list(graph.edges))

        def rule_for_radius(radius):
            def rule(view):
                # Count visible input edges (marks within the radius).
                seen = set()
                for edge, marked in view._visible_marks.items():
                    if marked:
                        seen.add(edge)
                return len(seen)

            return rule

        def is_valid(outputs):
            # Valid once every node sees at least 5 of the 8 edges.
            return all(count >= 5 for count in outputs.values())

        rounds = minimum_rounds(instance, rule_for_radius, is_valid, max_radius=4)
        # Radius T sees edges incident to nodes within distance T:
        # 2T + 1 edges on a cycle → need T = 2 for ≥ 5.
        assert rounds == 2

    def test_unachievable_returns_none(self):
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [list(graph.edges)[0]])
        rounds = minimum_rounds(
            instance,
            lambda radius: (lambda view: 0),
            lambda outputs: False,
            max_radius=2,
        )
        assert rounds is None


class TestRendering:
    def test_render_problem_contains_constraints(self):
        problem = maximal_matching_problem(3)
        text = render_problem(problem)
        assert "M O^2" in text
        assert "white constraint" in text

    def test_render_diagram_shows_reduction(self):
        problem = maximal_matching_problem(3)
        text = render_diagram(black_diagram(problem), title="black")
        assert "P -> O" in text
        assert "transitive reduction" in text
