"""Radius-T views (plain LOCAL and Supported LOCAL) and the supported
runners: disconnected G′, the T=0 edge case, and locality enforcement."""

import networkx as nx
import pytest

from repro.graphs import cycle
from repro.local import SupportedInstance, run_supported_view_algorithm
from repro.local.network import Network
from repro.local.views import collect_supported_view, collect_view
from repro.utils import LocalityViolationError, SimulationError


@pytest.fixture
def two_triangles():
    """A disconnected support graph: two triangle components."""
    graph = nx.Graph()
    for side in (0, 1):
        ring = [f"c{side}n{i}" for i in range(3)]
        for i in range(3):
            graph.add_edge(ring[i], ring[(i + 1) % 3])
    return graph


class TestLocalView:
    def test_radius_one_contents_and_ids(self):
        network = Network(graph=cycle(6))
        view = collect_view(network, 0, 1)
        assert set(view.subgraph.nodes) == {5, 0, 1}
        assert view.n == 6
        assert view.max_degree == 2
        assert view.id_of(0) == network.ids[0]
        assert view.neighbors(0) == sorted(
            [1, 5], key=lambda v: network.ids[v]
        )

    def test_out_of_radius_queries_raise(self):
        network = Network(graph=cycle(6))
        view = collect_view(network, 0, 1)
        with pytest.raises(LocalityViolationError):
            view.id_of(3)
        with pytest.raises(LocalityViolationError):
            view.neighbors(3)

    def test_radius_zero_sees_only_the_center(self):
        network = Network(graph=cycle(6))
        view = collect_view(network, 0, 0)
        assert set(view.subgraph.nodes) == {0}
        with pytest.raises(LocalityViolationError):
            view.neighbors(1)


class TestSupportedView:
    def test_t0_marks_are_exactly_own_incident_edges(self):
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [(0, 1)])
        view = instance.view(0, 0)
        assert view.is_input_edge(0, 1) is True
        assert view.is_input_edge(0, 5) is False
        # Edge (1, 2) is one hop too far at T=0.
        with pytest.raises(LocalityViolationError):
            view.is_input_edge(1, 2)

    def test_support_is_global_knowledge_even_at_t0(self, two_triangles):
        instance = SupportedInstance.from_graphs(two_triangles, [])
        view = instance.view("c0n0", 0)
        # The whole support graph and all IDs are known...
        assert set(view.support.nodes) == set(two_triangles.nodes)
        assert set(view.ids) == set(two_triangles.nodes)
        # ...but marks of the other component are not.
        with pytest.raises(LocalityViolationError):
            view.is_input_edge("c1n0", "c1n1")

    def test_marks_never_cross_support_components(self, two_triangles):
        """G′ lives in one component; even a huge radius reveals no marks
        from the other component (BFS distance is infinite)."""
        instance = SupportedInstance.from_graphs(
            two_triangles, [("c0n0", "c0n1")]
        )
        view = instance.view("c1n0", 10)
        assert view.is_input_edge("c1n0", "c1n1") is False
        with pytest.raises(LocalityViolationError):
            view.is_input_edge("c0n0", "c0n1")

    def test_disconnected_input_graph_marks_propagate_over_support(self):
        """G′ disconnected (two far-apart edges of a cycle): the *support*
        distance governs visibility, so a radius-2 view reads marks of
        input edges its own G′-component does not contain."""
        graph = cycle(8)
        instance = SupportedInstance.from_graphs(graph, [(0, 1), (4, 5)])
        assert not nx.is_connected(instance.input_graph().subgraph([0, 1, 4, 5]))
        view = instance.view(2, 2)
        assert view.is_input_edge(0, 1) is True
        assert view.is_input_edge(4, 5) is True
        assert view.input_neighbors(1) == [0]

    def test_input_neighbors_of_isolated_node_is_empty(self):
        """A node isolated in G′ ("halted" — it never joins the input
        graph) still has a view and interacts normally: neighbors see its
        edges as non-input."""
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [(2, 3)])
        assert instance.view(0, 0).input_neighbors(0) == []
        neighbor_view = instance.view(1, 1)
        assert neighbor_view.is_input_edge(0, 1) is False
        assert neighbor_view.is_input_edge(0, 5) is False


class TestSupportedInstance:
    def test_foreign_input_edge_rejected(self):
        with pytest.raises(SimulationError):
            SupportedInstance.from_graphs(cycle(4), [(0, 2)])

    def test_input_graph_and_degree(self):
        instance = SupportedInstance.from_graphs(cycle(5), [(0, 1), (1, 2)])
        assert instance.input_degree == 2
        assert set(instance.input_graph().nodes) == set(range(5))

    def test_empty_input_graph_has_degree_zero(self):
        assert SupportedInstance.from_graphs(cycle(4), []).input_degree == 0


class TestViewRunner:
    def test_t0_runner_outputs_and_rounds(self):
        graph = cycle(6)
        instance = SupportedInstance.from_graphs(graph, [(0, 1)])
        result = run_supported_view_algorithm(
            instance, 0, lambda view: len(view.input_neighbors(view.center))
        )
        assert result.rounds == 0
        assert result.outputs == {0: 1, 1: 1, 2: 0, 3: 0, 4: 0, 5: 0}

    def test_runner_covers_disconnected_support(self, two_triangles):
        instance = SupportedInstance.from_graphs(
            two_triangles, [("c0n0", "c0n1")]
        )
        result = run_supported_view_algorithm(
            instance,
            1,
            lambda view: sum(view._visible_marks.values()),
        )
        assert set(result.outputs) == set(two_triangles.nodes)
        # Every first-component node sees the single mark; the other
        # component sees none.
        for node, count in result.outputs.items():
            assert count == (1 if node.startswith("c0") else 0)

    def test_collect_supported_view_direct(self):
        network = Network(graph=cycle(4))
        view = collect_supported_view(network, frozenset([frozenset((0, 1))]), 0, 1)
        assert view.is_input_edge(0, 1) is True
        assert view.is_input_edge(1, 2) is False
