"""The vectorized engine: CSR array compilation, kernel dispatch, the
drop rule over arrays, and the per-node fallback for unported programs."""

import pytest

np = pytest.importorskip("numpy")

from repro import api  # noqa: E402
from repro.api.types import VectorizedSpec  # noqa: E402
from repro.graphs import cage, cycle  # noqa: E402
from repro.local import (  # noqa: E402
    EngineProbe,
    Network,
    NodeAlgorithm,
    run_synchronous,
)
from repro.local.simulator import RoundTrace  # noqa: E402
from repro.local.vectorized import (  # noqa: E402
    KERNELS,
    VectorizedAlgorithm,
    VectorNetwork,
    run_vectorized,
)
from repro.utils import SimulationError  # noqa: E402


class _EchoIds(NodeAlgorithm):
    """One round: send own ID, collect neighbor IDs, halt."""

    def send(self):
        return {port: self.ctx.node_id for port in self.ctx.ports}

    def receive(self, messages):
        self.halt(sorted(messages.values()))


class _BroadcastOnce(VectorizedAlgorithm):
    """Toy kernel: round 1, every live node announces on every port, then
    everyone halts.  Nodes named in ``data["pre_halted"]`` halt in init —
    messages addressed to them must be dropped by the engine."""

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.heard = np.zeros(vnet.n, dtype=np.int64)

    def init_all(self):
        pre = self.data.get("pre_halted", ())
        for i, node in enumerate(self.vnet.nodes):
            if node in pre:
                self.halted[i] = True

    def send_all(self, rnd):
        return np.flatnonzero(~self.halted[self.vnet.owner]), None

    def receive_all(self, rnd, slots, payloads):
        np.add.at(self.heard, self.vnet.owner[slots], 1)
        self.halted[:] = True

    def outputs_all(self):
        return self.heard.tolist()


class _NeverHalts(VectorizedAlgorithm):
    def outputs_all(self):
        return [None] * self.vnet.n


class TestVectorNetwork:
    def test_arrays_match_port_maps(self):
        graph, _d, _g = cage("petersen")
        network = Network(graph=graph)
        vnet = VectorNetwork.of(network)
        index = {node: i for i, node in enumerate(vnet.nodes)}
        for i, node in enumerate(vnet.nodes):
            degree = network.graph.degree(node)
            assert vnet.degrees[i] == degree
            for port in range(1, degree + 1):
                k = vnet.indptr[i] + port - 1
                neighbor = network.via_port(node, port)
                assert vnet.owner[k] == i
                assert vnet.dest[k] == index[neighbor]
                # reverse[k] is the receiver-side slot: the half-edge of
                # (neighbor, back port) — scattering to it IS delivery.
                back = network.port_to(neighbor, node)
                assert vnet.reverse[k] == vnet.indptr[index[neighbor]] + back - 1

    def test_of_is_memoized_per_network(self):
        network = Network(graph=cycle(5))
        assert VectorNetwork.of(network) is VectorNetwork.of(network)

    def test_n_property(self):
        assert VectorNetwork.of(Network(graph=cycle(7))).n == 7


class TestKernelDispatch:
    def test_kernel_runs_and_engine_drops_to_halted_receivers(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "test:broadcast", _BroadcastOnce)
        network = Network(graph=cycle(4))
        probe = EngineProbe()
        result = run_vectorized(
            network,
            _EchoIds,  # factory is unused when the kernel dispatches
            on_round=probe,
            vectorized=VectorizedSpec(
                kernel="test:broadcast", data={"pre_halted": frozenset({0})}
            ),
        )
        # Nodes 1,2,3 each broadcast on 2 ports = 6 sends; the two
        # addressed to pre-halted node 0 are dropped.
        assert result.rounds == 1
        assert probe.traces == [
            RoundTrace(
                round=1,
                live_nodes=3,
                messages_delivered=4,
                messages_dropped=2,
            )
        ]
        assert result.outputs == {0: 0, 1: 1, 2: 2, 3: 1}

    def test_nonhalting_kernel_detected(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "test:forever", _NeverHalts)
        with pytest.raises(SimulationError, match="did not halt within 5"):
            run_vectorized(
                Network(graph=cycle(3)),
                _EchoIds,
                max_rounds=5,
                vectorized=VectorizedSpec(kernel="test:forever"),
            )

    def test_shipped_programs_name_registered_kernels(self):
        """The ported suites really dispatch to kernels — a renamed kernel
        would raise at dispatch (and an unattached spec would silently
        fall back, voiding the speedup claim)."""
        cases = [
            ("matching:proposal", "matching:delta=3,x=0,y=1"),
            ("mis:aapr23", "mis:delta=3"),
            ("mis:luby", "mis:delta=3"),
            ("coloring:class-sweep", "coloring:delta=3,colors=4"),
            ("ruling-set:class-sweep", "ruling-set:delta=3,colors=1,beta=2"),
            ("arbdefective:class-sweep", "arbdefective:delta=4,colors=2"),
            ("sinkless-orientation:global", "sinkless-orientation:delta=3"),
        ]
        for algorithm_name, spec_text in cases:
            algorithm = api.resolve_algorithm(algorithm_name)
            spec = api.ProblemSpec.parse(spec_text)
            network = algorithm.default_network(spec, n=16, seed=0)
            program = algorithm.program(network, spec, {})
            assert program.vectorized is not None, algorithm_name
            assert program.vectorized.kernel in KERNELS, algorithm_name


class TestFallback:
    def test_no_spec_falls_back_to_object_semantics(self):
        network = Network(graph=cycle(4))
        assert run_vectorized(network, _EchoIds) == run_synchronous(
            Network(graph=cycle(4)), _EchoIds
        )

    def test_unknown_kernel_raises_instead_of_falling_back(self):
        """A spec naming an unregistered kernel is a bug (typo'd name,
        kernel renamed without the spec): it must fail loudly, not
        silently lose the speedup to the per-node path."""
        network = Network(graph=cycle(4))
        with pytest.raises(SimulationError, match="unknown kernel") as exc:
            run_vectorized(
                network,
                _EchoIds,
                vectorized=VectorizedSpec(kernel="no-such-kernel"),
            )
        # The message names the typo and the registry contents.
        assert "no-such-kernel" in str(exc.value)
        assert "matching:proposal" in str(exc.value)

    def test_fallback_traces_match_object_engine(self):
        def run(engine):
            probe = EngineProbe()
            result = engine(
                Network(graph=cycle(6)), _EchoIds, on_round=probe
            )
            return result, probe.traces

        assert run(run_vectorized) == run(run_synchronous)


class TestKernelTraceParity:
    """Per-round traces (live/delivered/dropped), not just outputs, agree
    with the object engine when a kernel dispatches."""

    @pytest.mark.parametrize(
        "algorithm_name,spec_text",
        [
            ("matching:proposal", "matching:delta=3,x=0,y=1"),
            ("mis:aapr23", "mis:delta=3"),
            ("mis:luby", "mis:delta=3"),
            ("coloring:class-sweep", "coloring:delta=3,colors=4"),
            ("ruling-set:class-sweep", "ruling-set:delta=3,colors=1,beta=2"),
            ("arbdefective:class-sweep", "arbdefective:delta=4,colors=2"),
            ("sinkless-orientation:global", "sinkless-orientation:delta=3"),
        ],
    )
    def test_traces_match(self, algorithm_name, spec_text):
        algorithm = api.resolve_algorithm(algorithm_name)
        spec = api.ProblemSpec.parse(spec_text)

        def run(engine, with_spec):
            network = algorithm.default_network(spec, n=16, seed=0)
            program = algorithm.program(network, spec, {})
            probe = EngineProbe()
            kwargs = {}
            if program.rng_streams is not None:
                kwargs["rng_for"] = program.rng_streams(network, 0)
            if with_spec:
                kwargs["vectorized"] = program.vectorized
            result = engine(
                network,
                program.factory,
                extra=program.extra,
                on_round=probe,
                **kwargs,
            )
            return result, probe.traces

        assert run(run_vectorized, True) == run(run_synchronous, False)


def _coloring_program(network, options):
    algorithm = api.resolve_algorithm("coloring:class-sweep")
    spec = api.ProblemSpec.parse("coloring:delta=3,colors=4")
    return algorithm.program(network, spec, options)


class TestSweepKernelEdges:
    def test_payload_scatter_announces_final_colors(self):
        """The payload-bearing exemplar: each announced ``("final", c)``
        payload must actually land in the receiver's seen-colors row —
        chained classes down a path make every mex depend on the
        neighbor's payload from the previous round."""
        nx = pytest.importorskip("networkx")
        network = Network(graph=nx.path_graph(5))
        program = _coloring_program(
            network, {"initial_coloring": {i: i for i in range(5)}}
        )
        result = run_vectorized(
            network,
            program.factory,
            extra=program.extra,
            vectorized=program.vectorized,
        )
        # mex down the path: each value is dictated by the announced
        # color of the already-final neighbor, so a lost payload shows.
        assert result.outputs == {0: 0, 1: 1, 2: 0, 3: 1, 4: 0}
        assert result.rounds == 5

    def test_empty_graph_runs_zero_rounds(self):
        nx = pytest.importorskip("networkx")
        network = Network(graph=nx.Graph())
        program = _coloring_program(network, {})
        result = run_vectorized(
            network,
            program.factory,
            extra=program.extra,
            vectorized=program.vectorized,
        )
        assert result.outputs == {}
        assert result.rounds == 0

    def test_num_classes_zero_halts_at_init_with_color_zero(self):
        """No classes to sweep: both engines halt everyone at init with
        color 0 in zero rounds (the per-node program's halt(0) branch)."""
        options = {"initial_coloring": dict.fromkeys(range(4), -1)}

        def run(engine, with_spec):
            network = Network(graph=cycle(4))
            program = _coloring_program(network, options)
            kwargs = {"vectorized": program.vectorized} if with_spec else {}
            return engine(
                network, program.factory, extra=program.extra, **kwargs
            )

        result = run(run_vectorized, True)
        assert result == run(run_synchronous, False)
        assert result.rounds == 0
        assert result.outputs == dict.fromkeys(range(4), 0)


class TestEnginePathTelemetry:
    def test_kernel_dispatch_reported_to_probe(self):
        _result, measurement = api.simulate(
            "mis:delta=3",
            algorithm="mis:aapr23",
            engine="vectorized",
            n=16,
        )
        assert measurement.engine_path == "kernel"
        # Telemetry only: canonical records stay engine-blind.
        assert "engine_path" not in measurement.as_record()

    def test_fallback_reported_to_probe(self):
        probe = EngineProbe()
        run_vectorized(Network(graph=cycle(4)), _EchoIds, on_round=probe)
        assert probe.engine_path == "fallback"

    def test_object_engine_leaves_path_empty(self):
        _result, measurement = api.simulate(
            "mis:delta=3", algorithm="mis:aapr23", engine="object", n=16
        )
        assert measurement.engine_path == ""

    def test_external_probe_forwarded_engine_path(self):
        extern = EngineProbe()
        _result, measurement = api.simulate(
            "mis:delta=3",
            algorithm="mis:aapr23",
            engine="vectorized",
            n=16,
            probe=extern,
        )
        assert extern.engine_path == "kernel"
        assert measurement.engine_path == "kernel"
