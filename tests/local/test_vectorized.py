"""The vectorized engine: CSR array compilation, kernel dispatch, the
drop rule over arrays, and the per-node fallback for unported programs."""

import pytest

np = pytest.importorskip("numpy")

from repro import api  # noqa: E402
from repro.api.types import VectorizedSpec  # noqa: E402
from repro.graphs import cage, cycle  # noqa: E402
from repro.local import (  # noqa: E402
    EngineProbe,
    Network,
    NodeAlgorithm,
    run_synchronous,
)
from repro.local.simulator import RoundTrace  # noqa: E402
from repro.local.vectorized import (  # noqa: E402
    KERNELS,
    VectorizedAlgorithm,
    VectorNetwork,
    run_vectorized,
)
from repro.utils import SimulationError  # noqa: E402


class _EchoIds(NodeAlgorithm):
    """One round: send own ID, collect neighbor IDs, halt."""

    def send(self):
        return {port: self.ctx.node_id for port in self.ctx.ports}

    def receive(self, messages):
        self.halt(sorted(messages.values()))


class _BroadcastOnce(VectorizedAlgorithm):
    """Toy kernel: round 1, every live node announces on every port, then
    everyone halts.  Nodes named in ``data["pre_halted"]`` halt in init —
    messages addressed to them must be dropped by the engine."""

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.heard = np.zeros(vnet.n, dtype=np.int64)

    def init_all(self):
        pre = self.data.get("pre_halted", ())
        for i, node in enumerate(self.vnet.nodes):
            if node in pre:
                self.halted[i] = True

    def send_all(self, rnd):
        return np.flatnonzero(~self.halted[self.vnet.owner]), None

    def receive_all(self, rnd, slots, payloads):
        np.add.at(self.heard, self.vnet.owner[slots], 1)
        self.halted[:] = True

    def outputs_all(self):
        return self.heard.tolist()


class _NeverHalts(VectorizedAlgorithm):
    def outputs_all(self):
        return [None] * self.vnet.n


class TestVectorNetwork:
    def test_arrays_match_port_maps(self):
        graph, _d, _g = cage("petersen")
        network = Network(graph=graph)
        vnet = VectorNetwork.of(network)
        index = {node: i for i, node in enumerate(vnet.nodes)}
        for i, node in enumerate(vnet.nodes):
            degree = network.graph.degree(node)
            assert vnet.degrees[i] == degree
            for port in range(1, degree + 1):
                k = vnet.indptr[i] + port - 1
                neighbor = network.via_port(node, port)
                assert vnet.owner[k] == i
                assert vnet.dest[k] == index[neighbor]
                # reverse[k] is the receiver-side slot: the half-edge of
                # (neighbor, back port) — scattering to it IS delivery.
                back = network.port_to(neighbor, node)
                assert vnet.reverse[k] == vnet.indptr[index[neighbor]] + back - 1

    def test_of_is_memoized_per_network(self):
        network = Network(graph=cycle(5))
        assert VectorNetwork.of(network) is VectorNetwork.of(network)

    def test_n_property(self):
        assert VectorNetwork.of(Network(graph=cycle(7))).n == 7


class TestKernelDispatch:
    def test_kernel_runs_and_engine_drops_to_halted_receivers(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "test:broadcast", _BroadcastOnce)
        network = Network(graph=cycle(4))
        probe = EngineProbe()
        result = run_vectorized(
            network,
            _EchoIds,  # factory is unused when the kernel dispatches
            on_round=probe,
            vectorized=VectorizedSpec(
                kernel="test:broadcast", data={"pre_halted": frozenset({0})}
            ),
        )
        # Nodes 1,2,3 each broadcast on 2 ports = 6 sends; the two
        # addressed to pre-halted node 0 are dropped.
        assert result.rounds == 1
        assert probe.traces == [
            RoundTrace(
                round=1,
                live_nodes=3,
                messages_delivered=4,
                messages_dropped=2,
            )
        ]
        assert result.outputs == {0: 0, 1: 1, 2: 2, 3: 1}

    def test_nonhalting_kernel_detected(self, monkeypatch):
        monkeypatch.setitem(KERNELS, "test:forever", _NeverHalts)
        with pytest.raises(SimulationError, match="did not halt within 5"):
            run_vectorized(
                Network(graph=cycle(3)),
                _EchoIds,
                max_rounds=5,
                vectorized=VectorizedSpec(kernel="test:forever"),
            )

    def test_shipped_programs_name_registered_kernels(self):
        """The ported suites really dispatch to kernels — a renamed kernel
        would silently fall back to per-node execution (correct but slow,
        and the tentpole claim would be void)."""
        cases = [
            ("matching:proposal", "matching:delta=3,x=0,y=1"),
            ("mis:aapr23", "mis:delta=3"),
            ("mis:luby", "mis:delta=3"),
        ]
        for algorithm_name, spec_text in cases:
            algorithm = api.resolve_algorithm(algorithm_name)
            spec = api.ProblemSpec.parse(spec_text)
            network = algorithm.default_network(spec, n=16, seed=0)
            program = algorithm.program(network, spec, {})
            assert program.vectorized is not None, algorithm_name
            assert program.vectorized.kernel in KERNELS, algorithm_name


class TestFallback:
    def test_no_spec_falls_back_to_object_semantics(self):
        network = Network(graph=cycle(4))
        assert run_vectorized(network, _EchoIds) == run_synchronous(
            Network(graph=cycle(4)), _EchoIds
        )

    def test_unknown_kernel_falls_back(self):
        network = Network(graph=cycle(4))
        result = run_vectorized(
            network,
            _EchoIds,
            vectorized=VectorizedSpec(kernel="no-such-kernel"),
        )
        assert result == run_synchronous(Network(graph=cycle(4)), _EchoIds)

    def test_fallback_traces_match_object_engine(self):
        def run(engine):
            probe = EngineProbe()
            result = engine(
                Network(graph=cycle(6)), _EchoIds, on_round=probe
            )
            return result, probe.traces

        assert run(run_vectorized) == run(run_synchronous)


class TestKernelTraceParity:
    """Per-round traces (live/delivered/dropped), not just outputs, agree
    with the object engine when a kernel dispatches."""

    @pytest.mark.parametrize(
        "algorithm_name,spec_text",
        [
            ("matching:proposal", "matching:delta=3,x=0,y=1"),
            ("mis:aapr23", "mis:delta=3"),
            ("mis:luby", "mis:delta=3"),
        ],
    )
    def test_traces_match(self, algorithm_name, spec_text):
        algorithm = api.resolve_algorithm(algorithm_name)
        spec = api.ProblemSpec.parse(spec_text)

        def run(engine, with_spec):
            network = algorithm.default_network(spec, n=16, seed=0)
            program = algorithm.program(network, spec, {})
            probe = EngineProbe()
            kwargs = {}
            if program.rng_streams is not None:
                kwargs["rng_for"] = program.rng_streams(network, 0)
            if with_spec:
                kwargs["vectorized"] = program.vectorized
            result = engine(
                network,
                program.factory,
                extra=program.extra,
                on_round=probe,
                **kwargs,
            )
            return result, probe.traces

        assert run(run_vectorized, True) == run(run_synchronous, False)
