"""The batched engine: flat compilation plus equivalence with the object
engine on the simulator's own protocol guarantees."""

import pytest

from repro.graphs import cage, cycle
from repro.local import (
    EngineProbe,
    FlatNetwork,
    Network,
    NodeAlgorithm,
    measured_run_synchronous,
    run_batched,
    run_synchronous,
)
from repro.utils import SimulationError

ENGINES = [run_synchronous, run_batched]


class _EchoIds(NodeAlgorithm):
    """One round: send own ID, collect neighbor IDs, halt."""

    def init(self):
        self.collected = {}

    def send(self):
        return {port: self.ctx.node_id for port in self.ctx.ports}

    def receive(self, messages):
        self.collected = dict(messages)
        self.halt(sorted(self.collected.values()))


class _InitHalter(NodeAlgorithm):
    """Halts during init() when told to; otherwise pings all neighbors once."""

    def init(self):
        if self.ctx.extra["halts_in_init"]:
            self.halt("init-halted")

    def send(self):
        return {port: "ping" for port in self.ctx.ports}

    def receive(self, messages):
        self.halt(sorted(messages.values()))


class TestFlatNetwork:
    def test_csr_arrays_match_port_maps(self):
        graph, _d, _g = cage("petersen")
        network = Network(graph=graph)
        flat = FlatNetwork.from_network(network)
        index = {node: i for i, node in enumerate(flat.nodes)}
        for i, node in enumerate(flat.nodes):
            degree = network.graph.degree(node)
            assert flat.indptr[i + 1] - flat.indptr[i] == degree
            for port in range(1, degree + 1):
                k = flat.indptr[i] + port - 1
                neighbor = network.via_port(node, port)
                assert flat.dest[k] == index[neighbor]
                assert flat.back_port[k] == network.port_to(neighbor, node)

    def test_of_is_memoized_per_network(self):
        network = Network(graph=cycle(5))
        assert FlatNetwork.of(network) is FlatNetwork.of(network)


@pytest.mark.parametrize("engine", ENGINES)
class TestBatchedProtocol:
    """Both engines honor the same protocol contracts."""

    def test_one_round_id_exchange(self, engine):
        network = Network(graph=cycle(4))
        result = engine(network, _EchoIds)
        assert result.rounds == 1
        for node in network.graph.nodes:
            expected = sorted(
                network.ids[neighbor] for neighbor in network.graph.neighbors(node)
            )
            assert result.outputs[node] == expected

    def test_nonhalting_algorithm_detected(self, engine):
        class Forever(NodeAlgorithm):
            pass

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError, match="did not halt"):
            engine(network, Forever, max_rounds=5)

    def test_invalid_port_detected(self, engine):
        class BadPort(NodeAlgorithm):
            def send(self):
                return {99: "boom"}

            def receive(self, messages):
                self.halt(None)

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError, match="invalid ports"):
            engine(network, BadPort)

    def test_float_port_equal_to_int_delivered(self, engine):
        """The object engine's set-membership check admits 1.0 as port 1;
        the batched engine must agree (engine-parity contract)."""

        class FloatPort(NodeAlgorithm):
            def send(self):
                return {1.0: "hello"}

            def receive(self, messages):
                self.halt(dict(messages))

        result = engine(Network(graph=cycle(3)), FloatPort)
        reference = run_synchronous(Network(graph=cycle(3)), FloatPort)
        assert result.outputs == reference.outputs
        assert sum(len(v) for v in result.outputs.values()) == 3  # delivered

    def test_fractional_and_nonnumeric_ports_stray(self, engine):
        for bad_port in (1.5, "x"):

            class BadPort(NodeAlgorithm):
                def send(self, _p=bad_port):
                    return {_p: "boom"}

                def receive(self, messages):
                    self.halt(None)

            network = Network(graph=cycle(3))
            with pytest.raises(SimulationError, match="invalid ports"):
                engine(network, BadPort)

    def test_halting_during_send_with_messages_rejected(self, engine):
        class SilenceViolator(NodeAlgorithm):
            def send(self):
                self.halt("done")
                return {port: "x" for port in self.ctx.ports}

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError, match="halted during send"):
            engine(network, SilenceViolator)

    def test_all_nodes_halting_in_init_is_a_zero_round_run(self, engine):
        network = Network(graph=cycle(5))
        result = engine(
            network, _InitHalter, extra=lambda node: {"halts_in_init": True}
        )
        assert result.rounds == 0
        assert set(result.outputs.values()) == {"init-halted"}


class TestEngineTraceEquivalence:
    """Identical outputs AND identical per-round traces on both engines."""

    @pytest.mark.parametrize("halted_parity", [0, 1])
    def test_init_halt_traces_match(self, halted_parity):
        def run(engine):
            network = Network(graph=cycle(6))
            probe = EngineProbe()
            result = engine(
                network,
                _InitHalter,
                extra=lambda node: {
                    "halts_in_init": node % 2 == halted_parity
                },
                on_round=probe,
            )
            return result, probe.traces

        object_result, object_traces = run(run_synchronous)
        batched_result, batched_traces = run(run_batched)
        assert object_result == batched_result
        assert object_traces == batched_traces

    def test_dropped_messages_counted_identically(self):
        network = Network(graph=cycle(4))
        halted_nodes = {node for node in network.graph.nodes if node % 2 == 0}
        result, measurement = measured_run_synchronous(
            network,
            _InitHalter,
            engine=run_batched,
            extra=lambda node: {"halts_in_init": node in halted_nodes},
        )
        assert result.rounds == 1
        assert measurement.messages_delivered == 0
        assert measurement.messages_dropped == 4  # 2 live nodes x 2 ports


class TestMeasuredRunMaxRounds:
    """max_rounds is an explicit guard threaded through the measured entry
    point (not swallowed by **kwargs), on both engines."""

    @pytest.mark.parametrize("engine", ENGINES)
    def test_non_terminating_run_raises(self, engine):
        class Forever(NodeAlgorithm):
            def send(self):
                return {}

            def receive(self, messages):
                pass

        network = Network(graph=cycle(3))
        with pytest.raises(SimulationError, match="did not halt within 7"):
            measured_run_synchronous(
                network, Forever, max_rounds=7, engine=engine
            )

    def test_default_guard_is_finite(self):
        import inspect

        signature = inspect.signature(measured_run_synchronous)
        assert signature.parameters["max_rounds"].default == 10_000
