"""Tests for the validity checkers, including failure injection."""

import networkx as nx
import pytest

from repro.checkers import (
    check_arbdefective_colored_ruling_set,
    check_arbdefective_coloring,
    check_bipartite_solution,
    check_half_edge_labeling,
    check_maximal_matching,
    check_mis,
    check_proper_coloring,
    check_ruling_set,
    check_sinkless_orientation,
    check_x_maximal_y_matching,
)
from repro.graphs import cage, cycle, mark_bipartition
from repro.problems import maximal_matching_problem, pi_arbdefective


class TestMatchingChecker:
    def test_empty_matching_on_edgeless_graph(self):
        graph = nx.empty_graph(3)
        assert check_maximal_matching(graph, set())

    def test_non_maximal_rejected_with_reason(self):
        graph = cycle(6)
        result = check_maximal_matching(graph, set())
        assert not result
        assert "matched neighbors" in result.reason

    def test_overmatched_rejected(self):
        graph = cycle(4)
        matching = {frozenset((0, 1)), frozenset((1, 2))}
        result = check_maximal_matching(graph, matching)
        assert not result
        assert "y = 1" in result.reason

    def test_non_edge_rejected(self):
        graph = cycle(6)
        result = check_maximal_matching(graph, {frozenset((0, 3))})
        assert not result

    def test_x_relaxation_weakens_coverage(self):
        """Larger x excuses unmatched nodes with fewer matched neighbors."""
        graph = cycle(6)
        matching = {frozenset((0, 1)), frozenset((3, 4))}
        assert check_x_maximal_y_matching(graph, matching, x=0, y=1)
        assert check_x_maximal_y_matching(graph, matching, x=1, y=1)


class TestColoringCheckers:
    def test_proper_coloring(self):
        graph = cycle(4)
        assert check_proper_coloring(graph, {0: 1, 1: 2, 2: 1, 3: 2})
        assert not check_proper_coloring(graph, {0: 1, 1: 1, 2: 1, 3: 2})

    def test_missing_color_rejected(self):
        graph = cycle(3)
        result = check_proper_coloring(graph, {0: 1, 1: 2})
        assert not result and "no color" in result.reason

    def test_arbdefective_requires_orientation(self):
        graph = cycle(4)
        color_of = {n: 1 for n in graph.nodes}
        result = check_arbdefective_coloring(graph, color_of, set(), 1, 1)
        assert not result and "unoriented" in result.reason

    def test_arbdefective_outdegree_cap(self):
        graph = nx.star_graph(3)  # center 0
        color_of = {n: 1 for n in graph.nodes}
        orientation = {(0, 1), (0, 2), (0, 3)}
        assert check_arbdefective_coloring(graph, color_of, orientation, 3, 1)
        result = check_arbdefective_coloring(graph, color_of, orientation, 2, 1)
        assert not result and "outdegree" in result.reason

    def test_color_range_enforced(self):
        graph = cycle(3)
        result = check_arbdefective_coloring(
            graph, {0: 1, 1: 5, 2: 2}, set(), 1, 2
        )
        assert not result and "outside" in result.reason


class TestRulingSetCheckers:
    def test_domination_radius(self):
        graph = nx.path_graph(7)
        assert check_ruling_set(graph, {3}, beta=3)
        assert not check_ruling_set(graph, {3}, beta=2)

    def test_independence_flag(self):
        graph = cycle(6)
        assert check_ruling_set(graph, {0, 1}, beta=2)
        result = check_ruling_set(graph, {0, 1}, beta=2, independent=True)
        assert not result and "adjacent" in result.reason

    def test_mis_checker(self):
        graph, _d, _g = cage("petersen")
        assert not check_mis(graph, set())

    def test_colored_ruling_set_composite(self):
        graph = nx.path_graph(5)
        ruling_set = {0, 3}
        color_of = {0: 1, 3: 1}
        assert check_arbdefective_colored_ruling_set(
            graph, ruling_set, color_of, set(), alpha=0, colors=1, beta=2
        )
        # A sparser S breaks domination at β = 1 (node 2 is 2 away).
        assert not check_arbdefective_colored_ruling_set(
            graph, {0, 4}, {0: 1, 4: 1}, set(), alpha=0, colors=1, beta=1
        )


class TestSinklessOrientationChecker:
    def test_cyclic_orientation(self):
        graph = cycle(4)
        orientation = {
            frozenset((i, (i + 1) % 4)): (i + 1) % 4 for i in range(4)
        }
        assert check_sinkless_orientation(graph, orientation)

    def test_sink_detected(self):
        graph = cycle(3)
        orientation = {
            frozenset((0, 1)): 0,
            frozenset((1, 2)): 1,
            frozenset((0, 2)): 0,
        }
        result = check_sinkless_orientation(graph, orientation)
        assert not result and "sink" in result.reason

    def test_unoriented_edge_detected(self):
        graph = cycle(3)
        result = check_sinkless_orientation(graph, {})
        assert not result and "unoriented" in result.reason


class TestFormalismSolutionCheckers:
    def test_bipartite_solution_checker(self):
        graph = mark_bipartition(cycle(4))
        problem = maximal_matching_problem(2)
        whites = [n for n, d in graph.nodes(data=True) if d["color"] == "white"]
        # Alternate M/O around the cycle so every node sees {M, O}.
        labeling = {}
        for white in whites:
            neighbors = sorted(graph.neighbors(white))
            labeling[frozenset((white, neighbors[0]))] = "M"
            labeling[frozenset((white, neighbors[1]))] = "O"
        result = check_bipartite_solution(graph, problem, labeling)
        assert bool(result) == all(
            sorted(
                labeling[frozenset((node, nb))] for nb in graph.neighbors(node)
            )
            == ["M", "O"]
            for node in graph.nodes
        )

    def test_unlabeled_edge_rejected(self):
        graph = mark_bipartition(cycle(4))
        problem = maximal_matching_problem(2)
        result = check_bipartite_solution(graph, problem, {})
        assert not result and "unlabeled" in result.reason

    def test_half_edge_checker_arity_guard(self):
        graph = cycle(4)
        problem = maximal_matching_problem(2).swap_sides()
        # swap_sides gives black arity 2? MM_2 black arity is 2 — use a
        # 3-arity problem to hit the guard instead.
        problem3 = pi_arbdefective(3, 2).swap_sides()
        labels = {}
        for u, v in graph.edges:
            labels[(u, v)] = "X"
            labels[(v, u)] = "X"
        result = check_half_edge_labeling(graph, problem3, labels)
        assert not result and "arity 2" in result.reason

    def test_half_edge_checker_accepts_all_x(self):
        graph = cycle(4)
        problem = pi_arbdefective(2, 1)
        labels = {}
        for u, v in graph.edges:
            labels[(u, v)] = "{1}"
            labels[(v, u)] = "X"
        # Node constraint: each node sees one {1} and one X — the white
        # constraint ℓ({1})^{Δ-0} X^0 = {1}{1} fails for mixed nodes, so
        # the checker must reject.
        result = check_half_edge_labeling(graph, problem, labels)
        assert not result
