"""Lemma B.1, executed: 1-round white algorithm → 0-round black for R(Π).

The 1-round algorithm under test is obtained by wrapping a *certified*
0-round algorithm (from a lift solution via Theorem 3.2) — every 0-round
algorithm is trivially a 1-round algorithm, and its correctness is already
machine-checked.  The Lemma B.1 construction then derives the 0-round
black outputs, which are checked against R(Π)'s constraints on every
admissible input graph — the lemma's statement, verified exhaustively.
"""

import pytest

from repro.core.lift import lift
from repro.core.speedup import (
    check_against_R_problem,
    derive_zero_round_black_algorithm,
    evaluate_one_round,
    is_correct_one_round,
)
from repro.core.zero_round import (
    admissible_subgraphs,
    algorithm_from_lift_solution,
    is_correct_zero_round,
)
from repro.formalism.labels import set_label_members
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.roundelim import apply_R
from repro.solvers.existence import solve_bipartite


@pytest.fixture
def c8():
    # Girth 8 ≥ 2T+4 = 6 for T = 1, as Lemma B.1 requires.
    return mark_bipartition(cycle(8))


def _one_round_rule_from_zero_round(graph, problem):
    """A certified 1-round white rule: run the Theorem 3.2 construction
    and ignore the radius-1 extra information."""
    lifted = lift(problem, 2, 2)
    explicit = lifted.to_problem()
    solution = solve_bipartite(graph, explicit)
    assert solution is not None, "MM_2 lift must be solvable on a cycle"
    decoded = {edge: set_label_members(label) for edge, label in solution.items()}
    zero_round = algorithm_from_lift_solution(graph, lifted, decoded)
    assert is_correct_zero_round(zero_round, problem, edge_limit=8)

    def rule(node, own_inputs, view):
        return zero_round.run(node, frozenset(own_inputs))

    return rule


class TestLemmaB1:
    def test_wrapped_zero_round_is_correct_one_round(self, c8):
        problem = maximal_matching_problem(2)
        rule = _one_round_rule_from_zero_round(c8, problem)
        assert is_correct_one_round(c8, rule, problem, edge_limit=8)

    def test_derived_black_outputs_satisfy_R(self, c8):
        """The heart of Lemma B.1: for every admissible G′ the derived
        0-round black outputs form valid R(Π) configurations."""
        problem = maximal_matching_problem(2)
        r_problem = apply_R(problem)
        rule = _one_round_rule_from_zero_round(c8, problem)
        checked = 0
        for input_edges in admissible_subgraphs(c8, 2, 2, edge_limit=8):
            derived = derive_zero_round_black_algorithm(
                c8, rule, problem, input_edges, edge_limit=8
            )
            assert check_against_R_problem(derived, c8, r_problem, input_edges)
            checked += 1
        assert checked == 2**8  # every subset of C8's edges is admissible

    def test_derived_sets_contain_observed_labels(self, c8):
        """Property (1) of the L* construction: L*_e ⊇ L_e ∋ the label the
        algorithm actually outputs on the full input graph."""
        problem = maximal_matching_problem(2)
        rule = _one_round_rule_from_zero_round(c8, problem)
        full_input = frozenset(frozenset(edge) for edge in c8.edges)
        actual = evaluate_one_round(c8, rule, full_input)
        derived = derive_zero_round_black_algorithm(
            c8, rule, problem, full_input, edge_limit=8
        )
        for edge, label_set in derived.items():
            assert actual[edge] in label_set

    def test_evaluate_one_round_labels_input_edges(self, c8):
        problem = maximal_matching_problem(2)
        rule = _one_round_rule_from_zero_round(c8, problem)
        edges = frozenset(frozenset(edge) for edge in c8.edges)
        labeling = evaluate_one_round(c8, rule, edges)
        assert set(labeling) == edges
