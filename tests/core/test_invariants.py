"""Cross-cutting property tests: invariants the paper's machinery must
satisfy on randomly generated small problems.

These are the laws the proofs rely on implicitly:

* RE preserves arities (paper §2, "Round elimination");
* lift labels are right-closed and the lift black constraint is downward
  monotone in the label-sets (replacing a set by a subset keeps validity);
* every solution found by the CSP checks out, and solvability is monotone
  under adding white configurations (relaxing the problem);
* Theorem 3.2's derived algorithm is correct whenever the lift solution
  validates.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.lift import lift
from repro.core.zero_round import (
    algorithm_from_lift_solution,
    check_lift_solution,
    is_correct_zero_round,
)
from repro.formalism.configurations import Configuration
from repro.formalism.constraints import Constraint
from repro.formalism.diagrams import black_diagram, is_right_closed
from repro.formalism.labels import set_label_members
from repro.formalism.problems import Problem
from repro.graphs import cycle, mark_bipartition
from repro.roundelim.operators import round_elimination
from repro.solvers.csp import check_edge_labeling
from repro.solvers.existence import solve_bipartite

LABELS = ["A", "B", "C"]

config2 = st.lists(st.sampled_from(LABELS), min_size=2, max_size=2).map(
    Configuration
)


def problems(white_size: int = 2, black_size: int = 2):
    """Random small problems with arity-2 constraints over {A,B,C}."""
    return st.builds(
        lambda whites, blacks: Problem.from_constraints(
            Constraint(whites), Constraint(blacks), name="rand"
        ),
        st.sets(config2, min_size=1, max_size=4),
        st.sets(config2, min_size=1, max_size=4),
    )


class TestREInvariants:
    @settings(max_examples=15, deadline=None)
    @given(problems())
    def test_re_preserves_arities(self, problem):
        eliminated = round_elimination(problem)
        assert eliminated.white_arity in (0, problem.white_arity)
        assert eliminated.black_arity in (0, problem.black_arity)

    @settings(max_examples=15, deadline=None)
    @given(problems())
    def test_re_black_labels_are_nonempty_sets(self, problem):
        eliminated = round_elimination(problem)
        for label in eliminated.alphabet:
            assert set_label_members(label)  # decodes, non-empty


class TestLiftInvariants:
    @settings(max_examples=15, deadline=None)
    @given(problems())
    def test_lift_labels_right_closed(self, problem):
        lifted = lift(problem, 3, 2)
        diagram = black_diagram(problem)
        for label_set in lifted.label_sets:
            assert is_right_closed(diagram, label_set)

    @settings(max_examples=10, deadline=None)
    @given(problems())
    def test_lift_black_downward_monotone(self, problem):
        """Shrinking a label-set in a valid black configuration keeps it
        valid (the universal condition only loses choices)."""
        lifted = lift(problem, 2, 2)
        sets = list(lifted.label_sets)
        for first in sets:
            for second in sets:
                if not lifted.black_allows([first, second]):
                    continue
                for shrunk in sets:
                    if shrunk < first:
                        assert lifted.black_allows([shrunk, second])

    @settings(max_examples=10, deadline=None)
    @given(problems())
    def test_lift_white_upward_monotone(self, problem):
        """Growing a label-set in a valid white configuration keeps it
        valid (the existential condition only gains choices)."""
        lifted = lift(problem, 2, 2)
        sets = list(lifted.label_sets)
        for first in sets:
            for second in sets:
                if not lifted.white_allows([first, second]):
                    continue
                for grown in sets:
                    if grown > first:
                        assert lifted.white_allows([grown, second])


class TestSolverTheoremBridge:
    @settings(max_examples=10, deadline=None)
    @given(problems(), st.sampled_from([4, 6]))
    def test_csp_solutions_validate_and_lift_to_algorithms(self, problem, n):
        """Any lift solution the CSP finds must validate against the lift
        predicates, and the Theorem 3.2 algorithm derived from it must be
        exhaustively correct."""
        graph = mark_bipartition(cycle(n))
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        solution = solve_bipartite(graph, explicit)
        if solution is None:
            return
        assert check_edge_labeling(graph, explicit, solution)
        decoded = {
            edge: set_label_members(label) for edge, label in solution.items()
        }
        assert check_lift_solution(graph, lifted, decoded)
        algorithm = algorithm_from_lift_solution(graph, lifted, decoded)
        assert is_correct_zero_round(algorithm, problem, edge_limit=n)

    @settings(max_examples=10, deadline=None)
    @given(problems())
    def test_solvability_monotone_under_black_relaxation(self, problem):
        """Adding black configurations can only help solvability."""
        graph = mark_bipartition(cycle(4))
        richer_black = Constraint(
            set(problem.black.configurations)
            | {Configuration([a, b]) for a in LABELS for b in LABELS}
        )
        relaxed = Problem.from_constraints(problem.white, richer_black)
        if solve_bipartite(graph, problem) is not None:
            assert solve_bipartite(graph, relaxed) is not None
