"""Appendix C, tested: instance counting and executable derandomization."""

import math
import random

import pytest

from repro.core.derandomization import (
    count_supported_instances_exact,
    derandomize_by_union_bound,
    hypergraph_instance_count_bound,
    randomized_rounds_from_deterministic,
    supported_instance_count_bound,
    supported_instance_count_exact_exponent,
    union_bound_guarantee,
)
from repro.utils import CertificateError


class TestInstanceCounting:
    @pytest.mark.parametrize("n", [1, 2, 3, 4, 5])
    def test_exact_count_below_paper_bound(self, n):
        """The paper's 2^{3n²} dominates the exact instance count."""
        exact = count_supported_instances_exact(n)
        assert exact <= supported_instance_count_bound(n)

    @pytest.mark.parametrize("n", [2, 4, 8, 16])
    def test_exponent_decomposition_below_3n2(self, n):
        """C(n,2) + log₂(n!) + n² ≤ 3n² (the Appendix C computation)."""
        assert supported_instance_count_exact_exponent(n) <= 3 * n * n

    def test_hypergraph_bound_larger(self):
        for n in (2, 3, 5):
            assert hypergraph_instance_count_bound(n) >= supported_instance_count_bound(n)

    def test_exact_count_capped(self):
        with pytest.raises(CertificateError):
            count_supported_instances_exact(10)


class TestBoundTransforms:
    def test_randomized_value_capped_by_instance_size(self):
        # At size n the randomized bound can't exceed sqrt(log2(n)/3).
        value = randomized_rounds_from_deterministic(100.0, n=2**48)
        assert value == pytest.approx(math.sqrt(48 / 3))

    def test_small_deterministic_value_passes_through(self):
        assert randomized_rounds_from_deterministic(1.0, n=2**300) == 1.0


class TestUnionBound:
    def test_arithmetic_guarantee(self):
        assert union_bound_guarantee(10, 0.05)
        assert not union_bound_guarantee(10, 0.2)

    def test_executable_derandomization_finds_seed(self):
        """A randomized 'algorithm' failing on a seeded 10% of instances:
        with 8 instances and failure probability 1/10 < 1/8... the union
        bound promises a universally good seed, and the search finds it."""
        instances = list(range(8))
        seeds = list(range(64))

        def succeeds(instance: int, seed: int) -> bool:
            rng = random.Random(f"{instance}/{seed}")
            return rng.random() > 0.1

        result = derandomize_by_union_bound(instances, seeds, succeeds)
        assert result.succeeded
        for instance in instances:
            assert succeeds(instance, result.seed)

    def test_reports_failures_when_no_seed_works(self):
        instances = [0, 1]
        result = derandomize_by_union_bound(
            instances, seeds=[0, 1, 2], succeeds=lambda i, s: i == 0
        )
        assert not result.succeeded
        assert all(count == 1 for count in result.failure_counts.values())
