"""Theorem 3.2 / Corollary 3.3, tested constructively and independently.

The equivalence "0-round white algorithm exists ⟺ lift solution exists"
is the paper's central theorem.  Tests here:

* round-trip both constructive directions on solvable instances;
* brute-force the *entire algorithm space* on tiny instances and compare
  against CSP solvability of the lift — an independent check of the
  theorem itself, not just of the constructions.
"""

import networkx as nx
import pytest

from repro.core.lift import lift
from repro.core.zero_round import (
    admissible_subgraphs,
    zero_round_solvable,
    algorithm_from_lift_solution,
    check_lift_solution,
    evaluate_on_subgraph,
    exists_zero_round_algorithm,
    is_correct_zero_round,
    lift_solution_from_algorithm,
)
from repro.formalism.labels import set_label_members
from repro.graphs import cycle, mark_bipartition
from repro.problems import (
    maximal_matching_problem,
    sinkless_orientation_problem,
)
from repro.solvers.existence import solve_bipartite


@pytest.fixture
def c6():
    return mark_bipartition(cycle(6))


@pytest.fixture
def c4():
    return mark_bipartition(cycle(4))


@pytest.fixture(params=["csp", "sat"])
def backend(request):
    """Every lift-solving test runs through both solver backends."""
    return request.param


class TestAdmissibleSubgraphs:
    def test_degree_caps_respected(self, c4):
        for subgraph in admissible_subgraphs(c4, delta_prime=1, r_prime=2):
            degrees = {}
            for edge in subgraph:
                for endpoint in edge:
                    degrees[endpoint] = degrees.get(endpoint, 0) + 1
            for node, degree in degrees.items():
                cap = 1 if c4.nodes[node]["color"] == "white" else 2
                assert degree <= cap

    def test_counts_on_c4(self, c4):
        # All 16 edge subsets of C4 have degrees ≤ 2.
        assert len(list(admissible_subgraphs(c4, 2, 2))) == 16


class TestTheorem32RoundTrip:
    def test_matching_round_trip_on_c6(self, c6, backend):
        problem = maximal_matching_problem(2)
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        solution = solve_bipartite(c6, explicit, backend=backend)
        assert solution is not None
        decoded = {
            edge: set_label_members(label) for edge, label in solution.items()
        }
        assert check_lift_solution(c6, lifted, decoded)

        algorithm = algorithm_from_lift_solution(c6, lifted, decoded)
        assert is_correct_zero_round(algorithm, problem)

        back = lift_solution_from_algorithm(algorithm, lifted)
        assert check_lift_solution(c6, lifted, back)

    def test_algorithm_outputs_are_deterministic(self, c6, backend):
        problem = maximal_matching_problem(2)
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        solution = solve_bipartite(c6, explicit, backend=backend)
        decoded = {
            edge: set_label_members(label) for edge, label in solution.items()
        }
        algorithm = algorithm_from_lift_solution(c6, lifted, decoded)
        node = next(
            node for node, data in c6.nodes(data=True) if data["color"] == "white"
        )
        neighbors = frozenset(list(c6.neighbors(node))[:2])
        assert algorithm.run(node, neighbors) == algorithm.run(node, neighbors)


class TestTheorem32Independently:
    """Brute force over the algorithm space vs lift solvability."""

    def test_solvable_side_on_c4(self, c4, backend):
        problem = maximal_matching_problem(2)
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        lift_solvable = solve_bipartite(c4, explicit, backend=backend) is not None
        algorithm_exists = exists_zero_round_algorithm(c4, problem)
        assert lift_solvable == algorithm_exists

    def test_unsolvable_side_forced_mismatch(self, c4, backend):
        """White constraint forces M M while black needs M O: unsolvable
        by *any* algorithm; lift solvability and the brute force over the
        full algorithm space must both say no."""
        from repro.formalism.problems import problem_from_lines

        problem = problem_from_lines(["M M"], ["M O"], name="forced-MM")
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        lift_solvable = solve_bipartite(c4, explicit, backend=backend) is not None
        algorithm_exists = exists_zero_round_algorithm(c4, problem)
        assert lift_solvable == algorithm_exists
        assert not lift_solvable

    def test_sinkless_orientation_on_c4(self, c4, backend):
        """SO with Δ' = 2 = Δ: solvable 0-round (G is fully known)."""
        problem = sinkless_orientation_problem(2)
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        lift_solvable = solve_bipartite(c4, explicit, backend=backend) is not None
        algorithm_exists = exists_zero_round_algorithm(c4, problem)
        assert lift_solvable == algorithm_exists
        assert lift_solvable  # cycles orient cyclically


class TestEvaluation:
    def test_evaluate_on_subgraph_labels_input_edges_only(self, c6, backend):
        problem = maximal_matching_problem(2)
        lifted = lift(problem, 2, 2)
        explicit = lifted.to_problem()
        solution = solve_bipartite(c6, explicit, backend=backend)
        decoded = {
            edge: set_label_members(label) for edge, label in solution.items()
        }
        algorithm = algorithm_from_lift_solution(c6, lifted, decoded)
        edges = sorted(c6.edges, key=str)
        chosen = frozenset({frozenset(edges[0]), frozenset(edges[2])})
        labeling = evaluate_on_subgraph(algorithm, chosen)
        assert set(labeling) == set(chosen)


class TestZeroRoundSolvableGate:
    """The packaged Theorem 3.2 gate, including degenerate supports."""

    def test_gate_matches_brute_force(self, c4, backend):
        for problem in (
            maximal_matching_problem(2),
            sinkless_orientation_problem(2),
        ):
            gate = zero_round_solvable(c4, problem, backend=backend)
            assert gate == exists_zero_round_algorithm(c4, problem)

    def test_empty_white_class(self, backend):
        # No white nodes at all: nothing to label, the empty labeling is
        # vacuously a solution whatever the problem says.
        graph = nx.Graph()
        graph.add_node("b0", color="black")
        graph.add_node("b1", color="black")
        problem = maximal_matching_problem(2)
        assert zero_round_solvable(graph, problem, backend=backend)

    def test_empty_black_class(self, backend):
        graph = nx.Graph()
        graph.add_node("w0", color="white")
        problem = maximal_matching_problem(2)
        assert zero_round_solvable(graph, problem, backend=backend)

    def test_unused_alphabet_labels_do_not_change_the_gate(self, c4, backend):
        base = maximal_matching_problem(2)
        padded = type(base)(
            alphabet=base.alphabet | {"Z"},
            white=base.white,
            black=base.black,
            name=base.name,
        )
        assert zero_round_solvable(c4, base, backend=backend) == \
            zero_round_solvable(c4, padded, backend=backend)

    @pytest.mark.parametrize("backend_name", ["csp", "sat"])
    def test_budget_exhaustion_mid_enumeration(self, c6, backend_name):
        from repro.solvers import make_solver
        from repro.utils import SolverLimitError

        problem = lift(maximal_matching_problem(2), 2, 2).to_problem()
        with pytest.raises(SolverLimitError):
            solver = make_solver(c6, problem, backend=backend_name, budget=40)
            for _ in solver.iter_solutions():
                pass
