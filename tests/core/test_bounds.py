"""Unit tests for the closed-form bound evaluators."""

import math

import pytest

from repro.core.bounds import (
    aapr23_mis_parameters,
    corollary_35_bound,
    lemma_64_sequence_length,
    matching_sequence_length,
    theorem_34_bound,
    theorem_41_bound,
    theorem_51_applicable,
    theorem_51_bound,
    theorem_61_bound,
    theorem_b2_bound,
)
from repro.utils import InvalidParameterError


class TestTheoremB2:
    def test_girth_limited(self):
        assert theorem_b2_bound(k=100, girth=10) == 3.0

    def test_sequence_limited(self):
        assert theorem_b2_bound(k=2, girth=1000) == 4

    def test_infinite_girth(self):
        assert theorem_b2_bound(k=5, girth=math.inf) == 10


class TestTheorem34:
    def test_deterministic_dominates_randomized(self):
        bound = theorem_34_bound(k=10, delta=4, rank=4, n=10**9, epsilon=1.0, c=1)
        assert bound.deterministic >= bound.randomized

    def test_large_k_is_girth_limited(self):
        bound = theorem_34_bound(k=10**6, delta=4, rank=4, n=10**6, epsilon=1.0, c=1)
        assert bound.deterministic < 2 * 10**6

    def test_rounded_never_negative(self):
        bound = theorem_34_bound(k=1, delta=4, rank=4, n=20, epsilon=0.1, c=1)
        det, rand = bound.rounded()
        assert det >= 0 and rand >= 0

    def test_hypergraph_form_smaller(self):
        big_n = 10**12
        bip = theorem_34_bound(k=50, delta=4, rank=4, n=big_n, epsilon=1.0, c=1)
        hyp = corollary_35_bound(k=50, delta=4, rank=4, n=big_n, epsilon=1.0, c=1)
        assert hyp.deterministic <= bip.deterministic


class TestTheorem41:
    def test_k_formula(self):
        assert matching_sequence_length(delta_prime=10, x=0, y=1) == 8
        assert matching_sequence_length(delta_prime=10, x=2, y=2) == 2

    def test_bound_grows_with_delta_prime(self):
        small = theorem_41_bound(delta=50, delta_prime=5, x=0, y=1, n=10**9)
        large = theorem_41_bound(delta=50, delta_prime=10, x=0, y=1, n=10**9)
        assert large.deterministic >= small.deterministic

    def test_bound_shrinks_with_y(self):
        y1 = theorem_41_bound(delta=60, delta_prime=12, x=0, y=1, n=10**18)
        y2 = theorem_41_bound(delta=60, delta_prime=12, x=0, y=3, n=10**18)
        assert y1.deterministic >= y2.deterministic


class TestTheorem51:
    def test_applicability_window(self):
        assert theorem_51_applicable(delta=100, delta_prime=10, alpha=0, colors=3)
        assert not theorem_51_applicable(delta=100, delta_prime=2, alpha=1, colors=4)

    def test_bound_is_log_delta_n(self):
        bound = theorem_51_bound(delta=10, n=10**6)
        assert bound.deterministic == pytest.approx(6.0)


class TestTheorem61:
    def test_beta_guard(self):
        with pytest.raises(InvalidParameterError):
            theorem_61_bound(
                delta=100, delta_prime=10, alpha=0, colors=1, beta=0, n=100
            )

    def test_quality_guard(self):
        with pytest.raises(InvalidParameterError):
            theorem_61_bound(
                delta=100, delta_prime=4, alpha=3, colors=2, beta=1, n=100
            )

    def test_beta_tradeoff_shape(self):
        """Higher β flattens the (Δ̄/(α+1)c)^{1/β} term: at large Δ̄ the
        β = 1 bound is largest."""
        kwargs = dict(delta=10**5, delta_prime=32, alpha=0, colors=1, n=10**300)
        beta1 = theorem_61_bound(beta=1, **kwargs)
        beta2 = theorem_61_bound(beta=2, **kwargs)
        beta3 = theorem_61_bound(beta=3, **kwargs)
        assert beta1.deterministic > beta2.deterministic > beta3.deterministic

    def test_lemma_64_length(self):
        assert lemma_64_sequence_length(
            delta=100, alpha=0, colors=1, k=64, beta=2, epsilon=1.0
        ) == 16
        with pytest.raises(InvalidParameterError):
            lemma_64_sequence_length(delta=10, alpha=0, colors=1, k=10, beta=1)


class TestAapr23:
    def test_parameters_shape(self):
        delta, delta_prime, bound = aapr23_mis_parameters(2**20)
        assert delta > delta_prime >= 2
        assert bound == pytest.approx(20 / math.log2(20))

    def test_small_n_rejected(self):
        with pytest.raises(InvalidParameterError):
            aapr23_mis_parameters(8)
