"""Unit tests for the lift operator (Definition 3.1)."""

import pytest
from itertools import product

from repro.core.lift import lift
from repro.formalism.diagrams import black_diagram, is_right_closed
from repro.formalism.labels import set_label_members
from repro.problems import (
    maximal_matching_problem,
    pi_arbdefective,
    pi_matching_endpoint,
    sinkless_orientation_problem,
)
from repro.utils import InvalidParameterError


class TestLiftConstruction:
    def test_arity_guards(self):
        so = sinkless_orientation_problem(3)
        with pytest.raises(InvalidParameterError):
            lift(so, delta=2, rank=2)  # Δ < Δ'
        with pytest.raises(InvalidParameterError):
            lift(so, delta=3, rank=1)  # r < r'

    def test_labels_are_right_closed(self):
        problem = pi_matching_endpoint(4, 1)
        lifted = lift(problem, 5, 5)
        diagram = black_diagram(problem)
        for label_set in lifted.label_sets:
            assert is_right_closed(diagram, label_set)
            assert label_set  # non-empty

    def test_matching_endpoint_label_sets(self):
        """§4.2 lists the right-closed sets of Π_Δ'(x',y); the mechanical
        strength relation at the endpoint refines the drawn Figure 1
        (O and X become equivalent), giving the 5-set sub-family — a
        documented reproduction finding (EXPERIMENTS.md)."""
        problem = pi_matching_endpoint(4, 1)
        lifted = lift(problem, 4, 4)
        sets = {frozenset(s) for s in lifted.label_sets}
        assert sets == {
            frozenset("OX"),
            frozenset("MOX"),
            frozenset("OPX"),
            frozenset("MOPX"),
            frozenset("MOPXZ"),
        }

    def test_maximal_matching_label_sets_match_appendix_a(self):
        """For the Appendix A encoding, right-closed sets of the diagram
        {P→O} are M, O, MO, OP, MOP."""
        problem = maximal_matching_problem(3)
        lifted = lift(problem, 3, 3)
        sets = {frozenset(s) for s in lifted.label_sets}
        assert sets == {
            frozenset("M"),
            frozenset("O"),
            frozenset("MO"),
            frozenset("OP"),
            frozenset("MOP"),
        }


class TestLiftPredicates:
    def test_black_condition_universal(self):
        """Definition 3.1 black: every r'-subset, every choice in C_B."""
        so = sinkless_orientation_problem(2)
        lifted = lift(so, 2, 2)
        o_set, i_set = frozenset("O"), frozenset("I")
        assert lifted.black_allows([o_set, i_set])
        assert not lifted.black_allows([o_set, o_set])
        assert not lifted.black_allows([frozenset("IO"), i_set])

    def test_white_condition_existential(self):
        so = sinkless_orientation_problem(2)
        lifted = lift(so, 3, 2)
        o_set, i_set = frozenset("O"), frozenset("I")
        full = frozenset("IO")
        # Every 2-subset of {O},{O},{I} admits a choice with one O.
        assert lifted.white_allows([o_set, o_set, i_set])
        # The 2-subset ({I},{I}) has no choice containing O.
        assert not lifted.white_allows([i_set, i_set, o_set])
        # Full sets always admit a choice.
        assert lifted.white_allows([full, full, full])

    def test_wrong_arity_rejected(self):
        so = sinkless_orientation_problem(2)
        lifted = lift(so, 3, 2)
        assert not lifted.white_allows([frozenset("O")])
        assert not lifted.black_allows([frozenset("O")])


class TestExplicitMaterialization:
    def test_to_problem_agrees_with_predicates(self):
        problem = pi_arbdefective(2, 2)
        lifted = lift(problem, 3, 2)
        explicit = lifted.to_problem()
        assert explicit.white_arity == 3
        assert explicit.black_arity == 2
        # Every explicit white configuration passes the predicate.
        for config in explicit.white:
            sets = [set_label_members(label) for label in config]
            assert lifted.white_allows(sets)
        for config in explicit.black:
            sets = [set_label_members(label) for label in config]
            assert lifted.black_allows(sets)

    def test_to_problem_is_exhaustive(self):
        """No valid multiset is missing from the materialization."""
        so = sinkless_orientation_problem(2)
        lifted = lift(so, 2, 2)
        explicit = lifted.to_problem()
        from repro.utils.multiset import all_multisets

        names = {s: frozenset(s) for s in explicit.alphabet}
        decoded = {name: set_label_members(name) for name in explicit.alphabet}
        for multiset in all_multisets(explicit.alphabet, 2):
            sets = [decoded[name] for name in multiset]
            from repro.formalism.configurations import Configuration

            assert lifted.white_allows(sets) == (
                Configuration(multiset) in explicit.white
            )
            assert lifted.black_allows(sets) == (
                Configuration(multiset) in explicit.black
            )

    def test_right_close(self):
        problem = maximal_matching_problem(3)
        lifted = lift(problem, 3, 3)
        assert lifted.right_close(["P"]) == frozenset("OP")
        assert lifted.right_close(["M", "P"]) == frozenset("MOP")
