"""End-to-end Theorem 3.4 / Corollary 3.5 pipelines on concrete instances."""

import pytest

from repro.core.framework import (
    supported_local_lower_bound,
    supported_local_lower_bound_hypergraph,
)
from repro.graphs import bipartite_double_cover, cage, cycle, mark_bipartition
from repro.problems import (
    pi_arbdefective,
    sinkless_orientation_problem,
)
from repro.roundelim import constant_sequence
from repro.utils import CertificateError


class TestHypergraphPipeline:
    def test_arbdefective_lower_bound_on_petersen(self):
        """Π_2(1) with Δ' = 2 on the Petersen graph (Δ = 3, girth 5):
        lift unsolvable (χ = 3 > 2k = 2) → a positive round lower bound
        from the constant fixed-point sequence."""
        petersen, _degree, girth = cage("petersen")
        problem = pi_arbdefective(2, 1)
        sequence = constant_sequence(problem, length=4)
        certificate = supported_local_lower_bound_hypergraph(
            petersen, sequence, problem, delta=3, rank=2
        )
        assert certificate.lift_unsolvable
        assert certificate.girth == girth  # rank-2 hypergraph girth = graph girth
        # min{k, (g−4)/2} with k = 4, hypergraph girth 2.5 → 0.25 > 0? No:
        # (2.5−4)/2 < 0 — small graphs are girth-limited; the *mechanism*
        # (unsat certificate) is the tested artifact here.
        assert certificate.sequence_length == 4

    def test_sinkless_orientation_bkk23(self):
        """SO with Δ' = 2 < Δ = 3: lift unsolvable on Petersen — the
        [BKK+23] result reproduced inside the general framework."""
        petersen, _degree, _girth = cage("petersen")
        problem = sinkless_orientation_problem(2)
        sequence = constant_sequence(problem, length=1)
        certificate = supported_local_lower_bound_hypergraph(
            petersen, sequence, problem, delta=3, rank=2, verify_sequence=False
        )
        assert certificate.lift_unsolvable

    def test_solvable_lift_raises(self):
        """When Δ' = Δ, SO lifts ARE solvable: the pipeline must refuse to
        emit a certificate."""
        petersen, _degree, _girth = cage("petersen")
        problem = sinkless_orientation_problem(3)
        sequence = constant_sequence(problem, length=1)
        with pytest.raises(CertificateError):
            supported_local_lower_bound_hypergraph(
                petersen, sequence, problem, delta=3, rank=2
            )


class TestBipartitePipeline:
    def test_bipartite_certificate_on_double_cover(self):
        """The §4.2 shape: take a high-girth graph, pass to the double
        cover, refute the lift.  Instance: proper-2-coloring-style problem
        that is unsolvable with partial views on a long even cycle."""
        from repro.formalism.problems import problem_from_lines

        support = mark_bipartition(cycle(10))
        # White nodes of full degree must output M M, black nodes need
        # M O: unsolvable on any graph containing a full white node, and
        # the lift refutation certifies it.
        problem = problem_from_lines(["M M"], ["M O"], name="forced-MM")
        sequence = constant_sequence(problem, length=2)
        certificate = supported_local_lower_bound(
            support, sequence, problem, delta=2, rank=2
        )
        assert certificate.lift_unsolvable
        assert certificate.bipartite
        assert certificate.girth == 10
        # min{2k, (g−4)/2} = min{4, 3} = 3 deterministic rounds.
        assert certificate.deterministic_rounds == 3
        assert certificate.randomized_rounds <= certificate.deterministic_rounds

    def test_certificate_bound_object(self):
        from repro.formalism.problems import problem_from_lines

        support = mark_bipartition(cycle(10))
        problem = problem_from_lines(["M M"], ["M O"], name="forced-MM")
        sequence = constant_sequence(problem, length=2)
        certificate = supported_local_lower_bound(
            support, sequence, problem, delta=2, rank=2
        )
        det, rand = certificate.bound().rounded()
        assert det == 3
        assert rand >= 0
