"""Oracles: green on the real implementations, and — the part that makes a
fuzzer trustworthy — each one *catches a planted bug* in the layer it
cross-checks."""

import random

import pytest

from repro.verification.oracles import (
    ORACLES,
    available_oracles,
    resolve_oracle,
    run_check,
)
from repro.utils import InvalidParameterError


def cases_for(name: str, count: int = 8):
    oracle = ORACLES[name]
    for index in range(count):
        yield oracle.generate(random.Random(f"clean:{name}:{index}"))


@pytest.mark.parametrize("name", sorted(ORACLES))
def test_oracle_is_green_on_real_implementations(name):
    oracle = ORACLES[name]
    for params in cases_for(name):
        assert oracle.check(params) is None, params


def test_registry_listing_and_resolution():
    assert available_oracles() == sorted(ORACLES)
    assert {
        "roundelim",
        "engines",
        "solver",
        "sat",
        "serialization",
        "views",
        "explore",
        "reliability",
    } == set(ORACLES)
    assert resolve_oracle("solver") is ORACLES["solver"]
    with pytest.raises(InvalidParameterError):
        resolve_oracle("nope")


def test_run_check_converts_crashes_into_findings():
    class Exploding:
        name = "exploding"

        def check(self, params):
            raise RuntimeError("boom")

    detail = run_check(Exploding(), {})
    assert detail is not None and "RuntimeError" in detail and "boom" in detail


def _first_failure(name: str, attempts: int = 60):
    oracle = ORACLES[name]
    for index in range(attempts):
        params = oracle.generate(random.Random(f"plant:{name}:{index}"))
        detail = run_check(oracle, params)
        if detail is not None:
            return params, detail
    return None


def test_roundelim_oracle_catches_a_corrupted_kernel(monkeypatch):
    """Dropping one white configuration from the kernel's R output must
    surface as a constraint diff (apply_R imports the kernel lazily, so
    patching the kernel module is enough for R, R̄ and RE)."""
    from repro.formalism.constraints import Constraint
    from repro.formalism.problems import Problem
    from repro.roundelim import kernel

    real = kernel.apply_R_kernel

    def corrupted(problem, budget=0, **kwargs):
        result = real(problem, budget=budget, **kwargs)
        configs = sorted(result.white.configurations, key=lambda c: c.labels)
        return Problem(
            alphabet=result.alphabet,
            white=Constraint(configs[1:]),
            black=result.black,
            name=result.name,
        )

    monkeypatch.setattr(kernel, "apply_R_kernel", corrupted)
    failure = _first_failure("roundelim")
    assert failure is not None
    assert "constraints differ" in failure[1] or "alphabets differ" in failure[1]


def test_engines_oracle_catches_a_diverging_backend(monkeypatch):
    from repro import api

    real = api.solve

    def skewed(spec, **kwargs):
        report = real(spec, **kwargs)
        if kwargs.get("engine") == "batched":
            object.__setattr__(report, "rounds", report.rounds + 1)
        return report

    monkeypatch.setattr("repro.verification.oracles.api.solve", skewed)
    failure = _first_failure("engines", attempts=5)
    assert failure is not None
    assert "diverges" in failure[1]


def test_solver_oracle_catches_an_incomplete_search(monkeypatch):
    """A CSP that claims unsat on every instance must disagree with brute
    force as soon as a solvable case is generated."""
    monkeypatch.setattr(
        "repro.verification.oracles.solve_bipartite",
        lambda graph, problem, **kwargs: None,
    )
    failure = _first_failure("solver")
    assert failure is not None
    assert "existence disagrees" in failure[1]


def test_sat_oracle_catches_dropped_orbit_expansion(monkeypatch):
    """Sensitivity: if symmetry-broken enumeration stops re-expanding each
    lex-leader representative along the automorphism group, the SAT
    backend undercounts exactly on symmetric instances — the oracle's
    solution-set comparison must catch the plant."""
    from repro.solvers.sat import labeling as labeling_module

    monkeypatch.setattr(
        labeling_module, "expand_orbit", lambda labeling, autos: [labeling]
    )
    failure = _first_failure("sat", attempts=120)
    assert failure is not None
    assert "solution sets differ" in failure[1]


def test_serialization_oracle_catches_a_nonidempotent_encoder(monkeypatch):
    from repro.utils.serialization import to_jsonable as real

    def wrapping(value):
        return {"wrapped": real(value)}

    monkeypatch.setattr("repro.verification.oracles.to_jsonable", wrapping)
    failure = _first_failure("serialization", attempts=10)
    assert failure is not None
    assert "idempotent" in failure[1]


def test_reliability_oracle_catches_a_double_dispatch(monkeypatch):
    """Sensitivity: re-dispatching a crashed request *twice* (the classic
    at-least-once bug exactly-once supervision exists to prevent) must
    surface as an execution-count mismatch against the clean run —
    record bytes alone cannot see it because solves are deterministic."""
    from repro.reliability.supervise import SupervisedWorkerPool

    real = SupervisedWorkerPool._redispatch

    def twice(self, canonical):
        real(self, canonical)
        return real(self, canonical)

    monkeypatch.setattr(SupervisedWorkerPool, "_redispatch", twice)
    params = {
        "scenario": "service",
        "faults": [["worker.exec", 1, "crash"]],
    }
    detail = run_check(ORACLES["reliability"], params)
    assert detail is not None
    assert "exactly-once" in detail


def test_views_oracle_catches_a_locality_leak(monkeypatch):
    """A view that collects marks one hop too far is a locality violation
    the BFS reference must flag."""
    from repro.local import views as views_module
    from repro.local import supported as supported_module

    real = views_module.collect_supported_view

    def leaky(network, input_edges, node, radius):
        return real(network, input_edges, node, radius + 1)

    monkeypatch.setattr(supported_module, "collect_supported_view", leaky)
    failure = _first_failure("views")
    assert failure is not None
    assert "disagree" in failure[1] or "out-of-radius" in failure[1]
