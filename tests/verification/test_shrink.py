"""The greedy minimizer, exercised through a synthetic oracle with a known
minimal counterexample."""

import random

from repro.verification.oracles import Oracle
from repro.verification.shrink import shrink_failing_case


class ContainsSeven(Oracle):
    """Fails iff the item list contains a 7; minimal failing case: [7]."""

    name = "contains-seven"
    description = "synthetic"

    def __init__(self):
        self.checks = 0

    def generate(self, rng: random.Random) -> dict:
        return {"items": [rng.randint(0, 9) for _ in range(8)]}

    def check(self, params: dict) -> str | None:
        self.checks += 1
        if 7 in params["items"]:
            return f"contains 7 (length {len(params['items'])})"
        return None

    def shrink(self, params: dict):
        items = params["items"]
        for index in range(len(items)):
            yield {"items": items[:index] + items[index + 1 :]}


def test_minimizes_to_the_known_minimum():
    oracle = ContainsSeven()
    params = {"items": [3, 7, 1, 7, 9, 0, 4]}
    result = shrink_failing_case(oracle, params, "contains 7 (length 7)")
    assert result.params == {"items": [7]}
    assert "contains 7" in result.detail
    assert result.steps >= 1


def test_result_params_still_fail():
    oracle = ContainsSeven()
    params = oracle.generate(random.Random("shrink"))
    params["items"].append(7)
    detail = oracle.check(params)
    result = shrink_failing_case(oracle, params, detail)
    assert oracle.check(result.params) is not None


def test_budget_bounds_candidate_evaluations():
    oracle = ContainsSeven()
    params = {"items": [7] * 40}
    result = shrink_failing_case(oracle, params, "contains 7 (length 40)", budget=5)
    assert result.attempts <= 5
    assert 7 in result.params["items"]


def test_already_minimal_case_is_returned_unchanged():
    oracle = ContainsSeven()
    result = shrink_failing_case(oracle, {"items": [7]}, "contains 7 (length 1)")
    assert result.params == {"items": [7]}
    assert result.steps == 0
