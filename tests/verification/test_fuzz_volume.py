"""The acceptance-criterion fuzz volume, opt-in via ``-m fuzz``.

Tier-1 keeps a small always-on batch (test_cli.py); this module carries
the full 200-case sweep and its cross-jobs byte-determinism contract."""

import pytest

from repro.utils.serialization import canonical_dumps
from repro.verification.cli import run_fuzz
from repro.verification.oracles import available_oracles

pytestmark = pytest.mark.fuzz


def test_200_cases_zero_discrepancies_and_jobs_determinism():
    names = available_oracles()
    serial, serial_entries = run_fuzz(names, cases=200, seed=0, jobs=1)
    parallel, _ = run_fuzz(names, cases=200, seed=0, jobs=4)
    assert serial["ok"] is True, serial["discrepancies"]
    assert serial_entries == []
    assert canonical_dumps(serial) == canonical_dumps(parallel)
    # Every oracle family got its (round-robin) share of the 200 cases.
    floor = 200 // len(names)
    assert all(
        stats["cases"] in (floor, floor + 1)
        for stats in serial["oracles"].values()
    )
    assert sum(stats["cases"] for stats in serial["oracles"].values()) == 200


@pytest.mark.parametrize("seed", [1, 2, 3])
def test_other_seeds_are_also_clean(seed):
    payload, _entries = run_fuzz(available_oracles(), cases=50, seed=seed)
    assert payload["ok"] is True, payload["discrepancies"]
