"""The ``explore`` differential oracle: green on the real stack, and it
catches planted bugs in each layer it cross-checks (memoized expansion,
canonical digesting, budget parity)."""

import random

import pytest

from repro.verification.corpus import DEFAULT_CORPUS_DIR, corpus_files, load_entry
from repro.verification.oracles import ORACLES, run_check


def cases(count: int = 10):
    oracle = ORACLES["explore"]
    for index in range(count):
        yield oracle.generate(random.Random(f"explore-clean:{index}"))


def _first_failure():
    oracle = ORACLES["explore"]
    for index, params in enumerate(cases(12)):
        detail = run_check(oracle, params)
        if detail is not None:
            return index, detail
    return None


class TestGreenPath:
    def test_green_on_real_implementations(self):
        oracle = ORACLES["explore"]
        for params in cases(8):
            assert oracle.check(params) is None, params

    def test_case_shape_is_replayable(self):
        for params in cases(5):
            assert set(params) >= {"alphabet", "white", "black", "op", "budget"}
            assert params["op"] in ("R", "R_bar", "RE")

    def test_shrink_candidates_stay_buildable(self):
        from repro.verification.generators import build_problem

        oracle = ORACLES["explore"]
        for params in cases(5):
            for candidate in oracle.shrink(params):
                build_problem(candidate)  # must not raise


class TestSensitivity:
    def test_catches_a_corrupted_store_step(self, monkeypatch):
        """A store whose worker mislabels budget exhaustion must be caught
        as a status disagreement with the direct calls."""
        from repro.roundelim.explore import store as store_module

        def lying(payload, op, budget, engine):
            return {"status": "budget_exhausted", "child": None,
                    "child_payload": None}

        monkeypatch.setattr(store_module, "compute_step", lying)
        failure = _first_failure()
        assert failure is not None
        assert "disagrees with the direct calls" in failure[1]

    def test_catches_a_digest_instability(self, monkeypatch):
        """A normal form that hashes the *input spelling* (here: the id of
        the alphabet) breaks renaming invariance and must be caught."""
        from repro.formalism import normalize as normalize_module

        real = normalize_module.normal_form

        def spelled(problem, name=None):
            form = real(problem, name=name)
            tainted = dict(form.payload)
            tainted["spelling"] = sorted(problem.alphabet)
            return normalize_module.NormalForm(
                payload=tainted,
                digest=normalize_module.result_digest(tainted, length=32),
                problem=form.problem,
                mapping=form.mapping,
            )

        monkeypatch.setattr(normalize_module, "normal_form", spelled)
        failure = _first_failure()
        assert failure is not None
        assert "digest" in failure[1] or "payload" in failure[1]

    def test_catches_an_lru_that_never_hits(self, monkeypatch):
        from repro.roundelim.explore.store import ProblemStore

        real = ProblemStore.lookup

        def amnesiac(self, digest, op, budget):
            real(self, digest, op, budget)
            self.stats.memory_hits = 0
            return None

        monkeypatch.setattr(ProblemStore, "lookup", amnesiac)
        failure = _first_failure()
        assert failure is not None
        assert "memory tier" in failure[1]


@pytest.mark.fuzz
class TestCorpusEntries:
    def test_committed_explore_entries_replay_green(self):
        from repro.verification.corpus import replay_entry

        entries = [
            load_entry(path)
            for path in corpus_files(DEFAULT_CORPUS_DIR)
            if path.name.startswith("explore-")
        ]
        assert len(entries) >= 2, "seeded explore corpus entries are missing"
        for entry in entries:
            assert replay_entry(entry) is None, entry["case_id"]
