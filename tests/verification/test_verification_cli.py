"""The ``python -m repro.verification`` CLI: list, fuzz, replay, exit codes,
corpus writing and the jobs-parallel determinism contract."""

import json
import random

import pytest

from repro.utils.serialization import canonical_dumps
from repro.verification.cli import generate_cases, main, run_fuzz
from repro.verification.corpus import (
    corpus_files,
    load_entry,
    make_entry,
    replay_entry,
    save_entry,
)
from repro.verification.oracles import ORACLES, Oracle, available_oracles


def test_list_prints_every_oracle(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in available_oracles():
        assert name in out


def test_fuzz_clean_run_exits_zero_and_writes_payload(tmp_path, capsys):
    out = tmp_path / "fuzz.json"
    assert main(["fuzz", "--cases", "10", "--seed", "3", "--out", str(out)]) == 0
    payload = json.loads(out.read_text())
    assert payload["ok"] is True
    assert payload["cases"] == 10
    assert set(payload["oracles"]) == set(available_oracles())
    assert payload["discrepancies"] == []
    assert "fuzz" in capsys.readouterr().err


def test_fuzz_payload_is_byte_identical_across_jobs():
    names = available_oracles()
    serial, _ = run_fuzz(names, cases=10, seed=0, jobs=1)
    parallel, _ = run_fuzz(names, cases=10, seed=0, jobs=2)
    assert canonical_dumps(serial) == canonical_dumps(parallel)


def test_case_allocation_is_independent_of_execution_order():
    names = available_oracles()
    first = generate_cases(names, cases=12, seed=5)
    second = generate_cases(names, cases=12, seed=5)
    assert first == second
    assert [task["oracle"] for task in first[: len(names)]] == names
    assert generate_cases(names, cases=12, seed=6) != first


def test_oracle_filter_restricts_cases(tmp_path):
    out = tmp_path / "fuzz.json"
    assert main([
        "fuzz", "--cases", "6", "--oracle", "serialization",
        "--oracle", "views", "--out", str(out),
    ]) == 0
    payload = json.loads(out.read_text())
    assert set(payload["oracles"]) == {"serialization", "views"}


class AlwaysBroken(Oracle):
    """A planted failure: every case with more than one item fails."""

    name = "always-broken"
    description = "synthetic planted failure"

    def generate(self, rng: random.Random) -> dict:
        return {"items": [rng.randint(0, 9) for _ in range(6)]}

    def check(self, params: dict) -> str | None:
        if len(params["items"]) > 1:
            return f"too many items: {len(params['items'])}"
        return None

    def shrink(self, params: dict):
        items = params["items"]
        for index in range(len(items)):
            yield {"items": items[:index] + items[index + 1 :]}


@pytest.fixture
def broken_oracle(monkeypatch):
    monkeypatch.setitem(ORACLES, AlwaysBroken.name, AlwaysBroken())


def test_fuzz_failure_exits_nonzero_and_writes_minimized_corpus(
    tmp_path, broken_oracle, capsys
):
    corpus = tmp_path / "corpus"
    out = tmp_path / "fuzz.json"
    code = main([
        "fuzz", "--cases", "2", "--oracle", "always-broken",
        "--corpus", str(corpus), "--out", str(out),
    ])
    assert code == 1
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["oracles"]["always-broken"]["discrepancies"] == 2
    files = corpus_files(corpus)
    assert files
    for path in files:
        entry = load_entry(path)
        # Shrinking drove every counterexample to the 2-item local minimum.
        assert len(entry["params"]["items"]) == 2
    assert "minimized counterexample" in capsys.readouterr().err


def test_replay_green_corpus_exits_zero(tmp_path):
    entry = make_entry(
        "serialization", {"tree": {"kind": "int", "value": 1}}, "seed", 0
    )
    save_entry(entry, tmp_path)
    assert main(["replay", "--corpus", str(tmp_path)]) == 0


def test_replay_failing_corpus_exits_nonzero(tmp_path, broken_oracle):
    entry = make_entry("always-broken", {"items": [1, 2, 3]}, "planted", 0)
    save_entry(entry, tmp_path)
    assert replay_entry(entry) is not None
    out = tmp_path / "replay.json"
    assert main(["replay", "--corpus", str(tmp_path), "--out", str(out)]) == 1
    payload = json.loads(out.read_text())
    assert payload["ok"] is False
    assert payload["entries"][0]["detail"].startswith("too many items")


def test_replay_empty_or_missing_corpus_fails_loudly(tmp_path, capsys):
    """A path typo must not disarm the CI regression gate by replaying
    zero entries 'successfully'."""
    assert main(["replay", "--corpus", str(tmp_path / "missing")]) == 1
    assert main(["replay", "--corpus", str(tmp_path)]) == 1
    assert "no corpus entries" in capsys.readouterr().err
