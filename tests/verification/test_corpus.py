"""Corpus entry schema, round-tripping, and the committed seed corpus."""

from pathlib import Path

import pytest

from repro.utils import InvalidParameterError
from repro.verification.oracles import ORACLES
from repro.verification.corpus import (
    CORPUS_SCHEMA,
    case_id,
    corpus_files,
    entry_filename,
    load_entry,
    make_entry,
    replay_entry,
    save_entry,
    validate_entry,
)

#: The committed corpus, relative to this test file (cwd-independent).
COMMITTED_CORPUS = Path(__file__).resolve().parents[1] / "corpus"


def _entry():
    return make_entry(
        "serialization", {"tree": {"kind": "none"}}, "captured detail", seed=4
    )


class TestEntrySchema:
    def test_make_entry_shape(self):
        entry = _entry()
        assert entry["schema"] == CORPUS_SCHEMA
        assert entry["case_id"] == case_id("serialization", entry["params"])
        validate_entry(entry)

    def test_filename_embeds_oracle_and_identity(self):
        entry = _entry()
        assert entry_filename(entry) == f"serialization-{entry['case_id']}.json"

    def test_missing_keys_rejected(self):
        entry = _entry()
        del entry["detail"]
        with pytest.raises(InvalidParameterError):
            validate_entry(entry)

    def test_wrong_schema_rejected(self):
        entry = {**_entry(), "schema": "other/v0"}
        with pytest.raises(InvalidParameterError):
            validate_entry(entry)

    def test_unknown_oracle_rejected(self):
        entry = {**_entry(), "oracle": "nope"}
        with pytest.raises(InvalidParameterError):
            validate_entry(entry)

    def test_tampered_params_rejected_by_case_id(self):
        entry = _entry()
        entry["params"] = {"tree": {"kind": "int", "value": 9}}
        with pytest.raises(InvalidParameterError):
            validate_entry(entry)

    def test_save_load_round_trip(self, tmp_path):
        entry = _entry()
        path = save_entry(entry, tmp_path)
        assert load_entry(path) == entry
        assert corpus_files(tmp_path) == [path]

    def test_corpus_files_skips_non_json(self, tmp_path):
        (tmp_path / "README.md").write_text("docs")
        assert corpus_files(tmp_path) == []


class TestCommittedCorpus:
    def test_seed_corpus_is_present_and_valid(self):
        paths = corpus_files(COMMITTED_CORPUS)
        assert len(paths) >= 8, "seed corpus went missing"
        oracles = {load_entry(path)["oracle"] for path in paths}
        # Every registered oracle family is guarded by at least one
        # committed entry — adding an oracle without a corpus guard
        # fails here.
        assert set(ORACLES) <= oracles

    def test_filenames_match_entry_identity(self):
        for path in corpus_files(COMMITTED_CORPUS):
            assert path.name == entry_filename(load_entry(path))


@pytest.mark.fuzz
@pytest.mark.parametrize(
    "path", corpus_files(COMMITTED_CORPUS), ids=lambda path: path.name
)
def test_every_committed_entry_replays_green(path):
    """The acceptance contract: the corpus is a regression suite — each
    serialized case rebuilds deterministically and its oracle finds no
    discrepancy."""
    assert replay_entry(load_entry(path)) is None
