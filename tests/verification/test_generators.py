"""Generators: deterministic, JSON-able, and buildable into valid objects."""

import json
import random

import networkx as nx

from repro.verification.generators import (
    MAX_SOLVER_EDGES,
    RELIABILITY_SCENARIOS,
    build_colored_graph,
    build_fault_plan,
    build_problem,
    build_support_graph,
    build_value,
    random_colored_graph_params,
    random_engine_case_params,
    random_fault_plan_params,
    random_problem_params,
    random_supported_instance_params,
    random_value_tree,
)

SEEDS = range(20)


def test_generators_are_deterministic_per_seed():
    for generate in (
        random_problem_params,
        random_colored_graph_params,
        random_engine_case_params,
        random_supported_instance_params,
        random_value_tree,
    ):
        for seed in SEEDS:
            first = generate(random.Random(f"g:{seed}"))
            second = generate(random.Random(f"g:{seed}"))
            assert first == second, generate.__name__


def test_all_params_are_json_serializable():
    rng = random.Random("json")
    for generate in (
        random_problem_params,
        random_colored_graph_params,
        random_engine_case_params,
        random_supported_instance_params,
        random_value_tree,
    ):
        params = generate(rng)
        assert json.loads(json.dumps(params)) == params


def test_random_problems_build_and_stay_in_alphabet():
    for seed in SEEDS:
        params = random_problem_params(random.Random(f"p:{seed}"))
        problem = build_problem(params)
        assert problem.white.labels <= problem.alphabet
        assert problem.black.labels <= problem.alphabet
        assert len(problem.white) >= 1 and len(problem.black) >= 1


def test_random_colored_graphs_are_properly_two_colored():
    for seed in SEEDS:
        params = random_colored_graph_params(random.Random(f"c:{seed}"))
        graph = build_colored_graph(params)
        assert graph.number_of_edges() <= MAX_SOLVER_EDGES
        for u, v in graph.edges:
            assert graph.nodes[u]["color"] != graph.nodes[v]["color"]


def test_supported_instances_input_is_subset_of_support():
    for seed in SEEDS:
        params = random_supported_instance_params(random.Random(f"s:{seed}"))
        support = build_support_graph(params)
        assert isinstance(support, nx.Graph)
        for u, v in params["input_edges"]:
            assert support.has_edge(u, v)
        assert 0 <= params["radius"] <= 3


def test_value_trees_build_to_python_values():
    for seed in SEEDS:
        tree = random_value_tree(random.Random(f"v:{seed}"))
        build_value(tree)  # must not raise (hashability of set members etc.)


def test_fault_plan_params_build_valid_scenario_bound_plans():
    from repro.reliability.chaos import SCENARIO_SITES

    for seed in SEEDS:
        params = random_fault_plan_params(random.Random(f"f:{seed}"))
        assert params == json.loads(json.dumps(params))  # plain JSON
        assert params["scenario"] in RELIABILITY_SCENARIOS
        plan = build_fault_plan(params)
        assert len(plan) >= 1
        allowed = set(SCENARIO_SITES[params["scenario"]])
        assert {spec.site for spec in plan.faults} <= allowed


def test_fault_plan_params_are_deterministic_per_seed():
    for seed in SEEDS:
        first = random_fault_plan_params(random.Random(f"f:{seed}"))
        second = random_fault_plan_params(random.Random(f"f:{seed}"))
        assert first == second


def test_build_fault_plan_rejects_unknown_scenarios():
    import pytest

    from repro.utils import InvalidParameterError

    with pytest.raises(InvalidParameterError):
        build_fault_plan({"scenario": "transport", "faults": []})
