"""Runner determinism: seeded reproducibility and parallel/serial equality."""

from repro.experiments import Runner, execute_scenario, get_scenario, get_suite
from repro.utils.serialization import canonical_dumps


class TestSeededReproducibility:
    def test_same_seed_identical_payload(self):
        scenario = get_scenario("mis", "luby-petersen")
        first = execute_scenario(scenario, base_seed=3)
        second = execute_scenario(scenario, base_seed=3)
        assert canonical_dumps(first.payload()) == canonical_dumps(second.payload())

    def test_different_seed_different_randomized_records(self):
        scenario = get_scenario("mis", "luby-petersen")
        first = execute_scenario(scenario, base_seed=0)
        second = execute_scenario(scenario, base_seed=1)
        assert [r["luby_seed"] for r in first.records] != [
            r["luby_seed"] for r in second.records
        ]

    def test_wall_clock_excluded_from_payload(self):
        scenario = get_scenario("ruling_sets", "thm61-bound-series")
        result = execute_scenario(scenario)
        assert "wall" not in canonical_dumps(result.payload())


class TestParallelSerialEquality:
    def test_smoke_suite_parallel_equals_serial(self):
        serial = Runner(jobs=1, seed=0).run_suite("smoke")
        parallel = Runner(jobs=4, seed=0).run_suite("smoke")
        assert canonical_dumps(serial.payload()) == canonical_dumps(
            parallel.payload()
        )

    def test_payload_shape(self):
        result = Runner(jobs=2, seed=0).run_scenarios(
            "smoke", get_suite("smoke")[:2]
        )
        payload = result.payload()
        assert payload["schema"] == "repro.experiments/v1"
        assert payload["suite"] == "smoke"
        assert payload["ok"] is True
        assert payload["digest"]
        assert "timings" not in payload
        names = [block["scenario"]["name"] for block in payload["scenarios"]]
        assert names == sorted(names)

    def test_timings_flag_adds_block_without_touching_digest(self):
        result = Runner(jobs=1, seed=0).run_scenarios(
            "smoke", get_suite("smoke")[:1]
        )
        plain = result.payload()
        timed = result.payload(timings=True)
        assert timed["digest"] == plain["digest"]
        assert set(timed["timings"]) == {result.results[0].scenario.name, "total"}


class TestValidityGate:
    def test_ok_reflects_record_validity(self):
        scenario = get_scenario("arbdefective", "thm51-fixed-points-k2")
        result = execute_scenario(scenario)
        assert result.ok
        assert all(record["valid"] for record in result.records)
