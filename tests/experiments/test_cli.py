"""CLI smoke: list, run and smoke commands through the real entry point."""

import json

import pytest

from repro.experiments.cli import main


class TestCli:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "thm41-proposal-sweep" in out
        assert "smoke" in out

    def test_smoke_writes_canonical_json(self, tmp_path, capsys):
        out_file = tmp_path / "smoke.json"
        assert main(["smoke", "--out", str(out_file)]) == 0
        payload = json.loads(out_file.read_text())
        assert payload["schema"] == "repro.experiments/v1"
        assert payload["suite"] == "smoke"
        assert payload["ok"] is True
        summary = capsys.readouterr().err
        assert "smoke-mis-petersen" in summary

    def test_run_stdout_is_pure_json(self, capsys):
        assert main(["run", "--suite", "ruling_sets"]) == 0
        captured = capsys.readouterr()
        payload = json.loads(captured.out)
        assert payload["suite"] == "ruling_sets"

    def test_run_same_seed_is_byte_identical(self, tmp_path):
        first = tmp_path / "a.json"
        second = tmp_path / "b.json"
        assert main(["run", "--suite", "ruling_sets", "--out", str(first),
                     "--seed", "0"]) == 0
        assert main(["run", "--suite", "ruling_sets", "--out", str(second),
                     "--seed", "0"]) == 0
        assert first.read_text() == second.read_text()

    def test_run_seed_changes_randomized_output(self, tmp_path):
        def luby_seeds(path):
            payload = json.loads(path.read_text())
            return [
                record["luby_seed"]
                for block in payload["scenarios"]
                for record in block["records"]
                if "luby_seed" in record
            ]

        first = tmp_path / "seed0.json"
        second = tmp_path / "seed1.json"
        assert main(["run", "--suite", "mis", "--out", str(first),
                     "--seed", "0"]) == 0
        assert main(["run", "--suite", "mis", "--out", str(second),
                     "--seed", "1"]) == 0
        assert luby_seeds(first) and luby_seeds(first) != luby_seeds(second)

    def test_unknown_suite_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "--suite", "nope"])
