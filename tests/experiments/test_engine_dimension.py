"""The --engine dimension: any suite runs on any backend, payload unchanged."""

import pytest

from repro import api
from repro.experiments import Scenario, execute_scenario, get_scenario
from repro.experiments.cli import main
from repro.experiments.runner import Runner


class TestScenarioEngineField:
    def test_default_engine_is_object(self):
        scenario = Scenario.create("s", pipeline="mis_supported")
        assert scenario.engine == "object"

    def test_with_engine_retargets(self):
        scenario = Scenario.create("s", pipeline="mis_supported")
        retargeted = scenario.with_engine("batched")
        assert retargeted.engine == "batched"
        assert retargeted.name == scenario.name

    def test_engine_excluded_from_describe(self):
        """The engine is an execution detail: identical runs on different
        backends must serialize byte-identically, so it never enters the
        deterministic payload."""
        scenario = Scenario.create("s", pipeline="mis_supported", engine="batched")
        assert "engine" not in scenario.describe()


class TestEngineParityThroughPipelines:
    @pytest.mark.parametrize(
        "suite,name",
        [
            ("mis", "luby-petersen"),
            ("mis", "aapr23-petersen"),
            ("matching", "thm41-proposal-sweep"),
        ],
    )
    def test_scenario_payload_identical_across_engines(self, suite, name):
        """Every registered engine — including vectorized where numpy is
        installed — must produce the identical pipeline payload."""
        scenario = get_scenario(suite, name)
        payloads = {
            engine: execute_scenario(scenario.with_engine(engine)).payload()
            for engine in api.available_engines()
        }
        reference = payloads["object"]
        assert reference["ok"] is True
        for engine, payload in payloads.items():
            assert payload == reference, engine


class TestRunnerAndCli:
    def test_runner_engine_override(self):
        scenario = get_scenario("mis", "aapr23-petersen")
        reference = Runner(jobs=1).run_scenarios("mis", [scenario])
        retargeted = Runner(jobs=1, engine="batched").run_scenarios(
            "mis", [scenario]
        )
        assert retargeted.results[0].scenario.engine == "batched"
        assert retargeted.payload() == reference.payload()

    def test_cli_engine_flag(self, tmp_path):
        first = tmp_path / "object.json"
        second = tmp_path / "batched.json"
        assert main(["run", "--suite", "ruling_sets", "--engine", "object",
                     "--out", str(first)]) == 0
        assert main(["run", "--suite", "ruling_sets", "--engine", "batched",
                     "--out", str(second)]) == 0
        assert first.read_text() == second.read_text()

    def test_cli_rejects_unknown_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["run", "--suite", "mis", "--engine", "warp"])
        assert "invalid choice" in capsys.readouterr().err
