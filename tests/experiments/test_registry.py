"""Registry resolution: every declared suite is fully executable."""

import pytest

from repro.experiments import (
    PIPELINES,
    SUITES,
    get_scenario,
    get_suite,
    suite_names,
)
from repro.experiments.pipelines import resolve_pipeline
from repro.utils import InvalidParameterError


class TestSuiteRegistry:
    def test_expected_suites_present(self):
        assert {"matching", "ruling_sets", "arbdefective", "mis",
                "round_elimination", "smoke"} <= set(suite_names())

    def test_every_pipeline_reference_resolves(self):
        for suite in suite_names():
            for scenario in get_suite(suite):
                assert resolve_pipeline(scenario.pipeline) is PIPELINES[scenario.pipeline]

    def test_every_checker_reference_resolves(self):
        for suite in suite_names():
            for scenario in get_suite(suite):
                checker = scenario.resolve_checker()
                assert checker is None or callable(checker)

    def test_scenario_names_unique_within_suite(self):
        for suite, scenarios in SUITES.items():
            names = [scenario.name for scenario in scenarios]
            assert len(names) == len(set(names)), suite

    def test_get_scenario(self):
        scenario = get_scenario("matching", "thm41-proposal-sweep")
        assert scenario.pipeline == "matching_proposal_sweep"
        assert scenario.sizes == (1, 2, 3)
        assert scenario.checker == "maximal_matching"

    def test_unknown_suite_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_suite("nope")

    def test_unknown_scenario_rejected(self):
        with pytest.raises(InvalidParameterError):
            get_scenario("matching", "nope")

    def test_unknown_pipeline_rejected(self):
        with pytest.raises(InvalidParameterError):
            resolve_pipeline("nope")

    def test_unknown_checker_rejected(self):
        from repro.experiments import Scenario

        scenario = Scenario.create("bad", pipeline="mis_supported", checker="nope")
        with pytest.raises(InvalidParameterError):
            scenario.resolve_checker()

    def test_scenarios_are_picklable(self):
        import pickle

        for suite in suite_names():
            for scenario in get_suite(suite):
                assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_describe_is_serializable(self):
        from repro.utils.serialization import canonical_dumps

        for suite in suite_names():
            for scenario in get_suite(suite):
                assert canonical_dumps(scenario.describe())


class TestScenarioRng:
    def test_rng_depends_only_on_identity(self):
        scenario = get_scenario("mis", "luby-petersen")
        first = scenario.derive_rng(7).random()
        second = scenario.derive_rng(7).random()
        assert first == second

    def test_rng_varies_with_base_seed(self):
        scenario = get_scenario("mis", "luby-petersen")
        assert scenario.derive_rng(0).random() != scenario.derive_rng(1).random()
