"""The ``exploration`` suite: scenario validity, twin equality and the
acceptance-criterion record shape.

The ``explore-matching-d3`` scenario must rediscover a verified
Corollary 4.6 chain and classify the family fixed point; its ``-jobs4``
and ``-reference-engine`` twins must produce byte-identical records —
the suite-level form of the explorer's worker- and engine-independence
contracts (CI repeats both comparisons on the full suite payload).
"""

from repro.experiments import execute_scenario, get_scenario, get_suite


class TestExplorationScenarios:
    def test_matching_d3_meets_the_acceptance_criterion(self):
        result = execute_scenario(get_scenario("exploration", "explore-matching-d3"))
        assert result.ok
        (record,) = result.records
        assert record["valid"] is True
        assert record["best_sequence_length"] >= 2
        assert record["verified_sequences"] >= 1
        assert record["relaxation_fixed_points"] >= 1
        assert record["visited"] == 6  # 3 roots + 3 distinct RE children

    def test_jobs4_twin_records_identical(self):
        base = execute_scenario(get_scenario("exploration", "explore-matching-d3"))
        twin = execute_scenario(
            get_scenario("exploration", "explore-matching-d3-jobs4")
        )
        assert base.records == twin.records

    def test_reference_engine_twin_records_identical(self):
        base = execute_scenario(get_scenario("exploration", "explore-matching-d3"))
        twin = execute_scenario(
            get_scenario("exploration", "explore-matching-d3-reference-engine")
        )
        assert base.records == twin.records

    def test_arbdefective_scenario_finds_the_exact_fixed_point(self):
        result = execute_scenario(
            get_scenario("exploration", "explore-arbdefective-fixed-point")
        )
        (record,) = result.records
        assert record["valid"] is True
        assert record["exact_fixed_points"] == 1
        assert record["visited"] == 1  # RE(Π) dedups onto Π itself

    def test_ruling_scenario_is_consistent(self):
        result = execute_scenario(get_scenario("exploration", "explore-ruling-d3"))
        (record,) = result.records
        assert record["valid"] is True
        assert record["visited"] == 2
        assert record["budget_exhausted_ops"] == 0

    def test_smoke_scenario_is_fast_and_valid(self):
        result = execute_scenario(get_scenario("smoke", "smoke-exploration"))
        (record,) = result.records
        assert record["valid"] is True
        assert record["best_sequence_length"] >= 2
        assert result.wall_seconds < 30

    def test_suite_registered_with_deterministic_seeds(self):
        names = [scenario.name for scenario in get_suite("exploration")]
        assert "explore-matching-d3" in names
        assert "explore-matching-d3-jobs4" in names
        assert "explore-matching-d3-reference-engine" in names
        assert len(names) == len(set(names))

    def test_records_are_engine_and_jobs_free(self):
        """The record dict must not leak execution details — the twin
        comparisons above rely on it."""
        result = execute_scenario(get_scenario("exploration", "explore-matching-d3"))
        (record,) = result.records
        assert "jobs" not in record
        assert "re_engine" not in record
        assert "engine" not in record
