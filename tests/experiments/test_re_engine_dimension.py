"""The ``re_engine`` scenario dimension: kernel/reference twins agree.

Suites carry ``*-reference-engine`` twin scenarios whose records must be
byte-identical to their kernel-engine base scenario — the executable
form of the round elimination engine contract.  The fast twins are
compared here in tier-1; CI's roundelim-perf job repeats the comparison
on the full round_elimination suite payload (including the slower
Theorem B.2 speedup twin).
"""

from repro.experiments import execute_scenario, get_scenario


class TestReEngineTwins:
    def test_census_twins_identical(self):
        base = execute_scenario(get_scenario("round_elimination", "re-step-census"))
        twin = execute_scenario(
            get_scenario("round_elimination", "re-step-census-reference-engine")
        )
        assert base.records == twin.records
        assert base.ok and twin.ok

    def test_smoke_census_twins_identical(self):
        base = execute_scenario(get_scenario("smoke", "smoke-re-census"))
        twin = execute_scenario(
            get_scenario("smoke", "smoke-re-census-reference-engine")
        )
        assert base.records == twin.records

    def test_lem45_reference_twin_matches_kernel_prefix(self):
        """The matching-suite twin runs the Δ=3 Lemma 4.5 step on the
        reference engine; its single record must equal the kernel-run
        base scenario's Δ=3 record."""
        base = execute_scenario(get_scenario("matching", "lem45-steps-x0"))
        twin = execute_scenario(
            get_scenario("matching", "lem45-steps-reference-engine")
        )
        assert list(twin.records) == [base.records[0]]
