"""Tests for the distributed upper-bound algorithms."""

import networkx as nx
import pytest

from repro.algorithms import (
    bipartite_maximal_matching,
    class_sweep_arbdefective_coloring,
    class_sweep_coloring,
    global_sinkless_orientation,
    greedy_maximal_matching,
    luby_mis,
    mis_from_ruling_sweep,
    ruling_set_by_class_sweep,
    supported_mis_by_coloring,
    supported_sinkless_orientation_rounds,
    verify_class_sweep_construction,
)
from repro.checkers import (
    check_arbdefective_coloring,
    check_maximal_matching,
    check_mis,
    check_proper_coloring,
    check_ruling_set,
    check_sinkless_orientation,
    check_x_maximal_y_matching,
)
from repro.graphs import (
    bipartite_double_cover,
    cage,
    cycle,
    greedy_coloring,
    mark_bipartition,
)
from repro.utils import GraphConstructionError


def _full_input(graph) -> frozenset:
    return frozenset(frozenset(edge) for edge in graph.edges)


class TestProposalMatching:
    @pytest.mark.parametrize("name", ["petersen", "heawood", "pappus"])
    def test_valid_on_double_covers(self, name):
        graph, _d, _g = cage(name)
        cover = bipartite_double_cover(graph)
        matching, rounds = bipartite_maximal_matching(cover, _full_input(cover))
        assert check_maximal_matching(cover, matching)
        assert rounds >= 1

    def test_rounds_scale_with_input_degree(self):
        """The O(Δ′) shape: rounds are 2Δ′ by construction."""
        graph, _d, _g = cage("heawood")
        cover = bipartite_double_cover(graph)
        _m, rounds_full = bipartite_maximal_matching(cover, _full_input(cover))
        # Input = a perfect matching of the cover (Δ′ = 1).
        thin = frozenset(
            frozenset(((node, 0), (node, 1))) for node in graph.nodes
        )
        _m2, rounds_thin = bipartite_maximal_matching(cover, thin)
        assert rounds_full == 2 * 3
        assert rounds_thin == 2 * 1

    def test_partial_input_graph(self):
        cover = mark_bipartition(cycle(8))
        edges = sorted(cover.edges, key=str)[:5]
        input_edges = frozenset(frozenset(edge) for edge in edges)
        matching, _rounds = bipartite_maximal_matching(cover, input_edges)
        input_graph = nx.Graph(list(tuple(edge) for edge in input_edges))
        assert check_maximal_matching(input_graph, matching)

    def test_agrees_with_greedy_on_validity(self):
        cover = mark_bipartition(cycle(10))
        matching = greedy_maximal_matching(cover)
        assert check_maximal_matching(cover, matching)


class TestMIS:
    @pytest.mark.parametrize("name", ["petersen", "heawood", "desargues"])
    def test_supported_mis_valid(self, name):
        graph, _d, _g = cage(name)
        mis, rounds = supported_mis_by_coloring(graph)
        assert check_mis(graph, mis)
        colors_used = len(set(greedy_coloring(graph).values()))
        assert rounds == colors_used

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_luby_valid(self, seed):
        graph, _d, _g = cage("petersen")
        mis, rounds = luby_mis(graph, seed=seed)
        assert check_mis(graph, mis)
        assert rounds >= 1

    def test_mis_from_ruling_sweep(self):
        graph, _d, _g = cage("heawood")
        mis, _rounds = mis_from_ruling_sweep(graph)
        assert check_mis(graph, mis)


class TestColoring:
    @pytest.mark.parametrize("name", ["petersen", "mcgee"])
    def test_class_sweep_proper(self, name):
        graph, degree, _g = cage(name)
        coloring, rounds = class_sweep_coloring(graph)
        assert check_proper_coloring(graph, coloring)
        assert max(coloring.values()) <= degree  # (Δ+1) colors, 0-based
        assert rounds >= 1

    def test_coloring_from_ids_uses_id_ranks(self):
        """IDs are only distinct, not contiguous: adversarial IDs from
        {1..n^3} must still yield the contiguous 0-based n-coloring (the
        former ``id - 1`` shortcut inflated the class count n^2-fold)."""
        from repro.algorithms.coloring_dist import coloring_from_ids
        from repro.local import Network

        graph, _d, _g = cage("petersen")
        canonical = Network(graph=graph)
        assert coloring_from_ids(canonical) == {
            node: canonical.ids[node] - 1 for node in graph.nodes
        }
        adversarial = canonical.with_random_ids(seed=3)
        coloring = coloring_from_ids(adversarial)
        assert sorted(coloring.values()) == list(range(graph.number_of_nodes()))
        # Rank order matches ID order.
        by_id = sorted(graph.nodes, key=lambda v: adversarial.ids[v])
        assert [coloring[node] for node in by_id] == list(
            range(graph.number_of_nodes())
        )

    def test_class_sweep_matches_engine_run(self):
        """The centralized helper is byte-identical to actually running
        the node program (it replaced an internal simulation)."""
        from repro.algorithms.coloring_dist import _ClassSweepNode
        from repro.local import Network, run_synchronous

        graph, _d, _g = cage("petersen")
        initial = greedy_coloring(graph)
        num_classes = max(initial.values(), default=-1) + 1
        result = run_synchronous(
            Network(graph=graph),
            _ClassSweepNode,
            extra=lambda node: {
                "initial_color": initial[node],
                "num_classes": num_classes,
            },
        )
        coloring, rounds = class_sweep_coloring(graph, initial)
        assert coloring == dict(result.outputs)
        assert rounds == result.rounds


class TestArbdefective:
    @pytest.mark.parametrize("colors", [1, 2, 3])
    def test_class_sweep_construction(self, colors):
        graph, _d, _g = cage("petersen")
        base = greedy_coloring(graph)
        assert verify_class_sweep_construction(graph, base, colors)

    def test_alpha_formula(self):
        graph, degree, _g = cage("heawood")
        base = greedy_coloring(graph)
        _c, _o, alpha, _r = class_sweep_arbdefective_coloring(graph, base, 2)
        assert alpha == degree // 2

    def test_improper_input_rejected(self):
        graph = cycle(4)
        from repro.utils import InvalidParameterError

        with pytest.raises(InvalidParameterError):
            class_sweep_arbdefective_coloring(graph, {n: 1 for n in graph}, 2)


class TestRulingSets:
    @pytest.mark.parametrize("beta", [1, 2, 3])
    def test_sweep_produces_valid_ruling_set(self, beta):
        graph, _d, _g = cage("tutte_coxeter")
        selected, rounds = ruling_set_by_class_sweep(graph, beta=beta)
        assert check_ruling_set(graph, selected, beta, independent=True)
        assert rounds >= beta

    def test_larger_beta_allows_sparser_sets(self):
        graph, _d, _g = cage("tutte_coxeter")
        s1, _ = ruling_set_by_class_sweep(graph, beta=1)
        s3, _ = ruling_set_by_class_sweep(graph, beta=3)
        assert len(s3) <= len(s1)


class TestSinklessOrientation:
    @pytest.mark.parametrize("name", ["petersen", "heawood"])
    def test_global_orientation_valid(self, name):
        graph, _d, _g = cage(name)
        orientation = global_sinkless_orientation(graph)
        assert check_sinkless_orientation(graph, orientation)

    def test_tree_rejected(self):
        with pytest.raises(GraphConstructionError):
            global_sinkless_orientation(nx.path_graph(5))

    def test_supported_rounds_constant(self):
        graph, _d, _g = cage("petersen")
        assert supported_sinkless_orientation_rounds(graph) == 0


class TestXMaximalYMatchingChecker:
    def test_relaxed_matching_accepted(self):
        """A 2-matching (y = 2) on a cycle."""
        graph = cycle(6)
        matching = {frozenset((0, 1)), frozenset((1, 2)), frozenset((3, 4)),
                    frozenset((4, 5))}
        assert check_x_maximal_y_matching(graph, matching, x=0, y=2)
        assert not check_x_maximal_y_matching(graph, matching, x=0, y=1)
