"""SolveService core: dedup, restart persistence, error mapping, lifecycle."""

import threading

import pytest

from repro import api
from repro.service import (
    SolveService,
    roundelim_request,
    solve_request,
)
from repro.utils.serialization import canonical_dumps

SPEC = "maximal-matching:delta=3"
ALGORITHM = "matching:proposal"


def matching_request(seed=0, **kw):
    return solve_request(SPEC, algorithm=ALGORITHM, n=24, seed=seed, **kw)


@pytest.fixture
def service():
    with SolveService(jobs=1) as svc:
        yield svc


class TestSolvePath:
    def test_cold_then_warm(self, service):
        cold = service.submit(matching_request())
        assert cold["status"] == "ok"
        assert cold["cached"] is False
        warm = service.submit(matching_request())
        assert warm["cached"] is True
        assert warm["report"] == cold["report"]
        assert service.solves_computed == 1

    def test_byte_parity_with_direct_solve(self, service):
        response = service.submit(matching_request(seed=5))
        direct = api.solve(SPEC, algorithm=ALGORITHM, n=24, seed=5)
        assert canonical_dumps(response["report"]) == direct.canonical_json()

    def test_engine_variants_share_one_entry(self, service):
        first = service.submit(matching_request(engine="object"))
        second = service.submit(matching_request(engine="batched"))
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["digest"] == first["digest"]
        assert service.solves_computed == 1

    def test_roundelim_request(self, service):
        response = service.submit(
            roundelim_request("sinkless-orientation:delta=3", op="R")
        )
        assert response["status"] == "ok"
        assert response["kind"] == "roundelim"
        assert response["result"]["status"] == "ok"

    def test_failed_solve_is_not_cached(self, service):
        # An uncheckable request that fails at execution time would be
        # cached only if ok; an unknown algorithm fails canonicalization
        # and never reaches the cache.
        bad = solve_request(SPEC, algorithm="no:algo")
        assert service.submit(bad)["status"] == "error"
        assert len(service.cache) == 0


class TestConcurrentDedup:
    def test_duplicates_coalesce_to_exactly_one_solve(self):
        with SolveService(jobs=1) as service:
            request = matching_request(seed=9)
            responses = [None] * 8

            def hit(index):
                responses[index] = service.submit(request)

            threads = [
                threading.Thread(target=hit, args=(i,)) for i in range(8)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert all(r["status"] == "ok" for r in responses)
            bodies = {canonical_dumps(r["report"]) for r in responses}
            assert len(bodies) == 1
            assert service.solves_computed == 1
            # Everyone past the first either coalesced or hit the cache.
            assert service.coalesced + [
                r["cached"] for r in responses
            ].count(True) == 7

    def test_distinct_requests_all_compute(self):
        with SolveService(jobs=1) as service:
            responses = [
                service.submit(matching_request(seed=seed)) for seed in range(4)
            ]
            assert all(r["cached"] is False for r in responses)
            assert service.solves_computed == 4
            digests = {r["digest"] for r in responses}
            assert len(digests) == 4


class TestRestartPersistence:
    def test_kill_and_restart_serves_warm_bytes(self, tmp_path):
        request = matching_request(seed=3)
        with SolveService(cache_dir=tmp_path, jobs=1) as first:
            original = first.submit(request)
            assert original["cached"] is False

        with SolveService(cache_dir=tmp_path, jobs=1) as second:
            warm = second.submit(request)
            assert warm["cached"] is True
            assert second.solves_computed == 0  # zero recompute
            assert second.cache.stats.disk_hits == 1
            assert canonical_dumps(warm["report"]) == canonical_dumps(
                original["report"]
            )
            direct = api.solve(SPEC, algorithm=ALGORITHM, n=24, seed=3)
            assert canonical_dumps(warm["report"]) == direct.canonical_json()

    def test_graceful_close_flushes_manifest(self, tmp_path):
        with SolveService(cache_dir=tmp_path, jobs=1) as service:
            service.submit(matching_request())
        assert (tmp_path / "manifest.json").exists()


class TestErrorMapping:
    @pytest.mark.parametrize(
        "request_dict, code",
        [
            (solve_request(SPEC, algorithm="no:algo"), "unknown-algorithm"),
            (solve_request("martian:delta=3", algorithm=ALGORITHM), "bad-spec"),
            (solve_request(SPEC, algorithm=ALGORITHM, engine="warp"),
             "unknown-engine"),
            (solve_request("coloring:delta=3,colors=4",
                           algorithm="matching:proposal"),
             "algorithm-mismatch"),
            ({"schema": "bogus/v1", "kind": "solve"}, "unsupported-schema"),
            ({"schema": "repro.service/request-v1", "kind": "dance"},
             "unknown-kind"),
            ([1, 2, 3], "bad-request"),
        ],
    )
    def test_structured_error_codes(self, service, request_dict, code):
        response = service.submit(request_dict)
        assert response["status"] == "error"
        assert response["error"]["code"] == code
        assert response["error"]["message"]

    def test_errors_counted(self, service):
        before = service.errors
        service.submit({"schema": "bogus/v1"})
        assert service.errors == before + 1


class TestLifecycle:
    def test_closed_service_rejects(self):
        service = SolveService(jobs=1)
        service.close()
        response = service.submit(matching_request())
        assert response["error"]["code"] == "service-closed"

    def test_close_is_idempotent(self):
        service = SolveService(jobs=1)
        service.close()
        service.close()

    def test_status_shape(self, service):
        service.submit(matching_request())
        service.submit(matching_request())
        status = service.status()
        assert status["schema"] == "repro.service/status-v1"
        assert status["requests"] == 2
        assert status["solves_computed"] == 1
        assert status["cache"]["memory_hits"] == 1
        assert status["cache"]["size"] == 1
        assert status["inflight"] == 0
        assert ALGORITHM in status["algorithms"]
        assert "object" in status["engines"]


class TestWorkerBatching:
    def test_multiprocess_pool_matches_inline(self):
        request = matching_request(seed=11)
        with SolveService(jobs=1) as inline:
            expected = inline.submit(request)
        with SolveService(jobs=2, batch_size=4) as pooled:
            responses = [
                pooled.submit(matching_request(seed=seed)) for seed in (11, 12)
            ]
        assert canonical_dumps(responses[0]["report"]) == canonical_dumps(
            expected["report"]
        )
        assert pooled.batches >= 1
