"""ReportCache: LRU eviction order, disk tier, stats accounting."""

import json

import pytest

from repro.service.cache import CACHE_SCHEMA, MANIFEST_SCHEMA, ReportCache
from repro.utils import InvalidParameterError


def record_for(i):
    return {"value": i}


class TestMemoryTier:
    def test_miss_then_hit(self):
        cache = ReportCache(capacity=4)
        assert cache.lookup("a") is None
        cache.record("a", "solve", record_for(1))
        entry = cache.lookup("a")
        assert entry["kind"] == "solve"
        assert entry["record"] == {"value": 1}
        assert entry["record_json"] == '{"value":1}'
        assert cache.stats.misses == 1
        assert cache.stats.memory_hits == 1
        assert cache.stats.stored == 1

    def test_eviction_is_least_recently_used(self):
        cache = ReportCache(capacity=3)
        for key in ("a", "b", "c"):
            cache.record(key, "solve", record_for(key))
        # Touch "a": now "b" is the least recently used.
        assert cache.lookup("a") is not None
        cache.record("d", "solve", record_for("d"))
        assert cache.stats.evictions == 1
        assert cache.lookup("b") is None
        for key in ("a", "c", "d"):
            assert cache.lookup(key) is not None, key

    def test_eviction_order_over_a_sweep(self):
        cache = ReportCache(capacity=2)
        for i in range(5):
            cache.record(str(i), "solve", record_for(i))
        assert len(cache) == 2
        assert cache.stats.evictions == 3
        assert cache.lookup("4") is not None
        assert cache.lookup("3") is not None
        for key in ("0", "1", "2"):
            assert cache.lookup(key) is None

    def test_capacity_validated(self):
        with pytest.raises(InvalidParameterError):
            ReportCache(capacity=0)


class TestDiskTier:
    def test_write_through_and_reload(self, tmp_path):
        cache = ReportCache(capacity=4, root=tmp_path)
        cache.record("deadbeef", "solve", record_for(7))
        on_disk = json.loads((tmp_path / "reports" / "deadbeef.json").read_text())
        assert on_disk["schema"] == CACHE_SCHEMA
        assert on_disk["digest"] == "deadbeef"
        assert on_disk["record"] == {"value": 7}

        fresh = ReportCache(capacity=4, root=tmp_path)
        entry = fresh.lookup("deadbeef")
        assert entry["record"] == {"value": 7}
        assert entry["record_json"] == '{"value":7}'
        assert fresh.stats.disk_hits == 1
        # Promoted to memory: the second lookup is a memory hit.
        fresh.lookup("deadbeef")
        assert fresh.stats.memory_hits == 1

    def test_eviction_keeps_disk_copy(self, tmp_path):
        cache = ReportCache(capacity=1, root=tmp_path)
        cache.record("aaaa", "solve", record_for(1))
        cache.record("bbbb", "solve", record_for(2))
        assert cache.stats.evictions == 1
        # "aaaa" left memory but survives on disk.
        assert cache.lookup("aaaa")["record"] == {"value": 1}
        assert cache.stats.disk_hits == 1

    def test_flush_writes_manifest(self, tmp_path):
        cache = ReportCache(capacity=4, root=tmp_path)
        cache.record("aaaa", "solve", record_for(1))
        cache.record("bbbb", "roundelim", record_for(2))
        path = cache.flush()
        manifest = json.loads(path.read_text())
        assert manifest["schema"] == MANIFEST_SCHEMA
        assert manifest["reports"] == 2
        assert manifest["stats"]["stored"] == 2

    def test_memory_only_flush_is_noop(self):
        assert ReportCache(capacity=4).flush() is None


class TestDiskBounds:
    def test_byte_budget_evicts_oldest_first(self, tmp_path):
        import os

        cache = ReportCache(capacity=8, root=tmp_path)
        cache.record("aaaa", "solve", record_for(1))
        path_a = tmp_path / "reports" / "aaaa.json"
        # Budget fits exactly one entry; make "aaaa" unambiguously the
        # oldest before the next write.
        cache.max_disk_bytes = path_a.stat().st_size + 1
        old = path_a.stat().st_mtime - 10
        os.utime(path_a, (old, old))
        cache.record("bbbb", "solve", record_for(2))
        assert not path_a.exists()
        assert (tmp_path / "reports" / "bbbb.json").exists()
        assert cache.stats.disk_evictions >= 1
        # Memory still serves the evicted digest; a fresh cache cannot.
        assert cache.lookup("aaaa") is not None
        fresh = ReportCache(capacity=8, root=tmp_path)
        assert fresh.lookup("aaaa") is None

    def test_unbounded_cache_never_evicts_disk(self, tmp_path):
        cache = ReportCache(capacity=1, root=tmp_path)
        for i in range(5):
            cache.record(f"d{i}", "solve", record_for(i))
        assert len(list((tmp_path / "reports").glob("*.json"))) == 5
        assert cache.stats.disk_evictions == 0

    def test_ttl_expires_on_lookup(self, tmp_path):
        now = [1000.0]
        cache = ReportCache(
            capacity=4, root=tmp_path, ttl_seconds=60, clock=lambda: now[0]
        )
        cache.record("aaaa", "solve", record_for(1))
        # Age the file past the TTL; drop it from memory so the disk
        # tier answers.
        import os

        path = tmp_path / "reports" / "aaaa.json"
        os.utime(path, (now[0], now[0]))
        cache._entries.clear()
        now[0] += 61
        assert cache.lookup("aaaa") is None
        assert not path.exists()
        assert cache.stats.expired == 1
        assert cache.stats.misses == 1

    def test_ttl_sweep_on_write(self, tmp_path):
        import os

        now = [1000.0]
        cache = ReportCache(
            capacity=4, root=tmp_path, ttl_seconds=60, clock=lambda: now[0]
        )
        cache.record("aaaa", "solve", record_for(1))
        path = tmp_path / "reports" / "aaaa.json"
        os.utime(path, (now[0], now[0]))
        now[0] += 61
        cache.record("bbbb", "solve", record_for(2))
        assert not path.exists()
        assert (tmp_path / "reports" / "bbbb.json").exists()
        assert cache.stats.expired == 1

    def test_fresh_entries_survive_both_bounds(self, tmp_path):
        cache = ReportCache(
            capacity=4,
            root=tmp_path,
            max_disk_bytes=10_000_000,
            ttl_seconds=3600,
        )
        for i in range(4):
            cache.record(f"d{i}", "solve", record_for(i))
        assert len(list((tmp_path / "reports").glob("*.json"))) == 4
        assert cache.stats.disk_evictions == 0
        assert cache.stats.expired == 0
        assert cache.stats.as_dict()["disk_evictions"] == 0

    def test_bounds_validated(self):
        with pytest.raises(InvalidParameterError):
            ReportCache(max_disk_bytes=0)
        with pytest.raises(InvalidParameterError):
            ReportCache(ttl_seconds=0)


class TestStats:
    def test_hit_rate(self):
        cache = ReportCache(capacity=4)
        assert cache.stats.hit_rate == 0.0
        cache.record("a", "solve", record_for(1))
        cache.lookup("a")
        cache.lookup("a")
        cache.lookup("missing")
        assert cache.stats.lookups == 3
        assert cache.stats.hit_rate == pytest.approx(2 / 3)
        assert cache.stats.as_dict()["hit_rate"] == pytest.approx(2 / 3, abs=1e-6)
