"""Corrupted-cache recovery: quarantine, recompute, byte parity, SIGTERM.

Every way a ``reports/`` entry can rot on disk — truncation, zero bytes,
bad JSON, a stale checksum — must be detected at lookup, quarantined for
forensics, and answered by recomputation with byte-identical records.
"""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.reliability.atomic import QUARANTINE_DIR, read_checked_json
from repro.reliability.faults import FaultClock, FaultPlan
from repro.service.cache import ReportCache
from repro.service.protocol import (
    canonicalize_request,
    request_digest,
    solve_request,
)
from repro.service.server import SolveService

REQUEST = solve_request(
    "maximal-matching:delta=3", algorithm="matching:proposal", n=24, seed=5
)


def _entry_path(root: Path, digest: str) -> Path:
    return root / "reports" / f"{digest}.json"


CORRUPTIONS = {
    "truncated": lambda p: p.write_text(p.read_text()[: len(p.read_text()) // 2]),
    "zero-byte": lambda p: p.write_text(""),
    "bad-json": lambda p: p.write_text("{]not json"),
    "bad-checksum": lambda p: p.write_text(
        json.dumps({**json.loads(p.read_text()), "record": {"tampered": 1}})
    ),
}


class TestReportCacheRecovery:
    def _seed(self, root) -> str:
        cache = ReportCache(capacity=8, root=root)
        cache.record("d1", "solve", {"answer": 42})
        cache.flush()
        return "d1"

    @pytest.mark.parametrize("corruption", sorted(CORRUPTIONS), ids=str)
    def test_corrupt_entry_is_quarantined_and_becomes_a_miss(
        self, tmp_path, corruption
    ):
        digest = self._seed(tmp_path)
        CORRUPTIONS[corruption](_entry_path(tmp_path, digest))
        cache = ReportCache(capacity=8, root=tmp_path)
        assert cache.lookup(digest) is None  # a miss, never an exception
        assert cache.stats.quarantined >= 1
        assert list((tmp_path / QUARANTINE_DIR).iterdir())

    def test_recomputed_entry_restores_the_bytes(self, tmp_path):
        digest = self._seed(tmp_path)
        original = _entry_path(tmp_path, digest).read_text()
        CORRUPTIONS["truncated"](_entry_path(tmp_path, digest))
        cache = ReportCache(capacity=8, root=tmp_path)
        assert cache.lookup(digest) is None
        cache.record(digest, "solve", {"answer": 42})  # the "recompute"
        assert _entry_path(tmp_path, digest).read_text() == original

    def test_graceful_open_defers_validation(self, tmp_path):
        digest = self._seed(tmp_path)
        cache = ReportCache(capacity=8, root=tmp_path)
        assert cache.recovery["graceful"] is True
        assert cache.lookup(digest)["record"] == {"answer": 42}

    def test_ungraceful_open_sweeps_eagerly(self, tmp_path):
        self._seed(tmp_path)
        (tmp_path / "manifest.json").unlink()
        (tmp_path / "reports" / "junk.json").write_text("{torn")
        cache = ReportCache(capacity=8, root=tmp_path)
        assert cache.recovery["graceful"] is False
        assert cache.recovery["checked"] == 2
        assert cache.recovery["quarantined"] == 1

    def test_first_write_drops_the_manifest_until_flush(self, tmp_path):
        """The manifest doubles as a dirty marker: live caches must not
        look gracefully shut down."""
        self._seed(tmp_path)
        cache = ReportCache(capacity=8, root=tmp_path)
        assert (tmp_path / "manifest.json").exists()
        cache.record("d2", "solve", {"answer": 43})
        assert not (tmp_path / "manifest.json").exists()
        cache.flush()
        assert (tmp_path / "manifest.json").exists()

    def test_write_failure_degrades_durability_not_availability(self, tmp_path):
        clock = FaultClock(FaultPlan.from_faults([("cache.write", 1, "error")]))
        cache = ReportCache(capacity=8, root=tmp_path, fault_clock=clock)
        entry = cache.record("d1", "solve", {"answer": 42})
        assert entry["record"] == {"answer": 42}
        assert cache.stats.write_failures == 1
        assert cache.lookup("d1")["record"] == {"answer": 42}  # memory tier
        assert not _entry_path(tmp_path, "d1").exists()


class TestServiceRecovery:
    def test_corrupted_entry_recomputes_byte_identically(self, tmp_path):
        with SolveService(cache_dir=tmp_path, jobs=1) as service:
            first = service.submit(REQUEST)
            assert first["status"] == "ok"
        digest = request_digest(canonicalize_request(REQUEST))
        CORRUPTIONS["bad-checksum"](_entry_path(tmp_path, digest))
        with SolveService(cache_dir=tmp_path, jobs=1) as revived:
            second = revived.submit(REQUEST)
            assert second["status"] == "ok"
            assert second["report"] == first["report"]
            assert revived.solves_computed == 1  # recomputed, not served
            assert revived.cache.stats.quarantined == 1


class TestSignalShutdown:
    def test_sigterm_flushes_the_shutdown_manifest(self, tmp_path):
        """``python -m repro.service serve`` must leave a checksum-valid
        manifest behind when killed with SIGTERM (satellite: signal
        handlers flush the shutdown manifest)."""
        cache_dir = tmp_path / "cache"
        ready = tmp_path / "ready"
        env = {**os.environ, "PYTHONPATH": "src"}
        daemon = subprocess.Popen(
            [sys.executable, "-m", "repro.service", "serve",
             "--port", "0", "--cache-dir", str(cache_dir),
             "--ready-file", str(ready)],
            cwd=Path(__file__).resolve().parents[2],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
        )
        try:
            deadline = time.monotonic() + 30
            while not ready.exists() and time.monotonic() < deadline:
                time.sleep(0.05)
            assert ready.exists(), "daemon never reported ready"
            host, port = ready.read_text().split()

            from repro.service.client import ServiceClient

            client = ServiceClient(f"http://{host}:{port}")
            response = client.request(REQUEST)
            assert response["status"] == "ok"
            # The cache is dirty now: the manifest is down until shutdown.
            assert not (cache_dir / "manifest.json").exists()

            daemon.send_signal(signal.SIGTERM)
            assert daemon.wait(timeout=30) == 0
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=10)
        manifest = read_checked_json(cache_dir / "manifest.json")
        assert manifest["reports"] == 1
