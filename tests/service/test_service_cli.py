"""``python -m repro.service`` subcommands, driven in-process and end-to-end."""

import json
import threading

import pytest

from repro import api
from repro.service import SolveService, start_http_service
from repro.service.cli import main


@pytest.fixture
def live_url():
    service = SolveService(jobs=1)
    server, thread = start_http_service(service)
    yield server.url
    server.shutdown()
    thread.join(timeout=10)


def run_cli(args, capsys):
    code = main(args)
    captured = capsys.readouterr()
    return code, captured.out, captured.err


class TestRequestCommand:
    def test_report_only_matches_direct(self, live_url, capsys):
        code, out, _err = run_cli(
            ["request", "--url", live_url,
             "--spec", "maximal-matching:delta=3",
             "--algorithm", "matching:proposal",
             "--n", "24", "--seed", "4", "--report-only"],
            capsys,
        )
        assert code == 0
        direct_code, direct_out, _ = run_cli(
            ["direct", "--spec", "maximal-matching:delta=3",
             "--algorithm", "matching:proposal", "--n", "24", "--seed", "4"],
            capsys,
        )
        assert direct_code == 0
        assert out == direct_out
        direct = api.solve("maximal-matching:delta=3",
                           algorithm="matching:proposal", n=24, seed=4)
        assert out.strip() == direct.canonical_json()

    def test_full_response_envelope(self, live_url, capsys):
        code, out, _err = run_cli(
            ["request", "--url", live_url,
             "--spec", "maximal-matching:delta=3",
             "--algorithm", "matching:proposal", "--n", "24"],
            capsys,
        )
        assert code == 0
        response = json.loads(out)
        assert response["status"] == "ok"
        assert response["schema"] == "repro.service/response-v1"

    def test_raw_json_request(self, live_url, capsys):
        raw = json.dumps({
            "schema": "repro.service/request-v1",
            "kind": "solve",
            "problem": "maximal-matching:delta=3",
            "algorithm": "matching:proposal",
            "n": 24,
        })
        code, out, _err = run_cli(
            ["request", "--url", live_url, "--json", raw], capsys
        )
        assert code == 0
        assert json.loads(out)["status"] == "ok"

    def test_error_response_exits_nonzero(self, live_url, capsys):
        code, _out, err = run_cli(
            ["request", "--url", live_url,
             "--spec", "maximal-matching:delta=3",
             "--algorithm", "no:algo"],
            capsys,
        )
        assert code == 1
        assert "unknown-algorithm" in err

    def test_missing_arguments(self, live_url, capsys):
        code, _out, err = run_cli(["request", "--url", live_url], capsys)
        assert code == 2
        assert "--spec" in err

    def test_unreachable_daemon(self, capsys):
        code, _out, err = run_cli(
            ["status", "--url", "http://127.0.0.1:9"], capsys
        )
        assert code == 1
        assert "cannot reach" in err


class TestStatusAndShutdown:
    def test_status_roundtrip(self, live_url, capsys):
        code, out, _err = run_cli(["status", "--url", live_url], capsys)
        assert code == 0
        assert json.loads(out)["schema"] == "repro.service/status-v1"

    def test_shutdown(self, capsys):
        service = SolveService(jobs=1)
        server, thread = start_http_service(service)
        code, out, _err = run_cli(["shutdown", "--url", server.url], capsys)
        assert code == 0
        assert json.loads(out)["status"] == "ok"
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestServeCommand:
    def test_serve_writes_ready_file_and_stops(self, tmp_path, capsys):
        ready = tmp_path / "ready"
        codes = []

        def serve():
            codes.append(main([
                "serve", "--port", "0",
                "--cache-dir", str(tmp_path / "cache"),
                "--ready-file", str(ready),
            ]))

        thread = threading.Thread(target=serve, daemon=True)
        thread.start()
        for _ in range(100):
            if ready.exists():
                break
            threading.Event().wait(0.05)
        assert ready.exists()
        host, port = ready.read_text().split()
        from repro.service import ServiceClient

        client = ServiceClient(f"http://{host}:{port}")
        response = client.solve(
            "maximal-matching:delta=3", algorithm="matching:proposal", n=24
        )
        assert response["status"] == "ok"
        client.shutdown()
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert codes == [0]
        assert (tmp_path / "cache" / "manifest.json").exists()
