"""ServiceClient resilience: timeouts, backoff, Retry-After, exhaustion."""

import json
import random
import socket
import threading
from http.server import BaseHTTPRequestHandler, HTTPServer

import pytest

from repro.reliability.faults import FaultClock, FaultPlan
from repro.service.client import ServiceClient, ServiceUnavailableError
from repro.utils import InvalidParameterError


def closed_port() -> int:
    """A port nothing listens on (bound once, then released)."""
    with socket.socket() as probe:
        probe.bind(("127.0.0.1", 0))
        return probe.getsockname()[1]


class _Script(BaseHTTPRequestHandler):
    """Serves a scripted list of responses, one per request."""

    script = []
    served = []

    def _reply(self):
        if not self.script:
            status, headers, body = 200, {}, json.dumps({"status": "ok"})
        else:
            status, headers, body = self.script.pop(0)
        type(self).served.append(status)
        payload = body.encode("utf-8")
        self.send_response(status)
        for key, value in headers.items():
            self.send_header(key, value)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    do_GET = _reply
    do_POST = _reply

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass


@pytest.fixture
def scripted_server():
    """A throwaway HTTP server whose responses the test scripts."""
    server = HTTPServer(("127.0.0.1", 0), _Script)
    _Script.script = []
    _Script.served = []
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    yield server
    server.shutdown()
    thread.join(timeout=5)
    server.server_close()


def url_of(server) -> str:
    host, port = server.server_address[:2]
    return f"http://{host}:{port}"


class SleepRecorder:
    def __init__(self):
        self.delays = []

    def __call__(self, delay):
        self.delays.append(delay)


class TestConstruction:
    def test_non_http_url_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServiceClient("ftp://example")

    def test_negative_retries_rejected(self):
        with pytest.raises(InvalidParameterError):
            ServiceClient("http://127.0.0.1:1", retries=-1)


class TestBackoffSchedule:
    def _client(self, **kwargs):
        return ServiceClient(
            "http://127.0.0.1:1",
            backoff=0.2,
            max_backoff=5.0,
            jitter=0.0,
            **kwargs,
        )

    def test_exponential_doubling_with_cap(self):
        client = self._client()
        assert client._delay(1, None) == pytest.approx(0.2)
        assert client._delay(2, None) == pytest.approx(0.4)
        assert client._delay(3, None) == pytest.approx(0.8)
        assert client._delay(10, None) == pytest.approx(5.0)  # capped

    def test_jitter_scales_the_base(self):
        client = ServiceClient(
            "http://127.0.0.1:1",
            backoff=1.0,
            jitter=0.5,
            rng=random.Random(0),
        )
        delay = client._delay(1, None)
        assert 1.0 <= delay <= 1.5

    def test_server_hint_replaces_the_backoff(self):
        client = self._client()
        assert client._delay(1, 2.0) == pytest.approx(2.0)
        assert client._delay(1, 99.0) == pytest.approx(5.0)  # capped
        assert client._delay(1, -3.0) == pytest.approx(0.0)  # floored


class TestRetryLoop:
    def test_exhaustion_carries_the_attempt_count(self):
        sleeps = SleepRecorder()
        client = ServiceClient(
            f"http://127.0.0.1:{closed_port()}",
            retries=2,
            backoff=0.01,
            jitter=0.0,
            sleep=sleeps,
        )
        with pytest.raises(ServiceUnavailableError) as info:
            client.status()
        assert info.value.attempts == 3
        assert len(sleeps.delays) == 2  # a sleep before each retry
        assert client.stats == {"attempts": 3, "retried": 2}

    def test_503_is_retried_with_the_retry_after_hint(self, scripted_server):
        _Script.script = [
            (503, {"Retry-After": "2"}, json.dumps(
                {"status": "error", "error": {"code": "overloaded"}}
            )),
        ]
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server), retries=2, jitter=0.0, sleep=sleeps
        )
        assert client.status() == {"status": "ok"}
        assert sleeps.delays == [pytest.approx(2.0)]
        assert _Script.served == [503, 200]

    def test_http_date_retry_after_is_honored(self, scripted_server):
        """RFC 9110 allows ``Retry-After`` as an HTTP-date; the hint is
        the remaining wait relative to the client's clock (regression:
        the date form used to be discarded as unparsable)."""
        _Script.script = [
            (503, {"Retry-After": "Sat, 01 Jan 2000 00:00:02 GMT"}, "{}"),
        ]
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server),
            retries=2,
            jitter=0.0,
            max_backoff=120.0,
            sleep=sleeps,
            clock=lambda: 946684740.0,  # 1999-12-31 23:59:00 GMT
        )
        assert client.status() == {"status": "ok"}
        # Midnight + 2 s is 62 s past the frozen clock.
        assert sleeps.delays == [pytest.approx(62.0)]

    def test_http_date_hint_is_clamped_to_the_backoff_cap(
        self, scripted_server
    ):
        _Script.script = [
            (503, {"Retry-After": "Sat, 01 Jan 2000 01:00:00 GMT"}, "{}"),
        ]
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server),
            retries=2,
            jitter=0.0,
            max_backoff=5.0,
            sleep=sleeps,
            clock=lambda: 946684740.0,  # one hour and change earlier
        )
        assert client.status() == {"status": "ok"}
        assert sleeps.delays == [pytest.approx(5.0)]

    def test_http_date_in_the_past_means_retry_immediately(
        self, scripted_server
    ):
        _Script.script = [
            (503, {"Retry-After": "Fri, 31 Dec 1999 22:00:00 GMT"}, "{}"),
        ]
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server),
            retries=2,
            jitter=0.0,
            sleep=sleeps,
            clock=lambda: 946684740.0,
        )
        assert client.status() == {"status": "ok"}
        assert sleeps.delays == [pytest.approx(0.0)]

    def test_unparsable_retry_after_falls_back_to_backoff(
        self, scripted_server
    ):
        _Script.script = [(503, {"Retry-After": "soonish"}, "{}")]
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server),
            retries=2,
            backoff=0.2,
            jitter=0.0,
            sleep=sleeps,
        )
        assert client.status() == {"status": "ok"}
        assert sleeps.delays == [pytest.approx(0.2)]

    def test_non_json_body_fails_immediately(self, scripted_server):
        _Script.script = [(200, {"Content-Type": "text/html"}, "<html>proxy</html>")]
        sleeps = SleepRecorder()
        client = ServiceClient(url_of(scripted_server), retries=3, sleep=sleeps)
        with pytest.raises(ServiceUnavailableError) as info:
            client.status()
        assert info.value.attempts == 1  # retrying cannot help
        assert sleeps.delays == []

    def test_read_timeout_is_a_transient_failure(self):
        """A server that accepts but never answers must trip the read
        deadline, not hang the caller."""
        gate = threading.Event()
        listener = socket.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def hold():
            connection, _addr = listener.accept()
            gate.wait(timeout=10)
            connection.close()

        thread = threading.Thread(target=hold, daemon=True)
        thread.start()
        try:
            client = ServiceClient(
                f"http://127.0.0.1:{port}",
                timeout=0.2,
                connect_timeout=0.2,
                retries=0,
                sleep=SleepRecorder(),
            )
            with pytest.raises(ServiceUnavailableError) as info:
                client.status()
            assert info.value.attempts == 1
        finally:
            gate.set()
            listener.close()
            thread.join(timeout=5)

    def test_injected_drops_are_retried(self, scripted_server):
        clock = FaultClock(FaultPlan.from_faults(
            [("client.send", 1, "drop"), ("client.recv", 1, "drop")]
        ))
        sleeps = SleepRecorder()
        client = ServiceClient(
            url_of(scripted_server),
            retries=3,
            backoff=0.01,
            jitter=0.0,
            sleep=sleeps,
            fault_clock=clock,
        )
        assert client.status() == {"status": "ok"}
        assert client.stats["retried"] == 2
        assert clock.exhausted()

    def test_ping_maps_reachability_to_bool(self, scripted_server):
        assert ServiceClient(url_of(scripted_server)).ping() is True
        dead = ServiceClient(
            f"http://127.0.0.1:{closed_port()}",
            retries=0,
            sleep=SleepRecorder(),
        )
        assert dead.ping() is False
