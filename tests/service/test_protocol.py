"""Wire protocol: canonicalization, digests, malformed-request codes."""

import pytest

from repro.service.protocol import (
    DEFAULT_ROUNDELIM_BUDGET,
    REQUEST_SCHEMA,
    ProtocolError,
    canonicalize_request,
    error_response,
    ok_response,
    request_digest,
    roundelim_request,
    solve_request,
)


def canonical(request):
    return canonicalize_request(request)


class TestCanonicalizeSolve:
    def test_spec_string_problem(self):
        out = canonical(solve_request(
            "matching:delta=3,x=0,y=1", algorithm="matching:proposal", n=16
        ))
        assert out["schema"] == REQUEST_SCHEMA
        assert out["kind"] == "solve"
        assert out["problem"] == "matching:delta=3,x=0,y=1"
        assert out["algorithm"] == "matching:proposal"
        assert out["engine"] == "object"
        assert out["n"] == 16
        assert out["seed"] == 0
        assert out["check"] is True

    def test_structured_problem_equals_spec_string(self):
        structured = canonical({
            "schema": REQUEST_SCHEMA,
            "kind": "solve",
            "problem": {"family": "matching", "parameters": {"delta": 3}},
            "algorithm": "matching:proposal",
        })
        spec = canonical(solve_request(
            "matching:delta=3", algorithm="matching:proposal"
        ))
        assert structured == spec
        assert request_digest(structured) == request_digest(spec)

    def test_aliases_normalize_to_one_digest(self):
        via_alias = canonical(solve_request(
            "matching:Δ=3,x=0,y=1", algorithm="matching:proposal"
        ))
        via_name = canonical(solve_request(
            "matching:delta=3,x=0,y=1", algorithm="matching:proposal"
        ))
        assert request_digest(via_alias) == request_digest(via_name)

    def test_digest_excludes_engine(self):
        base = canonical(solve_request(
            "matching:delta=3", algorithm="matching:proposal", n=16
        ))
        batched = canonical(solve_request(
            "matching:delta=3", algorithm="matching:proposal", n=16,
            engine="batched",
        ))
        assert base["engine"] != batched["engine"]
        assert request_digest(base) == request_digest(batched)

    def test_digest_sensitive_to_parameters(self):
        reference = canonical(solve_request(
            "matching:delta=3", algorithm="matching:proposal", n=16, seed=0
        ))
        for variant in (
            solve_request("matching:delta=3", algorithm="matching:proposal",
                          n=16, seed=1),
            solve_request("matching:delta=3", algorithm="matching:proposal",
                          n=32, seed=0),
            solve_request("matching:delta=4", algorithm="matching:proposal",
                          n=16, seed=0),
            solve_request("matching:delta=3", algorithm="matching:proposal",
                          n=16, seed=0, check=False),
        ):
            assert request_digest(canonical(variant)) != request_digest(reference)


class TestCanonicalizeRoundelim:
    def test_spec_string_problem(self):
        out = canonical(roundelim_request("sinkless-orientation:delta=3", op="R"))
        assert out["kind"] == "roundelim"
        assert out["op"] == "R"
        assert out["budget"] == DEFAULT_ROUNDELIM_BUDGET
        assert out["engine"] == "kernel"
        assert out["problem_digest"]
        assert out["problem"]["schema"] == "repro.normalize/v1"

    def test_payload_problem_matches_spec_problem(self):
        via_spec = canonical(roundelim_request(
            "sinkless-orientation:delta=3", op="R"
        ))
        via_payload = canonical(roundelim_request(via_spec["problem"], op="R"))
        assert request_digest(via_spec) == request_digest(via_payload)

    def test_digest_excludes_engine(self):
        kernel = canonical(roundelim_request(
            "sinkless-orientation:delta=3", op="RE", engine="kernel"
        ))
        reference = canonical(roundelim_request(
            "sinkless-orientation:delta=3", op="RE", engine="reference"
        ))
        assert request_digest(kernel) == request_digest(reference)


class TestMalformedRequests:
    @pytest.mark.parametrize(
        "request_dict, code",
        [
            ("not a dict", "bad-request"),
            ({"schema": "nope/v0", "kind": "solve"}, "unsupported-schema"),
            ({"schema": REQUEST_SCHEMA, "kind": "explode"}, "unknown-kind"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve",
              "algorithm": "matching:proposal"}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve", "problem": 42,
              "algorithm": "matching:proposal"}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve",
              "problem": {"parameters": {}},
              "algorithm": "matching:proposal"}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve",
              "problem": "matching:delta=3", "algorithm": "matching:proposal",
              "n": True}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve",
              "problem": "matching:delta=3", "algorithm": "matching:proposal",
              "n": 0}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "solve",
              "problem": "matching:delta=3", "algorithm": "matching:proposal",
              "max_rounds": -1}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "roundelim",
              "problem": "sinkless-orientation:delta=3", "op": "Q"},
             "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "roundelim",
              "problem": "sinkless-orientation:delta=3", "op": "R",
              "budget": 0}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "roundelim",
              "problem": "sinkless-orientation:delta=3", "op": "R",
              "engine": "magic"}, "bad-field"),
            ({"schema": REQUEST_SCHEMA, "kind": "roundelim",
              "problem": {"schema": "future/v9"}, "op": "R"},
             "unsupported-schema"),
        ],
    )
    def test_error_code(self, request_dict, code):
        with pytest.raises(ProtocolError) as excinfo:
            canonicalize_request(request_dict)
        assert excinfo.value.code == code

    def test_typed_api_errors_pass_through(self):
        from repro.api import UnknownAlgorithmError

        with pytest.raises(UnknownAlgorithmError):
            canonicalize_request(solve_request(
                "matching:delta=3", algorithm="no-such:algorithm"
            ))


class TestEnvelopes:
    def test_ok_solve_uses_report_field(self):
        response = ok_response("solve", "d" * 32, {"x": 1}, cached=True)
        assert response["status"] == "ok"
        assert response["report"] == {"x": 1}
        assert response["cached"] is True

    def test_ok_roundelim_uses_result_field(self):
        response = ok_response("roundelim", "d" * 32, {"x": 1}, cached=False)
        assert response["result"] == {"x": 1}
        assert "report" not in response

    def test_error_envelope(self):
        response = error_response("bad-field", "nope")
        assert response["status"] == "error"
        assert response["error"] == {"code": "bad-field", "message": "nope"}

    @pytest.mark.parametrize("kind", ["solve", "roundelim"])
    @pytest.mark.parametrize("cached", [True, False])
    def test_rendered_envelope_matches_canonical_dumps(self, kind, cached):
        # The splice fast path must be byte-identical to serializing the
        # dict envelope — this is what keeps cache hits canonical.
        from repro.service.protocol import render_ok_response
        from repro.utils.serialization import canonical_dumps

        record = {"zeta": [3, 1], "alpha": {"b": True, "a": None}, "n": 7}
        digest = "ab" * 16
        spliced = render_ok_response(
            kind, digest, canonical_dumps(record), cached=cached
        )
        assert spliced == canonical_dumps(
            ok_response(kind, digest, record, cached=cached)
        )
