"""HTTP transport + client: end-to-end parity, endpoints, shutdown."""

import json
import urllib.error
import urllib.request

import pytest

from repro import api
from repro.service import (
    REQUEST_SCHEMA,
    ServiceClient,
    SolveService,
    start_http_service,
)
from repro.utils.serialization import canonical_dumps

SPEC = "maximal-matching:delta=3"
ALGORITHM = "matching:proposal"


@pytest.fixture
def live():
    service = SolveService(jobs=1)
    server, thread = start_http_service(service)
    yield ServiceClient(server.url), service
    server.shutdown()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestEndToEnd:
    def test_solve_parity_with_direct(self, live):
        client, _service = live
        response = client.solve(SPEC, algorithm=ALGORITHM, n=24, seed=2)
        assert response["status"] == "ok"
        direct = api.solve(SPEC, algorithm=ALGORITHM, n=24, seed=2)
        assert canonical_dumps(response["report"]) == direct.canonical_json()

    def test_repeat_is_cached(self, live):
        client, _service = live
        first = client.solve(SPEC, algorithm=ALGORITHM, n=24)
        second = client.solve(SPEC, algorithm=ALGORITHM, n=24)
        assert first["cached"] is False
        assert second["cached"] is True
        assert second["report"] == first["report"]

    def test_roundelim_roundtrip(self, live):
        client, _service = live
        response = client.roundelim("sinkless-orientation:delta=3", op="R")
        assert response["status"] == "ok"
        assert response["result"]["status"] == "ok"

    def test_error_codes_travel_over_http(self, live):
        client, _service = live
        response = client.solve(SPEC, algorithm="no:algo")
        assert response["status"] == "error"
        assert response["error"]["code"] == "unknown-algorithm"

    def test_malformed_body_is_bad_request(self, live):
        client, _service = live
        request = urllib.request.Request(
            f"{client.url}/v1/request", data=b"this is not json{{",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        body = json.loads(excinfo.value.read())
        assert body["error"]["code"] == "bad-request"

    def test_client_parses_error_bodies(self, live):
        client, _service = live
        response = client.request({"schema": "bogus/v1"})
        assert response["status"] == "error"
        assert response["error"]["code"] == "unsupported-schema"


class TestEndpoints:
    def test_status(self, live):
        client, service = live
        client.solve(SPEC, algorithm=ALGORITHM, n=24)
        status = client.status()
        assert status["schema"] == "repro.service/status-v1"
        assert status["requests"] == service.requests
        assert status["solves_computed"] == 1

    def test_protocol(self, live):
        client, _service = live
        protocol = client.protocol()
        assert protocol["protocol"]["request"] == REQUEST_SCHEMA
        assert protocol["protocol"]["kinds"] == ["solve", "roundelim"]

    def test_unknown_path_is_404(self, live):
        client, _service = live
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{client.url}/v2/everything", timeout=10)
        assert excinfo.value.code == 404

    def test_ping(self, live):
        client, _service = live
        assert client.ping() is True
        assert ServiceClient("http://127.0.0.1:9", timeout=0.5).ping() is False


class TestShutdown:
    def test_remote_shutdown_stops_server_and_flushes(self, tmp_path):
        service = SolveService(cache_dir=tmp_path, jobs=1)
        server, thread = start_http_service(service)
        client = ServiceClient(server.url)
        client.solve(SPEC, algorithm=ALGORITHM, n=24)
        response = client.shutdown()
        assert response["status"] == "ok"
        thread.join(timeout=10)
        assert not thread.is_alive()
        assert (tmp_path / "manifest.json").exists()

    def test_shutdown_can_be_disabled(self):
        service = SolveService(jobs=1)
        server, thread = start_http_service(
            service, allow_remote_shutdown=False
        )
        client = ServiceClient(server.url)
        response = client.shutdown()
        assert response["status"] == "error"
        assert response["error"]["code"] == "forbidden"
        assert thread.is_alive()
        server.shutdown()
        thread.join(timeout=10)
