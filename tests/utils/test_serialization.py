"""Canonical serialization: the substrate of result reproducibility."""

import json
from dataclasses import dataclass

from repro.utils.serialization import (
    canonical_dumps,
    result_digest,
    to_jsonable,
    write_json,
)


@dataclass(frozen=True)
class _Point:
    x: int
    y: int


class TestToJsonable:
    def test_scalars_pass_through(self):
        for value in (None, True, 3, 2.5, "s"):
            assert to_jsonable(value) == value

    def test_sets_become_sorted_lists(self):
        assert to_jsonable({3, 1, 2}) == [1, 2, 3]
        assert to_jsonable(frozenset({"b", "a"})) == ["a", "b"]

    def test_nested_frozensets(self):
        value = {frozenset({1, 2}), frozenset({0, 3})}
        assert to_jsonable(value) == [[0, 3], [1, 2]]

    def test_tuples_become_lists(self):
        assert to_jsonable((1, (2, 3))) == [1, [2, 3]]

    def test_dict_keys_stringified(self):
        assert to_jsonable({1: "a"}) == {"1": "a"}

    def test_container_dict_keys_are_canonical(self):
        # str(frozenset) iterates in hash order, which varies per process;
        # canonical keys must not (the parallel runner relies on this).
        value = {frozenset({"alpha", "beta", "gamma", "delta"}): 1}
        assert to_jsonable(value) == {'["alpha","beta","delta","gamma"]': 1}
        assert to_jsonable({(2, 1): "x"}) == {"[2,1]": "x"}

    def test_dataclasses(self):
        assert to_jsonable(_Point(1, 2)) == {"x": 1, "y": 2}

    def test_fallback_to_str(self):
        assert to_jsonable(complex(1, 2)) == "(1+2j)"


class TestCanonicalDumps:
    def test_key_order_is_canonical(self):
        assert canonical_dumps({"b": 1, "a": 2}) == canonical_dumps({"a": 2, "b": 1})

    def test_set_order_is_canonical(self):
        assert canonical_dumps({"x", "y", "z"}) == canonical_dumps({"z", "y", "x"})


class TestWriteJson:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "deep" / "out.json"
        write_json(target, {"records": [{"set": {2, 1}}]})
        assert json.loads(target.read_text()) == {"records": [{"set": [1, 2]}]}

    def test_trailing_newline(self, tmp_path):
        target = write_json(tmp_path / "out.json", [1])
        assert target.read_text().endswith("\n")


class TestDigest:
    def test_stable_across_orderings(self):
        assert result_digest({"a": 1, "b": {2, 3}}) == result_digest(
            {"b": {3, 2}, "a": 1}
        )

    def test_distinguishes_values(self):
        assert result_digest({"a": 1}) != result_digest({"a": 2})
