"""Unit and property tests for the multiset primitives."""

from collections import Counter

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.multiset import (
    all_multisets,
    canonical,
    is_submultiset,
    multiset_count,
    multiset_difference,
    replace_one,
    submultisets,
)

items = st.lists(st.sampled_from("ABCD"), max_size=6)


class TestCanonical:
    def test_sorts(self):
        assert canonical("CAB") == ("A", "B", "C")

    @given(items)
    def test_idempotent(self, values):
        once = canonical(values)
        assert canonical(once) == once


class TestSubmultiset:
    def test_respects_multiplicity(self):
        assert is_submultiset(Counter("AA"), Counter("AAB"))
        assert not is_submultiset(Counter("AAA"), Counter("AAB"))

    @given(items, items)
    def test_difference_inverts(self, big_list, small_list):
        big = Counter(big_list + small_list)
        small = Counter(small_list)
        difference = multiset_difference(big, small)
        assert difference + small == big

    def test_difference_rejects_non_subset(self):
        with pytest.raises(ValueError):
            multiset_difference(Counter("A"), Counter("B"))


class TestReplaceOne:
    def test_replaces_exactly_one(self):
        assert replace_one(("A", "A", "B"), "A", "C") == ("A", "B", "C")

    def test_missing_raises(self):
        with pytest.raises(ValueError):
            replace_one(("A",), "B", "C")


class TestEnumeration:
    def test_all_multisets_count_matches_formula(self):
        for universe, size in [("AB", 3), ("ABC", 2), ("ABCD", 4)]:
            enumerated = list(all_multisets(universe, size))
            assert len(enumerated) == multiset_count(len(universe), size)
            assert len(set(enumerated)) == len(enumerated)

    def test_all_multisets_canonical(self):
        for multiset in all_multisets("CBA", 2):
            assert tuple(sorted(multiset)) == multiset

    def test_empty_universe(self):
        assert list(all_multisets("", 0)) == [()]
        assert list(all_multisets("", 2)) == []

    @given(items.filter(bool), st.integers(min_value=0, max_value=4))
    def test_submultisets_are_valid(self, values, size):
        counter = Counter(values)
        seen = set()
        for sub in submultisets(counter, size):
            assert len(sub) == size
            assert is_submultiset(Counter(sub), counter)
            assert sub not in seen
            seen.add(sub)
