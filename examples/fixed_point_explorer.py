"""Round elimination explorer: fixed points across problem families.

Applies RE mechanically to a gallery of problems and reports which are
fixed points (Lemma 5.4's Π_Δ(k) family), which converge after one step
(sinkless orientation on graphs), and which keep evolving (the matching
family, whose Corollary 4.6 sequence strictly weakens each step).

Run:  python examples/fixed_point_explorer.py
"""

from repro.problems import (
    maximal_matching_problem,
    pi_arbdefective,
    pi_matching,
    sinkless_orientation_problem,
)
from repro.roundelim import analyze_fixed_point, compress_labels, round_elimination
from repro.utils.tables import print_table


def main() -> None:
    gallery = [
        pi_arbdefective(3, 2),
        pi_arbdefective(3, 3),
        pi_arbdefective(4, 2),
        sinkless_orientation_problem(3),
        maximal_matching_problem(2),
        pi_matching(3, 0, 1),
    ]
    rows = []
    for problem in gallery:
        report = analyze_fixed_point(problem)
        rows.append(
            (
                problem.name,
                len(problem.alphabet),
                len(report.eliminated.alphabet),
                report.is_exact_fixed_point,
                report.is_relaxation_fixed_point,
            )
        )
    print_table(
        ["problem", "|Σ|", "|Σ(RE)|", "RE fixed point", "relaxation fixed point"],
        rows,
        title="Round elimination fixed point survey (Lemma 5.4 et al.)",
    )

    # Sinkless orientation converges to a fixed point after one step.
    so = sinkless_orientation_problem(3)
    once, _ = compress_labels(round_elimination(so))
    report = analyze_fixed_point(once)
    print(
        f"\nRE(SO_3) is itself a fixed point: {report.is_exact_fixed_point} — "
        "sinkless orientation converges after a single step, the behaviour "
        "that made it the first Supported LOCAL lower bound [BKK+23]."
    )


if __name__ == "__main__":
    main()
