"""Supported LOCAL simulation: maximal matching upper vs lower bound.

Theorem 4.1 says x-maximal y-matching needs Ω(min{(Δ′−x)/y, log_Δ n})
rounds even with the support graph known in advance; the proposal
algorithm gives the matching O(Δ′) upper bound.  This example runs the
distributed proposal algorithm on double covers of certified high-girth
graphs for a sweep of input degrees Δ′ and prints measured rounds next to
the paper's bound — the linear-in-Δ′ *shape* is the reproduced claim.

Run:  python examples/simulate_matching.py
"""

import networkx as nx

from repro.algorithms import bipartite_maximal_matching
from repro.checkers import check_maximal_matching
from repro.core.bounds import matching_sequence_length
from repro.graphs import bipartite_double_cover, cage
from repro.utils.tables import print_table


def input_subgraph_of_degree(cover: nx.Graph, delta_prime: int) -> frozenset:
    """A spanning subgraph of the cover with max degree ≈ Δ′ (greedy)."""
    degrees = {node: 0 for node in cover.nodes}
    chosen = set()
    for edge in sorted(cover.edges, key=str):
        u, v = edge
        if degrees[u] < delta_prime and degrees[v] < delta_prime:
            chosen.add(frozenset(edge))
            degrees[u] += 1
            degrees[v] += 1
    return frozenset(chosen)


def main() -> None:
    support, degree, _girth = cage("tutte_coxeter")
    cover = bipartite_double_cover(support)
    print(f"support: double cover of Tutte–Coxeter, n={cover.number_of_nodes()}, "
          f"Δ={degree}")

    rows = []
    for delta_prime in range(1, degree + 1):
        input_edges = input_subgraph_of_degree(cover, delta_prime)
        matching, rounds = bipartite_maximal_matching(cover, input_edges)
        input_graph = nx.Graph(tuple(edge) for edge in input_edges)
        valid = bool(check_maximal_matching(input_graph, matching))
        k = matching_sequence_length(delta_prime, x=0, y=1)
        rows.append((delta_prime, len(input_edges), rounds, k, valid))

    print_table(
        ["Δ'", "input edges", "measured rounds (upper)", "sequence length k (lower-bound driver)", "valid"],
        rows,
        title="\nmaximal matching: measured rounds vs Δ' (paper: both sides Θ(Δ'))",
    )
    print(
        "\nShape check: measured rounds grow linearly in Δ' (2Δ' by "
        "construction), matching the Ω((Δ'−x)/y) lower bound driver k."
    )


if __name__ == "__main__":
    main()
