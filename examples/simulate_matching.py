"""Supported LOCAL simulation: maximal matching upper vs lower bound.

Theorem 4.1 says x-maximal y-matching needs Ω(min{(Δ′−x)/y, log_Δ n})
rounds even with the support graph known in advance; the proposal
algorithm gives the matching O(Δ′) upper bound.  This example runs the
``thm41-proposal-sweep`` scenario from the experiments registry (the
distributed proposal algorithm on the double cover of Tutte–Coxeter for
a sweep of input degrees Δ′) and prints measured rounds next to the
paper's bound — the linear-in-Δ′ *shape* is the reproduced claim.

Run:  python examples/simulate_matching.py
(For the full suite: python -m repro.experiments run --suite matching)
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def main() -> None:
    scenario = get_scenario("matching", "thm41-proposal-sweep")
    print(f"scenario: {scenario.name} on {scenario.family}, Δ' sweep "
          f"{list(scenario.sizes)}")

    result = execute_scenario(scenario)
    print_table(
        ["Δ'", "input edges", "measured rounds (upper)",
         "sequence length k (lower-bound driver)", "valid"],
        [
            (record["delta_prime"], record["input_edges"], record["rounds"],
             record["sequence_length_k"], record["valid"])
            for record in result.records
        ],
        title="\nmaximal matching: measured rounds vs Δ' (paper: both sides Θ(Δ'))",
    )
    print(
        "\nShape check: measured rounds grow linearly in Δ' (2Δ' by "
        "construction), matching the Ω((Δ'−x)/y) lower bound driver k."
        f"\n(whole scenario measured in {result.wall_seconds:.3f}s wall-clock)"
    )


if __name__ == "__main__":
    main()
