"""End-to-end Supported LOCAL lower bound (the Theorem 3.4 pipeline).

Reproduces the paper's blueprint on a concrete instance:

1. pick the arbdefective coloring fixed point Π_Δ'(k) (Lemma 5.4 makes the
   constant sequence a lower bound sequence of any length);
2. pick a certified support graph (here: the Tutte–Coxeter cage, 3-regular,
   girth 8);
3. refute lift_{Δ,2}(Π_Δ'(k)) on it with the exact CSP solver;
4. conclude min{k, (g−4)/2} deterministic rounds and the Lemma C.2
   randomized bound — a fully machine-checked certificate.

Run:  python examples/supported_lower_bound.py
"""

from repro.core import supported_local_lower_bound_hypergraph
from repro.graphs import analyze_support_graph, cage
from repro.problems import pi_arbdefective
from repro.roundelim import constant_sequence
from repro.utils.tables import print_table


def main() -> None:
    support, degree, girth = cage("tutte_coxeter")
    report = analyze_support_graph(support)
    print(f"support graph: Tutte–Coxeter cage, n={report.n}, Δ={report.degree}, "
          f"girth={report.girth}, χ={report.chromatic_number}")

    problem = pi_arbdefective(2, 1)  # Δ' = 2, k = 1: needs a 2-coloring
    sequence = constant_sequence(problem, length=6)
    print(f"problem: {problem.name} (input degree Δ' = 2), "
          f"constant sequence of length {sequence.length} (Lemma 5.4 fixed point)")

    certificate = supported_local_lower_bound_hypergraph(
        support, sequence, problem, delta=degree, rank=2
    )
    rows = [
        ("lift unsolvable on support", certificate.lift_unsolvable),
        ("sequence length k", certificate.sequence_length),
        ("girth g", certificate.girth),
        ("deterministic rounds ≥ min{k,(g−4)/2}", certificate.deterministic_rounds),
        ("randomized rounds (Lemma C.2 lift)", certificate.randomized_rounds),
    ]
    print_table(["quantity", "value"], rows, title="\nLower bound certificate")

    print(
        "\nInterpretation: any deterministic Supported LOCAL algorithm for "
        f"{problem.name} on this support graph needs at least "
        f"{certificate.deterministic_rounds} rounds — even though every node "
        "knows the entire support graph in advance."
    )


if __name__ == "__main__":
    main()
