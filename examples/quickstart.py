"""Quickstart: the black-white formalism, diagrams, RE and lift in 5 minutes.

Walks the maximal matching problem (paper Appendix A) through the whole
stack: the one-call ``repro.api`` façade, construction, strength diagram,
one round elimination step, the lift operator, and a Supported LOCAL
0-round solvability decision on a concrete support graph.

Run:  python examples/quickstart.py
"""

from repro import api
from repro.core import algorithm_from_lift_solution, is_correct_zero_round, lift
from repro.formalism import black_diagram, render_diagram, render_problem
from repro.formalism.labels import set_label_members
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.roundelim import compress_labels, round_elimination
from repro.solvers import solve_bipartite


def main() -> None:
    # 0. The one-call façade: spec → algorithm → engine → checker.
    report = api.solve("matching:Δ=4,x=0,y=1",
                       algorithm="matching:proposal", engine="batched", seed=0)
    print(f"api.solve: {report.problem} via {report.algorithm} on the "
          f"{report.engine} engine → rounds={report.rounds}, "
          f"|M|={len(report.outputs)}, valid={report.valid}")
    print()

    # 1. The maximal matching problem in the black-white formalism.
    problem = maximal_matching_problem(3)
    print(render_problem(problem))

    # 2. Its black diagram — the paper's Appendix A says: one edge, P → O.
    print()
    print(render_diagram(black_diagram(problem), title="black diagram"))

    # 3. One round elimination step (Appendix B).
    eliminated, mapping = compress_labels(round_elimination(problem))
    print()
    print(f"RE({problem.name}) has {len(eliminated.alphabet)} labels, "
          f"{len(eliminated.white)} white and {len(eliminated.black)} black "
          f"configurations")

    # 4. The lift operator (Definition 3.1) for a degree-2 support graph.
    mm2 = maximal_matching_problem(2)
    lifted = lift(mm2, delta=2, rank=2)
    print()
    print(f"lift alphabet (right-closed label sets): "
          f"{sorted(''.join(sorted(s)) for s in lifted.label_sets)}")

    # 5. Theorem 3.2 in action: 0-round Supported LOCAL solvability on C6
    #    reduces to existence of a lift solution, decided exactly.
    support = mark_bipartition(cycle(6))
    solution = solve_bipartite(support, lifted.to_problem())
    print()
    if solution is None:
        print("lift unsolvable on C6: maximal matching needs > 0 rounds")
        return
    print("lift solvable on C6 → maximal matching is 0-round solvable "
          "in Supported LOCAL; deriving the algorithm…")
    decoded = {edge: set_label_members(label) for edge, label in solution.items()}
    algorithm = algorithm_from_lift_solution(support, lifted, decoded)
    verified = is_correct_zero_round(algorithm, mm2)
    print(f"derived 0-round white algorithm exhaustively verified: {verified}")


if __name__ == "__main__":
    main()
