"""THM51 — Theorem 5.1 / 1.6: arbdefective coloring lower bound.

Regenerates the three mechanical pillars of §5 via the ``arbdefective``
suite of the experiments registry:

1. Lemma 5.4: RE(Π_Δ(k)) ≅ Π_Δ(k) — the fixed point, run literally;
2. Corollary 5.8: lift_{Δ,2}(Π_Δ'(k)) refuted on a certified support graph
   whose chromatic number exceeds 2k;
3. Lemmas 5.9/5.10: the Hall extraction and the 2k-coloring extraction
   executed on an honest solution.
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def test_thm51_fixed_points(benchmark):
    def run():
        records = []
        for name in ("thm51-fixed-points-k2", "thm51-fixed-points-k3"):
            records.extend(execute_scenario(get_scenario("arbdefective", name)).records)
        return records

    records = benchmark(run)
    assert all(record["fixed_point"] for record in records)
    print_table(
        ["Δ", "k", "RE(Π_Δ(k)) ≅ Π_Δ(k)"],
        [(r["delta"], r["k"], r["fixed_point"]) for r in records],
        title="THM51: Lemma 5.4 fixed points, verified mechanically",
    )


def test_thm51_lift_refutation(benchmark):
    scenario = get_scenario("arbdefective", "thm51-lift-refutation")
    record = benchmark(lambda: execute_scenario(scenario).records[0])
    # 2k = 2 < χ(Petersen) = 3 → Corollary 5.8's refutation must hold.
    assert record["chromatic_number"] == 3
    assert not record["lift_solvable"]
    assert record["valid"]
    print_table(
        ["quantity", "value"],
        [
            ("support", f"Petersen (χ = {record['chromatic_number']}, "
                        f"girth {record['girth']})"),
            ("problem", "Π_2(1), 2k = 2 colors extractable"),
            ("lift solvable", record["lift_solvable"]),
            ("paper bound Ω(log_Δ n) at Δ=8, n=10^9", record["paper_bound"]),
            ("applicability (α+1)c ≤ min{Δ',εΔ/logΔ}", record["applicable"]),
        ],
        title="THM51: Corollary 5.8 refutation on a certified support graph",
    )


def test_thm51_extraction_pipeline(benchmark):
    scenario = get_scenario("arbdefective", "thm51-extraction")
    record = benchmark(lambda: execute_scenario(scenario).records[0])
    assert record["proper"]
    assert record["palette"] <= record["palette_cap"]
    print_table(
        ["quantity", "value"],
        [
            ("k (family colors)", record["k"]),
            ("palette used by Lemma 5.10 extraction", record["palette"]),
            ("paper cap 2k", record["palette_cap"]),
            ("extracted coloring proper", record["proper"]),
        ],
        title="THM51: Lemmas 5.9 + 5.10 extraction, executed",
    )
