"""THM51 — Theorem 5.1 / 1.6: arbdefective coloring lower bound.

Regenerates the three mechanical pillars of §5:

1. Lemma 5.4: RE(Π_Δ(k)) ≅ Π_Δ(k) — the fixed point, run literally;
2. Corollary 5.8: lift_{Δ,2}(Π_Δ'(k)) refuted on a certified support graph
   whose chromatic number exceeds 2k;
3. Lemmas 5.9/5.10: the Hall extraction and the 2k-coloring extraction
   executed on an honest solution.
"""

from repro.analysis import extract_coloring, extract_family_solution, palette_size
from repro.algorithms import class_sweep_arbdefective_coloring, class_sweep_coloring
from repro.checkers import check_proper_coloring
from repro.core.bounds import theorem_51_applicable, theorem_51_bound
from repro.formalism.diagrams import black_diagram, right_closure
from repro.graphs import analyze_support_graph, cage
from repro.problems import arbdefective_to_family_labels, pi_arbdefective
from repro.roundelim import is_fixed_point
from repro.solvers import lift_solvable_non_bipartite
from repro.utils.tables import print_table


def test_thm51_fixed_points(benchmark):
    def run():
        return [
            (delta, k, is_fixed_point(pi_arbdefective(delta, k)))
            for delta, k in [(2, 2), (3, 2), (4, 2), (3, 3)]
        ]

    rows = benchmark(run)
    assert all(flag for _d, _k, flag in rows)
    print_table(
        ["Δ", "k", "RE(Π_Δ(k)) ≅ Π_Δ(k)"],
        rows,
        title="THM51: Lemma 5.4 fixed points, verified mechanically",
    )


def test_thm51_lift_refutation(benchmark):
    def run():
        support, _degree, _girth = cage("petersen")
        report = analyze_support_graph(support)
        solvable, _sol, _lifted = lift_solvable_non_bipartite(
            support, pi_arbdefective(2, 1), delta=3, rank=2
        )
        return report, solvable

    report, solvable = benchmark(run)
    # 2k = 2 < χ(Petersen) = 3 → Corollary 5.8's refutation must hold.
    assert report.chromatic_number == 3
    assert not solvable
    print_table(
        ["quantity", "value"],
        [
            ("support", f"Petersen (χ = {report.chromatic_number}, girth {report.girth})"),
            ("problem", "Π_2(1), 2k = 2 colors extractable"),
            ("lift solvable", solvable),
            ("paper bound Ω(log_Δ n) at Δ=8, n=10^9", round(
                theorem_51_bound(8, 10**9).deterministic, 2)),
            ("applicability (α+1)c ≤ min{Δ',εΔ/logΔ}", theorem_51_applicable(
                delta=100, delta_prime=10, alpha=0, colors=2)),
        ],
        title="THM51: Corollary 5.8 refutation on a certified support graph",
    )


def test_thm51_extraction_pipeline(benchmark):
    def run():
        graph, _d, _g = cage("petersen")
        base = class_sweep_coloring(graph)[0]
        color_of, orientation, alpha, _rounds = class_sweep_arbdefective_coloring(
            graph, {n: c + 1 for n, c in base.items()}, 2
        )
        k = (alpha + 1) * 2
        labels = arbdefective_to_family_labels(graph, color_of, orientation, alpha)
        diagram = black_diagram(pi_arbdefective(3, k))
        sets = {key: right_closure(diagram, [lab]) for key, lab in labels.items()}
        s_nodes = set(graph.nodes)
        family = extract_family_solution(graph, s_nodes, sets, k)
        coloring = extract_coloring(graph, s_nodes, family)
        return graph, coloring, k

    graph, coloring, k = benchmark(run)
    assert check_proper_coloring(graph, coloring)
    assert palette_size(coloring) <= 2 * k
    print_table(
        ["quantity", "value"],
        [
            ("k (family colors)", k),
            ("palette used by Lemma 5.10 extraction", palette_size(coloring)),
            ("paper cap 2k", 2 * k),
            ("extracted coloring proper", True),
        ],
        title="THM51: Lemmas 5.9 + 5.10 extraction, executed",
    )
