"""THM41 — Theorem 4.1 / 1.5: x-maximal y-matching lower bound.

Regenerates, per parameter row: the k = ⌊(Δ′−x)/y⌋−2 sequence length, the
paper bound vs the measured proposal-algorithm rounds (the shape claim:
both Θ(Δ′) for fixed x, y), the §4.2 contradiction-region arithmetic
(Lemmas 4.8 vs 4.9), and a concrete lift refutation on a small support.

The sweep itself is a thin wrapper over the experiments registry
(``matching`` suite, scenario ``thm41-proposal-sweep``): graph
construction, round measurement and validity checking live in
:mod:`repro.experiments.pipelines`.
"""

from repro.analysis import contradiction_region
from repro.experiments import execute_scenario, get_scenario
from repro.problems import pi_matching_endpoint
from repro.solvers import lift_solvable_bipartite
from repro.utils.tables import print_table


def sweep():
    scenario = get_scenario("matching", "thm41-proposal-sweep")
    return execute_scenario(scenario).records


def test_thm41_shape(benchmark):
    records = benchmark(sweep)
    assert all(record["valid"] for record in records)
    measured = [record["rounds"] for record in records]
    assert measured == sorted(measured)  # rounds grow with Δ′ (the shape)
    print_table(
        ["Δ' (measured)", "k = ⌊(Δ'−x)/y⌋−2", "measured rounds (upper bound)",
         "paper bound at 10Δ', n=10^12"],
        [
            (record["delta_prime"], record["sequence_length_k"],
             record["rounds"], record["paper_bound_deterministic"])
            for record in records
        ],
        title="THM41: matching — measured upper vs paper lower, both Θ(Δ')",
    )


def test_thm41_contradiction_region():
    """§4.2 fixes c = 5 (Δ = 5Δ′): Lemma 4.8's lower bound must exceed
    Lemma 4.9's upper bound — the arithmetic core of the unsolvability."""
    rows = []
    for delta_prime in (2, 4, 8, 16):
        for ratio in (2, 3, 5, 8):
            delta = ratio * delta_prime
            rows.append(
                (delta_prime, ratio, contradiction_region(delta, delta_prime, y=1))
            )
    assert all(flag for dp, ratio, flag in rows if ratio >= 5)
    print_table(
        ["Δ'", "Δ/Δ'", "Lemmas 4.8 vs 4.9 contradict"],
        rows,
        title="THM41: the §4.2 contradiction region (paper picks Δ = 5Δ')",
    )


def test_thm41_solvable_side_contrast(benchmark):
    """Contrast for the refutation: with Δ = Δ' the endpoint problem's
    lift IS solvable (maximal matching is 0 rounds when the input graph
    equals the known support graph) — the lower bound genuinely needs the
    Δ ≫ Δ' regime, where the paper's argument is the *analytic* counting
    contradiction of Lemmas 4.8/4.9 (regenerated above), not search.
    """
    from repro.graphs import cycle, mark_bipartition

    def run():
        support = mark_bipartition(cycle(8))
        problem = pi_matching_endpoint(2, 1)
        solvable, _sol, _lifted = lift_solvable_bipartite(
            support, problem, delta=2, rank=2
        )
        return solvable

    solvable = benchmark(run)
    assert solvable
