"""FIG1 — regenerate Figure 1: the black diagram of Π_Δ'(x',y).

Paper artifact: the diagram with edges Z→M, Z→P, P→O, O→X, M→X and the
right-closed label-set family {X, OX, MX, MOX, POX, MPOX, ZMPOX} (§4.2).
Reproduction: the mechanical strength relation matches Figure 1 exactly at
generic parameters (x = 0); at the endpoint x' = Δ'−1−y it *refines* the
drawn diagram with O ≡ X and M→O (see EXPERIMENTS.md), which only
strengthens the Lemma 4.8/4.9 counting.
"""

from repro.formalism import black_diagram, diagram_edges, right_closed_subsets
from repro.problems import pi_matching, pi_matching_endpoint
from repro.utils.tables import print_table

FIGURE1_REDUCTION = frozenset(
    {("Z", "M"), ("Z", "P"), ("P", "O"), ("O", "X"), ("M", "X")}
)


def regenerate_figure1():
    generic = black_diagram(pi_matching(5, 0, 1))
    endpoint = black_diagram(pi_matching_endpoint(5, 1))
    return generic, endpoint


def test_fig1_diagram(benchmark):
    generic, endpoint = benchmark(regenerate_figure1)

    generic_edges = diagram_edges(generic)
    # Figure 1's drawn edges are all present at x = 0 …
    assert FIGURE1_REDUCTION <= generic_edges
    # … and the full relation adds only their transitive closure.
    transitive = {("Z", "O"), ("Z", "X"), ("P", "X")}
    assert generic_edges == FIGURE1_REDUCTION | transitive

    endpoint_sets = {
        "".join(sorted(s)) for s in right_closed_subsets(endpoint)
    }
    paper_family = {"X", "OX", "MX", "MOX", "OPX", "MOPX", "MOPXZ"}
    assert endpoint_sets <= paper_family

    print_table(
        ["artifact", "paper", "measured"],
        [
            ("diagram edges (x=0)", sorted(FIGURE1_REDUCTION), sorted(generic_edges)),
            ("right-closed sets (endpoint)", sorted(paper_family), sorted(endpoint_sets)),
        ],
        title="FIG1: black diagram of the matching family",
    )
