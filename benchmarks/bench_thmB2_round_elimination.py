"""THMB2 — Lemma B.1 / Theorem B.2: the Supported LOCAL speedup, executed.

Regenerates the T = 1 → 0 step: a certified 1-round white algorithm for
MM_2 on a girth-8 support cycle is transformed into the 0-round black
algorithm for R(MM_2), whose outputs are validated against R's constraints
on every admissible input graph (2^8 of them).
"""

from repro.core import (
    algorithm_from_lift_solution,
    admissible_subgraphs,
    derive_zero_round_black_algorithm,
    is_correct_one_round,
    lift,
)
from repro.core.speedup import check_against_R_problem
from repro.formalism.labels import set_label_members
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.roundelim import apply_R
from repro.solvers import solve_bipartite
from repro.utils.tables import print_table


def run_speedup():
    graph = mark_bipartition(cycle(8))
    problem = maximal_matching_problem(2)
    lifted = lift(problem, 2, 2)
    solution = solve_bipartite(graph, lifted.to_problem())
    decoded = {edge: set_label_members(label) for edge, label in solution.items()}
    zero_round = algorithm_from_lift_solution(graph, lifted, decoded)

    def one_round_rule(node, own_inputs, view):
        return zero_round.run(node, frozenset(own_inputs))

    assert is_correct_one_round(graph, one_round_rule, problem, edge_limit=8)
    r_problem = apply_R(problem)
    checked = passed = 0
    for input_edges in admissible_subgraphs(graph, 2, 2, edge_limit=8):
        derived = derive_zero_round_black_algorithm(
            graph, one_round_rule, problem, input_edges, edge_limit=8
        )
        checked += 1
        if check_against_R_problem(derived, graph, r_problem, input_edges):
            passed += 1
    return checked, passed, r_problem


def test_thmB2_speedup(benchmark):
    checked, passed, r_problem = benchmark(run_speedup)
    assert checked == passed == 2**8
    print_table(
        ["quantity", "value"],
        [
            ("support graph", "C8 (girth 8 ≥ 2T+4)"),
            ("input graphs exhaustively checked", checked),
            ("R(MM_2) satisfied on all of them", passed),
            ("R(MM_2) alphabet", sorted(r_problem.alphabet)),
        ],
        title="THMB2: Lemma B.1 speedup step, exhaustively validated",
    )
