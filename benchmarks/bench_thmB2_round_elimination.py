"""THMB2 — Lemma B.1 / Theorem B.2: the Supported LOCAL speedup, executed.

Regenerates the T = 1 → 0 step: a certified 1-round white algorithm for
MM_2 on a girth-8 support cycle is transformed into the 0-round black
algorithm for R(MM_2), whose outputs are validated against R's constraints
on every admissible input graph (2^8 of them).  Thin wrapper over the
``round_elimination`` suite scenario ``thmb2-speedup``.
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def run_speedup():
    scenario = get_scenario("round_elimination", "thmb2-speedup")
    return execute_scenario(scenario).records[0]


def test_thmB2_speedup(benchmark):
    record = benchmark(run_speedup)
    assert record["one_round_certified"]
    assert record["input_graphs_checked"] == record["r_problem_satisfied"] == 2**8
    print_table(
        ["quantity", "value"],
        [
            ("support graph", "C8 (girth 8 ≥ 2T+4)"),
            ("input graphs exhaustively checked", record["input_graphs_checked"]),
            ("R(MM_2) satisfied on all of them", record["r_problem_satisfied"]),
            ("R(MM_2) alphabet", record["r_alphabet"]),
        ],
        title="THMB2: Lemma B.1 speedup step, exhaustively validated",
    )
