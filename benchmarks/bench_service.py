"""SERVICE — warm-cache latency vs cold solves through the daemon.

The acceptance claim of ``repro.service``: on repeated matching and
ruling-set workloads, a warm cache answers requests with latency at
least **10×** lower than the cold solve, while every response stays
byte-identical to the direct :func:`repro.api.solve` report.  The mixed
hot/cold phase replays ~200 requests from several client threads against
a live HTTP daemon and records throughput, p50/p99 latency and the cache
hit rate.

Dual mode:

* ``pytest benchmarks/bench_service.py`` — asserts the 10× criterion and
  service-vs-direct byte parity on the smoke matrix;
* ``python benchmarks/bench_service.py [--smoke] [--out F] [--requests N]
  [--clients K]`` — measures the full workload, writes
  ``BENCH_service.json`` (schema ``repro.bench/service/v1``: cold/warm
  latency quantiles, throughput, hit rate) and exits non-zero when the
  10× criterion fails.
"""

from __future__ import annotations

import argparse
import statistics
import sys
import threading
import time
from pathlib import Path

from repro import api
from repro.service import (
    ServiceClient,
    SolveService,
    solve_request,
    start_http_service,
)
from repro.utils.serialization import canonical_dumps
from repro.utils.tables import print_table

SCHEMA = "repro.bench/service/v1"

#: The acceptance criterion: warm p50 latency ≥ 10× lower than cold p50.
CRITERION_SPEEDUP = 10.0

#: The repeated workloads: (name, spec, algorithm, sizes).  Sizes are
#: chosen so a cold solve costs tens of milliseconds — enough to dwarf
#: the ~milliseconds of HTTP round-trip a warm cache hit costs, which is
#: what the 10× criterion compares against.
WORKLOADS = (
    ("matching", "maximal-matching:delta=3", "matching:proposal",
     (2048, 4096)),
    ("ruling-set", "ruling-set:delta=3,colors=1,beta=2",
     "ruling-set:class-sweep", (2048, 4096)),
)


def _unique_requests(sizes_per_workload: int, seeds: int) -> list[dict]:
    """The distinct request population the mixed phase replays."""
    requests = []
    for _name, spec, algorithm, sizes in WORKLOADS:
        for n in sizes[:sizes_per_workload]:
            for seed in range(seeds):
                requests.append(
                    solve_request(spec, algorithm=algorithm, n=n, seed=seed)
                )
    return requests


def _quantiles(latencies: list[float]) -> dict:
    ordered = sorted(latencies)
    return {
        "p50_ms": round(1000 * statistics.median(ordered), 3),
        "p99_ms": round(1000 * ordered[min(len(ordered) - 1,
                                           int(0.99 * len(ordered)))], 3),
        "mean_ms": round(1000 * statistics.fmean(ordered), 3),
    }


def measure(
    *, requests: int = 200, clients: int = 4, sizes_per_workload: int = 2,
    seeds: int = 3,
) -> dict:
    """Cold phase, then a threaded mixed hot/cold phase; returns the payload.

    Cold: each unique request once, timed individually (every one a real
    solve).  Mixed: ``requests`` replays of the unique population spread
    round-robin over ``clients`` threads — after the cold phase all of
    them are cache hits, which is what the hit-rate and warm-latency
    figures measure.
    """
    population = _unique_requests(sizes_per_workload, seeds)
    service = SolveService(jobs=1, capacity=1024)
    server, thread = start_http_service(service)
    client = ServiceClient(server.url)
    try:
        cold_latencies = []
        for request in population:
            start = time.perf_counter()
            response = client.request(request)
            cold_latencies.append(time.perf_counter() - start)
            assert response["status"] == "ok", response
            assert response["cached"] is False, "cold phase hit the cache"

        # Byte parity: one request per workload against the direct façade.
        for _name, spec, algorithm, sizes in WORKLOADS:
            response = client.request(
                solve_request(spec, algorithm=algorithm, n=sizes[0], seed=0)
            )
            direct = api.solve(spec, algorithm=algorithm, n=sizes[0], seed=0)
            if canonical_dumps(response["report"]) != direct.canonical_json():
                raise AssertionError(
                    f"service response diverges from direct solve on {spec}"
                )

        warm_latencies: list[list[float]] = [[] for _ in range(clients)]
        errors: list[dict] = []

        def worker(worker_index: int) -> None:
            worker_client = ServiceClient(server.url)
            for position in range(worker_index, requests, clients):
                request = population[position % len(population)]
                start = time.perf_counter()
                response = worker_client.request(request)
                warm_latencies[worker_index].append(
                    time.perf_counter() - start
                )
                if response["status"] != "ok" or not response["cached"]:
                    errors.append(response)

        threads = [
            threading.Thread(target=worker, args=(index,))
            for index in range(clients)
        ]
        mixed_start = time.perf_counter()
        for worker_thread in threads:
            worker_thread.start()
        for worker_thread in threads:
            worker_thread.join()
        mixed_seconds = time.perf_counter() - mixed_start
        if errors:
            raise AssertionError(f"mixed phase saw failures: {errors[:3]}")

        flat_warm = [value for bucket in warm_latencies for value in bucket]
        status = service.status()
        cold = _quantiles(cold_latencies)
        warm = _quantiles(flat_warm)
        return {
            "schema": SCHEMA,
            "criterion": {"min_speedup": CRITERION_SPEEDUP},
            "unique_requests": len(population),
            "mixed_requests": len(flat_warm),
            "clients": clients,
            "cold": cold,
            "warm": warm,
            "speedup_p50": round(cold["p50_ms"] / warm["p50_ms"], 3),
            "throughput_rps": round(len(flat_warm) / mixed_seconds, 1),
            "mixed_seconds": round(mixed_seconds, 3),
            "cache": status["cache"],
            "coalesced": status["coalesced"],
            "solves_computed": status["solves_computed"],
        }
    finally:
        server.shutdown()
        thread.join(timeout=10)


# ---------------------------------------------------------------------------
# pytest mode


def test_warm_cache_latency_at_least_10x_lower():
    payload = measure(requests=60, clients=2, sizes_per_workload=1, seeds=2)
    assert payload["speedup_p50"] >= CRITERION_SPEEDUP, payload
    assert payload["cache"]["hit_rate"] >= 0.5, payload["cache"]


def test_service_reports_byte_identical_to_direct():
    spec, algorithm = "maximal-matching:delta=3", "matching:proposal"
    with SolveService(jobs=1) as service:
        response = service.submit(
            solve_request(spec, algorithm=algorithm, n=64, seed=0)
        )
    direct = api.solve(spec, algorithm=algorithm, n=64, seed=0)
    assert canonical_dumps(response["report"]) == direct.canonical_json()


# ---------------------------------------------------------------------------
# CLI mode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="smaller population and fewer replays")
    parser.add_argument("--out", default=None,
                        help="write BENCH_service.json here")
    parser.add_argument("--requests", type=int, default=200,
                        help="mixed-phase request count (default 200)")
    parser.add_argument("--clients", type=int, default=4,
                        help="concurrent client threads (default 4)")
    args = parser.parse_args(argv)

    if args.smoke:
        payload = measure(requests=min(args.requests, 60), clients=2,
                          sizes_per_workload=1, seeds=2)
    else:
        payload = measure(requests=args.requests, clients=args.clients)

    if args.out:
        Path(args.out).write_text(canonical_dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print_table(
        ["phase", "p50 ms", "p99 ms", "mean ms"],
        [
            ("cold", payload["cold"]["p50_ms"], payload["cold"]["p99_ms"],
             payload["cold"]["mean_ms"]),
            ("warm", payload["warm"]["p50_ms"], payload["warm"]["p99_ms"],
             payload["warm"]["mean_ms"]),
        ],
        title=(
            f"solve service: {payload['mixed_requests']} mixed requests, "
            f"{payload['throughput_rps']} req/s, hit rate "
            f"{payload['cache']['hit_rate']}"
        ),
    )
    if payload["speedup_p50"] < CRITERION_SPEEDUP:
        print(
            f"FAIL: warm p50 only {payload['speedup_p50']:.1f}x lower than "
            f"cold; criterion is {CRITERION_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(
        f"ok: warm p50 {payload['speedup_p50']:.1f}x lower than cold",
        file=sys.stderr,
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
