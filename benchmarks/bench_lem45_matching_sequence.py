"""LEM45 — Lemma 4.5 / Corollary 4.6: the matching lower bound sequence.

Regenerates the [BO20] sequence step mechanically: RE(Π_Δ(x,y)) is
computed with the Appendix B operators and Π_Δ(x+y,y) is certified as a
relaxation.  Reproduction finding (documented in EXPERIMENTS.md): the
steps need the paper's *general* per-configuration relaxation notion —
no label-to-label map witnesses them.  Thin wrapper over the ``matching``
suite scenarios ``lem45-steps-*`` and ``cor46-full-sequence``.
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def verify_steps():
    records = []
    for name in ("lem45-steps-x0", "lem45-steps-x1"):
        records.extend(execute_scenario(get_scenario("matching", name)).records)
    return records


def test_lem45_sequence_steps(benchmark):
    records = benchmark(verify_steps)
    for record in records:
        step = (f"RE(Π_{record['delta']}({record['x']},{record['y']})) → "
                f"Π_{record['delta']}({record['x'] + record['y']},{record['y']})")
        assert record["config_map_witness"], step
        assert not record["label_map_witness"], step  # the general notion is necessary
    print_table(
        ["step", "label-map witness", "config-map witness (paper's notion)", "|Σ(RE)|"],
        [
            (f"RE(Π_{r['delta']}({r['x']},{r['y']})) → "
             f"Π_{r['delta']}({r['x'] + r['y']},{r['y']})",
             r["label_map_witness"], r["config_map_witness"],
             r["re_alphabet_size"])
            for r in records
        ],
        title="LEM45: matching sequence steps, mechanically certified",
    )


def test_cor46_full_sequence(benchmark):
    scenario = get_scenario("matching", "cor46-full-sequence")
    record = benchmark(lambda: execute_scenario(scenario).records[0])
    assert record["witnesses"] == record["steps"] == 2
    assert record["valid"]
