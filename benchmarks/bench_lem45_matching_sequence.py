"""LEM45 — Lemma 4.5 / Corollary 4.6: the matching lower bound sequence.

Regenerates the [BO20] sequence step mechanically: RE(Π_Δ(x,y)) is
computed with the Appendix B operators and Π_Δ(x+y,y) is certified as a
relaxation.  Reproduction finding (documented in EXPERIMENTS.md): the
steps need the paper's *general* per-configuration relaxation notion —
no label-to-label map witnesses them.
"""

from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
    is_relaxation_via_config_map,
)
from repro.problems import matching_sequence_problems, pi_matching
from repro.roundelim import LowerBoundSequence, compress_labels, round_elimination
from repro.utils.tables import print_table


def verify_steps():
    rows = []
    for delta, x, y in [(3, 0, 1), (4, 0, 1), (4, 1, 1)]:
        source, _ = compress_labels(round_elimination(pi_matching(delta, x, y)))
        target = pi_matching(delta, x + y, y)
        label_map = find_label_relaxation(source, target)
        config_map = find_config_map_relaxation(source, target)
        verified = config_map is not None and is_relaxation_via_config_map(
            source, target, config_map
        )
        rows.append(
            (
                f"RE(Π_{delta}({x},{y})) → Π_{delta}({x + y},{y})",
                label_map is not None,
                verified,
                len(source.alphabet),
            )
        )
    return rows


def test_lem45_sequence_steps(benchmark):
    rows = benchmark(verify_steps)
    for name, has_label_map, verified, _size in rows:
        assert verified, name
        assert not has_label_map, name  # the general notion is necessary
    print_table(
        ["step", "label-map witness", "config-map witness (paper's notion)", "|Σ(RE)|"],
        rows,
        title="LEM45: matching sequence steps, mechanically certified",
    )


def test_cor46_full_sequence(benchmark):
    def run():
        problems = matching_sequence_problems(4, 0, 1, steps=2)
        return LowerBoundSequence(problems=tuple(problems)).verify()

    witnesses = benchmark(run)
    assert len(witnesses) == 2
    assert all(w.config_map is not None or w.relaxation_map is not None
               for w in witnesses)
