"""ROUNDELIM — reference vs bitmask-kernel round elimination operators.

The acceptance claim of the ``repro.roundelim.kernel`` subsystem: on the
paper's problem families at growing Δ, the bitmask-compiled engine
computes ``round_elimination`` several times faster than the reference
string-domain implementation while producing the *identical*
``Problem`` — and at least **4×** faster on the Δ=4 matching RE step
(``Π_4(0,1)``), the step every diagram/sequence benchmark iterates.

Dual mode:

* ``pytest benchmarks/bench_roundelim_kernel.py`` — asserts the 4×
  criterion and output identity;
* ``python benchmarks/bench_roundelim_kernel.py [--smoke] [--out F]
  [--baseline F] [--tolerance 0.25]`` — measures the workload matrix,
  writes ``BENCH_roundelim.json`` (canonical schema: workload, n,
  wall-time per engine, speedup) and exits non-zero when the 4×
  criterion fails or any speedup regresses more than ``--tolerance``
  versus a checked-in baseline (speedups are compared, not absolute
  seconds, so the gate is machine-portable).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.problems import maximal_matching_problem, pi_matching, pi_ruling
from repro.roundelim import round_elimination
from repro.utils.serialization import canonical_dumps
from repro.utils.tables import print_table

SCHEMA = "repro.bench/roundelim/v1"

#: The acceptance criterion: kernel ≥ 4× reference on Δ=4 matching RE.
CRITERION_WORKLOAD = ("matching", 4)
CRITERION_SPEEDUP = 4.0

#: (workload key, n, problem factory).  ``n`` is the family's Δ.
WORKLOADS = {
    "smoke": (
        ("matching", 3, lambda: pi_matching(3, 0, 1)),
        ("matching", 4, lambda: pi_matching(4, 0, 1)),
        ("maximal-matching", 3, lambda: maximal_matching_problem(3)),
        ("maximal-matching", 4, lambda: maximal_matching_problem(4)),
    ),
    "full": (
        ("matching", 3, lambda: pi_matching(3, 0, 1)),
        ("matching", 4, lambda: pi_matching(4, 0, 1)),
        ("matching", 5, lambda: pi_matching(5, 0, 1)),
        ("maximal-matching", 3, lambda: maximal_matching_problem(3)),
        ("maximal-matching", 4, lambda: maximal_matching_problem(4)),
        ("ruling-set", 3, lambda: pi_ruling(3, 1, 2)),
    ),
}


#: A single run above this duration is measured once — repeating a
#: multi-second workload adds runtime, not precision.
HEAVY_CUTOFF_SECONDS = 2.0

#: Workloads whose reference side runs faster than this are reported but
#: excluded from the baseline regression gate: millisecond-scale ratios
#: are too noisy on shared CI runners to gate on.
MIN_GATE_SECONDS = 0.05


def _best_of(problem, engine: str, repeats: int) -> tuple[float, object]:
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = round_elimination(problem, engine=engine)
        best = min(best, time.perf_counter() - start)
        if best > HEAVY_CUTOFF_SECONDS:
            break
    return best, result


def measure(mode: str, repeats: int = 3) -> dict:
    """Run the workload matrix; returns the BENCH_roundelim payload.

    Every workload also cross-checks that both engines produce the
    identical problem — a benchmark that silently compared different
    outputs would be meaningless.
    """
    records = []
    for workload, n, factory in WORKLOADS[mode]:
        problem = factory()
        reference_seconds, reference_out = _best_of(problem, "reference", repeats)
        kernel_seconds, kernel_out = _best_of(problem, "kernel", repeats)
        if reference_out != kernel_out:
            raise AssertionError(
                f"engine outputs differ on {workload} n={n} — benchmark void"
            )
        records.append(
            {
                "workload": workload,
                "n": n,
                "reference_seconds": round(reference_seconds, 6),
                "kernel_seconds": round(kernel_seconds, 6),
                "speedup": round(reference_seconds / kernel_seconds, 3),
            }
        )
    return {
        "schema": SCHEMA,
        "mode": mode,
        "criterion": {
            "workload": CRITERION_WORKLOAD[0],
            "n": CRITERION_WORKLOAD[1],
            "min_speedup": CRITERION_SPEEDUP,
        },
        "workloads": records,
    }


def criterion_speedup(payload: dict) -> float:
    for record in payload["workloads"]:
        if (record["workload"], record["n"]) == CRITERION_WORKLOAD:
            return record["speedup"]
    raise AssertionError(
        f"criterion workload {CRITERION_WORKLOAD} missing from payload"
    )


def compare_with_baseline(payload: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages for every workload whose speedup dropped more
    than ``tolerance`` (fraction) below the baseline's.

    Millisecond-scale workloads (reference side under
    ``MIN_GATE_SECONDS``) are skipped — their ratios are dominated by
    scheduler noise on shared runners.
    """
    baseline_speedups = {
        (record["workload"], record["n"]): record["speedup"]
        for record in baseline.get("workloads", ())
    }
    problems = []
    for record in payload["workloads"]:
        key = (record["workload"], record["n"])
        expected = baseline_speedups.get(key)
        if expected is None or record["reference_seconds"] < MIN_GATE_SECONDS:
            continue
        floor = expected * (1.0 - tolerance)
        if record["speedup"] < floor:
            problems.append(
                f"{key[0]} n={key[1]}: speedup {record['speedup']:.2f}x < "
                f"{floor:.2f}x (baseline {expected:.2f}x - {tolerance:.0%})"
            )
    return problems


def _print(payload: dict) -> None:
    print_table(
        ["workload", "n", "reference (s)", "kernel (s)", "speedup"],
        [
            (
                record["workload"],
                record["n"],
                f"{record['reference_seconds']:.4f}",
                f"{record['kernel_seconds']:.4f}",
                f"{record['speedup']:.2f}x",
            )
            for record in payload["workloads"]
        ],
        title="ROUNDELIM: reference vs bitmask kernel, identical outputs",
    )


# --------------------------------------------------------------------------
# pytest entry points
# --------------------------------------------------------------------------


def test_kernel_speedup_delta4_matching():
    """The tentpole performance criterion: ≥ 4× on the Δ=4 matching RE
    step, with output identity cross-checked inside ``measure``."""
    payload = measure("smoke")
    _print(payload)
    speedup = criterion_speedup(payload)
    assert speedup >= CRITERION_SPEEDUP, (
        f"kernel only {speedup:.2f}x on Δ=4 matching; criterion is "
        f"{CRITERION_SPEEDUP}x"
    )


def test_engines_identical_on_ruling_family():
    """Output identity on a non-matching family (the ruling-set Δ=3,β=1
    instance keeps this fast)."""
    problem = pi_ruling(3, 1, 1)
    assert round_elimination(problem, engine="reference") == round_elimination(
        problem, engine="kernel"
    )


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast workload subset (the CI gate)"
    )
    parser.add_argument(
        "--out", default="BENCH_roundelim.json", help="result JSON path"
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to gate regressions against"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per engine"
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = measure(mode, repeats=args.repeats)
    _print(payload)
    Path(args.out).write_text(canonical_dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)

    failures = []
    speedup = criterion_speedup(payload)
    if speedup < CRITERION_SPEEDUP:
        failures.append(
            f"criterion: Δ=4 matching speedup {speedup:.2f}x < {CRITERION_SPEEDUP}x"
        )
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures.extend(compare_with_baseline(payload, baseline, args.tolerance))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
