"""FIG2 — regenerate Figure 2: the black diagram of Π_Δ(c,β), c=3, β=2.

Paper artifact: pointer chain P1→P2→U2→U1, color-set containment lattice
({1,2,3}→{1,2}→{1} etc.), X on top.
"""

from repro.formalism import black_diagram, diagram_edges
from repro.problems import pi_ruling
from repro.utils.tables import print_table


def regenerate_figure2():
    problem = pi_ruling(3, 3, 2)
    return problem, black_diagram(problem)


def test_fig2_diagram(benchmark):
    problem, diagram = benchmark(regenerate_figure2)
    edges = diagram_edges(diagram)

    chain = [("P1", "P2"), ("P2", "U2"), ("U2", "U1")]
    for edge in chain:
        assert edge in edges

    # Containment lattice: larger color sets point to their subsets.
    assert ("{1,2,3}", "{1,2}") in edges
    assert ("{1,2}", "{1}") in edges
    assert ("{1,3}", "{3}") in edges
    assert ("{1}", "{1,2}") not in edges

    # X is the unique top label.
    others = sorted(problem.alphabet - {"X"})
    assert all((label, "X") in edges for label in others)
    assert all(("X", label) not in edges for label in others)

    print_table(
        ["artifact", "status"],
        [
            ("pointer chain P1→P2→U2→U1", "reproduced"),
            ("color containment lattice", "reproduced"),
            ("X is top", "reproduced"),
            ("total strength edges", len(edges)),
        ],
        title="FIG2: black diagram of Π_Δ(3,2)",
    )
