"""FIG3 — regenerate Figure 3: a maximal matching solution in the
black-white formalism on a concrete bipartite graph.

The paper's Figure 3 shows labels M/O/P on a sample instance; here the
distributed proposal algorithm produces a maximal matching on a double
cover, the matching is translated into Appendix A's M/O/P labels, and the
labeling is validated against the formalism constraints.
"""

import networkx as nx

from repro.algorithms import bipartite_maximal_matching
from repro.checkers import check_bipartite_solution, check_maximal_matching
from repro.graphs import bipartite_double_cover, cage
from repro.problems import maximal_matching_problem
from repro.utils.tables import print_table


def matching_to_labels(graph, matching):
    """Appendix A translation: matched edges M; edges at an unmatched
    white node P; remaining edges O."""
    matched_nodes = {node for edge in matching for node in edge}
    labeling = {}
    for u, v in graph.edges:
        edge = frozenset((u, v))
        white = u if graph.nodes[u]["color"] == "white" else v
        if edge in matching:
            labeling[edge] = "M"
        elif white not in matched_nodes:
            labeling[edge] = "P"
        else:
            labeling[edge] = "O"
    return labeling


def regenerate_figure3():
    support, degree, _girth = cage("heawood")
    cover = bipartite_double_cover(support)
    input_edges = frozenset(frozenset(edge) for edge in cover.edges)
    matching, rounds = bipartite_maximal_matching(cover, input_edges)
    labeling = matching_to_labels(cover, matching)
    return cover, degree, matching, labeling, rounds


def test_fig3_example(benchmark):
    cover, degree, matching, labeling, rounds = benchmark(regenerate_figure3)
    assert check_maximal_matching(cover, matching)
    problem = maximal_matching_problem(degree)
    assert check_bipartite_solution(cover, problem, labeling)

    from collections import Counter

    counts = Counter(labeling.values())
    print_table(
        ["quantity", "value"],
        [
            ("graph", f"double cover of Heawood (n={cover.number_of_nodes()})"),
            ("matching size", len(matching)),
            ("labels M/O/P", f"{counts['M']}/{counts['O']}/{counts['P']}"),
            ("formalism-valid", True),
            ("algorithm rounds", rounds),
        ],
        title="FIG3: maximal matching solution in the black-white formalism",
    )
