"""FIG3 — regenerate Figure 3: a maximal matching solution in the
black-white formalism on a concrete bipartite graph.

The paper's Figure 3 shows labels M/O/P on a sample instance; the
experiments registry scenario ``fig3-formalism-labels`` (``matching``
suite) runs the distributed proposal algorithm on a double cover,
translates the matching into Appendix A's M/O/P labels and validates the
labeling against the formalism constraints.  This benchmark is a thin
wrapper over that scenario.
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def regenerate_figure3():
    scenario = get_scenario("matching", "fig3-formalism-labels")
    return execute_scenario(scenario).records[0]


def test_fig3_example(benchmark):
    record = benchmark(regenerate_figure3)
    assert record["matching_valid"]  # maximal matching, checked directly…
    assert record["labeling_valid"]  # …and the M/O/P labeling, independently
    assert record["valid"]
    labels = record["labels"]
    assert labels["M"] == record["matching_size"]
    print_table(
        ["quantity", "value"],
        [
            ("graph", f"double cover of Heawood (n={record['n']})"),
            ("matching size", record["matching_size"]),
            ("labels M/O/P", f"{labels['M']}/{labels['O']}/{labels['P']}"),
            ("formalism-valid", record["valid"]),
            ("algorithm rounds", record["rounds"]),
        ],
        title="FIG3: maximal matching solution in the black-white formalism",
    )
