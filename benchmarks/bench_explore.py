"""EXPLORE — the content-addressed store's dedup speedup on repeated
expansion.

The acceptance claim of ``repro.roundelim.explore``: re-running an
exploration against a warm :class:`ProblemStore` answers every operator
step from the memo tiers and is at least **3×** faster than the cold
run, while producing the byte-identical report.  (Sequence
re-verification is disabled in the measured policy: it deliberately
recomputes RE outside the store — it is the *auditor* of the cache, so
benchmarking it warm would measure the auditor, not the cache.)

Dual mode:

* ``pytest benchmarks/bench_explore.py`` — asserts the 3× criterion,
  cold/warm report identity and the jobs-determinism contract;
* ``python benchmarks/bench_explore.py [--smoke] [--out F] [--jobs N]
  [--determinism]`` — measures the workload matrix, writes
  ``BENCH_explore.json`` (schema: workload, cold/warm wall seconds,
  speedup, visited/expanded counts) and exits non-zero when the 3×
  criterion fails; ``--determinism`` additionally byte-compares a
  serial and a ``--jobs N`` cold run of every workload.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.problems import pi_matching, pi_ruling
from repro.roundelim.explore import (
    ExplorationLimits,
    ExplorationPolicy,
    ProblemStore,
    explore,
    reports_identical,
)
from repro.utils.serialization import canonical_dumps
from repro.utils.tables import print_table

SCHEMA = "repro.bench/explore/v1"

#: The acceptance criterion: warm store ≥ 3× faster on the Δ=4 matching
#: expansion (the workload whose RE steps are heavy enough to time).
CRITERION_WORKLOAD = "matching-d4"
CRITERION_SPEEDUP = 3.0

#: Measured policy: expansion + classification + linking, no sequence
#: re-verification (see module docstring).
_POLICY = ExplorationPolicy(verify_sequences=False)


def _workloads(mode: str):
    matrix = {
        "matching-d3": (
            [pi_matching(3, x, 1) for x in (0, 1, 2)],
            ExplorationLimits(max_depth=1, max_nodes=8),
        ),
        "matching-d4": (
            [pi_matching(4, 0, 1), pi_matching(4, 1, 1)],
            ExplorationLimits(max_depth=1, max_nodes=4),
        ),
        "ruling-d3": (
            [pi_ruling(3, 1, 2)],
            ExplorationLimits(max_depth=1, max_nodes=2),
        ),
    }
    if mode == "smoke":
        return {key: matrix[key] for key in ("matching-d3", "matching-d4")}
    return matrix


def measure(mode: str, jobs: int = 1) -> dict:
    """Cold-then-warm runs per workload; returns the BENCH payload.

    The warm run reuses the cold run's store, so every operator step is
    a memo hit; the two reports must be byte-identical or the benchmark
    is void.
    """
    records = []
    for name, (roots, limits) in _workloads(mode).items():
        store = ProblemStore()
        start = time.perf_counter()
        cold = explore(roots, policy=_POLICY, limits=limits, store=store, jobs=jobs)
        cold_seconds = time.perf_counter() - start
        computed = store.stats.computed
        start = time.perf_counter()
        warm = explore(roots, policy=_POLICY, limits=limits, store=store, jobs=jobs)
        warm_seconds = time.perf_counter() - start
        if not reports_identical(cold, warm):
            raise AssertionError(
                f"cold and warm reports differ on {name} — benchmark void"
            )
        if store.stats.computed != computed:
            raise AssertionError(
                f"warm run recomputed steps on {name} — store is not memoizing"
            )
        records.append(
            {
                "workload": name,
                "roots": len(roots),
                "visited": cold.visited,
                "expanded": cold.expanded,
                "computed_steps": computed,
                "cold_seconds": round(cold_seconds, 6),
                "warm_seconds": round(warm_seconds, 6),
                "speedup": round(cold_seconds / warm_seconds, 3),
            }
        )
    return {
        "schema": SCHEMA,
        "mode": mode,
        "criterion": {
            "workload": CRITERION_WORKLOAD,
            "min_speedup": CRITERION_SPEEDUP,
        },
        "workloads": records,
    }


def criterion_speedup(payload: dict) -> float:
    for record in payload["workloads"]:
        if record["workload"] == CRITERION_WORKLOAD:
            return record["speedup"]
    raise AssertionError(
        f"criterion workload {CRITERION_WORKLOAD!r} missing from payload"
    )


def check_determinism(jobs: int) -> None:
    """Serial vs ``jobs`` cold runs must be byte-identical per workload."""
    for name, (roots, limits) in _workloads("smoke").items():
        serial = explore(roots, policy=_POLICY, limits=limits, jobs=1)
        parallel = explore(roots, policy=_POLICY, limits=limits, jobs=jobs)
        if serial.canonical_json() != parallel.canonical_json():
            raise AssertionError(
                f"jobs={jobs} report differs from serial on {name}"
            )


# ---------------------------------------------------------------------------
# pytest mode


def test_warm_store_speedup_at_least_3x():
    payload = measure("smoke")
    assert criterion_speedup(payload) >= CRITERION_SPEEDUP, payload["workloads"]


def test_jobs_determinism():
    check_determinism(jobs=4)


# ---------------------------------------------------------------------------
# CLI mode


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true",
                        help="measure the smoke matrix only")
    parser.add_argument("--out", default=None,
                        help="write BENCH_explore.json here")
    parser.add_argument("--jobs", type=int, default=1,
                        help="explorer worker processes (default 1)")
    parser.add_argument("--determinism", action="store_true",
                        help="also byte-compare serial vs --jobs cold runs")
    args = parser.parse_args(argv)

    if args.determinism:
        check_determinism(max(args.jobs, 4))
        print("jobs-determinism: serial and parallel reports byte-identical",
              file=sys.stderr)

    payload = measure("smoke" if args.smoke else "full", jobs=args.jobs)
    if args.out:
        Path(args.out).write_text(canonical_dumps(payload, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    print_table(
        ["workload", "visited", "cold s", "warm s", "speedup"],
        [
            (r["workload"], r["visited"], r["cold_seconds"], r["warm_seconds"],
             f"{r['speedup']:.2f}x")
            for r in payload["workloads"]
        ],
        title=f"explore store speedup ({payload['mode']})",
    )
    speedup = criterion_speedup(payload)
    if speedup < CRITERION_SPEEDUP:
        print(
            f"FAIL: {CRITERION_WORKLOAD} warm speedup {speedup:.2f}x < "
            f"{CRITERION_SPEEDUP}x",
            file=sys.stderr,
        )
        return 1
    print(f"ok: {CRITERION_WORKLOAD} warm speedup {speedup:.2f}x", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
