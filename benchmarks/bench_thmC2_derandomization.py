"""THMC2 — Lemma C.2 / Theorem C.3: derandomization in Supported LOCAL.

Regenerates (i) the instance-counting table: exact counts vs the paper's
2^{3n²} bound and the per-factor exponent decomposition; (ii) the
executable union-bound derandomization on an enumerable instance family.
"""

import math
import random

from repro.core.derandomization import (
    count_supported_instances_exact,
    derandomize_by_union_bound,
    hypergraph_instance_count_bound,
    supported_instance_count_bound,
    supported_instance_count_exact_exponent,
)
from repro.utils.tables import print_table


def test_thmC2_instance_counting(benchmark):
    def run():
        rows = []
        for n in (1, 2, 3, 4, 5):
            exact = count_supported_instances_exact(n)
            exponent = supported_instance_count_exact_exponent(n)
            rows.append(
                (
                    n,
                    exact,
                    round(exponent, 1),
                    3 * n * n,
                    exact <= supported_instance_count_bound(n),
                )
            )
        return rows

    rows = benchmark(run)
    assert all(ok for *_rest, ok in rows)
    print_table(
        ["n", "exact #instances", "paper exponent terms", "3n²", "≤ 2^{3n²}"],
        rows,
        title="THMC2: Supported LOCAL instance counts vs the Lemma C.2 bound",
    )
    # Theorem C.3's hypergraph bound dominates the graph bound.
    assert hypergraph_instance_count_bound(3) >= supported_instance_count_bound(3)


def test_thmC2_union_bound_execution(benchmark):
    """The proof's step, executed: failure probability < 1/#instances ⇒
    some seed succeeds everywhere; find it."""

    def run():
        instances = list(range(12))
        seeds = list(range(256))

        def succeeds(instance: int, seed: int) -> bool:
            rng = random.Random(f"{instance}:{seed}")
            return rng.random() > 1 / 16  # p = 1/16 < 1/12

        return derandomize_by_union_bound(instances, seeds, succeeds)

    result = benchmark(run)
    assert result.succeeded
    print_table(
        ["quantity", "value"],
        [
            ("instances", result.instances_checked),
            ("failure probability per instance", "1/16 < 1/12"),
            ("universally good seed found", result.seed),
            ("seeds examined", len(result.failure_counts)),
        ],
        title="THMC2: union-bound derandomization, executed",
    )
