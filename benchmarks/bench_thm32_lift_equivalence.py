"""THM32 — Theorem 3.2: 0-round solvability ⟺ lift solvability.

Regenerates the equivalence on a gallery of (graph, problem) instances:
CSP-decides the lift, brute-forces the entire algorithm space where
feasible, and round-trips both constructive directions of the proof.
"""

from repro.core import (
    algorithm_from_lift_solution,
    check_lift_solution,
    exists_zero_round_algorithm,
    is_correct_zero_round,
    lift,
    lift_solution_from_algorithm,
)
from repro.formalism.labels import set_label_members
from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem, sinkless_orientation_problem
from repro.solvers import solve_bipartite
from repro.utils.tables import print_table


def gallery():
    return [
        ("MM_2 on C4", mark_bipartition(cycle(4)), maximal_matching_problem(2)),
        ("MM_2 on C6", mark_bipartition(cycle(6)), maximal_matching_problem(2)),
        ("SO_2 on C4", mark_bipartition(cycle(4)), sinkless_orientation_problem(2)),
        (
            "forced-MM on C4",
            mark_bipartition(cycle(4)),
            problem_from_lines(["M M"], ["M O"], name="forced-MM"),
        ),
    ]


def run_equivalence():
    rows = []
    for name, graph, problem in gallery():
        lifted = lift(problem, 2, 2)
        solution = solve_bipartite(graph, lifted.to_problem())
        lift_solvable = solution is not None
        brute = exists_zero_round_algorithm(graph, problem, edge_limit=10)
        round_trip = None
        if lift_solvable:
            decoded = {
                edge: set_label_members(label) for edge, label in solution.items()
            }
            algorithm = algorithm_from_lift_solution(graph, lifted, decoded)
            correct = is_correct_zero_round(algorithm, problem)
            back = lift_solution_from_algorithm(algorithm, lifted)
            round_trip = correct and check_lift_solution(graph, lifted, back)
        rows.append((name, lift_solvable, brute, round_trip))
    return rows


def test_thm32_equivalence(benchmark):
    rows = benchmark(run_equivalence)
    for name, lift_solvable, brute, round_trip in rows:
        assert lift_solvable == brute, name  # the theorem, independently
        if lift_solvable:
            assert round_trip, name  # both constructive directions
    print_table(
        ["instance", "lift solvable", "∃ 0-round algorithm (brute force)", "constructive round-trip"],
        rows,
        title="THM32: Theorem 3.2 equivalence, CSP vs full algorithm-space search",
    )
