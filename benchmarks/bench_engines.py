"""ENGINES — object vs batched backends on the matching workload.

The acceptance claim of the ``repro.api`` engine subsystem: at n ≥ 2000
on the matching suite's workload (the proposal algorithm on 2-colored
double covers), the CSR-batched engine is ≥ 1.5× faster than the object
engine, while producing byte-identical reports.

Run with ``pytest benchmarks/bench_engines.py`` (pytest-benchmark groups
the two engines per size); ``test_batched_speedup_at_n2000`` additionally
asserts the speedup with its own best-of-N timing, independent of
pytest-benchmark, and prints the measured table.
"""

import time

import pytest

from repro import api
from repro.api.engines import resolve_engine
from repro.utils.tables import print_table

SIZES = (2000, 4000)
DELTA = 4


def _prepared(n: int):
    """Shared network + program, so the measurement isolates engine time."""
    spec = api.ProblemSpec.parse(f"matching:delta={DELTA},x=0,y=1")
    algorithm = api.resolve_algorithm("matching:proposal")
    network = algorithm.default_network(spec, n=n, seed=0)
    program = algorithm.program(network, spec, {})
    return network, program


def _best_of(engine, network, program, repeats: int = 5) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        engine.run(network, program, seed=0)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.parametrize("engine_name", ("object", "batched"))
@pytest.mark.parametrize("n", SIZES)
def test_engine_throughput(benchmark, engine_name, n):
    network, program = _prepared(n)
    engine = resolve_engine(engine_name)
    benchmark.group = f"matching n={n}"
    result = benchmark(lambda: engine.run(network, program, seed=0))
    assert result.rounds == 2 * DELTA  # the proposal algorithm's 2Δ' rounds


def test_batched_speedup_at_n2000():
    """The tentpole performance criterion, asserted with a margin below
    the locally measured ~1.8× to absorb CI timer noise."""
    rows = []
    for n in SIZES:
        network, program = _prepared(n)
        object_engine = resolve_engine("object")
        batched_engine = resolve_engine("batched")
        batched_engine.run(network, program, seed=0)  # compile the CSR form
        object_seconds = _best_of(object_engine, network, program)
        batched_seconds = _best_of(batched_engine, network, program)
        rows.append((n, object_seconds, batched_seconds,
                     object_seconds / batched_seconds))
    print_table(
        ["n", "object (s)", "batched (s)", "speedup"],
        [(n, f"{o:.4f}", f"{b:.4f}", f"{s:.2f}x") for n, o, b, s in rows],
        title="ENGINES: object vs batched on the matching workload",
    )
    for n, _o, _b, speedup in rows:
        assert speedup >= 1.5, (
            f"batched engine only {speedup:.2f}x at n={n}; criterion is 1.5x"
        )


def test_engines_byte_identical_end_to_end():
    """Speed must not change observables: full solve() reports at n=2000
    agree byte-for-byte on canonical JSON."""
    reports = {
        engine: api.solve(
            f"matching:delta={DELTA},x=0,y=1",
            algorithm="matching:proposal",
            engine=engine,
            seed=0,
            n=2000,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for report in reports.values():
        assert report.canonical_json() == reference.canonical_json()
