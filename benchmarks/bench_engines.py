"""ENGINES — object vs batched vs vectorized backends on the matching
workload.

The acceptance claims of the ``repro.api`` engine subsystem, measured on
the matching suite's workload (the proposal algorithm on 2-colored double
covers):

* the CSR-batched engine is ≥ **1.5×** faster than the object engine at
  n = 2000 (the PR 4 claim, still gated);
* the numpy vectorized engine is ≥ **10×** faster than the batched engine
  at the largest size both run (n = 10^5 in full mode), while producing
  byte-identical reports;
* the vectorized engine sustains a scaling curve through **n = 10^7**
  (recorded, vectorized-only — the per-node engines are too slow there).

Dual mode:

* ``pytest benchmarks/bench_engines.py`` — asserts both speedup criteria
  on the smoke matrix plus end-to-end byte identity (skipping vectorized
  claims gracefully where numpy is absent);
* ``python benchmarks/bench_engines.py [--smoke] [--out F] [--baseline F]
  [--tolerance 0.25]`` — measures the size × engine matrix, writes
  ``BENCH_engines.json`` (canonical schema: n, wall-time per engine,
  speedups) and exits non-zero when a criterion fails or any speedup
  regresses more than ``--tolerance`` versus a checked-in baseline
  (speedups are compared, not absolute seconds, so the gate is
  machine-portable).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import pytest

from repro import api
from repro.api.engines import resolve_engine
from repro.utils.serialization import canonical_dumps
from repro.utils.tables import print_table

SCHEMA = "repro.bench/engines/v1"

DELTA = 4

#: PR 4's criterion: batched ≥ 1.5× object at n = 2000.
BATCHED_CRITERION_SPEEDUP = 1.5

#: This PR's criterion: vectorized ≥ 10× batched at the largest size both
#: engines run (the last workload row naming both).
VECTORIZED_CRITERION_SPEEDUP = 10.0

#: (n, engines to time at that size).  Sizes where an engine is absent are
#: deliberate: per-node engines at n = 10^6 would take minutes per run —
#: that row records the vectorized scaling point, not a comparison.
WORKLOADS: dict[str, tuple[tuple[int, tuple[str, ...]], ...]] = {
    "smoke": (
        (2_000, ("object", "batched", "vectorized")),
        (20_000, ("batched", "vectorized")),
    ),
    "full": (
        (2_000, ("object", "batched", "vectorized")),
        (10_000, ("object", "batched", "vectorized")),
        (100_000, ("batched", "vectorized")),
        (1_000_000, ("vectorized",)),
        (10_000_000, ("vectorized",)),
    ),
}

#: A single run above this duration is measured once — repeating a
#: multi-second workload adds runtime, not precision.
HEAVY_CUTOFF_SECONDS = 2.0

#: Speedups whose slower side runs faster than this are reported but
#: excluded from the baseline regression gate: millisecond-scale ratios
#: are too noisy on shared CI runners to gate on.
MIN_GATE_SECONDS = 0.05

#: The speedup keys a baseline can gate on, with their (numerator,
#: denominator) engines — numerator seconds / denominator seconds.
SPEEDUP_KEYS = {
    "speedup_batched_vs_object": ("object", "batched"),
    "speedup_vectorized_vs_batched": ("batched", "vectorized"),
}


def _prepared(n: int):
    """Shared network + program, so the measurement isolates engine time."""
    spec = api.ProblemSpec.parse(f"matching:delta={DELTA},x=0,y=1")
    algorithm = api.resolve_algorithm("matching:proposal")
    network = algorithm.default_network(spec, n=n, seed=0)
    program = algorithm.program(network, spec, {})
    return network, program


def _best_of(engine, network, program, repeats: int):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = engine.run(network, program, seed=0)
        best = min(best, time.perf_counter() - start)
        if best > HEAVY_CUTOFF_SECONDS:
            break
    return best, result


def measure(mode: str, repeats: int = 3) -> dict:
    """Run the size × engine matrix; returns the BENCH_engines payload.

    Every size cross-checks that all engines timed there produce the
    identical outputs and round count — a benchmark that silently
    compared different results would be meaningless.  Engines that are
    not registered (vectorized without numpy) are skipped, never timed
    as zero.
    """
    registered = set(api.available_engines())
    records = []
    for n, engine_names in WORKLOADS[mode]:
        names = [name for name in engine_names if name in registered]
        if not names:
            continue
        network, program = _prepared(n)
        seconds: dict[str, float] = {}
        reference = None
        for name in names:
            engine = resolve_engine(name)
            engine.run(network, program, seed=0)  # warm: compile CSR caches
            seconds[name], result = _best_of(engine, network, program, repeats)
            if reference is None:
                reference = result
            elif (
                result.outputs != reference.outputs
                or result.rounds != reference.rounds
            ):
                raise AssertionError(
                    f"engine outputs differ at n={n} — benchmark void"
                )
        record = {
            "n": n,
            "rounds": reference.rounds,
            "seconds": {
                name: round(value, 6) for name, value in seconds.items()
            },
        }
        for key, (slow, fast) in SPEEDUP_KEYS.items():
            if slow in seconds and fast in seconds:
                record[key] = round(seconds[slow] / seconds[fast], 3)
        records.append(record)
    return {
        "schema": SCHEMA,
        "mode": mode,
        "criteria": {
            "speedup_batched_vs_object": BATCHED_CRITERION_SPEEDUP,
            "speedup_vectorized_vs_batched": VECTORIZED_CRITERION_SPEEDUP,
        },
        "workloads": records,
    }


def criterion_speedups(payload: dict) -> dict[str, float | None]:
    """The gated speedups: batched-vs-object at the smallest size naming
    both, vectorized-vs-batched at the largest (``None`` when the engine
    pair never ran, e.g. vectorized without numpy)."""
    batched = [
        record["speedup_batched_vs_object"]
        for record in payload["workloads"]
        if "speedup_batched_vs_object" in record
    ]
    vectorized = [
        record["speedup_vectorized_vs_batched"]
        for record in payload["workloads"]
        if "speedup_vectorized_vs_batched" in record
    ]
    return {
        "speedup_batched_vs_object": batched[0] if batched else None,
        "speedup_vectorized_vs_batched": vectorized[-1] if vectorized else None,
    }


def criterion_failures(payload: dict) -> list[str]:
    speedups = criterion_speedups(payload)
    failures = []
    value = speedups["speedup_batched_vs_object"]
    if value is not None and value < BATCHED_CRITERION_SPEEDUP:
        failures.append(
            f"criterion: batched only {value:.2f}x vs object; "
            f"criterion is {BATCHED_CRITERION_SPEEDUP}x"
        )
    value = speedups["speedup_vectorized_vs_batched"]
    if value is not None and value < VECTORIZED_CRITERION_SPEEDUP:
        failures.append(
            f"criterion: vectorized only {value:.2f}x vs batched; "
            f"criterion is {VECTORIZED_CRITERION_SPEEDUP}x"
        )
    return failures


def compare_with_baseline(
    payload: dict, baseline: dict, tolerance: float
) -> list[str]:
    """Regression messages for every speedup that dropped more than
    ``tolerance`` (fraction) below the baseline's.

    Millisecond-scale rows (the slower engine under ``MIN_GATE_SECONDS``)
    are skipped — their ratios are dominated by scheduler noise on shared
    runners.
    """
    baseline_records = {
        record["n"]: record for record in baseline.get("workloads", ())
    }
    problems = []
    for record in payload["workloads"]:
        expected_record = baseline_records.get(record["n"])
        if expected_record is None:
            continue
        for key, (slow, _fast) in SPEEDUP_KEYS.items():
            expected = expected_record.get(key)
            measured = record.get(key)
            if expected is None or measured is None:
                continue
            if record["seconds"].get(slow, 0.0) < MIN_GATE_SECONDS:
                continue
            floor = expected * (1.0 - tolerance)
            if measured < floor:
                problems.append(
                    f"n={record['n']} {key}: {measured:.2f}x < "
                    f"{floor:.2f}x (baseline {expected:.2f}x - {tolerance:.0%})"
                )
    return problems


def _print(payload: dict) -> None:
    def cell(record, name):
        value = record["seconds"].get(name)
        return "-" if value is None else f"{value:.4f}"

    print_table(
        ["n", "object (s)", "batched (s)", "vectorized (s)",
         "batched x", "vectorized x"],
        [
            (
                record["n"],
                cell(record, "object"),
                cell(record, "batched"),
                cell(record, "vectorized"),
                f"{record['speedup_batched_vs_object']:.2f}x"
                if "speedup_batched_vs_object" in record else "-",
                f"{record['speedup_vectorized_vs_batched']:.2f}x"
                if "speedup_vectorized_vs_batched" in record else "-",
            )
            for record in payload["workloads"]
        ],
        title="ENGINES: matching workload, identical outputs per size",
    )


# --------------------------------------------------------------------------
# pytest entry points
# --------------------------------------------------------------------------


def test_engine_speedup_criteria():
    """Both tentpole performance criteria on the smoke matrix, with output
    identity cross-checked inside ``measure``.  The vectorized criterion
    is asserted only where numpy (and thus the engine) is present."""
    payload = measure("smoke")
    _print(payload)
    speedups = criterion_speedups(payload)
    batched = speedups["speedup_batched_vs_object"]
    assert batched is not None and batched >= BATCHED_CRITERION_SPEEDUP, (
        f"batched engine only {batched}x vs object; criterion is "
        f"{BATCHED_CRITERION_SPEEDUP}x"
    )
    vectorized = speedups["speedup_vectorized_vs_batched"]
    if "vectorized" not in api.available_engines():
        pytest.skip("numpy unavailable: vectorized engine not registered")
    assert vectorized is not None and (
        vectorized >= VECTORIZED_CRITERION_SPEEDUP
    ), (
        f"vectorized engine only {vectorized}x vs batched; criterion is "
        f"{VECTORIZED_CRITERION_SPEEDUP}x"
    )


def test_engines_byte_identical_end_to_end():
    """Speed must not change observables: full solve() reports at n=2000
    agree byte-for-byte on canonical JSON across every registered
    engine."""
    reports = {
        engine: api.solve(
            f"matching:delta={DELTA},x=0,y=1",
            algorithm="matching:proposal",
            engine=engine,
            seed=0,
            n=2000,
        )
        for engine in api.available_engines()
    }
    reference = reports["object"]
    assert reference.valid is True
    for report in reports.values():
        assert report.canonical_json() == reference.canonical_json()


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast workload subset (the CI gate)"
    )
    parser.add_argument(
        "--out", default="BENCH_engines.json", help="result JSON path"
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to gate regressions against"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per engine"
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = measure(mode, repeats=args.repeats)
    _print(payload)
    Path(args.out).write_text(canonical_dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)

    failures = criterion_failures(payload)
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures.extend(compare_with_baseline(payload, baseline, args.tolerance))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
