"""AAPR23 — §1.1: MIS in χ_G rounds is optimal (the [AAPR23] answer).

Regenerates the χ_G-round Supported LOCAL MIS algorithm on certified
support graphs (measured rounds vs the coloring class count) next to the
Theorem 1.7 instantiation Δ = Δ′logΔ′, Δ′ = log n/log log n whose lower
bound Ω(log n / log log n) matches the chromatic number Θ(Δ/log Δ) —
negatively answering [AAPR23]'s open question.  Thin wrapper over the
``mis`` suite of the experiments registry.
"""

from repro.experiments import execute_scenario, get_scenario, get_suite
from repro.utils.tables import print_table

CAGES = ("petersen", "heawood", "pappus", "mcgee", "tutte_coxeter")


def test_aapr23_mis_rounds(benchmark):
    def run():
        rows = []
        for name in CAGES:
            scenario = get_scenario("mis", f"aapr23-{name}")
            record = execute_scenario(scenario).records[0]
            rows.append((name, record))
        return rows

    rows = benchmark(run)
    for name, record in rows:
        assert record["valid"], name  # a real MIS…
        # …computed by the χ_G-round algorithm: measured rounds within the
        # greedy coloring's class count, which is ≥ χ_G.
        assert record["rounds_at_least_chi_minus_1"], name
    print_table(
        ["support graph", "n", "χ_G", "measured MIS rounds", "|MIS|"],
        [
            (name, record["n"], record["chromatic_number"],
             record["rounds"], record["mis_size"])
            for name, record in rows
        ],
        title="AAPR23: the χ_G-round Supported LOCAL MIS (upper bound)",
    )


def test_aapr23_lower_bound_instantiation():
    """The §1.1 parameter choice makes the Theorem 1.7 bound match the
    χ_G upper bound up to constants: Ω(log n / log log n)."""
    scenario = get_scenario("mis", "aapr23-parameters")
    records = execute_scenario(scenario).records
    values = [record["bound"] for record in records]
    assert values == sorted(values)  # grows with n
    print_table(
        ["n", "Δ = Δ'logΔ'", "Δ' = logn/loglogn", "bound Ω(logn/loglogn)"],
        [
            (f"2^{record['log2_n']}", record["delta"], record["delta_prime"],
             record["bound"])
            for record in records
        ],
        title="AAPR23: Theorem 1.7 instantiation answering the open question",
    )


def test_aapr23_luby_baseline():
    """The randomized baseline: every seeded Luby run yields a valid MIS."""
    for scenario in get_suite("mis"):
        if scenario.pipeline != "mis_luby":
            continue
        result = execute_scenario(scenario)
        assert result.ok, scenario.name
