"""AAPR23 — §1.1: MIS in χ_G rounds is optimal (the [AAPR23] answer).

Regenerates the χ_G-round Supported LOCAL MIS algorithm on certified
support graphs (measured rounds = number of coloring classes) next to the
Theorem 1.7 instantiation Δ = Δ′logΔ′, Δ′ = log n/log log n whose lower
bound Ω(log n / log log n) matches the chromatic number Θ(Δ/log Δ) —
negatively answering [AAPR23]'s open question.
"""

from repro.algorithms import supported_mis_by_coloring
from repro.checkers import check_mis
from repro.core.bounds import aapr23_mis_parameters
from repro.graphs import analyze_support_graph, cage
from repro.utils.tables import print_table


def test_aapr23_mis_rounds(benchmark):
    def run():
        rows = []
        for name in ("petersen", "heawood", "pappus", "mcgee", "tutte_coxeter"):
            graph, _degree, _girth = cage(name)
            report = analyze_support_graph(graph)
            mis, rounds = supported_mis_by_coloring(graph)
            assert check_mis(graph, mis)
            rows.append(
                (name, report.n, report.chromatic_number, rounds, len(mis))
            )
        return rows

    rows = benchmark(run)
    for name, _n, chromatic, rounds, _size in rows:
        # The χ_G-round algorithm: measured rounds within the greedy
        # coloring's class count, which is ≥ χ_G.
        assert rounds >= chromatic - 1, name
    print_table(
        ["support graph", "n", "χ_G", "measured MIS rounds", "|MIS|"],
        rows,
        title="AAPR23: the χ_G-round Supported LOCAL MIS (upper bound)",
    )


def test_aapr23_lower_bound_instantiation():
    """The §1.1 parameter choice makes the Theorem 1.7 bound match the
    χ_G upper bound up to constants: Ω(log n / log log n)."""
    rows = []
    for exponent in (16, 24, 32, 48):
        n = 2**exponent
        delta, delta_prime, bound = aapr23_mis_parameters(n)
        rows.append((f"2^{exponent}", delta, delta_prime, round(bound, 2)))
    values = [row[3] for row in rows]
    assert values == sorted(values)  # grows with n
    print_table(
        ["n", "Δ = Δ'logΔ'", "Δ' = logn/loglogn", "bound Ω(logn/loglogn)"],
        rows,
        title="AAPR23: Theorem 1.7 instantiation answering the open question",
    )
