"""SOLVERS — CSP backtracking vs CDCL SAT backend on zero-round gates.

The acceptance claim of the ``repro.solvers.sat`` subsystem: on the
zero-round solvability gate (Theorem 3.2 — does ``lift(Π)`` admit a
bipartite solution on the smallest biregular support?) for the maximal
matching family at growing Δ, the SAT backend answers the *identical*
verdict at least **3×** faster than the CSP backtracker at Δ=4 — and at
Δ=5 the CSP side cannot finish within a placement budget the SAT side
beats by orders of magnitude (measured: CSP needs ~1.16M placements /
minutes of wall time; SAT answers in well under a second).

Two extra payload blocks document the subsystem's qualitative claims:

* ``frontier`` — the next size up (Δ=5): CSP is run under a reduced
  placement budget and must exhaust it (``SolverLimitError``) while SAT
  completes outright.
* ``symmetry_breaking`` — lex-leader constraints from the label
  automorphism group measurably shrink the *enumerated* state space: on
  an S3-symmetric problem the raw CDCL model count drops ~6× while
  orbit re-expansion recovers the identical solution set.

Dual mode:

* ``pytest benchmarks/bench_solvers.py`` — asserts the 3× criterion,
  verdict identity, frontier exhaustion, and the symmetry reduction;
* ``python benchmarks/bench_solvers.py [--smoke] [--out F]
  [--baseline F] [--tolerance 0.25]`` — measures the workload matrix,
  writes ``BENCH_solvers.json`` (canonical schema ``repro.bench/
  solvers/v1``) and exits non-zero when the 3× criterion fails or any
  speedup regresses more than ``--tolerance`` versus a checked-in
  baseline (speedups are compared, not absolute seconds, so the gate is
  machine-portable).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.core.lift import lift
from repro.core.zero_round import zero_round_solvable
from repro.formalism.problems import problem_from_lines
from repro.graphs import cycle, mark_bipartition
from repro.problems import maximal_matching_problem
from repro.roundelim.explore.classify import _smallest_biregular_support
from repro.solvers import SolverBudget, make_solver
from repro.solvers.csp import CSP_BUDGET_UNIT
from repro.solvers.sat import SatLabelingSolver
from repro.solvers.sat.solver import CdclSolver
from repro.utils import SolverLimitError
from repro.utils.serialization import canonical_dumps
from repro.utils.tables import print_table

SCHEMA = "repro.bench/solvers/v1"

#: The acceptance criterion: SAT ≥ 3× CSP on the Δ=4 maximal matching
#: zero-round gate (measured headroom is ~20×).
CRITERION_WORKLOAD = ("maximal-matching", 4)
CRITERION_SPEEDUP = 3.0

#: (workload key, Δ, problem factory).  Every workload is the
#: zero-round gate of the factory's problem on the smallest biregular
#: support K_{Δ,Δ}.
WORKLOADS = {
    "smoke": (
        ("maximal-matching", 3, lambda: maximal_matching_problem(3)),
        ("maximal-matching", 4, lambda: maximal_matching_problem(4)),
    ),
    "full": (
        ("maximal-matching", 2, lambda: maximal_matching_problem(2)),
        ("maximal-matching", 3, lambda: maximal_matching_problem(3)),
        ("maximal-matching", 4, lambda: maximal_matching_problem(4)),
    ),
}

#: The frontier size: one step beyond the criterion workload.  Measured
#: offline, CSP completes this gate only after ~1.16M placements
#: (minutes of wall time; Δ=6 exceeds the 5M default budget entirely),
#: so the benchmark demonstrates infeasibility via a reduced budget CSP
#: must exhaust while SAT finishes outright.
FRONTIER_DELTA = 5
FRONTIER_CSP_BUDGET = 50_000

#: A single run above this duration is measured once — repeating a
#: multi-second workload adds runtime, not precision.
HEAVY_CUTOFF_SECONDS = 2.0

#: Workloads whose CSP side runs faster than this are reported but
#: excluded from the baseline regression gate: millisecond-scale ratios
#: are too noisy on shared CI runners to gate on.
MIN_GATE_SECONDS = 0.05


def _gate_instance(delta: int, factory=maximal_matching_problem):
    problem = factory(delta)
    support = _smallest_biregular_support(problem.white_arity, problem.black_arity)
    return support, problem


def _best_of(support, problem, backend: str, repeats: int) -> tuple[float, bool]:
    best = float("inf")
    verdict = None
    for _ in range(repeats):
        start = time.perf_counter()
        verdict = zero_round_solvable(support, problem, backend=backend)
        best = min(best, time.perf_counter() - start)
        if best > HEAVY_CUTOFF_SECONDS:
            break
    return best, verdict


def _symmetric_problem():
    """An S3-label-symmetric problem: white nodes see two equal labels,
    black nodes two distinct ones.  All six label permutations are
    automorphisms, so lex-leader breaking has a full group to bite on."""
    labels = "ABC"
    white = [f"{label} {label}" for label in labels]
    black = [
        f"{first} {second}"
        for index, first in enumerate(labels)
        for second in labels[index + 1 :]
    ]
    return problem_from_lines(white, black, name="sym3")


def _raw_model_count(solver: SatLabelingSolver) -> tuple[int, dict]:
    """Enumerate raw CDCL models (pre orbit expansion) of the solver's
    formula via blocking clauses; returns (count, search stats)."""
    cdcl = CdclSolver(solver.encoding.formula, seed=0)
    count = 0
    while cdcl.solve():
        count += 1
        cdcl.add_clause(solver.encoding.blocking_clause(cdcl.model()))
    return count, {
        "decisions": cdcl.decisions,
        "conflicts": cdcl.conflicts,
    }


def measure_symmetry_breaking(cycle_length: int = 12) -> dict:
    """Enumerate the S3-symmetric problem on a marked cycle with and
    without lex-leader breaking.  The orbit-expanded solution sets must
    be identical; the raw model counts must not be."""
    graph = mark_bipartition(cycle(cycle_length))
    problem = _symmetric_problem()
    record = {
        "problem": problem.name,
        "cycle_length": cycle_length,
        "automorphism_group_order": len(
            SatLabelingSolver(graph, problem).encoding.automorphisms
        ),
    }
    expanded = {}
    for broken in (True, False):
        solver = SatLabelingSolver(graph, problem, symmetry_breaking=broken)
        count, stats = _raw_model_count(solver)
        key = "broken" if broken else "unbroken"
        record[key] = {"raw_models": count, **stats}
        expanded[key] = {
            tuple(sorted((tuple(sorted(map(str, edge))), label)
                         for edge, label in labeling.items()))
            for labeling in solver.iter_solutions()
        }
    if expanded["broken"] != expanded["unbroken"]:
        raise AssertionError(
            "orbit re-expansion lost solutions under symmetry breaking — "
            "benchmark void"
        )
    record["expanded_solutions"] = len(expanded["broken"])
    record["reduction"] = round(
        record["unbroken"]["raw_models"] / record["broken"]["raw_models"], 3
    )
    return record


def measure_frontier() -> dict:
    """The Δ=5 gate: CSP under a reduced placement budget must exhaust;
    SAT must answer outright.  (The full CSP solve needs ~1.16M
    placements; Δ=6 does not finish within the 5M default budget.)"""
    support, problem = _gate_instance(FRONTIER_DELTA)
    budget = SolverBudget(FRONTIER_CSP_BUDGET, unit=CSP_BUDGET_UNIT)
    start = time.perf_counter()
    csp_finished = True
    try:
        make_solver(support, problem_gate_lift(problem), backend="csp",
                    budget=budget).solve()
    except SolverLimitError:
        csp_finished = False
    csp_seconds = time.perf_counter() - start

    start = time.perf_counter()
    sat_verdict = zero_round_solvable(support, problem, backend="sat")
    sat_seconds = time.perf_counter() - start
    return {
        "workload": "maximal-matching",
        "n": FRONTIER_DELTA,
        "csp_budget": FRONTIER_CSP_BUDGET,
        "csp_budget_unit": CSP_BUDGET_UNIT,
        "csp_finished": csp_finished,
        "csp_probe_seconds": round(csp_seconds, 6),
        "sat_verdict": sat_verdict,
        "sat_seconds": round(sat_seconds, 6),
    }


def problem_gate_lift(problem):
    """The exact instance ``zero_round_solvable`` checks: the rank/Δ
    lift of the problem, as a plain edge-labeling problem."""
    return lift(problem, problem.white_arity, problem.black_arity).to_problem()


def measure(mode: str, repeats: int = 3) -> dict:
    """Run the workload matrix; returns the BENCH_solvers payload.

    Every workload also cross-checks that both backends return the
    identical gate verdict — a benchmark that silently compared
    different answers would be meaningless.
    """
    records = []
    for workload, delta, factory in WORKLOADS[mode]:
        support, problem = _gate_instance(delta, lambda d=delta: factory())
        csp_seconds, csp_verdict = _best_of(support, problem, "csp", repeats)
        sat_seconds, sat_verdict = _best_of(support, problem, "sat", repeats)
        if csp_verdict != sat_verdict:
            raise AssertionError(
                f"backend verdicts differ on {workload} Δ={delta} — "
                "benchmark void"
            )
        records.append(
            {
                "workload": workload,
                "n": delta,
                "verdict": csp_verdict,
                "csp_seconds": round(csp_seconds, 6),
                "sat_seconds": round(sat_seconds, 6),
                "speedup": round(csp_seconds / sat_seconds, 3),
            }
        )
    return {
        "schema": SCHEMA,
        "mode": mode,
        "criterion": {
            "workload": CRITERION_WORKLOAD[0],
            "n": CRITERION_WORKLOAD[1],
            "min_speedup": CRITERION_SPEEDUP,
        },
        "workloads": records,
        "frontier": measure_frontier(),
        "symmetry_breaking": measure_symmetry_breaking(),
    }


def criterion_speedup(payload: dict) -> float:
    for record in payload["workloads"]:
        if (record["workload"], record["n"]) == CRITERION_WORKLOAD:
            return record["speedup"]
    raise AssertionError(
        f"criterion workload {CRITERION_WORKLOAD} missing from payload"
    )


def compare_with_baseline(payload: dict, baseline: dict, tolerance: float) -> list[str]:
    """Regression messages for every workload whose speedup dropped more
    than ``tolerance`` (fraction) below the baseline's.

    Millisecond-scale workloads (CSP side under ``MIN_GATE_SECONDS``)
    are skipped — their ratios are dominated by scheduler noise on
    shared runners.
    """
    baseline_speedups = {
        (record["workload"], record["n"]): record["speedup"]
        for record in baseline.get("workloads", ())
    }
    problems = []
    for record in payload["workloads"]:
        key = (record["workload"], record["n"])
        expected = baseline_speedups.get(key)
        if expected is None or record["csp_seconds"] < MIN_GATE_SECONDS:
            continue
        floor = expected * (1.0 - tolerance)
        if record["speedup"] < floor:
            problems.append(
                f"{key[0]} Δ={key[1]}: speedup {record['speedup']:.2f}x < "
                f"{floor:.2f}x (baseline {expected:.2f}x - {tolerance:.0%})"
            )
    return problems


def gate_failures(payload: dict) -> list[str]:
    """Criterion + qualitative-block failures (baseline gating is
    separate — it needs the baseline file)."""
    failures = []
    speedup = criterion_speedup(payload)
    if speedup < CRITERION_SPEEDUP:
        failures.append(
            f"criterion: Δ=4 maximal-matching speedup {speedup:.2f}x < "
            f"{CRITERION_SPEEDUP}x"
        )
    frontier = payload["frontier"]
    if frontier["csp_finished"]:
        failures.append(
            f"frontier: CSP finished the Δ={FRONTIER_DELTA} gate within "
            f"{FRONTIER_CSP_BUDGET} placements — frontier no longer frontier"
        )
    if not frontier["sat_verdict"]:
        failures.append(
            f"frontier: SAT verdict flipped on the Δ={FRONTIER_DELTA} gate"
        )
    symmetry = payload["symmetry_breaking"]
    if symmetry["broken"]["raw_models"] >= symmetry["unbroken"]["raw_models"]:
        failures.append(
            "symmetry breaking did not reduce the enumerated model count"
        )
    return failures


def _print(payload: dict) -> None:
    print_table(
        ["workload", "Δ", "verdict", "csp (s)", "sat (s)", "speedup"],
        [
            (
                record["workload"],
                record["n"],
                str(record["verdict"]),
                f"{record['csp_seconds']:.4f}",
                f"{record['sat_seconds']:.4f}",
                f"{record['speedup']:.2f}x",
            )
            for record in payload["workloads"]
        ],
        title="SOLVERS: zero-round gate, CSP backtracker vs CDCL SAT",
    )
    frontier = payload["frontier"]
    print(
        f"frontier Δ={frontier['n']}: CSP "
        + (
            "finished (!)"
            if frontier["csp_finished"]
            else f"exhausted {frontier['csp_budget']} {frontier['csp_budget_unit']} "
            f"in {frontier['csp_probe_seconds']:.2f}s"
        )
        + f"; SAT answered {frontier['sat_verdict']} in "
        f"{frontier['sat_seconds']:.4f}s"
    )
    symmetry = payload["symmetry_breaking"]
    print(
        f"symmetry breaking ({symmetry['problem']}, "
        f"|Aut|={symmetry['automorphism_group_order']}): raw models "
        f"{symmetry['unbroken']['raw_models']} -> "
        f"{symmetry['broken']['raw_models']} "
        f"({symmetry['reduction']:.1f}x fewer), same "
        f"{symmetry['expanded_solutions']} expanded solutions"
    )


# --------------------------------------------------------------------------
# pytest entry points
# --------------------------------------------------------------------------


def test_sat_speedup_delta4_gate():
    """The acceptance criterion: ≥ 3× on the Δ=4 maximal matching
    zero-round gate, with verdict identity cross-checked inside
    ``measure``, CSP budget exhaustion at the Δ=5 frontier, and the
    symmetry-breaking model-count reduction."""
    payload = measure("smoke")
    _print(payload)
    failures = gate_failures(payload)
    assert not failures, "; ".join(failures)


def test_symmetry_breaking_reduces_enumerated_states():
    """Standalone check of the enumeration claim on a short cycle."""
    record = measure_symmetry_breaking(cycle_length=8)
    assert record["broken"]["raw_models"] < record["unbroken"]["raw_models"]
    assert record["reduction"] > 1.0


# --------------------------------------------------------------------------
# CLI
# --------------------------------------------------------------------------


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="fast workload subset (the CI gate)"
    )
    parser.add_argument(
        "--out", default="BENCH_solvers.json", help="result JSON path"
    )
    parser.add_argument(
        "--baseline", default=None, help="baseline JSON to gate regressions against"
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="allowed fractional speedup regression vs baseline (default 0.25)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per backend"
    )
    args = parser.parse_args(argv)

    mode = "smoke" if args.smoke else "full"
    payload = measure(mode, repeats=args.repeats)
    _print(payload)
    Path(args.out).write_text(canonical_dumps(payload, indent=2) + "\n")
    print(f"wrote {args.out}", file=sys.stderr)

    failures = gate_failures(payload)
    if args.baseline:
        baseline = json.loads(Path(args.baseline).read_text())
        failures.extend(compare_with_baseline(payload, baseline, args.tolerance))
    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
