"""THM61 — Theorem 6.1 / 1.7: arbdefective colored ruling set lower bound.

Regenerates: the Lemma 6.6 peeling executed on a real solution (type
classification, |S′| ≥ |S|/4 certificate, P_β/U_β elimination) and the
bound formula's β-tradeoff series (Lemma 6.4 sequence lengths vs the
closed form).  Both are thin wrappers over the ``ruling_sets`` suite of
the experiments registry.
"""

from repro.experiments import execute_scenario, get_scenario
from repro.utils.tables import print_table


def test_thm61_bound_series(benchmark):
    scenario = get_scenario("ruling_sets", "thm61-bound-series")
    records = benchmark(lambda: execute_scenario(scenario).records)
    dets = [record["bound_deterministic"] for record in records]
    assert dets == sorted(dets, reverse=True)  # β(Δ̄)^{1/β} decreases here
    print_table(
        ["β", "Theorem 6.1 deterministic bound", "Lemma 6.4 sequence length t"],
        [
            (record["beta"], record["bound_deterministic"],
             record["sequence_length_t"])
            for record in records
        ],
        title="THM61: the β tradeoff series (Δ̄ = 256, (α+1)c = 1)",
    )


def test_thm61_peeling_execution(benchmark):
    scenario = get_scenario("ruling_sets", "thm61-peeling")
    record = benchmark(lambda: execute_scenario(scenario).records[0])
    assert record["valid"]
    assert record["types_partition_s"]  # types partition S (union + counts)
    assert record["quarter_certificate"]
    assert record["pointers_eliminated"]
    type1, type2, type3, untouched = record["types"]
    print_table(
        ["quantity", "value"],
        [
            ("support", "Tutte–Coxeter (n=30, Δ=3, girth 8)"),
            ("|S| before peel", record["n"]),
            ("type 1 / 2 / 3 / untouched", f"{type1}/{type2}/{type3}/{untouched}"),
            ("|S'| after peel (≥ |S|/4)", record["s_prime_size"]),
            ("P_β, U_β eliminated on S'", record["pointers_eliminated"]),
        ],
        title="THM61: one Lemma 6.6 peeling step, executed",
    )
