"""THM61 — Theorem 6.1 / 1.7: arbdefective colored ruling set lower bound.

Regenerates: the Π_Δ(c,β) construction with its Figure 2 diagram, the
Lemma 6.6 peeling executed on a real solution (type classification,
|S′| ≥ |S|/4 certificate, P_β/U_β elimination), and the bound formula's
β-tradeoff series (Lemma 6.4 sequence lengths vs the closed form).
"""

from repro.algorithms import ruling_set_by_class_sweep
from repro.analysis import classify_types, peel_once
from repro.core.bounds import lemma_64_sequence_length, theorem_61_bound
from repro.formalism.diagrams import black_diagram, right_closure
from repro.graphs import cage
from repro.problems import pi_ruling, ruling_set_to_family_labels
from repro.utils.tables import print_table


def test_thm61_bound_series(benchmark):
    def run():
        rows = []
        for beta in (1, 2, 3, 4):
            bound = theorem_61_bound(
                delta=10**5, delta_prime=256, alpha=0, colors=1,
                beta=beta, n=10**300,
            )
            t = lemma_64_sequence_length(
                delta=10**5, alpha=0, colors=1, k=256, beta=beta, epsilon=1.0
            )
            rows.append((beta, round(bound.deterministic, 1), t))
        return rows

    rows = benchmark(run)
    dets = [det for _beta, det, _t in rows]
    assert dets == sorted(dets, reverse=True)  # β(Δ̄)^{1/β} decreases here
    print_table(
        ["β", "Theorem 6.1 deterministic bound", "Lemma 6.4 sequence length t"],
        rows,
        title="THM61: the β tradeoff series (Δ̄ = 256, (α+1)c = 1)",
    )


def test_thm61_peeling_execution(benchmark):
    def run():
        graph, _d, _g = cage("tutte_coxeter")
        beta = 2
        selected, _rounds = ruling_set_by_class_sweep(graph, beta=beta)
        labels = ruling_set_to_family_labels(
            graph, selected, {node: 1 for node in selected}, set(), alpha=0,
            beta=beta,
        )
        diagram = black_diagram(pi_ruling(3, 1, beta))
        sets = {key: right_closure(diagram, [lab]) for key, lab in labels.items()}
        s_nodes = set(graph.nodes)
        types = classify_types(graph, s_nodes, sets, 3, 1, beta)
        result = peel_once(graph, s_nodes, sets, delta=3, delta_prime=1, k=1,
                           beta=beta)
        return graph, s_nodes, types, result

    graph, s_nodes, (type1, type2, type3, untouched), result = benchmark(run)
    assert type1 | type2 | type3 | untouched == s_nodes
    assert result.fraction_ok
    assert len(result.s_prime) >= len(s_nodes) / 4
    for node in result.s_prime:
        for neighbor in graph.neighbors(node):
            assert "P2" not in result.assignment[(node, neighbor)]
            assert "U2" not in result.assignment[(node, neighbor)]
    print_table(
        ["quantity", "value"],
        [
            ("support", "Tutte–Coxeter (n=30, Δ=3, girth 8)"),
            ("|S| before peel", len(s_nodes)),
            ("type 1 / 2 / 3 / untouched", f"{len(type1)}/{len(type2)}/{len(type3)}/{len(untouched)}"),
            ("|S'| after peel (≥ |S|/4)", len(result.s_prime)),
            ("P_β, U_β eliminated on S'", True),
        ],
        title="THM61: one Lemma 6.6 peeling step, executed",
    )
