"""Exception hierarchy for the repro library.

All library-raised errors derive from :class:`ReproError` so that callers can
distinguish library failures from programming errors.  Each subsystem has its
own subclass; the message always names the offending object so that failures
in long pipelines (round elimination chains, CSP searches) are diagnosable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class FormalismError(ReproError):
    """Malformed object in the black-white formalism."""


class ParseError(FormalismError):
    """A configuration / constraint / problem string failed to parse."""


class ArityMismatchError(FormalismError):
    """A configuration has the wrong size for the constraint it joined."""


class UnknownLabelError(FormalismError):
    """A configuration mentions a label outside the problem alphabet."""


class InvalidParameterError(ReproError):
    """Parameters of a problem family are outside their legal range."""


class SolverError(ReproError):
    """The CSP / existence solver was used incorrectly."""


class SolverLimitError(SolverError):
    """The solver exceeded its configured search budget.

    Distinguishes "no solution exists" (a definitive ``None``) from "the
    search was truncated" (this exception), which matters for lower-bound
    certificates: an unsolvability claim must never rest on a truncated
    search.
    """


class SimulationError(ReproError):
    """A distributed algorithm misbehaved inside the simulator."""


class LocalityViolationError(SimulationError):
    """An algorithm read information outside its radius-T view."""


class GraphConstructionError(ReproError):
    """A graph generator could not satisfy its certified requirements."""


class CertificateError(ReproError):
    """A machine-checkable proof certificate failed validation."""
