"""Shared utilities: multiset algebra, table rendering, exceptions."""

from repro.utils.exceptions import (
    ArityMismatchError,
    CertificateError,
    FormalismError,
    GraphConstructionError,
    InvalidParameterError,
    LocalityViolationError,
    ParseError,
    ReproError,
    SimulationError,
    SolverError,
    SolverLimitError,
    UnknownLabelError,
)

__all__ = [
    "ArityMismatchError",
    "CertificateError",
    "FormalismError",
    "GraphConstructionError",
    "InvalidParameterError",
    "LocalityViolationError",
    "ParseError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "SolverLimitError",
    "UnknownLabelError",
]
