"""Shared utilities: multiset algebra, serialization, tables, exceptions."""

from repro.utils.exceptions import (
    ArityMismatchError,
    CertificateError,
    FormalismError,
    GraphConstructionError,
    InvalidParameterError,
    LocalityViolationError,
    ParseError,
    ReproError,
    SimulationError,
    SolverError,
    SolverLimitError,
    UnknownLabelError,
)
from repro.utils.serialization import (
    canonical_dumps,
    result_digest,
    to_jsonable,
    write_json,
)

__all__ = [
    "ArityMismatchError",
    "CertificateError",
    "FormalismError",
    "GraphConstructionError",
    "InvalidParameterError",
    "LocalityViolationError",
    "ParseError",
    "ReproError",
    "SimulationError",
    "SolverError",
    "SolverLimitError",
    "UnknownLabelError",
    "canonical_dumps",
    "result_digest",
    "to_jsonable",
    "write_json",
]
