"""Canonical JSON serialization for experiment results.

Experiment records mix graph nodes, frozensets, tuples, dataclasses and
check results; this module flattens all of them into plain JSON with a
*canonical* encoding (sorted keys, sorted set elements, fixed separators)
so that two runs producing equal results produce byte-identical files —
the property the parallel-vs-serial equality guarantees of the
experiments runner rest on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from pathlib import Path


def to_jsonable(value):
    """Recursively convert ``value`` into JSON-encodable structures.

    Sets and frozensets become sorted lists (ordered by their canonical
    encoding, so mixed element types are fine); tuples become lists;
    dataclasses become dicts; dict keys are stringified.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return to_jsonable(dataclasses.asdict(value))
    if isinstance(value, dict):
        return {_canonical_key(key): to_jsonable(item) for key, item in value.items()}
    if isinstance(value, (set, frozenset)):
        converted = [to_jsonable(item) for item in value]
        return sorted(converted, key=lambda item: json.dumps(item, sort_keys=True))
    if isinstance(value, (list, tuple)):
        return [to_jsonable(item) for item in value]
    return str(value)


def _canonical_key(key) -> str:
    """A deterministic string for a dict key.

    ``str()`` is only safe for scalars; containers (e.g. frozenset edge
    keys) iterate in hash order, which varies per process — exactly the
    nondeterminism this module exists to eliminate — so they go through
    the canonical encoding instead.
    """
    if isinstance(key, str):
        return key
    if isinstance(key, (bool, int, float)) or key is None:
        return str(key)
    return json.dumps(to_jsonable(key), sort_keys=True, separators=(",", ":"))


def canonical_dumps(value, indent: int | None = None) -> str:
    """Serialize ``value`` deterministically (sorted keys, stable order)."""
    separators = (",", ": ") if indent is not None else (",", ":")
    return json.dumps(
        to_jsonable(value), sort_keys=True, indent=indent, separators=separators
    )


def write_json(path: str | Path, value, indent: int | None = 2) -> Path:
    """Write ``value`` as canonical JSON, creating parent directories.

    The write is atomic (temp file in the target directory, then
    ``os.replace``): a reader — or a crash — never observes a
    half-written file, only the old version or the new one.
    """
    import os
    import tempfile

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f"{target.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as handle:
            handle.write(canonical_dumps(value, indent=indent) + "\n")
        os.replace(tmp_name, target)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return target


def result_digest(value, length: int = 16) -> str:
    """A stable fingerprint of a result payload.

    The default 16 hex chars suffice for trajectory fingerprints; callers
    that treat digest equality as *identity* (the content-addressed
    problem store) pass a larger ``length`` — up to the full sha256.
    """
    encoded = canonical_dumps(value).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()[:length]
