"""Immutable multiset primitives.

Configurations in the black-white formalism are multisets of labels
(paper §2).  The library represents them as canonically-sorted tuples, which
makes them hashable, comparable and cheap to deduplicate.  This module holds
the generic multiset algebra; :mod:`repro.formalism.configurations` builds
the formalism-specific layer on top of it.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Mapping
from itertools import combinations_with_replacement
from typing import TypeVar

T = TypeVar("T")


def canonical(items: Iterable[T]) -> tuple[T, ...]:
    """Return the canonical (sorted) tuple representation of a multiset."""
    return tuple(sorted(items))


def counter_of(items: Iterable[T]) -> Counter[T]:
    """Return the multiplicity map of a multiset."""
    return Counter(items)


def is_submultiset(small: Mapping[T, int], big: Mapping[T, int]) -> bool:
    """Return True if ``small`` is contained in ``big`` with multiplicities."""
    return all(big.get(item, 0) >= count for item, count in small.items())


def multiset_difference(big: Mapping[T, int], small: Mapping[T, int]) -> Counter[T]:
    """Return ``big - small`` assuming ``small`` is a sub-multiset of ``big``."""
    if not is_submultiset(small, big):
        raise ValueError(f"{small!r} is not a sub-multiset of {big!r}")
    result: Counter[T] = Counter()
    for item, count in big.items():
        remaining = count - small.get(item, 0)
        if remaining > 0:
            result[item] = remaining
    return result


def replace_one(items: tuple[T, ...], old: T, new: T) -> tuple[T, ...]:
    """Return the multiset with one occurrence of ``old`` replaced by ``new``.

    Raises ValueError if ``old`` does not occur.
    """
    as_list = list(items)
    as_list.remove(old)  # raises ValueError when absent
    as_list.append(new)
    return canonical(as_list)


def all_multisets(universe: Iterable[T], size: int) -> Iterator[tuple[T, ...]]:
    """Yield every multiset of ``size`` elements drawn from ``universe``.

    The universe is deduplicated and sorted first so the iteration order is
    deterministic and each multiset is yielded exactly once, in canonical
    form.
    """
    ordered = sorted(set(universe))
    yield from combinations_with_replacement(ordered, size)


def multiset_count(universe_size: int, size: int) -> int:
    """Number of multisets of cardinality ``size`` over a universe.

    This is the standard stars-and-bars count C(universe_size + size - 1,
    size); used by solvers to decide whether explicit materialization of a
    constraint is feasible.
    """
    from math import comb

    if universe_size == 0:
        return 1 if size == 0 else 0
    return comb(universe_size + size - 1, size)


def submultisets(items: Mapping[T, int], size: int) -> Iterator[tuple[T, ...]]:
    """Yield every sub-multiset of the given multiset with exactly ``size``
    elements, each in canonical form, without duplicates."""
    elements = sorted(items)

    def recurse(index: int, remaining: int, chosen: list[T]) -> Iterator[tuple[T, ...]]:
        if remaining == 0:
            yield tuple(chosen)
            return
        if index >= len(elements):
            return
        element = elements[index]
        available = items[element]
        # Choose k copies of this element, for each feasible k.
        max_take = min(available, remaining)
        for take in range(max_take, -1, -1):
            # Feasibility prune: enough items left in the tail?
            tail_capacity = sum(items[e] for e in elements[index + 1 :])
            if remaining - take > tail_capacity:
                continue
            yield from recurse(index + 1, remaining - take, chosen + [element] * take)

    yield from recurse(0, size, [])
