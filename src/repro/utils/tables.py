"""Plain-text table rendering for experiment output.

Every benchmark regenerates a paper artifact and prints a table comparing
the paper's claim with the measured/verified value.  This module renders
those tables uniformly so `EXPERIMENTS.md` and the bench output agree.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> str:
    """Render rows as a fixed-width ASCII table.

    All cells are stringified; column widths are computed from content.
    """
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return "| " + " | ".join(c.ljust(widths[i]) for i, c in enumerate(cells)) + " |"

    separator = "|" + "|".join("-" * (w + 2) for w in widths) + "|"
    lines = []
    if title:
        lines.append(title)
    lines.append(render_row(list(headers)))
    lines.append(separator)
    lines.extend(render_row(row) for row in str_rows)
    return "\n".join(lines)


def print_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str | None = None,
) -> None:
    """Print a table produced by :func:`format_table`."""
    print()
    print(format_table(headers, rows, title=title))
