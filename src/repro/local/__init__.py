"""LOCAL / Supported LOCAL round-by-round simulator."""

from repro.local.network import Network
from repro.local.simulator import (
    NodeAlgorithm,
    NodeContext,
    RunResult,
    run_synchronous,
    run_view_algorithm,
)
from repro.local.supported import (
    SupportedInstance,
    minimum_rounds,
    run_supported_view_algorithm,
)
from repro.local.views import (
    LocalView,
    SupportedView,
    collect_supported_view,
    collect_view,
)

__all__ = [
    "LocalView",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "RunResult",
    "SupportedInstance",
    "SupportedView",
    "collect_supported_view",
    "collect_view",
    "minimum_rounds",
    "run_supported_view_algorithm",
    "run_synchronous",
    "run_view_algorithm",
]
