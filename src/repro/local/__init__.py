"""LOCAL / Supported LOCAL round-by-round simulator."""

from repro.local.batched import FlatNetwork, run_batched
from repro.local.measurement import (
    EngineProbe,
    Measurement,
    measured_run_synchronous,
    timed,
)
from repro.local.network import Network
from repro.local.simulator import (
    NodeAlgorithm,
    NodeContext,
    RoundTrace,
    RunResult,
    run_synchronous,
    run_view_algorithm,
)
from repro.local.supported import (
    SupportedInstance,
    minimum_rounds,
    run_supported_view_algorithm,
)
from repro.local.views import (
    LocalView,
    SupportedView,
    collect_supported_view,
    collect_view,
)

__all__ = [
    "EngineProbe",
    "FlatNetwork",
    "LocalView",
    "Measurement",
    "Network",
    "NodeAlgorithm",
    "NodeContext",
    "RoundTrace",
    "RunResult",
    "SupportedInstance",
    "SupportedView",
    "collect_supported_view",
    "collect_view",
    "measured_run_synchronous",
    "minimum_rounds",
    "run_batched",
    "run_supported_view_algorithm",
    "run_synchronous",
    "run_view_algorithm",
    "timed",
]
