"""Radius-T views — the information a node holds after T rounds.

A T-round LOCAL algorithm is equivalently a function of the node's
radius-T view: the subgraph induced by nodes within distance T, their IDs
and their inputs.  In the Supported LOCAL model the view additionally
contains the *entire* support graph, while input-graph membership marks
are still only known within radius T (marks are initial knowledge of the
endpoints, so T rounds propagate them T hops).

Views raise :class:`LocalityViolationError` on out-of-radius queries, so
algorithm implementations cannot accidentally cheat.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.local.network import Network
from repro.utils import LocalityViolationError


@dataclass(frozen=True)
class LocalView:
    """What a node sees after T rounds in the plain LOCAL model."""

    center: object
    radius: int
    subgraph: nx.Graph
    ids: dict
    n: int
    max_degree: int

    def id_of(self, node) -> int:
        if node not in self.subgraph:
            raise LocalityViolationError(
                f"{node!r} is outside the radius-{self.radius} view of "
                f"{self.center!r}"
            )
        return self.ids[node]

    def neighbors(self, node) -> list:
        if node not in self.subgraph:
            raise LocalityViolationError(
                f"{node!r} is outside the radius-{self.radius} view of "
                f"{self.center!r}"
            )
        return sorted(self.subgraph.neighbors(node), key=lambda v: self.ids[v])


def collect_view(network: Network, node, radius: int) -> LocalView:
    """Build the radius-``radius`` view of ``node``.

    The subgraph is induced by nodes within distance ``radius``; edges
    between two depth-``radius`` nodes are visible (their endpoints know
    them at time ``radius``).
    """
    lengths = nx.single_source_shortest_path_length(
        network.graph, node, cutoff=radius
    )
    members = set(lengths)
    subgraph = network.graph.subgraph(members).copy()
    return LocalView(
        center=node,
        radius=radius,
        subgraph=subgraph,
        ids={member: network.ids[member] for member in members},
        n=network.n,
        max_degree=network.max_degree,
    )


@dataclass(frozen=True)
class SupportedView:
    """What a node sees after T rounds in the Supported LOCAL model.

    The whole support graph and all IDs are global knowledge; input-edge
    marks are exposed only for edges incident to nodes within distance T
    (that is how far the endpoints' initial knowledge has travelled).
    """

    center: object
    radius: int
    support: nx.Graph
    ids: dict
    _visible_marks: dict

    def is_input_edge(self, u, v) -> bool:
        key = frozenset((u, v))
        if key not in self._visible_marks:
            raise LocalityViolationError(
                f"input mark of edge {(u, v)} is outside the radius-"
                f"{self.radius} view of {self.center!r}"
            )
        return self._visible_marks[key]

    def input_neighbors(self, node) -> list:
        """Input-graph neighbors of a node whose marks are visible."""
        return sorted(
            (
                neighbor
                for neighbor in self.support.neighbors(node)
                if self.is_input_edge(node, neighbor)
            ),
            key=lambda v: self.ids[v],
        )


def collect_supported_view(
    network: Network, input_edges: frozenset, node, radius: int
) -> SupportedView:
    """Build the Supported LOCAL radius-``radius`` view of ``node``."""
    lengths = nx.single_source_shortest_path_length(
        network.graph, node, cutoff=radius
    )
    visible: dict = {}
    for member in lengths:
        for neighbor in network.graph.neighbors(member):
            key = frozenset((member, neighbor))
            visible[key] = key in input_edges
    return SupportedView(
        center=node,
        radius=radius,
        support=network.graph,
        ids=dict(network.ids),
        _visible_marks=visible,
    )
