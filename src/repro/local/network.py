"""Networks: graphs with identifiers and port numbers (paper §2).

In the LOCAL model each node has a unique ID from {1..n^c} and knows its
degree, Δ and n; edges at a node are addressed by ports 1..deg(v).  The
:class:`Network` wrapper fixes deterministic IDs/ports over a networkx
graph so simulations are reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

import networkx as nx

from repro.utils import SimulationError


@dataclass
class Network:
    """A communication network with IDs and port numbering."""

    graph: nx.Graph
    ids: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.ids:
            # Canonical IDs 1..n in sorted node order.
            self.ids = {
                node: index + 1
                for index, node in enumerate(sorted(self.graph.nodes, key=str))
            }
        if len(set(self.ids.values())) != self.graph.number_of_nodes():
            raise SimulationError("node IDs must be unique")
        self._ports = {
            node: {
                port + 1: neighbor
                for port, neighbor in enumerate(
                    sorted(self.graph.neighbors(node), key=lambda v: self.ids[v])
                )
            }
            for node in self.graph.nodes
        }
        self._port_of = {
            node: {neighbor: port for port, neighbor in ports.items()}
            for node, ports in self._ports.items()
        }
        # Cached at construction: the wrapper already freezes IDs/ports
        # here, so the graph's structure must not change afterwards —
        # and engines read Δ once per node, which must not cost O(n²).
        self._max_degree = max(
            (self.graph.degree(v) for v in self.graph.nodes), default=0
        )

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def max_degree(self) -> int:
        return self._max_degree

    def neighbors(self, node) -> list:
        """Neighbors in port order."""
        ports = self._ports[node]
        return [ports[port] for port in sorted(ports)]

    def port_to(self, node, neighbor) -> int:
        """The port of ``node`` leading to ``neighbor``."""
        return self._port_of[node][neighbor]

    def via_port(self, node, port: int):
        """The neighbor behind ``port`` at ``node``."""
        return self._ports[node][port]

    def with_random_ids(self, seed: int, id_space_exponent: int = 3) -> "Network":
        """A copy with random distinct IDs from {1..n^c} (adversarial IDs)."""
        rng = random.Random(seed)
        space = self.n**id_space_exponent
        values = rng.sample(range(1, space + 1), self.n)
        nodes = sorted(self.graph.nodes, key=str)
        return Network(graph=self.graph, ids=dict(zip(nodes, values)))

    def renormalized_ids(self) -> dict:
        """IDs recomputed to {1..n} preserving order.

        §3 notes that in Supported LOCAL the ID space is w.l.o.g. {1..n}:
        all nodes know G, so they can renormalize without communication.
        """
        ordered = sorted(self.ids.items(), key=lambda item: item[1])
        return {node: index + 1 for index, (node, _value) in enumerate(ordered)}
