"""Synchronous message-passing engine (the LOCAL model's round structure).

Each node runs an instance of a :class:`NodeAlgorithm`; a round consists
of (1) every node emitting messages per port, (2) delivery, (3) every node
processing its inbox.  Messages and local computation are unbounded, as in
the model; the engine counts rounds until every node has halted with an
output, which is how upper-bound experiments measure round complexity.

A view-based runner is also provided: a T-round algorithm given as a
function of the radius-T view (:mod:`repro.local.views`), the formulation
used throughout the paper's proofs.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.local.network import Network
from repro.local.views import LocalView, collect_view
from repro.utils import SimulationError


class NodeAlgorithm:
    """Base class for per-node message-passing algorithms.

    Subclasses override :meth:`init`, :meth:`send` and :meth:`receive`;
    they call :meth:`halt` with their final output.  State lives on the
    instance (one instance per node).
    """

    def __init__(self, ctx: "NodeContext") -> None:
        self.ctx = ctx
        self.output = None
        self.halted = False

    def init(self) -> None:
        """Round-0 initialization (before any communication)."""

    def send(self) -> dict[int, object]:
        """Messages to emit this round, keyed by port."""
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        """Process this round's inbox, keyed by port."""

    def halt(self, output) -> None:
        """Commit the final output; the node stays silent afterwards."""
        self.output = output
        self.halted = True


@dataclass(frozen=True)
class NodeContext:
    """Immutable per-node knowledge: the model's initial information."""

    node: object
    node_id: int
    degree: int
    n: int
    max_degree: int
    ports: tuple[int, ...]
    random_bits: object = None
    extra: dict = field(default_factory=dict)


@dataclass(frozen=True)
class RunResult:
    """Outputs plus the measured round complexity."""

    outputs: dict
    rounds: int


@dataclass(frozen=True)
class RoundTrace:
    """Per-round engine observations, fed to ``on_round`` observers."""

    round: int
    live_nodes: int
    messages_delivered: int
    messages_dropped: int


def run_synchronous(
    network: Network,
    factory: Callable[[NodeContext], NodeAlgorithm],
    max_rounds: int = 10_000,
    extra: Callable[[object], dict] | None = None,
    rng_for: Callable[[object], object] | None = None,
    on_round: Callable[[RoundTrace], None] | None = None,
) -> RunResult:
    """Run a message-passing algorithm until every node halts.

    ``extra`` injects per-node auxiliary knowledge (e.g. full support-graph
    information in Supported LOCAL experiments); ``rng_for`` injects a
    per-node random source for randomized algorithms; ``on_round`` observes
    a :class:`RoundTrace` after each round (the measurement hook used by
    :mod:`repro.local.measurement`).

    Halting semantics: a node that halts — even during :meth:`init`, before
    any communication — is silent for the rest of the run.  Messages
    addressed to an already-halted node are dropped at delivery (counted in
    the round trace), and a node whose :meth:`send` returns messages after
    calling :meth:`halt` is rejected as a protocol violation.
    """
    algorithms: dict[object, NodeAlgorithm] = {}
    for node in network.graph.nodes:
        context = NodeContext(
            node=node,
            node_id=network.ids[node],
            degree=network.graph.degree(node),
            n=network.n,
            max_degree=network.max_degree,
            ports=tuple(range(1, network.graph.degree(node) + 1)),
            random_bits=rng_for(node) if rng_for else None,
            extra=extra(node) if extra else {},
        )
        algorithms[node] = factory(context)

    for algorithm in algorithms.values():
        algorithm.init()

    rounds = 0
    while any(not algorithm.halted for algorithm in algorithms.values()):
        rounds += 1
        if rounds > max_rounds:
            raise SimulationError(
                f"algorithm did not halt within {max_rounds} rounds"
            )
        outbox: dict[object, dict[int, object]] = {}
        live_nodes = 0
        for node, algorithm in algorithms.items():
            if algorithm.halted:
                continue
            live_nodes += 1
            messages = algorithm.send() or {}
            # Port keys may be heterogeneous (e.g. {"a": m, 99: m}), so
            # error paths sort by str: the violation must surface as a
            # SimulationError, never a TypeError from sorted().
            if algorithm.halted and messages:
                raise SimulationError(
                    f"node {node!r} halted during send() but still emitted "
                    f"messages on ports {sorted(messages, key=str)}"
                )
            stray = set(messages) - set(range(1, network.graph.degree(node) + 1))
            if stray:
                raise SimulationError(
                    f"node {node!r} sent on invalid ports {sorted(stray, key=str)}"
                )
            outbox[node] = messages
        # Inboxes exist only for live nodes: a halted node (including one
        # that halted during init()) never receives, so messages addressed
        # to it are dropped here rather than silently retained.
        inbox: dict[object, dict[int, object]] = {
            node: {}
            for node, algorithm in algorithms.items()
            if not algorithm.halted
        }
        delivered = dropped = 0
        for node, messages in outbox.items():
            for port, payload in messages.items():
                neighbor = network.via_port(node, port)
                if neighbor not in inbox:
                    dropped += 1
                    continue
                back_port = network.port_to(neighbor, node)
                inbox[neighbor][back_port] = payload
                delivered += 1
        for node, messages in inbox.items():
            algorithms[node].receive(messages)
        if on_round is not None:
            on_round(
                RoundTrace(
                    round=rounds,
                    live_nodes=live_nodes,
                    messages_delivered=delivered,
                    messages_dropped=dropped,
                )
            )

    return RunResult(
        outputs={node: algorithm.output for node, algorithm in algorithms.items()},
        rounds=rounds,
    )


def run_view_algorithm(
    network: Network,
    radius: int,
    rule: Callable[[LocalView], object],
) -> RunResult:
    """Run a T-round algorithm given as a function of the radius-T view."""
    outputs = {
        node: rule(collect_view(network, node, radius))
        for node in network.graph.nodes
    }
    return RunResult(outputs=outputs, rounds=radius)
