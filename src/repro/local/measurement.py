"""Reusable timing/measurement hooks around the synchronous engine.

Experiment harnesses repeatedly need the same two observations: how long a
run took on the wall clock and what the engine did round by round (rounds
until global halt, message volume, messages dropped at halted nodes).
This module packages both so benchmarks and the experiments runner stop
hand-rolling ``time.perf_counter()`` arithmetic.

* :func:`timed` — wall-clock a callable, returning ``(value, seconds)``;
* :class:`EngineProbe` — an ``on_round`` observer for
  :func:`repro.local.simulator.run_synchronous` accumulating round traces;
* :func:`measured_run_synchronous` — ``run_synchronous`` plus both of the
  above, returning ``(RunResult, Measurement)``.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.local.network import Network
from repro.local.simulator import (
    NodeAlgorithm,
    NodeContext,
    RoundTrace,
    RunResult,
    run_synchronous,
)


@dataclass(frozen=True)
class Measurement:
    """Aggregate observations of one engine run."""

    rounds: int
    wall_seconds: float
    messages_delivered: int
    messages_dropped: int
    peak_live_nodes: int
    #: Which execution path ran: ``"kernel"`` (vectorized array kernel),
    #: ``"fallback"`` (per-node loop), or ``""`` when the engine does not
    #: report one.  Telemetry only — excluded from :meth:`as_record` so
    #: canonical records stay byte-identical across engines.
    engine_path: str = ""

    def as_record(self) -> dict:
        """A JSON-ready dict (wall clock excluded: it is not reproducible)."""
        return {
            "rounds": self.rounds,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "peak_live_nodes": self.peak_live_nodes,
        }


@dataclass
class EngineProbe:
    """An ``on_round`` observer that accumulates :class:`RoundTrace` data."""

    traces: list[RoundTrace] = field(default_factory=list)
    engine_path: str = ""

    def __call__(self, trace: RoundTrace) -> None:
        self.traces.append(trace)

    def note_engine_path(self, path: str) -> None:
        """Record which execution path the engine took (telemetry only)."""
        self.engine_path = path

    def summarize(self, wall_seconds: float = 0.0) -> Measurement:
        return Measurement(
            rounds=len(self.traces),
            wall_seconds=wall_seconds,
            messages_delivered=sum(t.messages_delivered for t in self.traces),
            messages_dropped=sum(t.messages_dropped for t in self.traces),
            peak_live_nodes=max((t.live_nodes for t in self.traces), default=0),
            engine_path=self.engine_path,
        )


def timed(fn: Callable, *args, **kwargs) -> tuple[object, float]:
    """Call ``fn(*args, **kwargs)``, returning ``(value, wall_seconds)``."""
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return value, time.perf_counter() - start


def measured_run_synchronous(
    network: Network,
    factory: Callable[[NodeContext], NodeAlgorithm],
    max_rounds: int = 10_000,
    *,
    engine: Callable[..., RunResult] = run_synchronous,
    **kwargs,
) -> tuple[RunResult, Measurement]:
    """:func:`run_synchronous` instrumented with an :class:`EngineProbe`.

    Accepts the same keyword arguments as ``run_synchronous`` (except
    ``on_round``, which the probe occupies).  ``max_rounds`` is explicit —
    not swallowed by ``**kwargs`` — because it is the non-termination
    guard: a run that exceeds it raises
    :class:`~repro.utils.SimulationError` instead of looping forever, and
    harnesses routinely need to tighten it.  ``engine`` swaps in an
    alternative execution backend with the same contract (e.g.
    :func:`repro.local.batched.run_batched`).
    """
    probe = EngineProbe()
    (result, seconds) = timed(
        engine, network, factory, max_rounds=max_rounds, on_round=probe, **kwargs
    )
    return result, probe.summarize(wall_seconds=seconds)
