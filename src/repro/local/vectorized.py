"""Vectorized synchronous engine: struct-of-arrays rounds over numpy.

The object engine (:func:`repro.local.simulator.run_synchronous`) and the
batched engine (:func:`repro.local.batched.run_batched`) both execute one
Python callback per node per round, which caps honest experiments near
n ≈ 10^4.  This engine removes per-node Python from the hot loop entirely:

* the network is compiled once into numpy CSR arrays
  (:class:`VectorNetwork`, the array form of
  :class:`~repro.local.batched.FlatNetwork`) with two delivery maps
  precomputed — ``owner[k]`` (which node emits half-edge ``k``) and
  ``reverse[k]`` (the receiver-side half-edge, i.e. inbox slot, that a
  message along ``k`` lands in);
* node state lives in struct-of-arrays form — int state vectors, float
  payload vectors, boolean halted/live masks — owned by a
  :class:`VectorizedAlgorithm` *kernel*;
* a round is three whole-array steps: the kernel's :meth:`send_all`
  returns the emitting half-edges (plus optional payloads), the engine
  masks out edges whose receiver has halted (the drop rule) and maps the
  rest through ``reverse``, and :meth:`receive_all` scatters them back
  into node state.

Algorithms opt in by attaching a :class:`~repro.api.types.VectorizedSpec`
to their program, naming a kernel registered in :data:`KERNELS`.  Programs
without a spec fall back to :func:`run_synchronous` — per-node object
semantics, trivially byte-identical.  A spec naming an *unregistered*
kernel raises :class:`SimulationError` instead: the algorithm explicitly
claimed a kernel, so a typo must fail loudly rather than silently lose
the speedup to the per-node path.  Which path ran is reported to the
probe (``EngineProbe.engine_path``: ``"kernel"`` or ``"fallback"``) —
telemetry only, never part of canonical records.  Ported kernels must
reproduce the object engine bit for bit: same outputs (Python scalars,
not numpy ones), same round count, same delivered/dropped counters, same
:class:`SimulationError` texts.  ``tests/api/test_engine_parity.py`` and
the ``engines`` differential oracle enforce this.

Kernel contract (what keeps parity cheap to reason about):

* kernels only halt nodes in :meth:`init_all` / :meth:`receive_all`,
  never in :meth:`send_all` — so "halted at send time" and "halted after
  the send phase" coincide and the engine's drop mask is exact;
* ``halted`` is mutated in place (the engine keeps no copy);
* :meth:`outputs_all` returns Python-native values (use ``.tolist()``).

numpy is an optional extra: this module raises ``ModuleNotFoundError`` on
import where numpy is absent, and the engine registry skips the
``vectorized`` engine in that case.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro.local.batched import FlatNetwork
from repro.local.network import Network
from repro.local.simulator import (
    NodeContext,
    RoundTrace,
    RunResult,
    run_synchronous,
)
from repro.utils import SimulationError


@dataclass(frozen=True)
class VectorNetwork:
    """:class:`FlatNetwork` recompiled into numpy CSR + delivery maps.

    ``indptr``/``dest`` are the CSR arrays of the flat form; half-edge
    ``k = indptr[i] + port - 1`` belongs to (node ``i``, ``port``).  Two
    derived arrays make whole-array delivery possible: ``owner[k]`` is the
    dense index of the node emitting ``k`` (the CSR row expanded), and
    ``reverse[k] = indptr[dest[k]] + back_port[k] - 1`` is the half-edge
    under which the message arrives at the receiver — scattering payloads
    from ``k`` to ``reverse[k]`` *is* delivery.
    """

    nodes: tuple
    indptr: np.ndarray
    dest: np.ndarray
    owner: np.ndarray
    reverse: np.ndarray
    degrees: np.ndarray

    @property
    def n(self) -> int:
        return len(self.nodes)

    @classmethod
    def from_network(cls, network: Network) -> "VectorNetwork":
        flat = FlatNetwork.of(network)
        indptr = np.asarray(flat.indptr, dtype=np.int64)
        dest = np.asarray(flat.dest, dtype=np.int64)
        back_port = np.asarray(flat.back_port, dtype=np.int64)
        degrees = np.diff(indptr)
        owner = np.repeat(np.arange(len(flat.nodes), dtype=np.int64), degrees)
        reverse = indptr[dest] + back_port - 1
        return cls(
            nodes=flat.nodes,
            indptr=indptr,
            dest=dest,
            owner=owner,
            reverse=reverse,
            degrees=degrees,
        )

    @classmethod
    def of(cls, network: Network) -> "VectorNetwork":
        """The (memoized) array compilation of ``network``."""
        cached = network.__dict__.get("_vector_network")
        if cached is None:
            cached = cls.from_network(network)
            network.__dict__["_vector_network"] = cached
        return cached


class VectorizedAlgorithm:
    """Base class for batch (struct-of-arrays) algorithm kernels.

    One instance runs *all* nodes: state is arrays indexed by the dense
    node order of ``vnet.nodes``.  The life cycle mirrors the per-node
    protocol — :meth:`init_all` (round 0), then per round
    :meth:`send_all` / :meth:`receive_all` until every ``halted`` flag is
    set — but each hook is called once per round, not once per node.

    ``data`` is the :class:`~repro.api.types.VectorizedSpec` payload: the
    bulk form of what ``extra`` would hand each node.  ``rng_for`` is the
    per-node random-source mapping for randomized kernels (``None``
    otherwise); kernels that draw randomness must draw exactly the bits
    the per-node algorithm would, in node order, to stay byte-identical.
    """

    def __init__(
        self,
        vnet: VectorNetwork,
        network: Network,
        data: dict,
        rng_for: Callable[[object], object] | None = None,
    ) -> None:
        self.vnet = vnet
        self.network = network
        self.data = data
        self.rng_for = rng_for
        self.halted = np.zeros(vnet.n, dtype=bool)

    def init_all(self) -> None:
        """Round-0 initialization (may halt nodes via ``self.halted``)."""

    def send_all(self, rnd: int) -> tuple[np.ndarray, np.ndarray | None]:
        """Messages for engine round ``rnd`` (1-based).

        Returns ``(edges, payloads)``: ``edges`` are the emitting
        half-edge indices (int array) and ``payloads`` an aligned value
        array, or ``None`` when the message content is implied by the
        round (a pure announcement).  Must not touch ``self.halted``.
        """
        return np.empty(0, dtype=np.int64), None

    def receive_all(
        self, rnd: int, slots: np.ndarray, payloads: np.ndarray | None
    ) -> None:
        """Process round ``rnd``'s deliveries.

        ``slots`` are receiver-side half-edges (``reverse`` of the kept
        emitting edges): ``owner[slots]`` is the receiving node and
        ``slots - indptr[owner[slots]] + 1`` the arrival port.  Halting
        happens here, by setting ``self.halted`` entries in place.
        """

    def outputs_all(self) -> list:
        """Per-node outputs in dense node order, as Python-native values."""
        raise NotImplementedError


#: Registry of batch kernels, keyed by ``VectorizedSpec.kernel``.
KERNELS: dict[str, type[VectorizedAlgorithm]] = {}


def register_kernel(name: str, kernel: type[VectorizedAlgorithm]) -> None:
    KERNELS[name] = kernel


def _note_engine_path(
    on_round: Callable[[RoundTrace], None] | None, path: str
) -> None:
    """Tell the probe which execution path ran (telemetry, not records)."""
    note = getattr(on_round, "note_engine_path", None)
    if note is not None:
        note(path)


def run_vectorized(
    network: Network,
    factory: Callable[[NodeContext], object],
    max_rounds: int = 10_000,
    extra: Callable[[object], dict] | None = None,
    rng_for: Callable[[object], object] | None = None,
    on_round: Callable[[RoundTrace], None] | None = None,
    vectorized=None,
) -> RunResult:
    """Drop-in replacement for :func:`run_synchronous` over numpy arrays.

    ``vectorized`` is the program's :class:`VectorizedSpec` (or ``None``);
    when it names a registered kernel the whole run is array operations.
    A program with *no* spec delegates to :func:`run_synchronous`
    unchanged — the fallback path for unported algorithms.  A spec naming
    an unknown kernel is a :class:`SimulationError`: the program opted in
    to a kernel, so a registry miss is a bug, not a fallback.
    """
    if vectorized is None:
        _note_engine_path(on_round, "fallback")
        return run_synchronous(
            network,
            factory,
            max_rounds=max_rounds,
            extra=extra,
            rng_for=rng_for,
            on_round=on_round,
        )
    kernel_cls = KERNELS.get(vectorized.kernel)
    if kernel_cls is None:
        raise SimulationError(
            f"vectorized engine: unknown kernel {vectorized.kernel!r} "
            f"(registered: {sorted(KERNELS)}); refusing the silent "
            f"per-node fallback"
        )
    _note_engine_path(on_round, "kernel")

    vnet = VectorNetwork.of(network)
    kernel = kernel_cls(vnet, network, vectorized.data, rng_for=rng_for)
    kernel.init_all()

    rounds = 0
    live = int(vnet.n - np.count_nonzero(kernel.halted))
    while live:
        rounds += 1
        if rounds > max_rounds:
            raise SimulationError(
                f"algorithm did not halt within {max_rounds} rounds"
            )
        live_nodes = live
        edges, payloads = kernel.send_all(rounds)
        # The drop rule, vectorized: messages addressed to a node that
        # was already halted when the round began are dropped (kernels
        # never halt during send_all, so the mask is exact).
        receiver_halted = kernel.halted[vnet.dest[edges]]
        dropped = int(np.count_nonzero(receiver_halted))
        delivered = int(edges.shape[0]) - dropped
        if dropped:
            keep = ~receiver_halted
            edges = edges[keep]
            if payloads is not None:
                payloads = payloads[keep]
        kernel.receive_all(rounds, vnet.reverse[edges], payloads)
        live = int(vnet.n - np.count_nonzero(kernel.halted))
        if on_round is not None:
            on_round(
                RoundTrace(
                    round=rounds,
                    live_nodes=live_nodes,
                    messages_delivered=delivered,
                    messages_dropped=dropped,
                )
            )

    outputs = kernel.outputs_all()
    return RunResult(outputs=dict(zip(vnet.nodes, outputs)), rounds=rounds)


_NO_PROPOSAL = np.iinfo(np.int64).max


class ProposalMatchingKernel(VectorizedAlgorithm):
    """Batch form of the proposal matching (``matching:proposal``).

    ``data``: ``delta_prime`` (the phase budget Δ′, already computed from
    the input edges by the algorithm) and ``input_edges`` — ``None`` when
    G′ = G (every port is an input port, the common fast path) or a
    frozenset of frozenset edges restricting proposals to G′.

    State: ``matched`` holds the matched port (−1 while unmatched),
    ``next_index`` the next input-port index each white will try, and
    ``pending`` the port a black must answer with "accept" (−1 when none).
    Input ports are their own CSR: ``ip_slots[ip_indptr[i] + j]`` is the
    half-edge of white ``i``'s ``j``-th input port, in ascending port
    order — exactly ``extra["input_ports"]`` of the per-node algorithm.
    """

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        attrs = network.graph.nodes
        self.white = np.fromiter(
            (attrs[node]["color"] == "white" for node in vnet.nodes),
            dtype=bool,
            count=vnet.n,
        )
        input_edges = data.get("input_edges")
        half_edges = int(vnet.dest.shape[0])
        if input_edges is None:
            is_input = np.ones(half_edges, dtype=bool)
        else:
            nodes = vnet.nodes
            is_input = np.fromiter(
                (
                    frozenset((nodes[i], nodes[j])) in input_edges
                    for i, j in zip(vnet.owner.tolist(), vnet.dest.tolist())
                ),
                dtype=bool,
                count=half_edges,
            )
        self.ip_slots = np.flatnonzero(is_input)
        self.ip_counts = np.bincount(
            vnet.owner[is_input], minlength=vnet.n
        ).astype(np.int64)
        self.ip_indptr = np.zeros(vnet.n + 1, dtype=np.int64)
        np.cumsum(self.ip_counts, out=self.ip_indptr[1:])
        self.total_phases = int(data["delta_prime"])
        self.matched = np.full(vnet.n, -1, dtype=np.int64)
        self.next_index = np.zeros(vnet.n, dtype=np.int64)
        self.pending = np.full(vnet.n, -1, dtype=np.int64)
        # Per-round scratch, preallocated once: allocating fresh n-sized
        # arrays inside the round loop dominates past n = 10^6.
        self._best = np.empty(vnet.n, dtype=np.int64)
        self._got_accept = np.empty(vnet.n, dtype=bool)
        self._accept_port = np.zeros(vnet.n, dtype=np.int64)

    def init_all(self):
        if self.total_phases == 0:
            self.halted[:] = True

    def send_all(self, rnd):
        proposing = (rnd - 1) % 2 == 0
        if proposing:
            senders = np.flatnonzero(
                self.white
                & ~self.halted
                & (self.matched < 0)
                & (self.next_index < self.ip_counts)
            )
            edges = self.ip_slots[
                self.ip_indptr[senders] + self.next_index[senders]
            ]
        else:
            senders = np.flatnonzero(
                ~self.white & ~self.halted & (self.pending >= 0)
            )
            edges = self.vnet.indptr[senders] + self.pending[senders] - 1
            self.pending[senders] = -1
        return edges, None

    def receive_all(self, rnd, slots, payloads):
        vnet = self.vnet
        receivers = vnet.owner[slots]
        ports = slots - vnet.indptr[receivers] + 1
        if (rnd - 1) % 2 == 0:
            # Proposals land at black nodes; each unmatched black takes
            # the smallest proposing port and queues the accept.
            best = self._best
            best.fill(_NO_PROPOSAL)
            np.minimum.at(best, receivers, ports)
            claim = ~self.white & (self.matched < 0) & (best < _NO_PROPOSAL)
            self.matched[claim] = best[claim]
            self.pending[claim] = best[claim]
        else:
            # Accepts land at white nodes.  A white receives at most one
            # accept ever (only the black it matched answers it), so a
            # plain scatter is faithful; whites whose proposal went
            # unanswered advance to their next input port.
            # (_accept_port needs no reset: it is read only at indices
            # freshly written through the same ``receivers`` scatter.)
            got_accept = self._got_accept
            got_accept.fill(False)
            accept_port = self._accept_port
            got_accept[receivers] = True
            accept_port[receivers] = ports
            self.matched[got_accept] = accept_port[got_accept]
            advance = (
                self.white & ~self.halted & ~got_accept & (self.matched < 0)
            )
            self.next_index[advance] += 1
        if rnd >= 2 * self.total_phases:
            self.halted[:] = True

    def outputs_all(self):
        return [
            {"matched": port if port >= 0 else None}
            for port in self.matched.tolist()
        ]


class ClassSweepKernel(VectorizedAlgorithm):
    """Shared shape of the class-sweep family of kernels.

    Every class-sweep algorithm walks the classes of a precomputed
    coloring on a fixed round budget: class ``c`` acts when its turn
    comes, everyone else listens, and all nodes halt *together* when the
    budget is spent (so no message is ever dropped mid-sweep).  Subclasses
    parameterize the finalize rule: :attr:`classes_key` names the
    node → class mapping in ``data``, :meth:`round_budget` declares the
    total round count, and :meth:`sweep_send` / :meth:`sweep_receive`
    implement the per-round action.  The base handles the class array,
    the zero-budget init halt and the collective final halt.
    """

    classes_key = "coloring"

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        mapping = data[self.classes_key]
        self.cls = np.fromiter(
            (mapping[node] for node in vnet.nodes),
            dtype=np.int64,
            count=vnet.n,
        )
        self.total_rounds = int(self.round_budget())

    def round_budget(self) -> int:
        """Total engine rounds of the sweep (0 halts everyone at init).

        Called from the base ``__init__`` before subclass state exists —
        compute the budget from ``self.data`` alone.
        """
        raise NotImplementedError

    def sweep_send(self, rnd: int) -> tuple[np.ndarray, np.ndarray | None]:
        return np.empty(0, dtype=np.int64), None

    def sweep_receive(
        self, rnd: int, slots: np.ndarray, payloads: np.ndarray | None
    ) -> None:
        """Scatter round ``rnd``'s deliveries (halting is the base's job)."""

    def init_all(self):
        if self.total_rounds == 0:
            self.halted[:] = True

    def send_all(self, rnd):
        return self.sweep_send(rnd)

    def receive_all(self, rnd, slots, payloads):
        self.sweep_receive(rnd, slots, payloads)
        if rnd >= self.total_rounds:
            self.halted[:] = True


class ColorClassMISKernel(ClassSweepKernel):
    """Batch form of the [AAPR23] color-class sweep (``mis:aapr23``).

    ``data``: the shared ``coloring`` (node → color class) and
    ``num_colors``.  Color class ``c`` joins in engine round ``c + 1``
    unless blocked by an earlier-class neighbor; everyone halts together
    after ``num_colors`` rounds.
    """

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.in_mis = np.zeros(vnet.n, dtype=bool)
        self.blocked = np.zeros(vnet.n, dtype=bool)

    def round_budget(self):
        return self.data["num_colors"]

    def sweep_send(self, rnd):
        joiners = (self.cls == rnd - 1) & ~self.blocked & ~self.halted
        self.in_mis |= joiners
        edges = np.flatnonzero(joiners[self.vnet.owner])
        return edges, None

    def sweep_receive(self, rnd, slots, payloads):
        self.blocked[self.vnet.owner[slots]] = True

    def outputs_all(self):
        return self.in_mis.tolist()


class ColoringSweepKernel(ClassSweepKernel):
    """Batch form of the class-sweep color reduction
    (``coloring:class-sweep``) — the payload-bearing kernel exemplar.

    The per-node program announces ``("final", color)`` tuples; in array
    form the tag is implied and the payload is the int64 color vector,
    scattered receiver-side into a per-node "colors seen" bitmap
    (``seen[node, color]``).  Class ``c`` finalizes in round ``c + 1``
    with the mex over its bitmap row — ``argmin`` of a boolean row is the
    first unseen color, and a width of Δ + 1 guarantees one exists.

    ``data``: ``initial_coloring`` (node → class) and ``num_classes``.
    """

    classes_key = "initial_coloring"

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        width = int(vnet.degrees.max(initial=0)) + 1
        self.seen = np.zeros((vnet.n, width), dtype=bool)
        self.final = np.full(vnet.n, -1, dtype=np.int64)

    def round_budget(self):
        return self.data["num_classes"]

    def init_all(self):
        super().init_all()
        if self.total_rounds == 0:
            # Parity: the node program halts with color 0 (not None) when
            # there are no classes to sweep.
            self.final[:] = 0

    def sweep_send(self, rnd):
        vnet = self.vnet
        joined = (self.cls == rnd - 1) & ~self.halted
        joiners = np.flatnonzero(joined)
        # mex: first False column of each joiner's seen-colors row (a
        # width of Δ + 1 guarantees one, since a row holds ≤ deg Trues).
        self.final[joiners] = np.argmin(self.seen[joiners], axis=1)
        edges = np.flatnonzero(joined[vnet.owner])
        return edges, self.final[vnet.owner[edges]]

    def sweep_receive(self, rnd, slots, payloads):
        if slots.shape[0]:
            self.seen[self.vnet.owner[slots], payloads] = True

    def outputs_all(self):
        return [
            color if color >= 0 else None for color in self.final.tolist()
        ]


class RulingSweepKernel(ClassSweepKernel):
    """Batch form of the distributed (2,β)-ruling-set class sweep
    (``ruling-set:class-sweep``).

    Phase ``c`` spans engine rounds ``cβ + 1 .. (c+1)β``: unruled class-c
    nodes select themselves in the phase's first round and flood a
    ``("ruled", β)`` token; receivers become ruled and forward the token
    with a decremented hop budget, so the wave covers the β-ball before
    the next class decides.  ``data``: ``class_of``, ``num_classes``,
    ``beta``.
    """

    classes_key = "class_of"

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.beta = int(data["beta"])
        self.selected = np.zeros(vnet.n, dtype=bool)
        self.ruled = np.zeros(vnet.n, dtype=bool)
        self.pending = np.zeros(vnet.n, dtype=np.int64)
        # Per-round scatter buffer, preallocated once.
        self._hops = np.empty(vnet.n, dtype=np.int64)

    def round_budget(self):
        return self.data["num_classes"] * int(self.data["beta"])

    def sweep_send(self, rnd):
        vnet = self.vnet
        r0 = rnd - 1
        hops = self._hops
        np.copyto(hops, self.pending)
        senders = self.pending >= 1
        self.pending[:] = 0
        if r0 % self.beta == 0:
            deciders = (self.cls == r0 // self.beta) & ~self.ruled
            self.selected |= deciders
            self.ruled |= deciders
            hops[deciders] = self.beta
            senders = senders | deciders
        edges = np.flatnonzero(senders[vnet.owner])
        return edges, hops[vnet.owner[edges]]

    def sweep_receive(self, rnd, slots, payloads):
        if slots.shape[0]:
            receivers = self.vnet.owner[slots]
            self.ruled[receivers] = True
            np.maximum.at(self.pending, receivers, payloads - 1)

    def outputs_all(self):
        return self.selected.tolist()


class ArbdefectiveSweepKernel(ClassSweepKernel):
    """Batch form of the arbdefective bucket sweep
    (``arbdefective:class-sweep``).

    After ``offset`` idle rounds (the accounted cost of the base proper
    coloring), class rank ``r`` decides in round ``offset + r + 1``: it
    takes the least-loaded bucket (ties to the lowest, matching the
    centralized ``min`` key), marks its half-edges towards same-bucket
    finalized neighbors as outgoing, and announces ``("bucket", b)``.
    Receivers scatter the announcement into per-bucket load counters and
    the per-port bucket table.  ``data``: ``rank_of``, ``num_classes``,
    ``offset``, ``num_buckets``.
    """

    classes_key = "rank_of"

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.offset = int(data["offset"])
        self.num_buckets = int(data["num_buckets"])
        self.loads = np.zeros((vnet.n, self.num_buckets), dtype=np.int64)
        self.bucket = np.full(vnet.n, -1, dtype=np.int64)
        # slot_bucket[k]: announced bucket of the neighbor behind
        # half-edge k (0 = not yet announced; buckets are 1-based).
        self.slot_bucket = np.zeros(vnet.dest.shape[0], dtype=np.int64)
        self.out_edge = np.zeros(vnet.dest.shape[0], dtype=bool)

    def round_budget(self):
        return int(self.data["offset"]) + self.data["num_classes"]

    def sweep_send(self, rnd):
        vnet = self.vnet
        r0 = rnd - 1
        if r0 < self.offset:
            return np.empty(0, dtype=np.int64), None
        deciders = (self.cls == r0 - self.offset) & (self.bucket < 0)
        chosen_rows = np.flatnonzero(deciders)
        self.bucket[chosen_rows] = (
            np.argmin(self.loads[chosen_rows], axis=1) + 1
        )
        decider_edges = deciders[vnet.owner]
        self.out_edge |= decider_edges & (
            self.slot_bucket == self.bucket[vnet.owner]
        )
        edges = np.flatnonzero(decider_edges)
        return edges, self.bucket[vnet.owner[edges]]

    def sweep_receive(self, rnd, slots, payloads):
        if slots.shape[0]:
            receivers = self.vnet.owner[slots]
            np.add.at(self.loads, (receivers, payloads - 1), 1)
            self.slot_bucket[slots] = payloads

    def outputs_all(self):
        vnet = self.vnet
        out_ports: list[list[int]] = [[] for _ in range(vnet.n)]
        ks = np.flatnonzero(self.out_edge)
        owners = vnet.owner[ks]
        ports = ks - vnet.indptr[owners] + 1
        for node, port in zip(owners.tolist(), ports.tolist()):
            out_ports[node].append(port)  # half-edges are in port order
        return [
            {"bucket": bucket if bucket >= 0 else None, "out_ports": ports}
            for bucket, ports in zip(self.bucket.tolist(), out_ports)
        ]


class GlobalOrientationKernel(VectorizedAlgorithm):
    """Batch form of the 0-round sinkless orientation
    (``sinkless-orientation:global``).

    The orientation is global knowledge computed by the algorithm's
    ``program()``; every node halts at init with its outgoing ports, so
    the engine loop never runs — the kernel exercises the 0-round /
    empty-graph path of the contract.  ``data``: ``out_ports``
    (node → sorted port list).
    """

    def init_all(self):
        self.halted[:] = True

    def outputs_all(self):
        out_ports = self.data["out_ports"]
        return [out_ports[node] for node in self.vnet.nodes]


class LubyMISKernel(VectorizedAlgorithm):
    """Batch form of Luby's randomized MIS (``mis:luby``).

    A phase is two engine rounds: (0) every live node draws a fresh value
    and broadcasts it — a node strictly above *all* values it received
    (vacuously, above none) moves to "joining"; (1) joiners announce,
    halt in the MIS, and their still-active neighbors halt out.

    The one deliberately scalar piece is the draw itself: byte parity
    requires the exact Mersenne Twister stream each per-node
    ``random.Random`` would produce, so phase-0 draws loop over live
    nodes in dense order (one ``random()`` call per node per phase, like
    the object engine) while everything else stays whole-array.
    """

    def __init__(self, vnet, network, data, rng_for=None):
        super().__init__(vnet, network, data, rng_for=rng_for)
        self.rngs = [rng_for(node) for node in vnet.nodes]
        self.values = np.zeros(vnet.n, dtype=np.float64)
        self.joining = np.zeros(vnet.n, dtype=bool)
        self.result = np.zeros(vnet.n, dtype=bool)
        # Per-round scratch, preallocated once (see ProposalMatchingKernel).
        self._best = np.empty(vnet.n, dtype=np.float64)
        self._got_joined = np.empty(vnet.n, dtype=bool)

    def init_all(self):
        isolated = self.vnet.degrees == 0
        self.result[isolated] = True
        self.halted[isolated] = True

    def send_all(self, rnd):
        vnet = self.vnet
        if (rnd - 1) % 2 == 0:
            active = np.flatnonzero(~self.halted)
            rngs = self.rngs
            self.values[active] = [rngs[i].random() for i in active.tolist()]
            edges = np.flatnonzero(~self.halted[vnet.owner])
            return edges, self.values[vnet.owner[edges]]
        edges = np.flatnonzero(self.joining[vnet.owner])
        return edges, None

    def receive_all(self, rnd, slots, payloads):
        vnet = self.vnet
        receivers = vnet.owner[slots]
        if (rnd - 1) % 2 == 0:
            best = self._best
            best.fill(-np.inf)
            np.maximum.at(best, receivers, payloads)
            self.joining = ~self.halted & (self.values > best)
        else:
            got_joined = self._got_joined
            got_joined.fill(False)
            got_joined[receivers] = True
            join = self.joining & ~self.halted
            out = got_joined & ~self.halted & ~join
            self.result[join] = True
            self.halted[join | out] = True
            self.joining[:] = False

    def outputs_all(self):
        return self.result.tolist()


register_kernel("matching:proposal", ProposalMatchingKernel)
register_kernel("mis:class-sweep", ColorClassMISKernel)
register_kernel("mis:luby", LubyMISKernel)
register_kernel("coloring:class-sweep", ColoringSweepKernel)
register_kernel("ruling-set:class-sweep", RulingSweepKernel)
register_kernel("arbdefective:class-sweep", ArbdefectiveSweepKernel)
register_kernel("sinkless-orientation:global", GlobalOrientationKernel)
