"""Supported LOCAL instances and runners (paper §2).

An instance is a support graph G with IDs plus an input graph G′ ⊆ G.
Nodes know all of G (and all IDs) up front; they know which of their own
incident edges are in G′; T rounds of communication propagate those marks
T hops.  A T-round algorithm is therefore a function of the
:class:`~repro.local.views.SupportedView` of radius T.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass

import networkx as nx

from repro.local.network import Network
from repro.local.simulator import RunResult
from repro.local.views import SupportedView, collect_supported_view
from repro.utils import SimulationError


@dataclass(frozen=True)
class SupportedInstance:
    """A Supported LOCAL instance: (G with IDs, G′)."""

    network: Network
    input_edges: frozenset

    def __post_init__(self) -> None:
        for edge in self.input_edges:
            u, v = tuple(edge)
            if not self.network.graph.has_edge(u, v):
                raise SimulationError(
                    f"input edge {(u, v)} is not in the support graph"
                )

    @classmethod
    def from_graphs(
        cls, support: nx.Graph, input_graph: nx.Graph | Iterable
    ) -> "SupportedInstance":
        """Build from a support graph and an input subgraph (or edge list)."""
        edges = (
            input_graph.edges if isinstance(input_graph, nx.Graph) else input_graph
        )
        return cls(
            network=Network(graph=support),
            input_edges=frozenset(frozenset(edge) for edge in edges),
        )

    @property
    def support(self) -> nx.Graph:
        return self.network.graph

    def input_graph(self) -> nx.Graph:
        """The input graph G′ as a standalone networkx graph."""
        graph = nx.Graph()
        graph.add_nodes_from(self.support.nodes)
        graph.add_edges_from(tuple(edge) for edge in self.input_edges)
        return graph

    @property
    def input_degree(self) -> int:
        """Δ′: the maximum degree of the input graph."""
        graph = self.input_graph()
        return max((graph.degree(v) for v in graph.nodes), default=0)

    def view(self, node, radius: int) -> SupportedView:
        return collect_supported_view(
            self.network, self.input_edges, node, radius
        )


def run_supported_view_algorithm(
    instance: SupportedInstance,
    radius: int,
    rule: Callable[[SupportedView], object],
) -> RunResult:
    """Run a T-round Supported LOCAL algorithm (view formulation)."""
    outputs = {
        node: rule(instance.view(node, radius))
        for node in instance.support.nodes
    }
    return RunResult(outputs=outputs, rounds=radius)


def minimum_rounds(
    instance: SupportedInstance,
    rule_for_radius: Callable[[int], Callable[[SupportedView], object]],
    is_valid: Callable[[dict], bool],
    max_radius: int,
) -> int | None:
    """Smallest T for which the radius-T algorithm produces a valid output.

    Used by experiments to bracket lower bounds: the paper predicts the
    first valid T is at least the certified bound.
    """
    for radius in range(max_radius + 1):
        result = run_supported_view_algorithm(
            instance, radius, rule_for_radius(radius)
        )
        if is_valid(result.outputs):
            return radius
    return None
