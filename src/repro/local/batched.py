"""Batched synchronous engine: CSR-flattened message delivery.

:func:`repro.local.simulator.run_synchronous` routes every message through
nested dict lookups (``via_port``/``port_to``) and rebuilds a dict-of-dicts
inbox for *every* live node *every* round.  On large networks that dict
churn dominates the runtime.  This module runs the identical round
semantics over a flattened representation:

* the network is compiled once into CSR-style adjacency arrays
  (:class:`FlatNetwork`): half-edge ``k = indptr[i] + port - 1`` of node
  ``i`` stores its neighbor's dense index and, precomputed, the neighbor's
  back-port — so delivery is integer arithmetic plus one list index;
* inbox dicts are preallocated once per node and reused; only receivers
  actually touched in a round are visited, so sparse rounds cost O(live +
  messages), not O(n) dict allocations;
* liveness is a compact index list rebuilt only when nodes halt, instead
  of an all-nodes ``halted`` scan per round.

The observable behaviour — outputs, round counts, delivered/dropped
counters, :class:`SimulationError` protocol violations — is identical to
``run_synchronous`` by construction; ``tests/api/test_engine_parity.py``
enforces this for every registered algorithm.  One contract is tighter:
inbox dicts passed to :meth:`NodeAlgorithm.receive` are engine-owned and
reused across rounds, so algorithms must not retain them (copy if
needed); none of the library's algorithms do.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.local.network import Network
from repro.local.simulator import (
    NodeAlgorithm,
    NodeContext,
    RoundTrace,
    RunResult,
)
from repro.utils import SimulationError


@dataclass(frozen=True)
class FlatNetwork:
    """CSR adjacency arrays over dense node indices.

    ``indptr`` has length n+1; half-edge ``k = indptr[i] + port - 1``
    belongs to (node i, port).  ``dest[k]`` is the neighbor's dense index
    and ``back_port[k]`` the port under which node i appears at that
    neighbor — i.e. the inbox key a message along ``k`` is delivered to.
    """

    nodes: tuple
    indptr: tuple[int, ...]
    dest: tuple[int, ...]
    back_port: tuple[int, ...]

    @classmethod
    def from_network(cls, network: Network) -> "FlatNetwork":
        nodes = tuple(network.graph.nodes)
        index = {node: i for i, node in enumerate(nodes)}
        indptr = [0]
        dest: list[int] = []
        back_port: list[int] = []
        for node in nodes:
            degree = network.graph.degree(node)
            for port in range(1, degree + 1):
                neighbor = network.via_port(node, port)
                dest.append(index[neighbor])
                back_port.append(network.port_to(neighbor, node))
            indptr.append(len(dest))
        return cls(
            nodes=nodes,
            indptr=tuple(indptr),
            dest=tuple(dest),
            back_port=tuple(back_port),
        )

    @classmethod
    def of(cls, network: Network) -> "FlatNetwork":
        """The (memoized) compilation of ``network``.

        A :class:`Network` freezes IDs and ports at construction, so its
        flat form is compiled once and cached on the instance; repeated
        batched runs on the same network skip the O(m) compile.
        """
        cached = network.__dict__.get("_flat_network")
        if cached is None:
            cached = cls.from_network(network)
            network.__dict__["_flat_network"] = cached
        return cached


def run_batched(
    network: Network,
    factory: Callable[[NodeContext], NodeAlgorithm],
    max_rounds: int = 10_000,
    extra: Callable[[object], dict] | None = None,
    rng_for: Callable[[object], object] | None = None,
    on_round: Callable[[RoundTrace], None] | None = None,
) -> RunResult:
    """Drop-in replacement for :func:`run_synchronous` over flat arrays.

    Same signature, same halting semantics, same errors; see the module
    docstring for what makes it faster and the (engine-owned inbox)
    contract it tightens.
    """
    flat = FlatNetwork.of(network)
    nodes = flat.nodes
    n = len(nodes)
    indptr = flat.indptr
    dest = flat.dest
    back_port = flat.back_port

    algorithms: list[NodeAlgorithm] = []
    for node in nodes:
        degree = network.graph.degree(node)
        context = NodeContext(
            node=node,
            node_id=network.ids[node],
            degree=degree,
            n=n,
            max_degree=network.max_degree,
            ports=tuple(range(1, degree + 1)),
            random_bits=rng_for(node) if rng_for else None,
            extra=extra(node) if extra else {},
        )
        algorithms.append(factory(context))

    for algorithm in algorithms:
        algorithm.init()

    halted = bytearray(n)
    for i, algorithm in enumerate(algorithms):
        if algorithm.halted:
            halted[i] = 1
    live = [i for i in range(n) if not halted[i]]

    inboxes: list[dict[int, object]] = [{} for _ in range(n)]
    touched: list[int] = []

    rounds = 0
    while live:
        rounds += 1
        if rounds > max_rounds:
            raise SimulationError(
                f"algorithm did not halt within {max_rounds} rounds"
            )
        live_nodes = len(live)
        # Send phase: route every message straight into its receiver's
        # inbox slot (no outbox dict, no port translation lookups).
        # Delivery vs drop is decided *after* the phase, exactly like the
        # object engine: a receiver that halts during this send phase
        # still drops the messages addressed to it.
        for i in live:
            algorithm = algorithms[i]
            messages = algorithm.send() or {}
            if algorithm.halted:
                halted[i] = 1
                if messages:
                    raise SimulationError(
                        f"node {nodes[i]!r} halted during send() but still "
                        f"emitted messages on ports {sorted(messages, key=str)}"
                    )
                continue
            if not messages:
                continue
            base = indptr[i]
            degree = indptr[i + 1] - base
            for port, payload in messages.items():
                # Parity with the object engine's set-membership check:
                # any value equal to an integer in 1..deg is a valid port
                # (e.g. 1.0), anything else — fractional, non-numeric —
                # is stray.
                if type(port) is not int:
                    try:
                        port = int(port) if int(port) == port else None
                    except (TypeError, ValueError):
                        port = None
                if port is None or not 1 <= port <= degree:
                    stray = sorted(
                        set(messages) - set(range(1, degree + 1)), key=str
                    )
                    raise SimulationError(
                        f"node {nodes[i]!r} sent on invalid ports {stray}"
                    )
                k = base + port - 1
                j = dest[k]
                inbox = inboxes[j]
                if not inbox:
                    touched.append(j)
                inbox[back_port[k]] = payload
        delivered = dropped = 0
        for j in touched:
            if halted[j]:
                dropped += len(inboxes[j])
                inboxes[j].clear()
            else:
                delivered += len(inboxes[j])
        # Receive phase: every node still live after the send phase
        # processes its (possibly empty, engine-owned) inbox.
        any_halted = False
        for i in live:
            if halted[i]:
                any_halted = True
                continue
            algorithm = algorithms[i]
            algorithm.receive(inboxes[i])
            if algorithm.halted:
                halted[i] = 1
                any_halted = True
        for j in touched:
            inboxes[j].clear()
        touched.clear()
        if any_halted:
            live = [i for i in live if not halted[i]]
        if on_round is not None:
            on_round(
                RoundTrace(
                    round=rounds,
                    live_nodes=live_nodes,
                    messages_delivered=delivered,
                    messages_dropped=dropped,
                )
            )

    return RunResult(
        outputs={node: algorithm.output for node, algorithm in zip(nodes, algorithms)},
        rounds=rounds,
    )
