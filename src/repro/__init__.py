"""repro — reproduction of "Tight Lower Bounds in the Supported LOCAL Model".

Paper: Balliu, Boudier, Brandt, Olivetti (PODC 2024, arXiv:2405.00825).

The library implements, end to end, the machinery the paper builds:

* :mod:`repro.formalism` — the black-white formalism, strength diagrams and
  relaxations (paper §2);
* :mod:`repro.roundelim` — the round elimination operators R, R̄, RE
  (Appendix B);
* :mod:`repro.core` — the lift operator (Definition 3.1), the 0-round
  solvability equivalence (Theorem 3.2), the deterministic lower-bound
  framework (Theorems 3.4, B.2) and the derandomization theorems
  (Appendix C);
* :mod:`repro.problems` — the paper's problem families: x-maximal
  y-matchings Π_Δ(x,y) (§4), arbdefective colorings Π_Δ(c) (§5) and
  arbdefective colored ruling sets Π_Δ(c,β) (§6);
* :mod:`repro.graphs` — certified high-girth / low-independence graph
  substrates (Lemma 2.1), double covers and hypergraphs;
* :mod:`repro.local` — a round-by-round LOCAL / Supported LOCAL simulator;
* :mod:`repro.solvers` — exact solution-existence solvers used to decide
  lift solvability on concrete support graphs;
* :mod:`repro.algorithms` — distributed upper-bound algorithms bracketing
  the lower bounds;
* :mod:`repro.analysis` — executable versions of the paper's proof steps
  (Lemmas 4.7-4.9, 5.7-5.10, 6.6);
* :mod:`repro.checkers` — validity checkers for formalism solutions and for
  the concrete graph problems;
* :mod:`repro.api` — the unified façade: problem specs, name-registered
  algorithms, pluggable execution engines and the
  ``solve()``/``check()``/``simulate()`` entry points.
"""

from repro.formalism import Problem

__version__ = "1.0.0"

__all__ = ["Problem", "__version__"]
