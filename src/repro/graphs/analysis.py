"""Certified property bundles for support graphs.

The framework entry points (Theorem 3.4 pipelines) want a single object
carrying a support graph together with the certificates its hypotheses
consume: regularity, girth, independence / chromatic bounds, bipartition.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx

from repro.graphs.chromatic import (
    chromatic_lower_bound_from_independence,
    exact_chromatic_number,
)
from repro.graphs.girth import exact_girth
from repro.graphs.independence import exact_independence_number


@dataclass(frozen=True)
class SupportGraphReport:
    """Everything Theorem 3.4 / §5-§6 arguments ask of a support graph."""

    n: int
    is_regular: bool
    degree: int
    girth: float
    independence_number: int | None
    chromatic_number: int | None
    chromatic_lower_bound: int | None
    is_bipartite: bool

    def theorem_b2_round_budget(self) -> float:
        """(g−4)/2 — the girth term of Theorem B.2."""
        if math.isinf(self.girth):
            return math.inf
        return (self.girth - 4) / 2


def analyze_support_graph(
    graph: nx.Graph,
    exact_limits: tuple[int, int] = (64, 48),
) -> SupportGraphReport:
    """Compute the certified report (exact values only below the limits)."""
    independence_limit, chromatic_limit = exact_limits
    n = graph.number_of_nodes()
    degrees = {graph.degree(node) for node in graph.nodes}
    degree = max(degrees, default=0)

    independence = None
    chromatic = None
    chromatic_lb = None
    if n <= independence_limit:
        independence = exact_independence_number(graph, node_limit=independence_limit)
        chromatic_lb = chromatic_lower_bound_from_independence(
            graph, node_limit=independence_limit
        )
    if n <= chromatic_limit:
        chromatic = exact_chromatic_number(graph, node_limit=chromatic_limit)

    return SupportGraphReport(
        n=n,
        is_regular=len(degrees) <= 1,
        degree=degree,
        girth=exact_girth(graph),
        independence_number=independence,
        chromatic_number=chromatic,
        chromatic_lower_bound=chromatic_lb,
        is_bipartite=nx.is_bipartite(graph),
    )
