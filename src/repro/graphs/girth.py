"""Exact girth computation for graphs and hypergraphs.

The lower-bound framework (Theorem B.2) trades rounds against girth:
min{2k, (g−4)/2}.  Girth certificates must therefore be exact; this module
computes them by BFS from every node (O(n·m)), which is fine at
verification scale.

Hypergraph girth follows the paper's Appendix B convention: half the girth
of the incidence graph.
"""

from __future__ import annotations

import math

import networkx as nx


def exact_girth(graph: nx.Graph) -> float:
    """The length of a shortest cycle; ``math.inf`` for forests.

    BFS from each node; a cross or back edge at depths (d_u, d_v) closes a
    cycle of length d_u + d_v + 1 through the root, which is minimal over
    all roots on a shortest cycle.
    """
    best = math.inf
    for root in graph.nodes:
        depth = {root: 0}
        frontier = [root]
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in graph.neighbors(node):
                    if neighbor not in depth:
                        depth[neighbor] = depth[node] + 1
                        next_frontier.append(neighbor)
                    elif depth[neighbor] >= depth[node]:
                        # Cross edge (same layer) or sibling: cycle through
                        # the BFS tree of length ≤ depths + 1.
                        cycle_length = depth[node] + depth[neighbor] + 1
                        if cycle_length < best:
                            best = cycle_length
            # Early exit: deeper layers can only find longer cycles.
            if frontier and 2 * depth[frontier[0]] + 1 >= best:
                break
            frontier = next_frontier
    return best


def has_girth_at_least(graph: nx.Graph, bound: float) -> bool:
    """True when girth(G) ≥ bound (vacuously for forests)."""
    return exact_girth(graph) >= bound


def hypergraph_girth(incidence_graph: nx.Graph) -> float:
    """Girth of a hypergraph: half the girth of its incidence graph
    (Appendix B's convention)."""
    incidence_girth = exact_girth(incidence_graph)
    if math.isinf(incidence_girth):
        return math.inf
    return incidence_girth / 2


def theorem_b2_budget(girth: float) -> float:
    """The (g−4)/2 term of Theorem B.2's min{2k, (g−4)/2} bound."""
    if math.isinf(girth):
        return math.inf
    return (girth - 4) / 2
