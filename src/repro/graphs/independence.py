"""Independence numbers, exact and certified-upper-bounded.

Lemma 2.1 ([Alo10]) supplies Δ-regular graphs with independence number at
most α·n·log Δ/Δ.  The §5/§6 unsolvability arguments only *consume* an
upper bound on the independence number (equivalently a lower bound on the
chromatic number, χ ≥ n/α(G)), so certified exact values at verification
scale suffice.
"""

from __future__ import annotations

from collections.abc import Iterator

import networkx as nx


def exact_independence_number(graph: nx.Graph, node_limit: int = 64) -> int:
    """The size of a maximum independent set, by branch and bound.

    Guarded by ``node_limit`` — exact independence is NP-hard, but the
    certified substrates in this library stay small.
    """
    if graph.number_of_nodes() > node_limit:
        raise ValueError(
            f"exact independence capped at {node_limit} nodes; "
            f"got {graph.number_of_nodes()} (use greedy_independent_set)"
        )
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes}
    order = sorted(adjacency, key=lambda node: -len(adjacency[node]))

    best = 0

    def branch(candidates: set, size: int) -> None:
        nonlocal best
        if size + len(candidates) <= best:
            return
        if not candidates:
            best = max(best, size)
            return
        # Pick the highest-degree candidate: branch on including/excluding.
        node = max(candidates, key=lambda v: len(adjacency[v] & candidates))
        without = set(candidates)
        without.discard(node)
        branch(without - adjacency[node], size + 1)
        branch(without, size)

    branch(set(order), 0)
    return best


def greedy_independent_set(graph: nx.Graph) -> set:
    """A maximal independent set by min-degree greedy (a lower bound)."""
    remaining = {node: set(graph.neighbors(node)) for node in graph.nodes}
    chosen: set = set()
    while remaining:
        node = min(remaining, key=lambda v: len(remaining[v]))
        chosen.add(node)
        dropped = {node} | remaining[node]
        for gone in dropped:
            remaining.pop(gone, None)
        for neighbors in remaining.values():
            neighbors -= dropped
    return chosen


def is_independent_set(graph: nx.Graph, nodes: set) -> bool:
    """Validity check used by tests and checkers."""
    node_list = list(nodes)
    for index, node in enumerate(node_list):
        for other in node_list[index + 1 :]:
            if graph.has_edge(node, other):
                return False
    return True


def independence_upper_bound_certificate(
    graph: nx.Graph, bound: int, node_limit: int = 64
) -> bool:
    """Certify α(G) ≤ bound exactly (small graphs only)."""
    return exact_independence_number(graph, node_limit=node_limit) <= bound


def iter_independent_sets(graph: nx.Graph, size: int) -> Iterator[frozenset]:
    """All independent sets of exactly ``size`` nodes (tiny graphs only)."""
    from itertools import combinations

    for combo in combinations(sorted(graph.nodes, key=str), size):
        if is_independent_set(graph, set(combo)):
            yield frozenset(combo)
