"""Graph substrates: certified high-girth graphs, covers, hypergraphs."""

from repro.graphs.analysis import SupportGraphReport, analyze_support_graph
from repro.graphs.cages import (
    available_cages,
    cage,
    complete_bipartite,
    complete_graph,
    cycle,
)
from repro.graphs.chromatic import (
    chromatic_lower_bound_from_independence,
    exact_chromatic_number,
    greedy_coloring,
    max_clique_lower_bound,
)
from repro.graphs.double_cover import (
    bipartite_double_cover,
    black_nodes,
    mark_bipartition,
    white_nodes,
)
from repro.graphs.generators import (
    CertifiedGraph,
    biregular_tree,
    lemma21_graph,
    padded_support_graph,
    random_regular_with_girth,
)
from repro.graphs.girth import (
    exact_girth,
    has_girth_at_least,
    hypergraph_girth,
    theorem_b2_budget,
)
from repro.graphs.hypergraphs import (
    Hypergraph,
    linear_uniform_hypergraph,
    regular_uniform_hypergraph_from_graph,
)
from repro.graphs.independence import (
    exact_independence_number,
    greedy_independent_set,
    is_independent_set,
)

__all__ = [
    "CertifiedGraph",
    "Hypergraph",
    "SupportGraphReport",
    "analyze_support_graph",
    "available_cages",
    "bipartite_double_cover",
    "biregular_tree",
    "black_nodes",
    "cage",
    "chromatic_lower_bound_from_independence",
    "complete_bipartite",
    "complete_graph",
    "cycle",
    "exact_chromatic_number",
    "exact_girth",
    "exact_independence_number",
    "greedy_coloring",
    "greedy_independent_set",
    "has_girth_at_least",
    "hypergraph_girth",
    "is_independent_set",
    "lemma21_graph",
    "linear_uniform_hypergraph",
    "mark_bipartition",
    "max_clique_lower_bound",
    "padded_support_graph",
    "random_regular_with_girth",
    "regular_uniform_hypergraph_from_graph",
    "theorem_b2_budget",
    "white_nodes",
]
