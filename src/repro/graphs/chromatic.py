"""Chromatic numbers, exact and bounded.

§5's unsolvability argument runs: a lift solution would 2k-color the
support graph, but the support graph's chromatic number exceeds 2k —
contradiction.  Executing that argument on concrete graphs needs certified
chromatic lower bounds, provided here exactly (small n) via branch and
bound, plus the standard n/α(G) lower bound from independence.
"""

from __future__ import annotations

import math

import networkx as nx

from repro.graphs.independence import exact_independence_number


def exact_chromatic_number(graph: nx.Graph, node_limit: int = 48) -> int:
    """χ(G) by iterative-deepening backtracking (small graphs)."""
    if graph.number_of_nodes() > node_limit:
        raise ValueError(
            f"exact chromatic number capped at {node_limit} nodes; "
            f"got {graph.number_of_nodes()}"
        )
    if graph.number_of_nodes() == 0:
        return 0
    if graph.number_of_edges() == 0:
        return 1

    nodes = sorted(graph.nodes, key=lambda v: -graph.degree(v), reverse=False)
    nodes = sorted(graph.nodes, key=lambda v: -graph.degree(v))
    adjacency = {node: set(graph.neighbors(node)) for node in graph.nodes}

    def colorable(colors: int) -> bool:
        assignment: dict = {}

        def place(index: int) -> bool:
            if index == len(nodes):
                return True
            node = nodes[index]
            used = {assignment[n] for n in adjacency[node] if n in assignment}
            # Symmetry breaking: only try one fresh color.
            max_color = max(assignment.values(), default=-1)
            for color in range(min(max_color + 1, colors - 1) + 1):
                if color in used:
                    continue
                assignment[node] = color
                if place(index + 1):
                    return True
                del assignment[node]
            return False

        return place(0)

    lower = max_clique_lower_bound(graph)
    for colors in range(lower, graph.number_of_nodes() + 1):
        if colorable(colors):
            return colors
    raise AssertionError("n colors always suffice")  # pragma: no cover


def max_clique_lower_bound(graph: nx.Graph) -> int:
    """A greedy clique gives χ ≥ ω ≥ greedy value."""
    best = 1 if graph.number_of_nodes() else 0
    for node in graph.nodes:
        clique = {node}
        for neighbor in sorted(graph.neighbors(node), key=lambda v: -graph.degree(v)):
            if all(graph.has_edge(neighbor, member) for member in clique):
                clique.add(neighbor)
        best = max(best, len(clique))
    return best


def greedy_coloring(graph: nx.Graph) -> dict:
    """Greedy (Δ+1)-coloring by descending degree (an upper bound on χ)."""
    assignment: dict = {}
    for node in sorted(graph.nodes, key=lambda v: -graph.degree(v)):
        used = {
            assignment[n] for n in graph.neighbors(node) if n in assignment
        }
        color = 0
        while color in used:
            color += 1
        assignment[node] = color
    return assignment


def chromatic_lower_bound_from_independence(
    graph: nx.Graph, node_limit: int = 64
) -> int:
    """χ(G) ≥ ⌈n / α(G)⌉ — the bound §6.2 extracts from Lemma 2.1."""
    n = graph.number_of_nodes()
    if n == 0:
        return 0
    alpha = exact_independence_number(graph, node_limit=node_limit)
    return math.ceil(n / alpha)
