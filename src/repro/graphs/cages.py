"""Exact cage-style constructions with known girth.

Cages are the smallest Δ-regular graphs of a given girth; they are the
canonical concrete stand-ins for Lemma 2.1's probabilistic family when we
want exhaustive, certified checks.  Everything here is built from LCF
notation or networkx generators; girth and regularity are re-certified by
the tests rather than trusted.
"""

from __future__ import annotations

import networkx as nx

from repro.utils import GraphConstructionError

# (name, degree, girth) → constructor.
_LCF_GRAPHS = {
    # (3, 5)-cage: Petersen graph, 10 nodes.
    "petersen": (3, 5, lambda: nx.petersen_graph()),
    # (3, 6)-cage: Heawood graph, 14 nodes.
    "heawood": (3, 6, lambda: nx.LCF_graph(14, [5, -5], 7)),
    # (3, 7)-cage: McGee graph, 24 nodes.
    "mcgee": (3, 7, lambda: nx.LCF_graph(24, [12, 7, -7], 8)),
    # (3, 8)-cage: Tutte–Coxeter graph, 30 nodes.
    "tutte_coxeter": (3, 8, lambda: nx.LCF_graph(30, [-13, -9, 7, -7, 9, 13], 5)),
    # Girth-6 bipartite 3-regular alternative: Pappus graph, 18 nodes.
    "pappus": (3, 6, lambda: nx.LCF_graph(18, [5, 7, -7, 7, -7, -5], 3)),
    # Desargues graph: 3-regular, girth 6, bipartite, 20 nodes.
    "desargues": (3, 6, lambda: nx.LCF_graph(20, [5, -5, 9, -9], 5)),
    # Dodecahedral graph: 3-regular, girth 5, 20 nodes.
    "dodecahedron": (3, 5, lambda: nx.dodecahedral_graph()),
    # Möbius–Kantor graph: 3-regular, girth 6, bipartite, 16 nodes.
    "moebius_kantor": (3, 6, lambda: nx.LCF_graph(16, [5, -5], 8)),
}


def available_cages() -> list[str]:
    """Names of the certified constructions."""
    return sorted(_LCF_GRAPHS)


def cage(name: str) -> tuple[nx.Graph, int, int]:
    """Return (graph, degree, girth) for a named construction."""
    try:
        degree, girth, constructor = _LCF_GRAPHS[name]
    except KeyError:
        raise GraphConstructionError(
            f"unknown cage {name!r}; available: {available_cages()}"
        ) from None
    return constructor(), degree, girth


def cycle(n: int) -> nx.Graph:
    """C_n: the 2-regular graph of girth n — the simplest high-girth family."""
    if n < 3:
        raise GraphConstructionError(f"a cycle needs ≥ 3 nodes, got {n}")
    return nx.cycle_graph(n)


def complete_graph(n: int) -> nx.Graph:
    """K_n: girth 3, chromatic number n — the low-girth extreme, used as a
    negative control in girth-sensitive experiments."""
    return nx.complete_graph(n)


def complete_bipartite(a: int, b: int) -> nx.Graph:
    """K_{a,b}: girth 4, the minimal biregular bipartite family."""
    return nx.complete_bipartite_graph(a, b)
