"""Hypergraphs and incidence graphs (paper §2, Corollaries 3.3/3.5/B.3).

Non-bipartitely solving a problem on a hypergraph G means bipartitely
solving it on the incidence graph of G: nodes become white nodes,
hyperedges black nodes, with an incidence edge when the node belongs to
the hyperedge.  Ordinary graphs are rank-2 hypergraphs, which is how the
§5/§6 results (black arity 2) run on Δ-regular support graphs.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import networkx as nx

from repro.utils import GraphConstructionError


@dataclass(frozen=True)
class Hypergraph:
    """An immutable hypergraph: nodes plus a tuple of hyperedges."""

    nodes: tuple
    edges: tuple[frozenset, ...]

    def __post_init__(self) -> None:
        node_set = set(self.nodes)
        for edge in self.edges:
            if not edge:
                raise GraphConstructionError("hyperedges must be non-empty")
            stray = set(edge) - node_set
            if stray:
                raise GraphConstructionError(
                    f"hyperedge {sorted(edge, key=str)} uses unknown nodes {stray}"
                )

    @classmethod
    def from_edges(cls, edges: Iterable[Iterable]) -> "Hypergraph":
        """Build with the node set inferred from the edges."""
        frozen = tuple(frozenset(edge) for edge in edges)
        nodes = tuple(sorted({node for edge in frozen for node in edge}, key=str))
        return cls(nodes=nodes, edges=frozen)

    @classmethod
    def from_graph(cls, graph: nx.Graph) -> "Hypergraph":
        """View an ordinary graph as a rank-2 hypergraph."""
        return cls(
            nodes=tuple(sorted(graph.nodes, key=str)),
            edges=tuple(frozenset(edge) for edge in graph.edges),
        )

    @property
    def rank(self) -> int:
        """Maximum hyperedge size (the paper's r)."""
        return max((len(edge) for edge in self.edges), default=0)

    def degree(self, node) -> int:
        """Number of hyperedges containing ``node``."""
        return sum(1 for edge in self.edges if node in edge)

    @property
    def max_degree(self) -> int:
        """The paper's Δ."""
        return max((self.degree(node) for node in self.nodes), default=0)

    def is_regular(self, degree: int) -> bool:
        return all(self.degree(node) == degree for node in self.nodes)

    def is_uniform(self, rank: int) -> bool:
        return all(len(edge) == rank for edge in self.edges)

    def is_linear(self) -> bool:
        """Linear: every pair of hyperedges shares at most one node."""
        for index, first in enumerate(self.edges):
            for second in self.edges[index + 1 :]:
                if len(first & second) > 1:
                    return False
        return True

    def incidence_graph(self) -> nx.Graph:
        """The 2-colored incidence graph (white = nodes, black = edges).

        Hyperedge i becomes the black node ("edge", i); original nodes keep
        their identity and become white.
        """
        graph = nx.Graph()
        for node in self.nodes:
            graph.add_node(node, color="white")
        for index, edge in enumerate(self.edges):
            edge_node = ("edge", index)
            graph.add_node(edge_node, color="black")
            for node in edge:
                graph.add_edge(node, edge_node)
        return graph

    def girth(self) -> float:
        """Half the incidence graph girth (Appendix B's convention)."""
        from repro.graphs.girth import hypergraph_girth

        return hypergraph_girth(self.incidence_graph())


def regular_uniform_hypergraph_from_graph(graph: nx.Graph) -> Hypergraph:
    """The rank-2 hypergraph of a Δ-regular graph — the §5/§6 substrate."""
    return Hypergraph.from_graph(graph)


def linear_uniform_hypergraph(
    n: int, degree: int, rank: int, seed: int = 0, attempts: int = 300
) -> Hypergraph:
    """Search for a Δ-regular r-uniform *linear* hypergraph on n nodes.

    Used by Corollary 3.5-style experiments at small scale; raises when no
    certified instance is found within the budget.
    """
    import random

    if (n * degree) % rank != 0:
        raise GraphConstructionError(
            f"need r | n·Δ for a Δ-regular r-uniform hypergraph "
            f"(n={n}, Δ={degree}, r={rank})"
        )
    edge_count = n * degree // rank
    rng = random.Random(seed)
    nodes = list(range(n))
    for _attempt in range(attempts):
        stubs = [node for node in nodes for _ in range(degree)]
        rng.shuffle(stubs)
        edges = [
            frozenset(stubs[i * rank : (i + 1) * rank]) for i in range(edge_count)
        ]
        if any(len(edge) != rank for edge in edges):
            continue  # a repeated node collapsed a hyperedge
        candidate = Hypergraph(nodes=tuple(nodes), edges=tuple(edges))
        if candidate.is_linear():
            return candidate
    raise GraphConstructionError(
        f"no linear {degree}-regular {rank}-uniform hypergraph on {n} nodes "
        f"found in {attempts} attempts (seed {seed})"
    )
