"""Certified graph generators — the Lemma 2.1 substrate.

Lemma 2.1 ([Alo10]) asserts the *existence* of Δ-regular n-node graphs
with girth ≥ ε·log_Δ n and independence number ≤ α·n·log Δ/Δ.  The paper
never needs to construct them — existence feeds a non-constructive
counting argument.  To run the arguments on concrete instances we replace
the existence proof by randomized search with certification: sample random
regular graphs, certify girth exactly, and (for small n) certify the
independence number exactly.  The downstream lemmas consume only the
certified interface, so the substitution preserves their behaviour
(see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

import networkx as nx

from repro.graphs.girth import exact_girth
from repro.graphs.independence import exact_independence_number
from repro.utils import GraphConstructionError


@dataclass(frozen=True)
class CertifiedGraph:
    """A graph with machine-checked girth / independence certificates."""

    graph: nx.Graph
    degree: int
    girth: float
    independence_number: int | None

    @property
    def n(self) -> int:
        return self.graph.number_of_nodes()

    @property
    def independence_ratio(self) -> float | None:
        """α(G)/n, compared against Lemma 2.1's α·logΔ/Δ target."""
        if self.independence_number is None:
            return None
        return self.independence_number / self.n

    def lemma21_independence_target(self) -> float:
        """The α·n·logΔ/Δ bound of Lemma 2.1 with α = 1 (normalized)."""
        return self.n * math.log(self.degree) / self.degree


def random_regular_with_girth(
    n: int,
    degree: int,
    min_girth: int,
    seed: int = 0,
    attempts: int = 400,
    certify_independence: bool = True,
    independence_node_limit: int = 64,
) -> CertifiedGraph:
    """Sample random Δ-regular graphs until one meets the girth target.

    Raises :class:`GraphConstructionError` when the budget runs out —
    callers must lower the target or raise n, never silently accept an
    uncertified graph.
    """
    if n * degree % 2 != 0:
        raise GraphConstructionError(
            f"n·Δ must be even for a Δ-regular graph (n={n}, Δ={degree})"
        )
    if degree >= n:
        raise GraphConstructionError(f"need Δ < n (Δ={degree}, n={n})")
    rng = random.Random(seed)
    for _attempt in range(attempts):
        graph = nx.random_regular_graph(degree, n, seed=rng.randrange(2**31))
        if not nx.is_connected(graph):
            continue
        girth = exact_girth(graph)
        if girth >= min_girth:
            independence = None
            if certify_independence and n <= independence_node_limit:
                independence = exact_independence_number(
                    graph, node_limit=independence_node_limit
                )
            return CertifiedGraph(
                graph=graph,
                degree=degree,
                girth=girth,
                independence_number=independence,
            )
    raise GraphConstructionError(
        f"no connected {degree}-regular graph on {n} nodes with girth ≥ "
        f"{min_girth} found in {attempts} attempts (seed {seed})"
    )


def lemma21_graph(
    n: int, degree: int, seed: int = 0, epsilon: float = 0.5
) -> CertifiedGraph:
    """A concrete stand-in for Lemma 2.1's family.

    Targets girth ≥ max(5, ε·log_Δ n) (the asymptotic form, floored at 5
    so the certificate is non-trivial at small n).
    """
    if degree < 2:
        raise GraphConstructionError(f"Lemma 2.1 needs Δ ≥ 2, got {degree}")
    target = max(5, math.floor(epsilon * math.log(max(n, 2)) / math.log(max(degree, 2))))
    return random_regular_with_girth(n, degree, min_girth=target, seed=seed)


def biregular_tree(white_degree: int, black_degree: int, depth: int) -> nx.Graph:
    """A finite (Δ,r)-biregular tree fragment, 2-colored.

    Theorem 3.4 pads support graphs with such trees to hit an exact node
    count; interior nodes have full degree, leaves fewer.
    """
    graph = nx.Graph()
    root = 0
    graph.add_node(root, color="white")
    next_id = 1
    frontier = [(root, "white", 0)]
    while frontier:
        node, color, level = frontier.pop()
        if level >= depth:
            continue
        if color == "white":
            wanted, child_color = white_degree, "black"
        else:
            wanted, child_color = black_degree, "white"
        existing = graph.degree(node)
        for _ in range(wanted - existing):
            child = next_id
            next_id += 1
            graph.add_node(child, color=child_color)
            graph.add_edge(node, child)
            frontier.append((child, child_color, level + 1))
    return graph


def padded_support_graph(core: nx.Graph, total_nodes: int) -> nx.Graph:
    """Theorem 3.4's padding: core ⊔ a tree filler with ``total_nodes`` nodes.

    The filler is a path (degrees ≤ 2 ≤ Δ, r), disjoint from the core; the
    lower bound only needs the core component's properties.
    """
    n_core = core.number_of_nodes()
    if total_nodes < n_core:
        raise GraphConstructionError(
            f"cannot pad a {n_core}-node core down to {total_nodes} nodes"
        )
    graph = nx.Graph(core)
    filler = total_nodes - n_core
    previous = None
    for index in range(filler):
        node = ("pad", index)
        color = "white" if index % 2 == 0 else "black"
        graph.add_node(node, color=color)
        if previous is not None:
            graph.add_edge(previous, node)
        previous = node
    return graph
