"""Bipartite double covers (§4.2's construction).

The matching lower bound takes a Δ-regular high-girth graph from
Lemma 2.1's family and passes to its bipartite double cover to obtain a
(Δ,Δ)-biregular 2-colored support graph.  The double cover of G has nodes
(v, side) for side ∈ {0, 1} and edges {(u,0),(v,1)} for every edge
{u,v} ∈ G; it is bipartite, preserves regularity, and its girth is at
least that of G (odd cycles unroll to twice their length).
"""

from __future__ import annotations

import networkx as nx

WHITE = 0
BLACK = 1


def bipartite_double_cover(graph: nx.Graph) -> nx.Graph:
    """The tensor product G × K₂ with 2-coloring attributes.

    Node (v, 0) is white, (v, 1) is black; edges connect opposite sides
    only.  The ``color`` node attribute carries "white" / "black" so the
    result plugs directly into the bipartite solvers and the simulator.
    """
    cover = nx.Graph()
    for node in graph.nodes:
        cover.add_node((node, WHITE), color="white")
        cover.add_node((node, BLACK), color="black")
    for u, v in graph.edges:
        cover.add_edge((u, WHITE), (v, BLACK))
        cover.add_edge((v, WHITE), (u, BLACK))
    return cover


def mark_bipartition(graph: nx.Graph) -> nx.Graph:
    """Add white/black ``color`` attributes to a bipartite graph in place.

    Uses the canonical 2-coloring of each connected component; raises if
    the graph is not bipartite.
    """
    coloring = nx.algorithms.bipartite.color(graph)
    for node, side in coloring.items():
        graph.nodes[node]["color"] = "white" if side == 0 else "black"
    return graph


def white_nodes(graph: nx.Graph) -> list:
    """Nodes carrying color="white" (sorted for determinism)."""
    return sorted(
        (node for node, data in graph.nodes(data=True) if data.get("color") == "white"),
        key=str,
    )


def black_nodes(graph: nx.Graph) -> list:
    """Nodes carrying color="black" (sorted for determinism)."""
    return sorted(
        (node for node, data in graph.nodes(data=True) if data.get("color") == "black"),
        key=str,
    )
