"""One budget abstraction for every solver backend.

The CSP backend counts *placed edges* and the SAT backend counts
*propagations* — different units, but the same contract: work is metered
by an explicit counter, and crossing the limit raises
:class:`~repro.utils.SolverLimitError` instead of returning a truncated
answer, so unsolvability claims never rest on incomplete searches.

:class:`SolverBudget` makes that contract uniform and the thresholds
deterministic: every unit of work flows through :meth:`spend`, the spend
sequence depends only on the instance (never on hash seeds or wall
clock), and the exhaustion error names the unit and the exact counter
value.  Backends accept either a plain int (a fresh budget per solver
call, the historical behavior) or a shared ``SolverBudget`` instance
(caller-owned accounting across several calls).
"""

from __future__ import annotations

from repro.utils import InvalidParameterError, SolverLimitError


class SolverBudget:
    """A deterministic work meter with a hard limit.

    ``unit`` names what one tick measures (``"edge placements"`` for the
    CSP backend, ``"propagations"`` for the SAT backend); it appears in
    the exhaustion error so budget-parity tests can assert on it.
    """

    __slots__ = ("limit", "unit", "spent")

    def __init__(self, limit: int, unit: str = "steps") -> None:
        if not isinstance(limit, int) or isinstance(limit, bool) or limit < 1:
            raise InvalidParameterError(
                f"solver budget limit must be a positive int, got {limit!r}"
            )
        self.limit = limit
        self.unit = unit
        self.spent = 0

    @classmethod
    def coerce(cls, budget: "int | SolverBudget", unit: str) -> "SolverBudget":
        """Wrap a plain int limit; pass a ready budget through unchanged."""
        if isinstance(budget, SolverBudget):
            return budget
        return cls(budget, unit=unit)

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.spent)

    @property
    def exhausted(self) -> bool:
        return self.spent >= self.limit

    def spend(self, amount: int = 1) -> None:
        """Meter ``amount`` units of work; raise once past the limit."""
        self.spent += amount
        if self.spent > self.limit:
            raise SolverLimitError(
                f"solver exceeded its {self.unit} budget: "
                f"{self.spent} > {self.limit}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return (
            f"SolverBudget(limit={self.limit}, unit={self.unit!r}, "
            f"spent={self.spent})"
        )
