"""Exact solution-existence solvers for problems on concrete graphs."""

from repro.solvers.backends import (
    BACKENDS,
    DEFAULT_BACKEND,
    make_solver,
    resolve_backend,
)
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import (
    CSP_BUDGET_UNIT,
    DEFAULT_NODE_BUDGET,
    EdgeLabelingCSP,
    check_edge_labeling,
)
from repro.solvers.enumeration import (
    brute_force_solutions,
    brute_force_solvable,
    canonical_labeling,
    solution_set,
)
from repro.solvers.existence import (
    bipartite_solvable,
    lift_solvable_bipartite,
    lift_solvable_non_bipartite,
    non_bipartite_solvable,
    solve_bipartite,
    solve_non_bipartite,
    solve_s_solution,
)
from repro.solvers.sat import SatLabelingSolver

__all__ = [
    "BACKENDS",
    "CSP_BUDGET_UNIT",
    "DEFAULT_BACKEND",
    "DEFAULT_NODE_BUDGET",
    "EdgeLabelingCSP",
    "SatLabelingSolver",
    "SolverBudget",
    "bipartite_solvable",
    "brute_force_solutions",
    "brute_force_solvable",
    "canonical_labeling",
    "check_edge_labeling",
    "lift_solvable_bipartite",
    "lift_solvable_non_bipartite",
    "make_solver",
    "non_bipartite_solvable",
    "resolve_backend",
    "solution_set",
    "solve_bipartite",
    "solve_non_bipartite",
    "solve_s_solution",
]
