"""Exact solution-existence solvers for problems on concrete graphs."""

from repro.solvers.csp import (
    DEFAULT_NODE_BUDGET,
    EdgeLabelingCSP,
    check_edge_labeling,
)
from repro.solvers.enumeration import brute_force_solutions, brute_force_solvable
from repro.solvers.existence import (
    bipartite_solvable,
    lift_solvable_bipartite,
    lift_solvable_non_bipartite,
    non_bipartite_solvable,
    solve_bipartite,
    solve_non_bipartite,
    solve_s_solution,
)

__all__ = [
    "DEFAULT_NODE_BUDGET",
    "EdgeLabelingCSP",
    "bipartite_solvable",
    "brute_force_solutions",
    "brute_force_solvable",
    "check_edge_labeling",
    "lift_solvable_bipartite",
    "lift_solvable_non_bipartite",
    "non_bipartite_solvable",
    "solve_bipartite",
    "solve_non_bipartite",
    "solve_s_solution",
]
