"""Exact edge-labeling CSP on 2-colored graphs.

Deciding whether lift_{Δ,r}(Π′) has a bipartite solution on a concrete
support graph G is the graph-theoretic question that the paper's framework
(Theorem 3.4) reduces lower bounds to.  This solver answers it *exactly*:
a ``None`` result is a certificate of non-existence (the search is
complete), and exceeding the budget raises instead of returning, so
unsolvability claims never rest on truncated searches.

The formalism's semantics are honored: a white (black) node is constrained
only when its degree equals the white (black) arity (paper §2: nodes of
other degrees "do not need to satisfy any constraint"); S-solutions
(Definition 5.6) are expressed through the ``white_active`` /
``black_active`` predicates.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterator

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.solvers.budget import SolverBudget
from repro.utils import SolverError

Edge = tuple
NodePredicate = Callable[[object], bool]

DEFAULT_NODE_BUDGET = 5_000_000

#: The unit the CSP backend meters: one tick per edge-label placement.
CSP_BUDGET_UNIT = "edge placements"


class EdgeLabelingCSP:
    """Backtracking with per-node partial-extension propagation."""

    def __init__(
        self,
        graph: nx.Graph,
        problem: Problem,
        white_active: NodePredicate | None = None,
        black_active: NodePredicate | None = None,
        budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    ) -> None:
        self.graph = graph
        self.problem = problem
        # An int is a per-search limit (each solve/count starts fresh); a
        # SolverBudget instance is caller-owned and shared across calls.
        self.budget = budget
        self._colors = self._read_colors()
        self._white_active = white_active or self._default_active("white")
        self._black_active = black_active or self._default_active("black")
        self._edges = self._edge_order()
        self._alphabet = sorted(problem.alphabet)

    def _read_colors(self) -> dict:
        colors = {}
        for node, data in self.graph.nodes(data=True):
            color = data.get("color")
            if color not in ("white", "black"):
                raise SolverError(
                    f"node {node!r} lacks a white/black 'color' attribute"
                )
            colors[node] = color
        for u, v in self.graph.edges:
            if colors[u] == colors[v]:
                raise SolverError(
                    f"edge {(u, v)} joins two {colors[u]} nodes; the graph "
                    f"must be properly 2-colored"
                )
        return colors

    def _default_active(self, color: str) -> NodePredicate:
        arity = (
            self.problem.white_arity if color == "white" else self.problem.black_arity
        )

        def active(node) -> bool:
            return (
                self._colors[node] == color and self.graph.degree(node) == arity
            )

        return active

    def _arity(self, node) -> int:
        if self._colors[node] == "white":
            return self.problem.white_arity
        return self.problem.black_arity

    def _constraint(self, node):
        if self._colors[node] == "white":
            return self.problem.white
        return self.problem.black

    def _is_active(self, node) -> bool:
        if self._colors[node] == "white":
            return self._white_active(node)
        return self._black_active(node)

    def _edge_order(self) -> list[Edge]:
        """BFS edge order: keeps consecutive edges sharing nodes, which
        makes the partial-extension pruning bite early."""
        ordered: list[Edge] = []
        seen_edges: set[frozenset] = set()
        for component in nx.connected_components(self.graph):
            start = min(component, key=str)
            for u, v in nx.bfs_edges(self.graph, start):
                key = frozenset((u, v))
                if key not in seen_edges:
                    seen_edges.add(key)
                    ordered.append((u, v))
            # Non-tree edges of the component.
            for u, v in self.graph.subgraph(component).edges:
                key = frozenset((u, v))
                if key not in seen_edges:
                    seen_edges.add(key)
                    ordered.append((u, v))
        return ordered

    def iter_solutions(self) -> Iterator[dict[frozenset, Label]]:
        """Yield every solution (for tiny instances / cross-checks)."""
        yield from self._search(find_all=True)

    def solve(self) -> dict[frozenset, Label] | None:
        """Return one solution, or None — a completeness certificate."""
        for solution in self._search(find_all=False):
            return solution
        return None

    def count_solutions(self) -> int:
        """Number of solutions (tiny instances only)."""
        return sum(1 for _ in self._search(find_all=True))

    def _search(self, find_all: bool) -> Iterator[dict[frozenset, Label]]:
        partials: dict = {
            node: Counter() for node in self.graph.nodes
        }
        assigned_counts: dict = {node: 0 for node in self.graph.nodes}
        assignment: dict[frozenset, Label] = {}
        if isinstance(self.budget, SolverBudget):
            budget = self.budget
        else:
            budget = SolverBudget(self.budget, unit=CSP_BUDGET_UNIT)

        def node_ok_partial(node) -> bool:
            if not self._is_active(node):
                return True
            return self._constraint(node).allows_partial(
                partials[node], assigned_counts[node]
            )

        def node_ok_final(node) -> bool:
            if not self._is_active(node):
                return True
            if assigned_counts[node] != self.graph.degree(node):
                return True  # not yet fully labeled around this node
            return self._constraint(node).allows_multiset(partials[node].elements())

        def candidates(u, v) -> list[Label]:
            options: set[Label] | None = None
            for node in (u, v):
                if not self._is_active(node):
                    continue
                allowed = self._constraint(node).completions(partials[node])
                options = allowed if options is None else options & allowed
            if options is None:
                return list(self._alphabet)
            return sorted(options)

        def place(index: int) -> Iterator[dict[frozenset, Label]]:
            if index == len(self._edges):
                yield dict(assignment)
                return
            u, v = self._edges[index]
            for label in candidates(u, v):
                budget.spend()
                assignment[frozenset((u, v))] = label
                for node in (u, v):
                    partials[node][label] += 1
                    assigned_counts[node] += 1
                if (
                    node_ok_partial(u)
                    and node_ok_partial(v)
                    and node_ok_final(u)
                    and node_ok_final(v)
                ):
                    yield from place(index + 1)
                for node in (u, v):
                    partials[node][label] -= 1
                    if partials[node][label] == 0:
                        del partials[node][label]
                    assigned_counts[node] -= 1
                del assignment[frozenset((u, v))]

        yield from place(0)


def check_edge_labeling(
    graph: nx.Graph,
    problem: Problem,
    labeling: dict[frozenset, Label],
    white_active: NodePredicate | None = None,
    black_active: NodePredicate | None = None,
) -> bool:
    """Validate a full edge labeling against the formalism semantics."""
    solver = EdgeLabelingCSP(
        graph, problem, white_active=white_active, black_active=black_active
    )
    for u, v in graph.edges:
        if frozenset((u, v)) not in labeling:
            return False
    for node in graph.nodes:
        if not solver._is_active(node):
            continue
        labels = [
            labeling[frozenset((node, neighbor))]
            for neighbor in graph.neighbors(node)
        ]
        if not solver._constraint(node).allows_multiset(labels):
            return False
    return True
