"""The solver-backend registry: one name per decision procedure.

Both backends implement the same edge-labeling surface (``solve`` /
``iter_solutions`` / ``count_solutions``) over the same formalism
semantics, and are observationally equivalent by contract — the ``sat``
differential oracle fuzzes that contract, and the protocol layer
excludes the backend from request digests for the same reason engines
are excluded.

* ``csp`` — complete backtracking with partial-extension pruning
  (:class:`~repro.solvers.csp.EdgeLabelingCSP`); budget counts edge
  placements.
* ``sat`` — CNF compilation + CDCL with lex-leader symmetry breaking
  (:class:`~repro.solvers.sat.labeling.SatLabelingSolver`); budget
  counts propagations.
"""

from __future__ import annotations

from collections.abc import Callable

import networkx as nx

from repro.formalism.problems import Problem
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import DEFAULT_NODE_BUDGET, EdgeLabelingCSP, NodePredicate
from repro.utils import InvalidParameterError

DEFAULT_BACKEND = "csp"


def _make_csp(graph, problem, white_active, black_active, budget):
    return EdgeLabelingCSP(
        graph,
        problem,
        white_active=white_active,
        black_active=black_active,
        budget=budget,
    )


def _make_sat(graph, problem, white_active, black_active, budget):
    from repro.solvers.sat.labeling import SatLabelingSolver

    return SatLabelingSolver(
        graph,
        problem,
        white_active=white_active,
        black_active=black_active,
        budget=budget,
    )


#: name -> (factory, one-line description, budget unit).
BACKENDS: dict[str, tuple[Callable, str, str]] = {
    "csp": (
        _make_csp,
        "complete backtracking with partial-extension pruning",
        "edge placements",
    ),
    "sat": (
        _make_sat,
        "CNF + CDCL with lex-leader symmetry breaking",
        "propagations",
    ),
}


def resolve_backend(backend: str | None) -> str:
    """Validate a backend name (None means the default)."""
    if backend is None:
        return DEFAULT_BACKEND
    if backend not in BACKENDS:
        raise InvalidParameterError(
            f"unknown solver backend {backend!r}; known: {sorted(BACKENDS)}"
        )
    return backend


def make_solver(
    graph: nx.Graph,
    problem: Problem,
    *,
    backend: str | None = None,
    white_active: NodePredicate | None = None,
    black_active: NodePredicate | None = None,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
):
    """Instantiate the named backend's labeling solver."""
    factory, _description, _unit = BACKENDS[resolve_backend(backend)]
    return factory(graph, problem, white_active, black_active, budget)
