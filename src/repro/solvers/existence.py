"""Solution-existence entry points.

These wrap the CSP solver with the paper's vocabulary:

* *bipartite* solvability of Π on a 2-colored graph (paper §2),
* *non-bipartite* solvability on a (hyper)graph — bipartite solvability on
  the incidence graph,
* *S-solutions* (Definition 5.6) — constraints active only inside S,
* lift solvability on a support graph — the question Theorems 3.2/3.4
  reduce lower bounds to.
"""

from __future__ import annotations

import networkx as nx

from repro.core.lift import LiftedProblem, lift
from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.graphs.hypergraphs import Hypergraph
from repro.solvers.backends import make_solver
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import DEFAULT_NODE_BUDGET


def solve_bipartite(
    graph: nx.Graph,
    problem: Problem,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> dict[frozenset, Label] | None:
    """A bipartite solution of Π on a 2-colored graph, or None (complete)."""
    return make_solver(graph, problem, backend=backend, budget=budget).solve()


def bipartite_solvable(
    graph: nx.Graph,
    problem: Problem,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> bool:
    """Does Π admit a bipartite solution on the 2-colored graph?"""
    return solve_bipartite(graph, problem, budget=budget, backend=backend) is not None


def solve_non_bipartite(
    hypergraph: Hypergraph | nx.Graph,
    problem: Problem,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> dict[frozenset, Label] | None:
    """A non-bipartite solution: solve Π on the incidence graph (paper §2).

    Accepts either a :class:`Hypergraph` or an ordinary graph (treated as a
    rank-2 hypergraph).  Keys of the result are incidence-graph edges, i.e.
    (node, ("edge", i)) pairs.
    """
    if isinstance(hypergraph, nx.Graph):
        hypergraph = Hypergraph.from_graph(hypergraph)
    incidence = hypergraph.incidence_graph()
    return solve_bipartite(incidence, problem, budget=budget, backend=backend)


def non_bipartite_solvable(
    hypergraph: Hypergraph | nx.Graph,
    problem: Problem,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> bool:
    """Does Π admit a non-bipartite solution on the hypergraph?"""
    return (
        solve_non_bipartite(hypergraph, problem, budget=budget, backend=backend)
        is not None
    )


def solve_s_solution(
    graph: nx.Graph,
    problem: Problem,
    s_nodes: set,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> dict[frozenset, Label] | None:
    """An S-solution of Π on a plain graph (Definition 5.6).

    Node constraints apply to nodes of S; edge constraints to edges with
    both endpoints in S.  Executed on the incidence graph, where graph
    nodes are white and graph edges are black.
    """
    hypergraph = Hypergraph.from_graph(graph)
    incidence = hypergraph.incidence_graph()
    edge_members = {("edge", i): edge for i, edge in enumerate(hypergraph.edges)}

    def white_active(node) -> bool:
        return node in s_nodes and incidence.degree(node) == problem.white_arity

    def black_active(node) -> bool:
        return edge_members[node] <= s_nodes

    return make_solver(
        incidence,
        problem,
        backend=backend,
        white_active=white_active,
        black_active=black_active,
        budget=budget,
    ).solve()


def lift_solvable_bipartite(
    graph: nx.Graph,
    base_problem: Problem,
    delta: int,
    rank: int,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> tuple[bool, dict[frozenset, Label] | None, LiftedProblem]:
    """Decide whether lift_{Δ,r}(Π) has a bipartite solution on the graph.

    Returns (solvable, solution-or-None, the lifted problem).  This is the
    exact decision Theorem 3.4's hypothesis asks for.
    """
    lifted = lift(base_problem, delta, rank)
    explicit = lifted.to_problem()
    solution = solve_bipartite(graph, explicit, budget=budget, backend=backend)
    return solution is not None, solution, lifted


def lift_solvable_non_bipartite(
    hypergraph: Hypergraph | nx.Graph,
    base_problem: Problem,
    delta: int,
    rank: int,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
    *,
    backend: str | None = None,
) -> tuple[bool, dict[frozenset, Label] | None, LiftedProblem]:
    """Decide lift solvability on a hypergraph (Corollary 3.3 / 3.5)."""
    if isinstance(hypergraph, nx.Graph):
        hypergraph = Hypergraph.from_graph(hypergraph)
    lifted = lift(base_problem, delta, rank)
    explicit = lifted.to_problem()
    incidence = hypergraph.incidence_graph()
    solution = solve_bipartite(incidence, explicit, budget=budget, backend=backend)
    return solution is not None, solution, lifted
