"""Clause database with variable interning and byte-deterministic DIMACS.

Variables are interned under hashable *keys* (the encoder uses
``("x", edge, label)`` tuples), numbered 1..n in first-intern order —
the encoder visits edges and labels in a deterministic order, so the
numbering is reproducible.  Clauses are stored in insertion order (the
order CDCL sees them) but rendered in a canonical order for export and
digesting, so two semantically identical encodings produced by different
emission orders serialize to identical bytes.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
import hashlib

from repro.utils import InvalidParameterError

Literal = int
Clause = tuple[Literal, ...]

DIMACS_SCHEMA = "repro.sat/dimacs-v1"


def _canonical_clause(literals: Iterable[Literal]) -> Clause | None:
    """Sorted, deduplicated clause — or ``None`` for a tautology.

    Literals sort by variable then polarity (positive first), so the
    rendered form of a clause never depends on emission order.
    """
    seen: set[Literal] = set()
    for lit in literals:
        if not isinstance(lit, int) or isinstance(lit, bool) or lit == 0:
            raise InvalidParameterError(
                f"a CNF literal must be a nonzero int, got {lit!r}"
            )
        if -lit in seen:
            return None
        seen.add(lit)
    return tuple(sorted(seen, key=lambda lit: (abs(lit), lit < 0)))


class CnfFormula:
    """A growable CNF: interned variables + deduplicated clauses."""

    def __init__(self) -> None:
        self._var_ids: dict[object, int] = {}
        self._var_keys: list[object] = []
        self.clauses: list[Clause] = []
        self._clause_set: set[Clause] = set()
        self.has_empty_clause = False

    @property
    def num_vars(self) -> int:
        return len(self._var_keys)

    @property
    def num_clauses(self) -> int:
        return len(self.clauses)

    def var(self, key: object) -> int:
        """Intern ``key`` and return its 1-based DIMACS variable number."""
        var_id = self._var_ids.get(key)
        if var_id is None:
            var_id = len(self._var_keys) + 1
            self._var_ids[key] = var_id
            self._var_keys.append(key)
        return var_id

    def key_of(self, var_id: int) -> object:
        return self._var_keys[var_id - 1]

    def has_var(self, key: object) -> bool:
        return key in self._var_ids

    def add_clause(self, literals: Iterable[Literal]) -> bool:
        """Add a clause; returns True if it changed the formula.

        Tautologies and exact duplicates are dropped.  An empty clause is
        recorded (the formula is trivially UNSAT) rather than raising, so
        encoders can emit degree-mismatch contradictions uniformly.
        """
        clause = _canonical_clause(literals)
        if clause is None or clause in self._clause_set:
            return False
        for lit in clause:
            if abs(lit) > self.num_vars:
                raise InvalidParameterError(
                    f"literal {lit} references variable {abs(lit)} but only "
                    f"{self.num_vars} variables are interned"
                )
        if not clause:
            self.has_empty_clause = True
        self.clauses.append(clause)
        self._clause_set.add(clause)
        return True

    def canonical_clauses(self) -> list[Clause]:
        """Clauses sorted by (length, literal tuple) — the export order."""
        return sorted(self.clauses, key=lambda clause: (len(clause), clause))

    def to_dimacs(self, *, comments: Sequence[str] = ()) -> str:
        """Render the formula in canonical DIMACS CNF.

        Variable-key comments come first (``c var <id> <key>``), so the
        file alone documents what each variable means.
        """
        lines = [f"c {DIMACS_SCHEMA}"]
        for comment in comments:
            lines.append(f"c {comment}")
        for index, key in enumerate(self._var_keys, start=1):
            lines.append(f"c var {index} {key!r}")
        lines.append(f"p cnf {self.num_vars} {self.num_clauses}")
        for clause in self.canonical_clauses():
            lines.append(" ".join(str(lit) for lit in clause) + " 0")
        return "\n".join(lines) + "\n"

    def digest(self) -> str:
        """Content digest of the canonical clause matrix (comments excluded)."""
        hasher = hashlib.sha256()
        hasher.update(f"p cnf {self.num_vars} {self.num_clauses}\n".encode())
        for clause in self.canonical_clauses():
            hasher.update(" ".join(str(lit) for lit in clause).encode())
            hasher.update(b"\n")
        return hasher.hexdigest()

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"CnfFormula(vars={self.num_vars}, clauses={self.num_clauses})"


def parse_dimacs(text: str) -> CnfFormula:
    """Parse DIMACS CNF text into a :class:`CnfFormula`.

    Variable keys become plain ints 1..n (the original keys live only in
    comments); the header's variable count is honored even when some
    variables never occur in a clause.
    """
    formula = CnfFormula()
    declared: tuple[int, int] | None = None
    pending: list[int] = []
    for raw in text.splitlines():
        line = raw.strip()
        if not line or line.startswith("c"):
            continue
        if line.startswith("p"):
            parts = line.split()
            if len(parts) != 4 or parts[1] != "cnf":
                raise InvalidParameterError(f"bad DIMACS header: {raw!r}")
            declared = (int(parts[2]), int(parts[3]))
            for index in range(1, declared[0] + 1):
                formula.var(index)
            continue
        if declared is None:
            raise InvalidParameterError("DIMACS clauses before the p-header")
        for token in line.split():
            value = int(token)
            if value == 0:
                formula.add_clause(pending)
                pending = []
            else:
                if abs(value) > declared[0]:
                    raise InvalidParameterError(
                        f"literal {value} exceeds declared variable count "
                        f"{declared[0]}"
                    )
                pending.append(value)
    if pending:
        raise InvalidParameterError("DIMACS text ends mid-clause (missing 0)")
    if declared is None:
        raise InvalidParameterError("DIMACS text has no p-header")
    return formula
