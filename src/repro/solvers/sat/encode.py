"""Compile an :class:`EdgeLabelingCSP` instance to CNF.

The propositional view of an edge labeling:

* **Variables.**  One-hot edge-label selectors ``("x", i, j)`` — edge
  ``i`` (in the CSP's BFS edge order) carries alphabet label ``j`` (in
  sorted-label order, matching :class:`~repro.formalism.encoding.LabelEncoding`
  bit indices).  Exactly-one clauses pin each edge to a single label.
* **Node constraints.**  For every *active* node (the CSP's
  ``white_active`` / ``black_active`` predicates, which is how
  S-solutions and lifted problems arrive here), a DFS over its incident
  edges' label choices walks the
  :class:`~repro.formalism.encoding.ConstraintTable` partial-extension
  table and emits one blocking clause per maximal failing prefix — the
  CNF mirror of the CSP's ``allows_partial`` pruning.  Complete because
  any assignment violating the node constraint hits a first failing
  prefix; an active node whose degree differs from its arity yields the
  empty clause (no configuration of the wrong size is ever allowed),
  matching the CSP's semantics exactly.
* **Symmetry breaking.**  For each non-identity label automorphism π
  (from :func:`~repro.formalism.normalize.label_automorphisms` —
  automorphisms map solutions to solutions because they preserve both
  constraints and never touch the activity predicates), lex-leader
  clauses force the edge-label vector to be lexicographically minimal
  within its π-chain, using a prefix-equality auxiliary chain
  ``("p", k, i)``.  Any subset of group elements is sound for existence
  (the lex-minimal member of each orbit survives every π's constraint);
  enumeration re-expands survivors along the full group (see
  :mod:`repro.solvers.sat.labeling`).

Encoding work (one tick per DFS visit) is metered on the same
:class:`~repro.solvers.budget.SolverBudget` the CDCL search spends, so a
pathological instance exhausts the budget during encoding rather than
stalling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.formalism.configurations import Label
from repro.formalism.encoding import ConstraintTable, ProblemEncoding
from repro.formalism.normalize import label_automorphisms
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import EdgeLabelingCSP
from repro.solvers.sat.cnf import CnfFormula
from repro.solvers.sat.solver import DEFAULT_PROPAGATION_BUDGET, SAT_BUDGET_UNIT


@dataclass
class LabelingEncoding:
    """A compiled instance: formula plus the var ↔ (edge, label) maps."""

    formula: CnfFormula
    edges: list[tuple]
    alphabet: list[Label]
    automorphisms: list[dict[Label, Label]]
    symmetry_broken: bool
    _var: dict[tuple[int, int], int] = field(default_factory=dict)

    @property
    def num_label_vars(self) -> int:
        return len(self.edges) * len(self.alphabet)

    def var(self, edge_index: int, label_index: int) -> int:
        return self._var[(edge_index, label_index)]

    def decode(self, model: dict[int, bool]) -> dict[frozenset, Label]:
        """A model of the formula → the edge labeling it selects."""
        labeling: dict[frozenset, Label] = {}
        for edge_index, edge in enumerate(self.edges):
            for label_index, label in enumerate(self.alphabet):
                if model[self.var(edge_index, label_index)]:
                    labeling[frozenset(edge)] = label
                    break
        return labeling

    def blocking_clause(self, model: dict[int, bool]) -> list[int]:
        """The clause excluding exactly this edge labeling.

        Mentions only the selector variables, never the symmetry
        auxiliaries — aux values are functionally determined by the
        selectors, so blocking on selectors alone excludes one labeling
        per clause.
        """
        clause = []
        for edge_index in range(len(self.edges)):
            for label_index in range(len(self.alphabet)):
                var = self.var(edge_index, label_index)
                clause.append(-var if model[var] else var)
        return clause


def _encode_node_constraint(
    encoding: LabelingEncoding,
    table: ConstraintTable,
    incident: list[int],
    budget: SolverBudget,
) -> None:
    """Blocking clauses for one active node's configuration constraint.

    ``incident`` pairs each incident edge's global index with which
    alphabet index range to explore; the DFS keeps the chosen label codes
    as a sorted tuple (configurations are multisets) and emits a clause
    at the first prefix the partial-extension table rejects.
    """
    formula = encoding.formula
    alphabet_size = len(encoding.alphabet)
    degree = len(incident)
    if degree != table.arity:
        formula.add_clause([])
        return
    chosen: list[int] = []

    def visit(depth: int) -> None:
        budget.spend()
        partial = tuple(sorted(chosen))
        if not table.extends(partial):
            formula.add_clause(
                [
                    -encoding.var(incident[position], chosen[position])
                    for position in range(depth)
                ]
            )
            return
        if depth == degree:
            return  # full tuple in partials ⇒ in allowed
        for code in range(alphabet_size):
            chosen.append(code)
            visit(depth + 1)
            chosen.pop()

    visit(0)


def _encode_lex_leader(
    encoding: LabelingEncoding, pi_index: int, pi: dict[Label, Label]
) -> None:
    """Lex-leader clauses for one non-identity automorphism π.

    With ``V_i`` the label index on edge ``i``, requires ``V ≤lex π∘V``:
    aux ``P_i`` ⇔ "edges 0..i-1 all carry π-fixed labels"; under ``P_i``
    the decreasing labels (idx(π(l)) < idx(l)) are forbidden on edge i.
    """
    formula = encoding.formula
    alphabet = encoding.alphabet
    index_of = {label: position for position, label in enumerate(alphabet)}
    decreasing = [
        position
        for position, label in enumerate(alphabet)
        if index_of[pi[label]] < position
    ]
    fixed = [
        position
        for position, label in enumerate(alphabet)
        if pi[label] == label
    ]
    prefix_var: int | None = None  # None ⇒ P_i is constant true (i == 0)
    for edge_index in range(len(encoding.edges)):
        guard = [] if prefix_var is None else [-prefix_var]
        for code in decreasing:
            formula.add_clause(guard + [-encoding.var(edge_index, code)])
        if edge_index == len(encoding.edges) - 1:
            break
        if not fixed:
            break  # the prefix can never stay π-fixed past this edge
        next_var = formula.var(("p", pi_index, edge_index + 1))
        # P_{i+1} → P_i, and P_{i+1} → (edge i carries a fixed label).
        if prefix_var is not None:
            formula.add_clause([-next_var, prefix_var])
        formula.add_clause(
            [-next_var] + [encoding.var(edge_index, code) for code in fixed]
        )
        # P_i ∧ fixed(edge i) → P_{i+1}.
        for code in fixed:
            formula.add_clause(
                guard + [-encoding.var(edge_index, code), next_var]
            )
        prefix_var = next_var


def encode_csp(
    csp: EdgeLabelingCSP,
    *,
    symmetry_breaking: bool = True,
    budget: int | SolverBudget | None = None,
) -> LabelingEncoding:
    """Compile a CSP instance into a :class:`LabelingEncoding`."""
    if budget is None:
        budget = DEFAULT_PROPAGATION_BUDGET
    budget = SolverBudget.coerce(budget, SAT_BUDGET_UNIT)
    formula = CnfFormula()
    edges = list(csp._edges)
    alphabet = list(csp._alphabet)
    problem = csp.problem

    group = label_automorphisms(problem)
    if group is None:
        group = [{label: label for label in problem.alphabet}]
    encoding = LabelingEncoding(
        formula=formula,
        edges=edges,
        alphabet=alphabet,
        automorphisms=group,
        symmetry_broken=symmetry_breaking and len(group) > 1 and bool(edges),
    )

    # Selector variables first (stable 1..m·k numbering), then one-hot.
    for edge_index in range(len(edges)):
        for label_index in range(len(alphabet)):
            encoding._var[(edge_index, label_index)] = formula.var(
                ("x", edge_index, label_index)
            )
    for edge_index in range(len(edges)):
        selectors = [
            encoding.var(edge_index, label_index)
            for label_index in range(len(alphabet))
        ]
        formula.add_clause(selectors)
        for first in range(len(selectors)):
            for second in range(first + 1, len(selectors)):
                formula.add_clause([-selectors[first], -selectors[second]])

    # Node constraints over the problem's integer tables.
    problem_encoding = ProblemEncoding.compile(problem)
    edge_positions: dict = {}
    for position, (u, v) in enumerate(edges):
        edge_positions.setdefault(u, []).append(position)
        edge_positions.setdefault(v, []).append(position)
    for node in sorted(csp.graph.nodes, key=str):
        if not csp._is_active(node):
            continue
        table = (
            problem_encoding.white
            if csp._colors[node] == "white"
            else problem_encoding.black
        )
        _encode_node_constraint(
            encoding, table, edge_positions.get(node, []), budget
        )

    if encoding.symmetry_broken:
        for pi_index, pi in enumerate(group[1:], start=1):
            _encode_lex_leader(encoding, pi_index, pi)
    return encoding
