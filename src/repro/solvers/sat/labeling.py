"""The SAT backend's public face: an :class:`EdgeLabelingCSP` drop-in.

:class:`SatLabelingSolver` exposes the same ``solve`` /
``iter_solutions`` / ``count_solutions`` surface as the CSP backend and
answers identically by construction:

* **solve** — a model of the encoding decodes to a valid labeling; an
  UNSAT answer is complete because symmetry breaking keeps the
  lex-minimal member of every solution orbit, and it carries a RUP proof
  (:meth:`certify_unsat`) checkable with an independent propagator.
* **enumeration** — blocking clauses over the selector variables yield
  one lex-leader representative per orbit; each is re-expanded along the
  full automorphism group (:func:`expand_orbit`) with deduplication, so
  yields and counts match ``EdgeLabelingCSP.count_solutions`` exactly.

Budget semantics mirror the CSP backend: a plain int is a fresh
per-call limit, a shared :class:`~repro.solvers.budget.SolverBudget`
meters encoding and search cumulatively.
"""

from __future__ import annotations

from collections.abc import Callable, Iterator

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import EdgeLabelingCSP
from repro.solvers.sat.encode import LabelingEncoding, encode_csp
from repro.solvers.sat.solver import (
    DEFAULT_PROPAGATION_BUDGET,
    SAT_BUDGET_UNIT,
    CdclSolver,
    check_rup_proof,
)

NodePredicate = Callable[[object], bool]


def expand_orbit(
    labeling: dict[frozenset, Label],
    automorphisms: list[dict[Label, Label]],
) -> list[dict[frozenset, Label]]:
    """Every image of a labeling under the automorphism group, deduplicated.

    π maps solutions to solutions (it preserves both constraints and the
    activity predicates never mention labels), so re-expanding each
    lex-leader representative reconstructs its full orbit — the step that
    makes symmetry-broken enumeration agree with the CSP's counts.
    """
    seen: set[tuple] = set()
    expanded: list[dict[frozenset, Label]] = []
    edges = sorted(labeling, key=lambda edge: sorted(map(str, edge)))
    for pi in automorphisms:
        image = {edge: pi[label] for edge, label in labeling.items()}
        key = tuple(image[edge] for edge in edges)
        if key not in seen:
            seen.add(key)
            expanded.append(image)
    return expanded


class SatLabelingSolver:
    """CDCL-backed edge labeling with lex-leader symmetry breaking."""

    def __init__(
        self,
        graph: nx.Graph,
        problem: Problem,
        white_active: NodePredicate | None = None,
        black_active: NodePredicate | None = None,
        budget: int | SolverBudget = DEFAULT_PROPAGATION_BUDGET,
        *,
        symmetry_breaking: bool = True,
    ) -> None:
        self.graph = graph
        self.problem = problem
        self.budget = budget
        # The CSP instance does the validation (2-coloring, activity
        # defaults) and fixes the BFS edge order the encoding inherits.
        self._csp = EdgeLabelingCSP(
            graph,
            problem,
            white_active=white_active,
            black_active=black_active,
        )
        self.encoding: LabelingEncoding = encode_csp(
            self._csp,
            symmetry_breaking=symmetry_breaking,
            budget=self._call_budget(),
        )
        self._last_solver: CdclSolver | None = None

    def _call_budget(self) -> SolverBudget:
        """Fresh per call for int budgets, shared for SolverBudget ones."""
        if isinstance(self.budget, SolverBudget):
            return self.budget
        return SolverBudget(self.budget, unit=SAT_BUDGET_UNIT)

    def _fresh_solver(self, budget: SolverBudget) -> CdclSolver:
        return CdclSolver(
            self.encoding.formula,
            budget=budget,
            seed=self.encoding.formula.digest(),
        )

    def solve(self) -> dict[frozenset, Label] | None:
        """One labeling, or None — complete, like the CSP backend."""
        solver = self._fresh_solver(self._call_budget())
        self._last_solver = solver
        if solver.solve():
            return self.encoding.decode(solver.model())
        return None

    def iter_solutions(self) -> Iterator[dict[frozenset, Label]]:
        """Every labeling: blocking-clause enumeration + orbit expansion."""
        budget = self._call_budget()
        solver = self._fresh_solver(budget)
        self._last_solver = solver
        yielded: set[tuple] = set()
        while solver.solve():
            model = solver.model()
            representative = self.encoding.decode(model)
            for image in expand_orbit(
                representative, self.encoding.automorphisms
            ):
                edges = sorted(image, key=lambda edge: sorted(map(str, edge)))
                key = tuple(image[edge] for edge in edges)
                if key not in yielded:
                    yielded.add(key)
                    yield image
            solver.add_clause(self.encoding.blocking_clause(model))

    def count_solutions(self) -> int:
        return sum(1 for _ in self.iter_solutions())

    def certify_unsat(self) -> bool:
        """RUP-check the proof of the last unsatisfiable ``solve()``.

        The certificate is relative to the encoded formula (including
        symmetry-breaking clauses, which are solution-preserving for
        existence); only valid before enumeration adds blocking clauses.
        """
        solver = self._last_solver
        if solver is None:
            raise RuntimeError("certify_unsat() requires a prior solve()")
        return check_rup_proof(self.encoding.formula, solver.proof)

    @property
    def stats(self) -> dict[str, int]:
        """Search counters of the most recent solve (for benchmarks)."""
        solver = self._last_solver
        if solver is None:
            return {"decisions": 0, "conflicts": 0, "propagations": 0}
        return {
            "decisions": solver.decisions,
            "conflicts": solver.conflicts,
            "propagations": solver.budget.spent,
        }
