"""Pure-python CDCL with a deterministic, budgeted search.

Classic architecture — two-watched literals, 1-UIP conflict analysis,
VSIDS-style activity decay, Luby restarts, phase saving — with two
repo-specific contracts on top:

* **Determinism.**  Every data structure is index-ordered; the only
  "randomness" is a 64-bit LCG jitter on initial activities seeded from
  the encoding digest, so identical CNF yields an identical search
  trace, and tie-breaks fall back to the smallest variable index.
* **Budget.**  Each assignment made during search spends one unit of the
  shared :class:`~repro.solvers.budget.SolverBudget` (unit
  ``"propagations"``); crossing the limit raises ``SolverLimitError``
  mid-search instead of returning a truncated verdict.

UNSAT answers carry a RUP (reverse unit propagation) proof — the learned
clauses in derivation order plus the final empty clause — checkable by
:func:`check_rup_proof` with an independent, naive unit propagator.
"""

from __future__ import annotations

import hashlib
from heapq import heappop, heappush

from repro.solvers.budget import SolverBudget
from repro.solvers.sat.cnf import Clause, CnfFormula
from repro.utils import SolverError

SAT_BUDGET_UNIT = "propagations"

DEFAULT_PROPAGATION_BUDGET = 5_000_000

_RESTART_BASE = 100
_ACTIVITY_DECAY = 0.95
_ACTIVITY_RESCALE = 1e100


def _luby(i: int) -> int:
    """The Luby restart sequence 1,1,2,1,1,2,4,... (1-indexed).

    Invariant: i ≤ 2^k - 1.  Equality means i ends a full subsequence
    (value 2^(k-1)); otherwise shrink k, subtracting the completed
    subsequence of length 2^k - 1 only when i lies beyond it.
    """
    k = 1
    while (1 << k) - 1 < i:
        k += 1
    while (1 << k) - 1 != i:
        k -= 1
        if (1 << k) - 1 < i:
            i -= (1 << k) - 1
    return 1 << (k - 1)


def _seed_to_int(seed: int | str | None) -> int:
    if seed is None:
        return 0
    if isinstance(seed, int):
        return seed & ((1 << 64) - 1)
    digest = hashlib.sha256(seed.encode()).digest()
    return int.from_bytes(digest[:8], "big")


class CdclSolver:
    """Conflict-driven clause learning over a :class:`CnfFormula`.

    ``solve()`` may be called repeatedly with clauses added in between
    (:meth:`add_clause` backtracks to the root level first), which is how
    enumeration via blocking clauses works.
    """

    def __init__(
        self,
        formula: CnfFormula,
        *,
        budget: int | SolverBudget = DEFAULT_PROPAGATION_BUDGET,
        seed: int | str | None = None,
    ) -> None:
        self.num_vars = formula.num_vars
        self.budget = SolverBudget.coerce(budget, SAT_BUDGET_UNIT)
        self._clauses: list[list[int]] = []
        self._watches: dict[int, list[int]] = {}
        self._units: list[int] = []
        self._unsat = formula.has_empty_clause
        self.proof: list[Clause] = [()] if self._unsat else []

        n = self.num_vars
        self._assign = [0] * (n + 1)
        self._level = [0] * (n + 1)
        self._reason = [-1] * (n + 1)
        self._trail: list[int] = []
        self._trail_lim: list[int] = []
        self._qhead = 0
        self._phase = [False] * (n + 1)

        # Deterministic activity jitter: a fixed-width LCG walk over the
        # seed breaks activity ties differently per encoding digest while
        # keeping the whole search reproducible.
        state = _seed_to_int(seed)
        self._activity = [0.0] * (n + 1)
        for var in range(1, n + 1):
            state = (state * 6364136223846793005 + 1442695040888963407) % (1 << 64)
            self._activity[var] = (state >> 40) * 1e-12
        self._var_inc = 1.0
        self._heap: list[tuple[float, int]] = []
        for var in range(1, n + 1):
            heappush(self._heap, (-self._activity[var], var))

        self.decisions = 0
        self.conflicts = 0
        self.restarts = 0
        self.learned = 0

        for clause in formula.clauses:
            self._attach(list(clause))

    # ------------------------------------------------------------------
    # clause plumbing

    def _attach(self, clause: list[int]) -> None:
        if not clause:
            self._unsat = True
            if not self.proof or self.proof[-1] != ():
                self.proof.append(())
            return
        if len(clause) == 1:
            self._units.append(clause[0])
            return
        index = len(self._clauses)
        self._clauses.append(clause)
        self._watches.setdefault(clause[0], []).append(index)
        self._watches.setdefault(clause[1], []).append(index)

    def add_clause(self, literals) -> None:
        """Add a clause between ``solve()`` calls (backtracks to root)."""
        self._backtrack(0)
        clause = []
        seen = set()
        for lit in literals:
            if abs(lit) > self.num_vars:
                raise SolverError(
                    f"literal {lit} out of range for {self.num_vars} variables"
                )
            if -lit in seen:
                return  # tautology
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        self._attach(clause)

    # ------------------------------------------------------------------
    # assignment plumbing

    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: int) -> None:
        self.budget.spend()
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._phase[var] = lit > 0
        self._trail.append(lit)

    def _backtrack(self, target_level: int) -> None:
        if len(self._trail_lim) <= target_level:
            return
        mark = self._trail_lim[target_level]
        for lit in reversed(self._trail[mark:]):
            var = abs(lit)
            self._assign[var] = 0
            self._reason[var] = -1
            heappush(self._heap, (-self._activity[var], var))
        del self._trail[mark:]
        del self._trail_lim[target_level:]
        self._qhead = min(self._qhead, mark)

    def _propagate(self) -> list[int] | None:
        """Exhaust unit propagation; return a conflicting clause or None."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            falsified = -lit
            watching = self._watches.get(falsified)
            if not watching:
                continue
            kept: list[int] = []
            conflict: list[int] | None = None
            for position, index in enumerate(watching):
                clause = self._clauses[index]
                # Normalize: the falsified literal sits at clause[1].
                if clause[0] == falsified:
                    clause[0], clause[1] = clause[1], clause[0]
                first = clause[0]
                if self._value(first) == 1:
                    kept.append(index)
                    continue
                moved = False
                for slot in range(2, len(clause)):
                    if self._value(clause[slot]) != -1:
                        clause[1], clause[slot] = clause[slot], clause[1]
                        self._watches.setdefault(clause[1], []).append(index)
                        moved = True
                        break
                if moved:
                    continue
                kept.append(index)
                if self._value(first) == -1:
                    conflict = clause
                    kept.extend(watching[position + 1 :])
                    break
                self._enqueue(first, index)
            self._watches[falsified] = kept
            if conflict is not None:
                return conflict
        return None

    # ------------------------------------------------------------------
    # conflict analysis

    def _bump(self, var: int) -> None:
        self._activity[var] += self._var_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for index in range(1, self.num_vars + 1):
                self._activity[index] *= 1e-100
            self._var_inc *= 1e-100
        if self._assign[var] == 0:
            heappush(self._heap, (-self._activity[var], var))

    def _analyze(self, conflict: list[int]) -> tuple[list[int], int]:
        """1-UIP learning: returns (learned clause, backjump level)."""
        current_level = len(self._trail_lim)
        learned: list[int] = [0]  # slot 0 holds the asserting literal
        seen = [False] * (self.num_vars + 1)
        counter = 0
        lit = None
        index = len(self._trail)
        reason = conflict
        while True:
            for clause_lit in reason:
                var = abs(clause_lit)
                if clause_lit == lit or seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] == current_level:
                    counter += 1
                else:
                    learned.append(clause_lit)
            while True:
                index -= 1
                trail_lit = self._trail[index]
                if seen[abs(trail_lit)]:
                    break
            lit = -trail_lit
            seen[abs(trail_lit)] = False
            counter -= 1
            if counter == 0:
                break
            reason_index = self._reason[abs(trail_lit)]
            reason = [l for l in self._clauses[reason_index] if l != trail_lit]
        learned[0] = lit
        if len(learned) == 1:
            return learned, 0
        # Backjump to the second-highest decision level in the clause,
        # keeping that literal in the watch slot 1.
        best = 1
        for slot in range(2, len(learned)):
            if self._level[abs(learned[slot])] > self._level[abs(learned[best])]:
                best = slot
        learned[1], learned[best] = learned[best], learned[1]
        return learned, self._level[abs(learned[1])]

    # ------------------------------------------------------------------
    # top level

    def _decide(self) -> bool:
        while self._heap:
            neg_activity, var = heappop(self._heap)
            if self._assign[var] != 0:
                continue
            if -neg_activity != self._activity[var]:
                # Stale entry: re-push with the fresh activity and retry.
                heappush(self._heap, (-self._activity[var], var))
                continue
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            lit = var if self._phase[var] else -var
            self._enqueue(lit, -1)
            return True
        return False

    def _root_units(self) -> bool:
        """(Re-)assert unit clauses at level 0; False on contradiction."""
        for lit in self._units:
            value = self._value(lit)
            if value == -1:
                self.proof.append(())
                self._unsat = True
                return False
            if value == 0:
                self._enqueue(lit, -1)
        return True

    def solve(self) -> bool:
        """Decide satisfiability; model() is valid after a True result."""
        if self._unsat:
            return False
        self._backtrack(0)
        if not self._root_units():
            return False
        # Re-propagate the whole trail: clauses added since the last call
        # may be falsified or unit under the existing level-0 assignment.
        self._qhead = 0
        conflicts_until_restart = _RESTART_BASE * _luby(self.restarts + 1)
        conflicts_here = 0
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                conflicts_here += 1
                if not self._trail_lim:
                    self.proof.append(())
                    self._unsat = True
                    return False
                learned, backjump_level = self._analyze(conflict)
                self.proof.append(tuple(learned))
                self.learned += 1
                self._backtrack(backjump_level)
                if len(learned) == 1:
                    self._units.append(learned[0])
                    self._enqueue(learned[0], -1)
                else:
                    index = len(self._clauses)
                    self._clauses.append(learned)
                    self._watches.setdefault(learned[0], []).append(index)
                    self._watches.setdefault(learned[1], []).append(index)
                    self._enqueue(learned[0], index)
                self._var_inc /= _ACTIVITY_DECAY
                continue
            if conflicts_here >= conflicts_until_restart:
                self.restarts += 1
                conflicts_here = 0
                conflicts_until_restart = _RESTART_BASE * _luby(self.restarts + 1)
                self._backtrack(0)
                continue
            if not self._decide():
                return True

    def model(self) -> dict[int, bool]:
        """The satisfying assignment of the last True ``solve()``."""
        return {
            var: self._assign[var] == 1 for var in range(1, self.num_vars + 1)
        }


# ----------------------------------------------------------------------
# independent proof checking


def _unit_propagate_to_conflict(clauses: list[Clause], assumed: set[int]) -> bool:
    """Naive UP: True iff the assumption set propagates to a conflict.

    Deliberately shares nothing with :class:`CdclSolver` — O(n·m) scans,
    no watches — so a bug in the solver's propagation cannot hide in its
    own certificate check.
    """
    assignment = dict()
    for lit in assumed:
        if assignment.get(abs(lit), lit > 0) != (lit > 0):
            return True
        assignment[abs(lit)] = lit > 0
    changed = True
    while changed:
        changed = False
        for clause in clauses:
            unassigned = None
            satisfied = False
            count = 0
            for lit in clause:
                value = assignment.get(abs(lit))
                if value is None:
                    unassigned = lit
                    count += 1
                elif value == (lit > 0):
                    satisfied = True
                    break
            if satisfied:
                continue
            if count == 0:
                return True
            if count == 1:
                assignment[abs(unassigned)] = unassigned > 0
                changed = True
    return False


def check_rup_proof(formula: CnfFormula, proof: list[Clause]) -> bool:
    """Verify an UNSAT proof by reverse unit propagation.

    Each proof clause must be a RUP consequence of the original formula
    plus the earlier proof clauses, and the proof must end with the empty
    clause.
    """
    if not proof or proof[-1] != ():
        return False
    known: list[Clause] = list(formula.clauses)
    for clause in proof:
        assumed = {-lit for lit in clause}
        if len(assumed) != len(clause):
            return False  # clause repeats a literal; not produced by CDCL
        if not _unit_propagate_to_conflict(known, assumed):
            return False
        known.append(clause)
    return True
