"""CNF subsystem: clause database, CSP-to-SAT encoder, CDCL solver.

The third independent implementation of the central decision procedure
(after the backtracking CSP and the product-space brute force): existence
and enumeration questions on 2-colored graphs are compiled to CNF with
one-hot edge-label variables and lex-leader symmetry breaking, then
decided by a pure-python CDCL solver under the shared
:class:`~repro.solvers.budget.SolverBudget` contract.
"""

from repro.solvers.sat.cnf import CnfFormula, parse_dimacs
from repro.solvers.sat.encode import LabelingEncoding, encode_csp
from repro.solvers.sat.labeling import (
    SatLabelingSolver,
    expand_orbit,
)
from repro.solvers.sat.solver import (
    DEFAULT_PROPAGATION_BUDGET,
    SAT_BUDGET_UNIT,
    CdclSolver,
    check_rup_proof,
)

__all__ = [
    "DEFAULT_PROPAGATION_BUDGET",
    "SAT_BUDGET_UNIT",
    "CdclSolver",
    "CnfFormula",
    "LabelingEncoding",
    "SatLabelingSolver",
    "check_rup_proof",
    "encode_csp",
    "expand_orbit",
    "parse_dimacs",
]
