"""Brute-force enumeration cross-checks (tiny instances only).

The CSP solver's pruning must never change *what* is solvable.  This
module re-decides solvability by raw product enumeration so property tests
can compare the two, and enumerates complete solution sets for the
Theorem 3.2 equivalence experiments.
"""

from __future__ import annotations

from collections.abc import Iterator
from itertools import product

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.solvers.backends import make_solver
from repro.solvers.budget import SolverBudget
from repro.solvers.csp import DEFAULT_NODE_BUDGET, NodePredicate
from repro.utils import SolverError


def brute_force_solutions(
    graph: nx.Graph,
    problem: Problem,
    white_active: NodePredicate | None = None,
    black_active: NodePredicate | None = None,
    edge_limit: int = 12,
) -> Iterator[dict[frozenset, Label]]:
    """Yield every valid edge labeling by trying all |Σ|^m assignments."""
    edges = sorted(graph.edges, key=str)
    if len(edges) > edge_limit:
        raise SolverError(
            f"brute force capped at {edge_limit} edges, got {len(edges)}"
        )
    colors = {node: data.get("color") for node, data in graph.nodes(data=True)}

    def default_active(color: str) -> NodePredicate:
        arity = problem.white_arity if color == "white" else problem.black_arity
        return lambda node: colors[node] == color and graph.degree(node) == arity

    white_pred = white_active or default_active("white")
    black_pred = black_active or default_active("black")

    for labels in product(sorted(problem.alphabet), repeat=len(edges)):
        labeling = {
            frozenset(edge): label for edge, label in zip(edges, labels)
        }
        if _valid(graph, problem, labeling, colors, white_pred, black_pred):
            yield labeling


def _valid(graph, problem, labeling, colors, white_pred, black_pred) -> bool:
    for node in graph.nodes:
        if colors[node] == "white":
            if not white_pred(node):
                continue
            constraint = problem.white
        else:
            if not black_pred(node):
                continue
            constraint = problem.black
        incident = [
            labeling[frozenset((node, neighbor))]
            for neighbor in graph.neighbors(node)
        ]
        if not constraint.allows_multiset(incident):
            return False
    return True


def brute_force_solvable(
    graph: nx.Graph, problem: Problem, edge_limit: int = 12
) -> bool:
    """Existence by enumeration (the CSP cross-check oracle)."""
    for _solution in brute_force_solutions(graph, problem, edge_limit=edge_limit):
        return True
    return False


def canonical_labeling(labeling: dict[frozenset, Label]) -> tuple:
    """An order-free fingerprint of one labeling (for set comparison)."""
    return tuple(
        sorted(
            (tuple(sorted(map(str, edge))), label)
            for edge, label in labeling.items()
        )
    )


def solution_set(
    graph: nx.Graph,
    problem: Problem,
    *,
    backend: str | None = None,
    white_active: NodePredicate | None = None,
    black_active: NodePredicate | None = None,
    budget: int | SolverBudget = DEFAULT_NODE_BUDGET,
) -> list[tuple]:
    """The complete solution set as sorted canonical fingerprints.

    Backend-independent by contract: the ``sat`` backend re-expands its
    symmetry-broken representatives before yielding, so this list is the
    cross-backend comparison surface the differential oracle checks.
    """
    solver = make_solver(
        graph,
        problem,
        backend=backend,
        white_active=white_active,
        black_active=black_active,
        budget=budget,
    )
    return sorted(
        canonical_labeling(labeling) for labeling in solver.iter_solutions()
    )
