"""Distributed coloring: class-sweep color reduction.

Given any m-coloring (in Supported LOCAL the shared greedy coloring of G
is free; in plain LOCAL the IDs are an n-coloring), sweeping the classes
in order and re-coloring each node with the smallest color unused by
already-final neighbors produces a (Δ+1)-coloring in m rounds.  This is
the upper-bound companion of the §5 experiments (Theorem 5.1's remark:
given a k-coloring of the support graph, nodes can compute it with no
communication; the sweep then trades colors for rounds).
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.graphs.chromatic import greedy_coloring
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm


class _ClassSweepNode(NodeAlgorithm):
    """Color class i finalizes in round i+1, announcing its new color."""

    def init(self) -> None:
        self.initial = self.ctx.extra["initial_color"]
        self.num_classes = self.ctx.extra["num_classes"]
        self.final: int | None = None
        self.neighbor_finals: set[int] = set()
        self.round = 0
        if self.num_classes == 0:
            self.halt(0)

    def send(self) -> dict[int, object]:
        if self.initial == self.round:
            candidate = 0
            while candidate in self.neighbor_finals:
                candidate += 1
            self.final = candidate
            return {port: ("final", candidate) for port in self.ctx.ports}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        for payload in messages.values():
            if payload and payload[0] == "final":
                self.neighbor_finals.add(payload[1])
        self.round += 1
        if self.round >= self.num_classes:
            self.halt(self.final)


def _sweep_finals(
    graph: nx.Graph, initial_coloring: dict, num_classes: int
) -> dict:
    """The sweep's fixed point, computed centrally (no simulation).

    Mirrors :class:`_ClassSweepNode` exactly, including the degenerate
    cases: no classes to sweep → everyone outputs 0 (the node program
    halts with color 0 at init), and classes outside ``0..num_classes-1``
    never finalize (their output stays ``None``).  Class peers finalize
    simultaneously, seeing only strictly earlier announcements.
    """
    if num_classes == 0:
        return dict.fromkeys(graph.nodes, 0)
    finals: dict = dict.fromkeys(graph.nodes)
    for current in range(num_classes):
        announced = {}
        for node in graph.nodes:
            if initial_coloring[node] != current:
                continue
            taken = {
                finals[neighbor]
                for neighbor in graph.neighbors(node)
                if finals[neighbor] is not None
            }
            candidate = 0
            while candidate in taken:
                candidate += 1
            announced[node] = candidate
        finals.update(announced)
    return finals


def class_sweep_coloring(
    graph: nx.Graph, initial_coloring: dict | None = None
) -> tuple[dict, int]:
    """Reduce an initial coloring to a (Δ+1)-coloring, one round per class.

    Defaults to the shared greedy support-graph coloring (the Supported
    LOCAL setting).  Returns ({node: color}, rounds) — byte-identical to
    running :class:`_ClassSweepNode` on an engine, but computed directly
    so callers that only need the result (e.g. the arbdefective sweep's
    base coloring) don't pay for a full message-passing simulation.
    """
    if initial_coloring is None:
        initial_coloring = greedy_coloring(graph)
    num_classes = max(initial_coloring.values(), default=-1) + 1
    finals = _sweep_finals(graph, initial_coloring, num_classes)
    if num_classes < 0:
        # All classes negative: the node program idles one round, then
        # the budget check (round ≥ num_classes) halts it.
        rounds = 1 if graph.number_of_nodes() else 0
    else:
        rounds = num_classes
    return finals, rounds


def coloring_from_ids(network: Network) -> dict:
    """The trivial n-coloring by ID *rank* (plain-LOCAL starting point).

    IDs are only guaranteed distinct — adversarial networks draw them
    from {1..n^c} — so the class index is the ID's rank among all IDs,
    which is contiguous and 0-based by construction.  (The former
    ``id - 1`` shortcut silently produced n^c classes for adversarial
    IDs, inflating the sweep's round count by the same factor.)  For the
    canonical 1..n assignment the rank equals ``id - 1``, so existing
    outputs are unchanged.
    """
    return {
        node: rank - 1 for node, rank in network.renormalized_ids().items()
    }


class ClassSweepColoring(Algorithm):
    """``"coloring:class-sweep"`` — (Δ+1)-coloring by class sweep.

    Option ``initial_coloring`` overrides the starting coloring; the
    default is the shared greedy support-graph coloring (the Supported
    LOCAL setting, where it costs 0 rounds).
    """

    name = "coloring:class-sweep"
    families = ("coloring",)
    kind = "message"
    description = "(Δ+1)-coloring: sweep the classes of a free coloring"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        initial = options.get("initial_coloring")
        if initial is None:
            initial = greedy_coloring(network.graph)
        num_classes = max(initial.values(), default=-1) + 1

        def extra(node) -> dict:
            return {"initial_color": initial[node], "num_classes": num_classes}

        return MessagePassingProgram(
            factory=_ClassSweepNode,
            extra=extra,
            vectorized=VectorizedSpec(
                kernel="coloring:class-sweep",
                data={"initial_coloring": initial, "num_classes": num_classes},
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> dict:
        return dict(outputs)


register_algorithm(ClassSweepColoring())
