"""Ruling sets from colorings — the §6 upper-bound companion.

Given a k-coloring, a (2,β)-ruling set is computable in O(k·β) rounds by
sweeping color classes: a node joins S when no already-selected node sits
within distance β (a distance-β check costs β rounds).  §6.2's remark
("given a k-coloring, one can compute an α-arbdefective c-colored
β-ruling set in O((k/((α+1)c))^{1/β}) rounds") is the sophisticated form;
this simple sweep suffices to bracket the lower bound's *shape* in the
experiments.
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import ProblemSpec
from repro.graphs.chromatic import greedy_coloring
from repro.local.network import Network


def ruling_set_by_class_sweep(
    graph: nx.Graph,
    beta: int,
    coloring: dict | None = None,
) -> tuple[set, int]:
    """Compute a (2,β)-ruling set; returns (S, simulated rounds).

    Rounds are accounted as (number of classes) · β: each class decides
    after a β-hop probe.  The construction is centralized but round-
    faithful (every decision uses only distance-β information plus the
    shared coloring, which is free in Supported LOCAL).
    """
    if coloring is None:
        coloring = greedy_coloring(graph)
    num_classes = max(coloring.values(), default=-1) + 1
    selected: set = set()
    for current_class in range(num_classes):
        candidates = sorted(
            (node for node in graph.nodes if coloring[node] == current_class),
            key=str,
        )
        for node in candidates:
            if not _within_distance(graph, node, selected, beta):
                selected.add(node)
    rounds = num_classes * beta
    return selected, rounds


def _within_distance(graph: nx.Graph, node, targets: set, beta: int) -> bool:
    """Is any target within distance β of node?  (β-hop BFS probe.)"""
    if node in targets:
        return True
    frontier = {node}
    seen = {node}
    for _hop in range(beta):
        frontier = {
            neighbor
            for member in frontier
            for neighbor in graph.neighbors(member)
            if neighbor not in seen
        }
        if frontier & targets:
            return True
        seen |= frontier
    return False


def mis_from_ruling_sweep(graph: nx.Graph, coloring: dict | None = None) -> tuple[set, int]:
    """MIS = (2,1)-ruling set via the sweep (cross-checks the MIS module)."""
    return ruling_set_by_class_sweep(graph, beta=1, coloring=coloring)


class ClassSweepRulingSet(Algorithm):
    """``"ruling-set:class-sweep"`` — (2,β)-ruling sets from a coloring.

    A global-knowledge construction (round-faithful accounting, not a
    message loop): β defaults to the spec's ``β`` parameter, and β = 1
    makes it an MIS algorithm, so both families are declared.  Option
    ``coloring`` overrides the shared greedy coloring.
    """

    name = "ruling-set:class-sweep"
    families = ("ruling-set", "mis")
    kind = "global"
    description = "(2,β)-ruling set by class sweep over a free coloring"

    def run_global(
        self, network: Network, spec: ProblemSpec, options: dict, seed: int
    ) -> tuple[set, int]:
        beta = options.get("beta", spec.param("beta", 1))
        return ruling_set_by_class_sweep(
            network.graph, beta=beta, coloring=options.get("coloring")
        )


register_algorithm(ClassSweepRulingSet())
