"""Ruling sets from colorings — the §6 upper-bound companion.

Given a k-coloring, a (2,β)-ruling set is computable in O(k·β) rounds by
sweeping color classes: a node joins S when no already-selected node sits
within distance β (a distance-β check costs β rounds).  §6.2's remark
("given a k-coloring, one can compute an α-arbdefective c-colored
β-ruling set in O((k/((α+1)c))^{1/β}) rounds") is the sophisticated form;
this simple sweep suffices to bracket the lower bound's *shape* in the
experiments.
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.graphs.chromatic import greedy_coloring
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm
from repro.utils import InvalidParameterError


def ruling_set_by_class_sweep(
    graph: nx.Graph,
    beta: int,
    coloring: dict | None = None,
) -> tuple[set, int]:
    """Compute a (2,β)-ruling set; returns (S, simulated rounds).

    Rounds are accounted as (number of classes) · β: each class decides
    after a β-hop probe.  The construction is centralized but round-
    faithful (every decision uses only distance-β information plus the
    shared coloring, which is free in Supported LOCAL).
    """
    if coloring is None:
        coloring = greedy_coloring(graph)
    num_classes = max(coloring.values(), default=-1) + 1
    selected: set = set()
    for current_class in range(num_classes):
        candidates = sorted(
            (node for node in graph.nodes if coloring[node] == current_class),
            key=str,
        )
        for node in candidates:
            if not _within_distance(graph, node, selected, beta):
                selected.add(node)
    rounds = num_classes * beta
    return selected, rounds


def _within_distance(graph: nx.Graph, node, targets: set, beta: int) -> bool:
    """Is any target within distance β of node?  (β-hop BFS probe.)"""
    if node in targets:
        return True
    frontier = {node}
    seen = {node}
    for _hop in range(beta):
        frontier = {
            neighbor
            for member in frontier
            for neighbor in graph.neighbors(member)
            if neighbor not in seen
        }
        if frontier & targets:
            return True
        seen |= frontier
    return False


def mis_from_ruling_sweep(graph: nx.Graph, coloring: dict | None = None) -> tuple[set, int]:
    """MIS = (2,1)-ruling set via the sweep (cross-checks the MIS module)."""
    return ruling_set_by_class_sweep(graph, beta=1, coloring=coloring)


class _ClassSweepRulingNode(NodeAlgorithm):
    """Phase c (β rounds): unruled class-c nodes select, flood a β-hop wave.

    A phase's first round lets class c decide; selected nodes emit a
    ``("ruled", β)`` token, receivers become ruled and forward the token
    with a decremented hop budget, so the wave covers the β-ball before
    the next class's turn.  Everyone halts together after
    ``num_classes · β`` rounds.
    """

    def init(self) -> None:
        self.cls = self.ctx.extra["class_index"]
        self.num_classes = self.ctx.extra["num_classes"]
        self.beta = self.ctx.extra["beta"]
        self.selected = False
        self.ruled = False
        self.pending = 0
        self.round = 0
        if self.num_classes * self.beta == 0:
            self.halt(False)

    def send(self) -> dict[int, object]:
        hops = self.pending
        sending = self.pending >= 1
        self.pending = 0
        if self.round % self.beta == 0:
            if self.cls == self.round // self.beta and not self.ruled:
                self.selected = True
                self.ruled = True
                hops = self.beta
                sending = True
        if sending:
            return {port: ("ruled", hops) for port in self.ctx.ports}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        for payload in messages.values():
            if payload and payload[0] == "ruled":
                self.ruled = True
                if payload[1] - 1 > self.pending:
                    self.pending = payload[1] - 1
        self.round += 1
        if self.round >= self.num_classes * self.beta:
            self.halt(self.selected)


class ClassSweepRulingSet(Algorithm):
    """``"ruling-set:class-sweep"`` — (2,β)-ruling sets from a coloring.

    A true message program since the vectorized port: β defaults to the
    spec's ``β`` parameter, and β = 1 makes it an MIS algorithm, so both
    families are declared.  Option ``coloring`` overrides the shared
    greedy coloring.

    The wave construction lets *all* unruled class peers select
    simultaneously, so for β ≥ 2 the selected set can differ from the
    (sequential) :func:`ruling_set_by_class_sweep` — it is still an
    independent (2,β)-ruling set (class peers of a proper coloring are
    non-adjacent), with the identical ``num_classes · β`` round count.
    For β = 1 the outputs coincide.
    """

    name = "ruling-set:class-sweep"
    families = ("ruling-set", "mis")
    kind = "message"
    description = "(2,β)-ruling set by class sweep over a free coloring"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        beta = options.get("beta", spec.param("beta", 1))
        if beta < 1:
            raise InvalidParameterError(f"need β ≥ 1, got {beta}")
        coloring = options.get("coloring")
        if coloring is None:
            coloring = greedy_coloring(network.graph)
        num_classes = max(coloring.values(), default=-1) + 1

        def extra(node) -> dict:
            return {
                "class_index": coloring[node],
                "num_classes": num_classes,
                "beta": beta,
            }

        return MessagePassingProgram(
            factory=_ClassSweepRulingNode,
            extra=extra,
            vectorized=VectorizedSpec(
                kernel="ruling-set:class-sweep",
                data={
                    "class_of": coloring,
                    "num_classes": num_classes,
                    "beta": beta,
                },
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> set:
        return {node for node, joined in outputs.items() if joined}


register_algorithm(ClassSweepRulingSet())
