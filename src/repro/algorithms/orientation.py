"""Sinkless orientation (the [BFH+16] / [BKK+23] benchmark problem).

In the Supported LOCAL model with Δ′ = Δ (input graph = support graph),
sinkless orientation is *0 rounds*: every node knows G, computes the same
global orientation, and outputs its incident part.  The construction:
orient one cycle per component cyclically, then orient every other edge
along a BFS-to-cycle parent pointer; every node gains an outgoing edge
provided its component contains a cycle (min degree ≥ 2 suffices).

This contrasts with the lift-based *lower* bound for Δ′ < Δ (the
experiments show lift_{Δ,2}(SO_{Δ′}) is unsolvable on high-girth graphs),
reproducing the [BKK+23] separation inside our general framework.
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm
from repro.utils import GraphConstructionError


def global_sinkless_orientation(graph: nx.Graph) -> dict[frozenset, object]:
    """A sinkless orientation computed from global knowledge (0 rounds).

    Returns {edge: head}.  Raises when some component is a tree (no
    sinkless orientation exists there).
    """
    orientation: dict[frozenset, object] = {}
    for component in nx.connected_components(graph):
        subgraph = graph.subgraph(component)
        if subgraph.number_of_edges() < subgraph.number_of_nodes():
            raise GraphConstructionError(
                "a tree component admits no sinkless orientation"
            )
        cycle_edges = nx.find_cycle(subgraph)
        cycle_nodes: list = [edge[0] for edge in cycle_edges]
        # Orient the cycle cyclically.
        for u, v in cycle_edges:
            orientation[frozenset((u, v))] = v
        # BFS from the cycle; each non-cycle node orients its parent edge
        # towards the cycle (its outgoing edge).
        parents: dict = {}
        frontier = list(cycle_nodes)
        seen = set(cycle_nodes)
        while frontier:
            next_frontier = []
            for node in frontier:
                for neighbor in subgraph.neighbors(node):
                    if neighbor not in seen:
                        seen.add(neighbor)
                        parents[neighbor] = node
                        next_frontier.append(neighbor)
            frontier = next_frontier
        for child, parent in parents.items():
            orientation[frozenset((child, parent))] = parent
        # Remaining edges: orient arbitrarily (both endpoints already have
        # an outgoing edge).
        for u, v in subgraph.edges:
            orientation.setdefault(frozenset((u, v)), v)
    return orientation


def supported_sinkless_orientation_rounds(graph: nx.Graph) -> int:
    """Round complexity of SO in Supported LOCAL when G′ = G: zero.

    Provided as an explicit, documented constant so experiment tables can
    cite it next to the Δ′ < Δ lower bound.
    """
    return 0


class _OrientationNode(NodeAlgorithm):
    """Halts at init with the precomputed outgoing ports: zero rounds."""

    def init(self) -> None:
        self.halt(self.ctx.extra["out_ports"])


class GlobalSinklessOrientation(Algorithm):
    """``"sinkless-orientation:global"`` — the 0-round Supported LOCAL SO.

    Every node knows G, computes the same global orientation, and outputs
    its incident part (the ports of its outgoing edges); the accounted
    round complexity is zero — every node halts at init, so the engine
    loop never runs.
    """

    name = "sinkless-orientation:global"
    families = ("sinkless-orientation",)
    kind = "message"
    description = "0-round sinkless orientation from global knowledge of G"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        orientation = global_sinkless_orientation(network.graph)
        out_ports: dict = {node: [] for node in network.graph.nodes}
        for edge, head in orientation.items():
            (tail,) = (node for node in edge if node != head)
            out_ports[tail].append(network.port_to(tail, head))
        for ports in out_ports.values():
            ports.sort()

        def extra(node) -> dict:
            return {"out_ports": out_ports[node]}

        return MessagePassingProgram(
            factory=_OrientationNode,
            extra=extra,
            vectorized=VectorizedSpec(
                kernel="sinkless-orientation:global",
                data={"out_ports": out_ports},
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> dict:
        orientation: dict[frozenset, object] = {}
        for node, ports in outputs.items():
            for port in ports:
                neighbor = network.via_port(node, port)
                orientation[frozenset((node, neighbor))] = neighbor
        return orientation


register_algorithm(GlobalSinklessOrientation())
