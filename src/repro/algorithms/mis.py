"""Maximal independent set algorithms.

Two algorithms bracket the paper's §1.1 discussion of [AAPR23]:

* :func:`supported_mis_by_coloring` — the χ_G-round Supported LOCAL upper
  bound: every node knows G, so all nodes compute the *same* coloring of G
  without communication, then process color classes one round each.
  Theorem 1.7 shows this is optimal for deterministic algorithms.
* :func:`luby_mis` — Luby's randomized MIS in the plain LOCAL model, as a
  baseline exercising the randomized simulator path.
"""

from __future__ import annotations

import random
from collections.abc import Callable

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.graphs.chromatic import greedy_coloring
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm, RunResult, run_synchronous


class _ColorClassMISNode(NodeAlgorithm):
    """Processes shared color classes: class i decides in round i+1."""

    def init(self) -> None:
        self.color = self.ctx.extra["color"]
        self.num_colors = self.ctx.extra["num_colors"]
        self.in_mis = False
        self.blocked = False
        self.round = 0
        if self.num_colors == 0:
            self.halt(False)

    def send(self) -> dict[int, object]:
        if self.color == self.round and not self.blocked:
            # Joining this round: announce to all neighbors.
            self.in_mis = True
            return {port: "joined" for port in self.ctx.ports}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        if any(text == "joined" for text in messages.values()):
            self.blocked = True
        self.round += 1
        if self.round >= self.num_colors:
            self.halt(self.in_mis)


def supported_mis_by_coloring(support: nx.Graph) -> tuple[set, int]:
    """The [AAPR23] χ_G-round MIS in the Supported LOCAL model.

    The shared greedy coloring of the support graph is free (0 rounds:
    everyone knows G and computes the same coloring); the class sweep
    costs one round per color.  Returns (MIS, rounds) where rounds equals
    the number of colors used.
    """
    coloring = greedy_coloring(support)
    num_colors = max(coloring.values(), default=-1) + 1
    network = Network(graph=support)

    def extra(node) -> dict:
        return {"color": coloring[node], "num_colors": num_colors}

    result: RunResult = run_synchronous(network, _ColorClassMISNode, extra=extra)
    mis = {node for node, joined in result.outputs.items() if joined}
    return mis, result.rounds


class _LubyNode(NodeAlgorithm):
    """One phase = 3 rounds: draw+compare, announce join, withdraw."""

    def init(self) -> None:
        self.rng: random.Random = self.ctx.random_bits
        self.state = "active"  # active | in | out
        self.step = 0
        self.value: float = 0.0
        self.neighbor_values: dict[int, float] = {}
        if self.ctx.degree == 0:
            self.halt(True)

    def send(self) -> dict[int, object]:
        phase_step = self.step % 2
        if self.state == "active" and phase_step == 0:
            self.value = self.rng.random()
            return {port: ("value", self.value) for port in self.ctx.ports}
        if phase_step == 1:
            if self.state == "joining":
                return {port: ("joined",) for port in self.ctx.ports}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        phase_step = self.step % 2
        if phase_step == 0 and self.state == "active":
            values = [
                payload[1]
                for payload in messages.values()
                if payload and payload[0] == "value"
            ]
            if all(self.value > other for other in values):
                self.state = "joining"
        elif phase_step == 1:
            if self.state == "joining":
                self.state = "in"
                self.halt(True)
                return
            if self.state == "active" and any(
                payload and payload[0] == "joined" for payload in messages.values()
            ):
                self.state = "out"
                self.halt(False)
                return
        self.step += 1


def luby_rng_streams(network: Network, seed: int) -> Callable:
    """Per-node random sources for Luby's algorithm.

    Derived from the seed and the sorted node order only — never from the
    engine or execution order — so every backend draws identical bits.
    """
    master = random.Random(seed)
    sources = {
        node: random.Random(master.randrange(2**63))
        for node in sorted(network.graph.nodes, key=str)
    }
    return lambda node: sources[node]


def luby_mis(graph: nx.Graph, seed: int = 0) -> tuple[set, int]:
    """Luby's randomized MIS (plain LOCAL); returns (MIS, rounds).

    Terminates with probability 1; expected O(log n) phases.  Ties are
    broken by fresh draws each phase; isolated nodes join immediately.
    """
    network = Network(graph=graph)
    result = run_synchronous(
        network,
        _LubyNode,
        rng_for=luby_rng_streams(network, seed),
        max_rounds=10_000,
    )
    mis = {node for node, joined in result.outputs.items() if joined}
    return mis, result.rounds


def _mis_from_outputs(outputs: dict) -> set:
    return {node for node, joined in outputs.items() if joined}


class SupportedMIS(Algorithm):
    """``"mis:aapr23"`` — the χ_G-round Supported LOCAL MIS.

    The shared greedy coloring of the support graph is computed without
    communication (all nodes know G); the class sweep costs one round per
    color.
    """

    name = "mis:aapr23"
    families = ("mis",)
    kind = "message"
    description = "[AAPR23] χ_G-round Supported LOCAL MIS by color classes"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        coloring = greedy_coloring(network.graph)
        num_colors = max(coloring.values(), default=-1) + 1

        def extra(node) -> dict:
            return {"color": coloring[node], "num_colors": num_colors}

        return MessagePassingProgram(
            factory=_ColorClassMISNode,
            extra=extra,
            vectorized=VectorizedSpec(
                kernel="mis:class-sweep",
                data={"coloring": coloring, "num_colors": num_colors},
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> set:
        return _mis_from_outputs(outputs)


class LubyMIS(Algorithm):
    """``"mis:luby"`` — Luby's randomized MIS (plain LOCAL baseline)."""

    name = "mis:luby"
    families = ("mis",)
    kind = "message"
    description = "Luby's randomized MIS, seeded per-node randomness"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        return MessagePassingProgram(
            factory=_LubyNode,
            rng_streams=luby_rng_streams,
            vectorized=VectorizedSpec(kernel="mis:luby"),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> set:
        return _mis_from_outputs(outputs)


register_algorithm(SupportedMIS())
register_algorithm(LubyMIS())
