"""Proposal-based bipartite maximal matching — the O(Δ′) upper bound.

Theorem 4.1's lower bound Ω(min{(Δ′−x)/y, log_Δ n}) is matched (for
maximal matching, x = 0, y = 1) by the classic proposal algorithm on
2-colored graphs: in phase i every still-unmatched white node proposes to
its next eligible input neighbor; every unmatched black node accepts one
proposal.  Δ′ phases of two rounds each suffice (a white node has ≤ Δ′
input neighbors to try), and Δ′ is part of the model's initial knowledge,
so every node can run exactly 2Δ′ rounds and halt — round complexity
2Δ′ = O(Δ′), which the experiments measure against the lower bound.
"""

from __future__ import annotations

from collections.abc import Callable

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.graphs.double_cover import mark_bipartition
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm, RunResult, run_synchronous


class _ProposalNode(NodeAlgorithm):
    """One node of the proposal algorithm.

    Each phase is two engine rounds: whites propose (round A), blacks
    answer (round B).  ``self.round`` counts engine rounds; parity selects
    the role.
    """

    def init(self) -> None:
        self.color = self.ctx.extra["color"]
        self.input_ports = self.ctx.extra["input_ports"]
        self.total_phases = self.ctx.extra["delta_prime"]
        self.round = 0
        self.matched_port: int | None = None
        self.next_index = 0
        self.pending_accept: int | None = None
        if self.total_phases == 0:
            self.halt({"matched": None})

    def send(self) -> dict[int, object]:
        proposing_round = self.round % 2 == 0
        if proposing_round and self.color == "white":
            if self.matched_port is None and self.next_index < len(self.input_ports):
                return {self.input_ports[self.next_index]: "propose"}
        if not proposing_round and self.color == "black":
            if self.pending_accept is not None:
                port, self.pending_accept = self.pending_accept, None
                return {port: "accept"}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        proposing_round = self.round % 2 == 0
        if proposing_round and self.color == "black":
            proposals = sorted(
                port for port, text in messages.items() if text == "propose"
            )
            if self.matched_port is None and proposals:
                self.matched_port = proposals[0]
                self.pending_accept = proposals[0]
        if not proposing_round and self.color == "white":
            accepted = [port for port, text in messages.items() if text == "accept"]
            if accepted:
                self.matched_port = accepted[0]
            elif self.matched_port is None:
                self.next_index += 1
        self.round += 1
        if self.round >= 2 * self.total_phases:
            self.halt({"matched": self.matched_port})


def input_delta_prime(input_edges: frozenset) -> int:
    """Δ′: the maximum degree of the input graph G′ = ``input_edges``."""
    input_graph_degrees: dict = {}
    for edge in input_edges:
        for endpoint in edge:
            input_graph_degrees[endpoint] = input_graph_degrees.get(endpoint, 0) + 1
    return max(input_graph_degrees.values(), default=0)


def proposal_extra(network: Network, input_edges: frozenset) -> Callable:
    """The per-node knowledge of the proposal algorithm: own color, input
    ports (ports leading into G′) and Δ′ (part of the model's initial
    knowledge)."""
    support = network.graph
    delta_prime = input_delta_prime(input_edges)

    def extra(node) -> dict:
        input_ports = sorted(
            network.port_to(node, neighbor)
            for neighbor in support.neighbors(node)
            if frozenset((node, neighbor)) in input_edges
        )
        return {
            "color": support.nodes[node]["color"],
            "input_ports": input_ports,
            "delta_prime": delta_prime,
        }

    return extra


def matching_from_outputs(network: Network, outputs: dict) -> set[frozenset]:
    """Decode ``{"matched": port}`` node outputs into a matching edge set
    (white outputs are authoritative; black outputs mirror them)."""
    support = network.graph
    matching: set[frozenset] = set()
    for node, output in outputs.items():
        if support.nodes[node]["color"] != "white":
            continue
        port = output.get("matched")
        if port is not None:
            matching.add(frozenset((node, network.via_port(node, port))))
    return matching


def bipartite_maximal_matching(
    support: nx.Graph, input_edges: frozenset
) -> tuple[set[frozenset], int]:
    """Run the proposal algorithm; return (matching, rounds used).

    ``support`` must carry white/black ``color`` attributes; the matching
    is computed on the input graph G′ = ``input_edges``.
    """
    network = Network(graph=support)
    result: RunResult = run_synchronous(
        network, _ProposalNode, extra=proposal_extra(network, input_edges)
    )
    return matching_from_outputs(network, result.outputs), result.rounds


class ProposalMatching(Algorithm):
    """``"matching:proposal"`` — the proposal algorithm behind the façade.

    Runs on any 2-colored support graph (uncolored bipartite graphs are
    2-colored in place).  Option ``input_edges`` restricts the matching
    to an input subgraph G′ ⊆ G; the default is G′ = G.  A maximal
    matching is x-maximal and y-bounded for every x ≥ 0, y ≥ 1, so the
    whole Π_Δ(x,y) family is declared compatible.
    """

    name = "matching:proposal"
    families = ("matching", "maximal-matching")
    kind = "message"
    description = "O(Δ') proposal matching on 2-colored support graphs"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        support = network.graph
        if any("color" not in support.nodes[node] for node in support.nodes):
            mark_bipartition(support)
        restricted = options.get("input_edges") is not None
        if restricted:
            input_edges = frozenset(
                frozenset(edge) for edge in options["input_edges"]
            )
        else:
            input_edges = frozenset(frozenset(edge) for edge in support.edges)
        return MessagePassingProgram(
            factory=_ProposalNode,
            extra=proposal_extra(network, input_edges),
            vectorized=VectorizedSpec(
                kernel="matching:proposal",
                data={
                    # None ⇒ G′ = G: every port is an input port, and the
                    # kernel skips the per-edge membership scan.
                    "input_edges": input_edges if restricted else None,
                    "delta_prime": input_delta_prime(input_edges),
                },
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> set[frozenset]:
        return matching_from_outputs(network, outputs)


register_algorithm(ProposalMatching())


def greedy_maximal_matching(graph: nx.Graph) -> set[frozenset]:
    """Sequential greedy baseline (for cross-checking the distributed one)."""
    matched: set = set()
    matching: set[frozenset] = set()
    for u, v in sorted(graph.edges, key=str):
        if u not in matched and v not in matched:
            matching.add(frozenset((u, v)))
            matched.update((u, v))
    return matching
