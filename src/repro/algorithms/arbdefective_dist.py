"""Arbdefective coloring by class sweep (the §5 upper-bound companion).

Given a proper k-coloring, sweep its classes in order; when a node's class
comes up it picks the bucket b ∈ {1..c} chosen by the *fewest* of its
already-finalized neighbors, and orients its now-monochromatic edges
towards those finalized neighbors.  By pigeonhole the chosen bucket is
shared by at most ⌊deg(v)/c⌋ ≤ ⌊Δ/c⌋ finalized neighbors, so the
outdegree is at most α := ⌊Δ/c⌋; every monochromatic edge to a *later*
neighbor is oriented by that neighbor.  Cost: one round per class on top
of the coloring — the trade Theorem 5.1 proves cannot be beaten when
(α+1)c ≤ min{Δ′, εΔ/log Δ}.
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import ProblemSpec
from repro.checkers.graph_problems import CheckResult, check_arbdefective_coloring
from repro.local.network import Network
from repro.utils import InvalidParameterError


def class_sweep_arbdefective_coloring(
    graph: nx.Graph, proper_coloring: dict, colors: int
) -> tuple[dict, set[tuple], int, int]:
    """α-arbdefective ``colors``-coloring from a proper coloring.

    Returns (color_of ∈ {1..c}, orientation pairs, α = ⌊Δ/c⌋, rounds).
    Rounds equal the number of classes in the input coloring (each class
    decides one round after seeing earlier classes' bucket choices).
    """
    if colors < 1:
        raise InvalidParameterError(f"need c ≥ 1, got {colors}")
    distinct = sorted(set(proper_coloring.values()), key=str)
    rank = {value: index for index, value in enumerate(distinct)}
    for u, v in graph.edges:
        if proper_coloring[u] == proper_coloring[v]:
            raise InvalidParameterError(
                f"input coloring is not proper: edge {(u, v)} monochromatic"
            )

    delta = max((graph.degree(v) for v in graph.nodes), default=0)
    alpha = delta // colors

    color_of: dict = {}
    orientation: set[tuple] = set()
    for node in sorted(graph.nodes, key=lambda v: rank[proper_coloring[v]]):
        bucket_loads = {bucket: 0 for bucket in range(1, colors + 1)}
        finalized_neighbors: dict[int, list] = {
            bucket: [] for bucket in range(1, colors + 1)
        }
        for neighbor in graph.neighbors(node):
            bucket = color_of.get(neighbor)
            if bucket is not None:
                bucket_loads[bucket] += 1
                finalized_neighbors[bucket].append(neighbor)
        chosen = min(bucket_loads, key=lambda b: (bucket_loads[b], b))
        color_of[node] = chosen
        for neighbor in finalized_neighbors[chosen]:
            orientation.add((node, neighbor))

    rounds = len(distinct)
    return color_of, orientation, alpha, rounds


class ClassSweepArbdefective(Algorithm):
    """``"arbdefective:class-sweep"`` — α-arbdefective c-coloring.

    A global-knowledge construction: starts from a proper coloring
    (option ``proper_coloring``; default the shared class-sweep
    (Δ+1)-coloring, whose rounds are included in the accounting) and
    sweeps its classes.  The solution is a dict with ``color_of``,
    ``orientation``, ``alpha`` and ``colors`` — the exact arguments of
    the §5 checker.
    """

    name = "arbdefective:class-sweep"
    families = ("arbdefective",)
    kind = "global"
    description = "α-arbdefective c-coloring by class sweep (α = ⌊Δ/c⌋)"

    def run_global(
        self, network: Network, spec: ProblemSpec, options: dict, seed: int
    ) -> tuple[dict, int]:
        from repro.algorithms.coloring_dist import class_sweep_coloring

        graph = network.graph
        colors = options.get("colors", spec.param("colors", 2))
        proper = options.get("proper_coloring")
        base_rounds = 0
        if proper is None:
            base, base_rounds = class_sweep_coloring(graph)
            proper = {node: color + 1 for node, color in base.items()}
        color_of, orientation, alpha, sweep_rounds = (
            class_sweep_arbdefective_coloring(graph, proper, colors)
        )
        solution = {
            "color_of": color_of,
            "orientation": orientation,
            "alpha": alpha,
            "colors": colors,
        }
        return solution, base_rounds + sweep_rounds


register_algorithm(ClassSweepArbdefective())


def verify_class_sweep_construction(
    graph: nx.Graph, proper_coloring: dict, colors: int
) -> CheckResult:
    """Run the reduction and validate it with the §5 checker."""
    color_of, orientation, alpha, _rounds = class_sweep_arbdefective_coloring(
        graph, proper_coloring, colors
    )
    return check_arbdefective_coloring(graph, color_of, orientation, alpha, colors)
