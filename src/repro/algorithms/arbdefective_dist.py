"""Arbdefective coloring by class sweep (the §5 upper-bound companion).

Given a proper k-coloring, sweep its classes in order; when a node's class
comes up it picks the bucket b ∈ {1..c} chosen by the *fewest* of its
already-finalized neighbors, and orients its now-monochromatic edges
towards those finalized neighbors.  By pigeonhole the chosen bucket is
shared by at most ⌊deg(v)/c⌋ ≤ ⌊Δ/c⌋ finalized neighbors, so the
outdegree is at most α := ⌊Δ/c⌋; every monochromatic edge to a *later*
neighbor is oriented by that neighbor.  Cost: one round per class on top
of the coloring — the trade Theorem 5.1 proves cannot be beaten when
(α+1)c ≤ min{Δ′, εΔ/log Δ}.
"""

from __future__ import annotations

import networkx as nx

from repro.api.registry import Algorithm, register_algorithm
from repro.api.types import MessagePassingProgram, ProblemSpec, VectorizedSpec
from repro.checkers.graph_problems import CheckResult, check_arbdefective_coloring
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm
from repro.utils import InvalidParameterError


def class_sweep_arbdefective_coloring(
    graph: nx.Graph, proper_coloring: dict, colors: int
) -> tuple[dict, set[tuple], int, int]:
    """α-arbdefective ``colors``-coloring from a proper coloring.

    Returns (color_of ∈ {1..c}, orientation pairs, α = ⌊Δ/c⌋, rounds).
    Rounds equal the number of classes in the input coloring (each class
    decides one round after seeing earlier classes' bucket choices).
    """
    if colors < 1:
        raise InvalidParameterError(f"need c ≥ 1, got {colors}")
    distinct = sorted(set(proper_coloring.values()), key=str)
    rank = {value: index for index, value in enumerate(distinct)}
    for u, v in graph.edges:
        if proper_coloring[u] == proper_coloring[v]:
            raise InvalidParameterError(
                f"input coloring is not proper: edge {(u, v)} monochromatic"
            )

    delta = max((graph.degree(v) for v in graph.nodes), default=0)
    alpha = delta // colors

    color_of: dict = {}
    orientation: set[tuple] = set()
    for node in sorted(graph.nodes, key=lambda v: rank[proper_coloring[v]]):
        bucket_loads = {bucket: 0 for bucket in range(1, colors + 1)}
        finalized_neighbors: dict[int, list] = {
            bucket: [] for bucket in range(1, colors + 1)
        }
        for neighbor in graph.neighbors(node):
            bucket = color_of.get(neighbor)
            if bucket is not None:
                bucket_loads[bucket] += 1
                finalized_neighbors[bucket].append(neighbor)
        chosen = min(bucket_loads, key=lambda b: (bucket_loads[b], b))
        color_of[node] = chosen
        for neighbor in finalized_neighbors[chosen]:
            orientation.add((node, neighbor))

    rounds = len(distinct)
    return color_of, orientation, alpha, rounds


class _ArbdefectiveSweepNode(NodeAlgorithm):
    """Class rank r decides in round offset + r + 1, announcing its bucket.

    The first ``offset`` rounds are idle — they account for the base
    proper coloring's cost when the algorithm computed it itself.  When a
    node's turn comes it takes the least-loaded bucket (ties to the
    lowest), orients the ports towards already-announced same-bucket
    neighbors as outgoing, and broadcasts ``("bucket", b)``.  Everyone
    halts together after ``offset + num_classes`` rounds.
    """

    def init(self) -> None:
        self.rank = self.ctx.extra["rank"]
        self.num_classes = self.ctx.extra["num_classes"]
        self.offset = self.ctx.extra["offset"]
        self.loads = {
            bucket: 0 for bucket in range(1, self.ctx.extra["num_buckets"] + 1)
        }
        self.bucket: int | None = None
        self.port_bucket: dict[int, int] = {}
        self.out_ports: list[int] = []
        self.round = 0
        if self.offset + self.num_classes == 0:
            self.halt({"bucket": None, "out_ports": []})

    def send(self) -> dict[int, object]:
        if self.round < self.offset:
            return {}
        if self.rank == self.round - self.offset and self.bucket is None:
            chosen = min(self.loads, key=lambda b: (self.loads[b], b))
            self.bucket = chosen
            self.out_ports = [
                port
                for port in sorted(self.port_bucket)
                if self.port_bucket[port] == chosen
            ]
            return {port: ("bucket", chosen) for port in self.ctx.ports}
        return {}

    def receive(self, messages: dict[int, object]) -> None:
        for port, payload in messages.items():
            if payload and payload[0] == "bucket":
                self.loads[payload[1]] += 1
                self.port_bucket[port] = payload[1]
        self.round += 1
        if self.round >= self.offset + self.num_classes:
            self.halt({"bucket": self.bucket, "out_ports": self.out_ports})


class ClassSweepArbdefective(Algorithm):
    """``"arbdefective:class-sweep"`` — α-arbdefective c-coloring.

    A message program since the vectorized port: starts from a proper
    coloring (option ``proper_coloring``; default the shared class-sweep
    (Δ+1)-coloring, whose rounds are included in the accounting as idle
    engine rounds) and sweeps its classes.  Class peers decide
    simultaneously — they are non-adjacent in a proper coloring, so the
    result is identical to the sequential
    :func:`class_sweep_arbdefective_coloring`.  The finalized solution is
    a dict with ``color_of``, ``orientation``, ``alpha`` and ``colors`` —
    the exact arguments of the §5 checker.
    """

    name = "arbdefective:class-sweep"
    families = ("arbdefective",)
    kind = "message"
    description = "α-arbdefective c-coloring by class sweep (α = ⌊Δ/c⌋)"

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        from repro.algorithms.coloring_dist import class_sweep_coloring

        graph = network.graph
        colors = options.get("colors", spec.param("colors", 2))
        if colors < 1:
            raise InvalidParameterError(f"need c ≥ 1, got {colors}")
        proper = options.get("proper_coloring")
        offset = 0
        if proper is None:
            base, offset = class_sweep_coloring(graph)
            proper = {node: color + 1 for node, color in base.items()}
        distinct = sorted(set(proper.values()), key=str)
        rank = {value: index for index, value in enumerate(distinct)}
        for u, v in graph.edges:
            if proper[u] == proper[v]:
                raise InvalidParameterError(
                    f"input coloring is not proper: edge {(u, v)} monochromatic"
                )
        num_classes = len(distinct)
        rank_of = {node: rank[proper[node]] for node in graph.nodes}

        def extra(node) -> dict:
            return {
                "rank": rank_of[node],
                "num_classes": num_classes,
                "offset": offset,
                "num_buckets": colors,
            }

        return MessagePassingProgram(
            factory=_ArbdefectiveSweepNode,
            extra=extra,
            vectorized=VectorizedSpec(
                kernel="arbdefective:class-sweep",
                data={
                    "rank_of": rank_of,
                    "num_classes": num_classes,
                    "offset": offset,
                    "num_buckets": colors,
                },
            ),
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> dict:
        colors = options.get("colors", spec.param("colors", 2))
        color_of: dict = {}
        orientation: set[tuple] = set()
        for node, out in outputs.items():
            color_of[node] = out["bucket"]
            for port in out["out_ports"]:
                orientation.add((node, network.via_port(node, port)))
        return {
            "color_of": color_of,
            "orientation": orientation,
            "alpha": network.max_degree // colors,
            "colors": colors,
        }


register_algorithm(ClassSweepArbdefective())


def verify_class_sweep_construction(
    graph: nx.Graph, proper_coloring: dict, colors: int
) -> CheckResult:
    """Run the reduction and validate it with the §5 checker."""
    color_of, orientation, alpha, _rounds = class_sweep_arbdefective_coloring(
        graph, proper_coloring, colors
    )
    return check_arbdefective_coloring(graph, color_of, orientation, alpha, colors)
