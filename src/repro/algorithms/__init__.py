"""Distributed upper-bound algorithms bracketing the paper's lower bounds."""

from repro.algorithms.arbdefective_dist import (
    class_sweep_arbdefective_coloring,
    verify_class_sweep_construction,
)
from repro.algorithms.coloring_dist import (
    class_sweep_coloring,
    coloring_from_ids,
)
from repro.algorithms.matching_dist import (
    bipartite_maximal_matching,
    greedy_maximal_matching,
)
from repro.algorithms.mis import luby_mis, supported_mis_by_coloring
from repro.algorithms.orientation import (
    global_sinkless_orientation,
    supported_sinkless_orientation_rounds,
)
from repro.algorithms.ruling_dist import (
    mis_from_ruling_sweep,
    ruling_set_by_class_sweep,
)

__all__ = [
    "bipartite_maximal_matching",
    "class_sweep_arbdefective_coloring",
    "class_sweep_coloring",
    "coloring_from_ids",
    "global_sinkless_orientation",
    "greedy_maximal_matching",
    "luby_mis",
    "mis_from_ruling_sweep",
    "ruling_set_by_class_sweep",
    "supported_mis_by_coloring",
    "supported_sinkless_orientation_rounds",
    "verify_class_sweep_construction",
]
