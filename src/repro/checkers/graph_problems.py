"""Validity checkers for the concrete graph problems of the paper.

Each checker takes a graph and a candidate solution and returns a
:class:`CheckResult` naming the first violation, so failed experiments are
diagnosable.  Definitions follow the paper: x-maximal y-matching (§1.1),
α-arbdefective c-coloring (§5), α-arbdefective c-colored β-ruling set
(§6.1), MIS, sinkless orientation, proper coloring.
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class CheckResult:
    """Outcome of a validity check."""

    valid: bool
    reason: str = ""

    def __bool__(self) -> bool:
        return self.valid


def _ok() -> CheckResult:
    return CheckResult(valid=True)


def _fail(reason: str) -> CheckResult:
    return CheckResult(valid=False, reason=reason)


def check_x_maximal_y_matching(
    graph: nx.Graph,
    matching: set[frozenset],
    x: int,
    y: int,
    delta: int | None = None,
) -> CheckResult:
    """x-maximal y-matching (paper §1.1).

    Every node is incident to ≤ y matching edges; every unmatched node v
    has ≥ min{deg(v), Δ−x} matched neighbors.  Δ defaults to the graph's
    maximum degree.
    """
    if delta is None:
        delta = max((graph.degree(v) for v in graph.nodes), default=0)
    for edge in matching:
        u, v = tuple(edge)
        if not graph.has_edge(u, v):
            return _fail(f"matching edge {(u, v)} is not a graph edge")
    incidence = {node: 0 for node in graph.nodes}
    for edge in matching:
        for endpoint in edge:
            incidence[endpoint] += 1
    for node, count in incidence.items():
        if count > y:
            return _fail(f"node {node!r} is matched {count} > y = {y} times")
    matched = {node for node, count in incidence.items() if count > 0}
    for node in graph.nodes:
        if node in matched:
            continue
        matched_neighbors = sum(
            1 for neighbor in graph.neighbors(node) if neighbor in matched
        )
        needed = min(graph.degree(node), delta - x)
        if matched_neighbors < needed:
            return _fail(
                f"unmatched node {node!r} has {matched_neighbors} matched "
                f"neighbors < min{{deg, Δ−x}} = {needed}"
            )
    return _ok()


def check_maximal_matching(graph: nx.Graph, matching: set[frozenset]) -> CheckResult:
    """Maximal matching = 0-maximal 1-matching."""
    return check_x_maximal_y_matching(graph, matching, x=0, y=1)


def check_proper_coloring(graph: nx.Graph, color_of: dict) -> CheckResult:
    """Every node colored; no monochromatic edge."""
    for node in graph.nodes:
        if node not in color_of:
            return _fail(f"node {node!r} has no color")
    for u, v in graph.edges:
        if color_of[u] == color_of[v]:
            return _fail(f"edge {(u, v)} is monochromatic (color {color_of[u]})")
    return _ok()


def check_arbdefective_coloring(
    graph: nx.Graph,
    color_of: dict,
    orientation: set[tuple],
    alpha: int,
    colors: int,
) -> CheckResult:
    """α-arbdefective c-coloring (paper §5).

    Colors in {1..c}; every monochromatic edge is oriented; outdegree ≤ α.
    """
    for node in graph.nodes:
        color = color_of.get(node)
        if color is None:
            return _fail(f"node {node!r} has no color")
        if not 1 <= color <= colors:
            return _fail(f"node {node!r} has color {color} outside 1..{colors}")
    oriented_pairs = set(orientation)
    oriented_edges = {frozenset(pair) for pair in oriented_pairs}
    for tail, head in oriented_pairs:
        if not graph.has_edge(tail, head):
            return _fail(f"oriented pair {(tail, head)} is not an edge")
        if color_of[tail] != color_of[head]:
            return _fail(f"oriented pair {(tail, head)} is not monochromatic")
    for u, v in graph.edges:
        if color_of[u] == color_of[v] and frozenset((u, v)) not in oriented_edges:
            return _fail(f"monochromatic edge {(u, v)} is unoriented")
    outdegree: dict = {node: 0 for node in graph.nodes}
    for tail, _head in oriented_pairs:
        outdegree[tail] += 1
    for node, count in outdegree.items():
        if count > alpha:
            return _fail(f"node {node!r} has outdegree {count} > α = {alpha}")
    return _ok()


def check_ruling_set(
    graph: nx.Graph, ruling_set: set, beta: int, independent: bool = False
) -> CheckResult:
    """β-domination: every node has an S-member within distance β.

    With ``independent=True`` additionally checks S is independent (the
    (2,β)-ruling set condition)."""
    if not ruling_set:
        if graph.number_of_nodes() == 0:
            return _ok()
        return _fail("empty ruling set on a non-empty graph")
    distances = nx.multi_source_dijkstra_path_length(graph, set(ruling_set))
    for node in graph.nodes:
        if distances.get(node, float("inf")) > beta:
            return _fail(f"node {node!r} is farther than β = {beta} from S")
    if independent:
        members = sorted(ruling_set, key=str)
        for index, u in enumerate(members):
            for v in members[index + 1 :]:
                if graph.has_edge(u, v):
                    return _fail(f"S contains adjacent nodes {u!r}, {v!r}")
    return _ok()


def check_arbdefective_colored_ruling_set(
    graph: nx.Graph,
    ruling_set: set,
    color_of: dict,
    orientation: set[tuple],
    alpha: int,
    colors: int,
    beta: int,
) -> CheckResult:
    """α-arbdefective c-colored β-ruling set (paper §6.1)."""
    domination = check_ruling_set(graph, ruling_set, beta)
    if not domination:
        return domination
    induced = graph.subgraph(ruling_set)
    coloring = check_arbdefective_coloring(
        induced, {v: color_of[v] for v in ruling_set}, orientation, alpha, colors
    )
    if not coloring:
        return _fail(f"induced coloring invalid: {coloring.reason}")
    return _ok()


def check_mis(graph: nx.Graph, independent_set: set) -> CheckResult:
    """Maximal independent set: independent + dominating at distance 1."""
    return check_ruling_set(graph, independent_set, beta=1, independent=True)


def check_sinkless_orientation(
    graph: nx.Graph, orientation: dict[frozenset, object]
) -> CheckResult:
    """Every edge oriented (orientation[edge] = head); no node is a sink.

    Nodes of degree < Δ are exempt in some formulations; here every node
    with degree ≥ 1 must have an outgoing edge, matching the white
    constraint of the SO encoding on regular graphs.
    """
    for edge in graph.edges:
        key = frozenset(edge)
        if key not in orientation:
            return _fail(f"edge {tuple(edge)} is unoriented")
        if orientation[key] not in key:
            return _fail(f"head of {tuple(edge)} is not an endpoint")
    for node in graph.nodes:
        if graph.degree(node) == 0:
            continue
        has_outgoing = any(
            orientation[frozenset((node, neighbor))] != node
            for neighbor in graph.neighbors(node)
        )
        if not has_outgoing:
            return _fail(f"node {node!r} is a sink")
    return _ok()
