"""Validity checkers: formalism solutions and concrete graph problems."""

from repro.checkers.graph_problems import (
    CheckResult,
    check_arbdefective_colored_ruling_set,
    check_arbdefective_coloring,
    check_maximal_matching,
    check_mis,
    check_proper_coloring,
    check_ruling_set,
    check_sinkless_orientation,
    check_x_maximal_y_matching,
)
from repro.checkers.solutions import (
    check_bipartite_solution,
    check_half_edge_labeling,
)

__all__ = [
    "CheckResult",
    "check_arbdefective_colored_ruling_set",
    "check_arbdefective_coloring",
    "check_bipartite_solution",
    "check_half_edge_labeling",
    "check_maximal_matching",
    "check_mis",
    "check_proper_coloring",
    "check_ruling_set",
    "check_sinkless_orientation",
    "check_x_maximal_y_matching",
]
