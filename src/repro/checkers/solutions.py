"""Checkers for black-white-formalism solutions on concrete graphs.

Three solution shapes appear in the paper and are all validated here:

* *bipartite* solutions: one label per edge of a 2-colored graph (§2);
* *half-edge* labelings: a label per (node, neighbor) pair of a plain
  graph — the shape produced by the Lemma 5.3 / 6.3 conversions, validated
  against the problem on the graph's incidence structure (node constraint
  on nodes, edge constraint on the pair of half-edge labels);
* *S-solutions* (Definition 5.6): constraints active only inside S.
"""

from __future__ import annotations

import networkx as nx

from repro.checkers.graph_problems import CheckResult
from repro.formalism.configurations import Configuration, Label
from repro.formalism.problems import Problem


def _ok() -> CheckResult:
    return CheckResult(valid=True)


def _fail(reason: str) -> CheckResult:
    return CheckResult(valid=False, reason=reason)


def check_bipartite_solution(
    graph: nx.Graph, problem: Problem, labeling: dict[frozenset, Label]
) -> CheckResult:
    """Validate an edge labeling of a 2-colored graph (paper §2 semantics:
    only nodes of degree exactly d_W / d_B are constrained)."""
    for edge in graph.edges:
        if frozenset(edge) not in labeling:
            return _fail(f"edge {tuple(edge)} is unlabeled")
    for node, data in graph.nodes(data=True):
        color = data.get("color")
        if color == "white":
            constraint, arity = problem.white, problem.white_arity
        elif color == "black":
            constraint, arity = problem.black, problem.black_arity
        else:
            return _fail(f"node {node!r} has no white/black color")
        if graph.degree(node) != arity:
            continue
        incident = [
            labeling[frozenset((node, neighbor))]
            for neighbor in graph.neighbors(node)
        ]
        if not constraint.allows_multiset(incident):
            return _fail(
                f"{color} node {node!r} sees {Configuration(incident)} ∉ "
                f"{color} constraint"
            )
    return _ok()


def check_half_edge_labeling(
    graph: nx.Graph,
    problem: Problem,
    labels: dict[tuple, Label],
    s_nodes: set | None = None,
) -> CheckResult:
    """Validate a half-edge labeling of a plain graph against Π.

    Node constraint (white) applies to nodes of degree exactly d_W (inside
    S when given); edge constraint (black, arity 2) applies to the two
    half-edge labels of each edge (with both endpoints in S when given) —
    the non-bipartite semantics via the incidence graph.
    """
    if s_nodes is None:
        s_nodes = set(graph.nodes)
    for node in graph.nodes:
        if node not in s_nodes:
            continue
        for neighbor in graph.neighbors(node):
            if (node, neighbor) not in labels:
                return _fail(f"half-edge {(node, neighbor)} is unlabeled")
        if graph.degree(node) != problem.white_arity:
            continue
        incident = [
            labels[(node, neighbor)] for neighbor in graph.neighbors(node)
        ]
        if not problem.white.allows_multiset(incident):
            return _fail(
                f"node {node!r} sees {Configuration(incident)} ∉ node constraint"
            )
    if problem.black_arity != 2:
        return _fail(
            f"half-edge checking expects edge constraints of arity 2, got "
            f"{problem.black_arity}"
        )
    for u, v in graph.edges:
        if u not in s_nodes or v not in s_nodes:
            continue
        pair = [labels[(u, v)], labels[(v, u)]]
        if not problem.black.allows_multiset(pair):
            return _fail(
                f"edge {(u, v)} carries {Configuration(pair)} ∉ edge constraint"
            )
    return _ok()
