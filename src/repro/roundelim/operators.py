"""The round elimination operators R, R̄ and RE (paper Appendix B).

Given Π = (Σ, C_W, C_B), the problem R(Π) = (Σ′, C′_W, C′_B) is defined by:

* C′_B — the *maximal* configurations {L1,…,L_dB} of non-empty label sets
  such that every choice (ℓ1,…,ℓ_dB) ∈ L1×…×L_dB lies in C_B.  A
  configuration is removed as non-maximal when another one dominates it
  component-wise (up to permutation) with at least one strict inclusion.
* Σ′ — the label sets occurring in C′_B.
* C′_W — all size-d_W multisets over Σ′ admitting *some* choice in C_W.

R̄ is R with the two constraints' roles swapped, and RE(Π) := R̄(R(Π)).

The maximal-configuration computation is exact: validity of set
configurations is downward closed (component-wise), so every maximal
configuration is reachable from a singleton seed {ℓ1}…{ℓ_dB} (one per
allowed base configuration) by single-label additions, and a configuration
is maximal iff no single addition keeps it valid.  The search memoizes
canonical forms; a configurable budget guards against blow-up.  The
budget counts every *popped* configuration — duplicates included — so a
duplicate-heavy frontier cannot exceed it unbounded, and the seed order
is explicitly sorted so the same budget raises at the same point in
every process (hash randomization does not leak into the search order).

Two interchangeable engines compute the operators:

* ``"kernel"`` (default) — the bitmask-compiled search of
  :mod:`repro.roundelim.kernel` over the integer domain of
  :mod:`repro.formalism.encoding`; same outputs, same budget semantics,
  several times faster (``benchmarks/bench_roundelim_kernel.py``).
* ``"reference"`` — the direct string/frozenset implementation below,
  kept as the executable specification the kernel is tested against.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterator
from itertools import product

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.labels import set_label, set_label_members
from repro.formalism.problems import Problem
from repro.utils import InvalidParameterError, SolverLimitError
from repro.utils.multiset import all_multisets

SetConfig = tuple[frozenset[Label], ...]

DEFAULT_BUDGET = 2_000_000

#: The engines ``apply_R`` / ``apply_R_bar`` / ``round_elimination`` accept.
ENGINES = ("kernel", "reference")

DEFAULT_ENGINE = "kernel"


def _validate_engine(engine: str) -> None:
    if engine not in ENGINES:
        raise InvalidParameterError(
            f"unknown round elimination engine {engine!r}; known: {list(ENGINES)}"
        )


#: Cache of per-slot sort keys.  Canonicalization sorts every slot of
#: every candidate configuration; the same frozensets recur throughout a
#: search, so the (len, sorted-tuple) key is computed once per distinct
#: slot.  Cleared when it reaches ``_SLOT_KEY_CACHE_LIMIT`` entries so a
#: long-lived process iterating RE over many problems cannot grow
#: without bound (one Δ=5 matching step alone produces thousands of
#: distinct label sets).
_SLOT_KEY_CACHE: dict[frozenset, tuple[int, tuple[Label, ...]]] = {}

_SLOT_KEY_CACHE_LIMIT = 500_000


def _slot_sort_key(slot: frozenset[Label]) -> tuple[int, tuple[Label, ...]]:
    key = _SLOT_KEY_CACHE.get(slot)
    if key is None:
        if len(_SLOT_KEY_CACHE) >= _SLOT_KEY_CACHE_LIMIT:
            _SLOT_KEY_CACHE.clear()
        key = (len(slot), tuple(sorted(slot)))
        _SLOT_KEY_CACHE[slot] = key
    return key


def _canonical_set_config(slots: Iterator[frozenset[Label]] | SetConfig) -> SetConfig:
    """Canonical form of a multiset of label sets: sorted tuple."""
    return tuple(sorted(slots, key=_slot_sort_key))


def _addition_valid(
    slots: SetConfig, index: int, new_label: Label, allowed: frozenset[tuple[Label, ...]]
) -> bool:
    """Is the config still valid after adding ``new_label`` to slot ``index``?

    Only choices that pick ``new_label`` from slot ``index`` are new, so
    only those are checked.
    """
    others = [slots[j] for j in range(len(slots)) if j != index]
    for choice in product(*others):
        candidate = tuple(sorted(choice + (new_label,)))
        if candidate not in allowed:
            return False
    return True


def maximal_set_configurations(
    constraint: Constraint,
    alphabet: frozenset[Label],
    budget: int = DEFAULT_BUDGET,
    engine: str = DEFAULT_ENGINE,
) -> frozenset[SetConfig]:
    """All maximal set configurations of a constraint (the C′_B of R).

    ``budget`` bounds the number of popped configurations (duplicates
    included); the search raises :class:`SolverLimitError` rather than
    silently truncate, because downstream lower-bound certificates rely
    on exactness.
    """
    _validate_engine(engine)
    if engine == "kernel":
        from repro.roundelim.kernel import maximal_set_configurations_kernel

        return maximal_set_configurations_kernel(constraint, alphabet, budget)

    arity = constraint.size
    allowed: frozenset[tuple[Label, ...]] = frozenset(
        config.labels for config in constraint.configurations
    )
    labels = sorted(alphabet)

    seeds = sorted(
        {
            _canonical_set_config(tuple(frozenset([label]) for label in config.labels))
            for config in constraint.configurations
        },
        key=lambda config: tuple(_slot_sort_key(slot) for slot in config),
    )
    # Every member of ``seen`` is a known-valid configuration (seeds are
    # valid by construction, and configs are only added after a
    # successful addition check), and deduplication happens at *push*
    # time, so each configuration is popped at most once and the popped
    # count is exactly the number of distinct valid configs processed.
    seen: set[SetConfig] = set(seeds)
    maximal: set[SetConfig] = set()
    stack = list(seeds)
    steps = 0
    while stack:
        config = stack.pop()
        steps += 1
        if steps > budget:
            raise SolverLimitError(
                f"maximal-configuration search exceeded budget {budget}"
            )
        extendable = False
        for index in range(arity):
            slot = config[index]
            for label in labels:
                if label in slot:
                    continue
                if _addition_valid(config, index, label, allowed):
                    extendable = True
                    grown = _canonical_set_config(
                        config[:index] + (slot | {label},) + config[index + 1 :]
                    )
                    if grown not in seen:
                        seen.add(grown)
                        stack.append(grown)
        if not extendable:
            maximal.add(config)
    return frozenset(maximal)


def _existential_white_constraint(
    new_alphabet: list[frozenset[Label]],
    base_constraint: Constraint,
    arity: int,
) -> list[tuple[frozenset[Label], ...]]:
    """All size-``arity`` multisets of sets from ``new_alphabet`` with some
    choice in ``base_constraint`` (the C′_W of R)."""
    encoded = {set_label(slot): slot for slot in new_alphabet}
    result: list[tuple[frozenset[Label], ...]] = []
    for names in all_multisets(encoded, arity):
        slots = tuple(encoded[name] for name in names)
        if _exists_choice(slots, base_constraint):
            result.append(slots)
    return result


def _exists_choice(slots: tuple[frozenset[Label], ...], constraint: Constraint) -> bool:
    """DFS with partial-extension pruning: ∃ choice over slots in constraint?

    Slots are visited smallest-first and each slot's label order is
    computed once, outside the recursion.
    """

    ordered = sorted(slots, key=len)
    slot_orders = [sorted(slot) for slot in ordered]

    def recurse(index: int, partial: Counter[Label]) -> bool:
        if index == len(ordered):
            return constraint.allows_multiset(partial.elements())
        for label in slot_orders[index]:
            partial[label] += 1
            if constraint.allows_partial(partial, index + 1) and recurse(
                index + 1, partial
            ):
                partial[label] -= 1
                return True
            partial[label] -= 1
            if partial[label] == 0:
                del partial[label]
        return False

    return recurse(0, Counter())


def apply_R(
    problem: Problem,
    budget: int = DEFAULT_BUDGET,
    engine: str = DEFAULT_ENGINE,
) -> Problem:
    """The operator R of Appendix B.

    ``engine`` selects the computation backend (see module docstring);
    both produce the identical :class:`Problem`.
    """
    _validate_engine(engine)
    if engine == "kernel":
        from repro.roundelim.kernel import apply_R_kernel

        return apply_R_kernel(problem, budget=budget)

    maximal = maximal_set_configurations(
        problem.black, problem.alphabet, budget, engine=engine
    )
    new_alphabet_sets = sorted(
        {slot for config in maximal for slot in config},
        key=_slot_sort_key,
    )
    black_configs = [
        Configuration(set_label(slot) for slot in config) for config in maximal
    ]
    white_slot_tuples = _existential_white_constraint(
        new_alphabet_sets, problem.white, problem.white_arity
    )
    white_configs = [
        Configuration(set_label(slot) for slot in slots)
        for slots in white_slot_tuples
    ]
    return Problem.from_constraints(
        white=Constraint(white_configs),
        black=Constraint(black_configs),
        name=f"R({problem.name})",
    )


def apply_R_bar(
    problem: Problem,
    budget: int = DEFAULT_BUDGET,
    engine: str = DEFAULT_ENGINE,
) -> Problem:
    """The operator R̄ of Appendix B (R with constraint roles reversed)."""
    swapped = apply_R(problem.swap_sides(), budget=budget, engine=engine)
    result = swapped.swap_sides()
    return Problem(
        alphabet=result.alphabet,
        white=result.white,
        black=result.black,
        name=f"R̄({problem.name})",
    )


def round_elimination(
    problem: Problem,
    budget: int = DEFAULT_BUDGET,
    engine: str = DEFAULT_ENGINE,
) -> Problem:
    """RE(Π) := R̄(R(Π)) — one full round elimination step.

    Arities are preserved: if Π has white configurations of size Δ and black
    configurations of size r, so does RE(Π) (paper §2, "Round elimination").
    """
    result = apply_R_bar(
        apply_R(problem, budget=budget, engine=engine), budget=budget, engine=engine
    )
    return Problem(
        alphabet=result.alphabet,
        white=result.white,
        black=result.black,
        name=f"RE({problem.name})",
    )


def compress_labels(
    problem: Problem, prefix: str = "a"
) -> tuple[Problem, dict[Label, Label]]:
    """Rename (possibly deeply nested) set labels to short fresh names.

    Returns the renamed problem and the mapping old → new.  Iterated RE
    nests set labels exponentially deep; compressing between steps keeps
    problems readable and comparisons fast.
    """
    ordered = sorted(problem.alphabet)
    mapping = {label: f"{prefix}{index}" for index, label in enumerate(ordered)}
    return problem.rename(mapping, name=problem.name), mapping


def decode_label_sets(problem: Problem) -> dict[Label, frozenset[Label]]:
    """Decode every set label of an R/R̄ output back to its member set."""
    return {label: set_label_members(label) for label in problem.alphabet}
