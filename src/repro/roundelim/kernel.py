"""The bitmask-compiled round elimination kernel (``engine="kernel"``).

This is a drop-in replacement for the hot path of
:mod:`repro.roundelim.operators` — the maximal-set-configuration search
and the existential white constraint of the operator R (paper
Appendix B) — compiled to the integer domain of
:mod:`repro.formalism.encoding`:

* a label set is one bitmask, a set configuration a tuple of masks;
* addition validity (``_addition_valid`` in the reference) checks
  choices against a hash set of int tuples, prunes failing branches
  early through the per-prefix partial-extension table, enumerates
  choices from *identical* slots as multisets instead of tuples
  (``C(p+t-1, t)`` combinations instead of ``p^t``), and memoizes the
  result per ``(other slots, new label)`` — sibling configurations in
  the search frontier share other-slot tuples massively;
* canonicalization sorts masks by a cached ``(popcount, bits)`` key, the
  exact integer mirror of the reference's ``(len(slot), sorted(slot))``;
* domination between slots is a mask subset test
  (``mask & other == mask``) instead of a frozenset comparison.

The kernel's contract, enforced by ``tests/roundelim/test_kernel.py``:
decoded outputs reproduce the reference implementation *exactly* — the
same set-label names, the same :class:`~repro.formalism.problems.Problem`
equality — and the search visits configurations in the same order, so
the same ``budget`` raises :class:`~repro.utils.SolverLimitError` at the
same point on both engines.
"""

from __future__ import annotations

from bisect import bisect_right
from itertools import combinations_with_replacement

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.encoding import (
    ConstraintTable,
    IntConfig,
    LabelEncoding,
    bits_of,
    mask_sort_key,
)
from repro.formalism.labels import set_label
from repro.formalism.problems import Problem
from repro.utils import SolverLimitError

#: A set configuration in the kernel domain: a canonical tuple of masks.
MaskConfig = tuple[int, ...]


def mask_dominates(big: int, small: int) -> bool:
    """Subset test on label-set masks: ``small`` ⊆ ``big``."""
    return small & big == small


class _SearchContext:
    """Per-search caches over one compiled constraint table.

    Holds the bit decompositions, the canonical mask sort keys and the
    memoized addition-validity verdicts.  One context lives exactly as
    long as one operator application, so the caches cannot grow beyond
    a single problem's working set.
    """

    __slots__ = (
        "table",
        "pair_ok",
        "_bits",
        "_keys",
        "_valid",
        "_combos",
        "_compat",
        "_slot_keys",
        "complete",
    )

    def __init__(self, table: ConstraintTable) -> None:
        self.table = table
        self._bits: dict[int, tuple[int, ...]] = {}
        self._keys: dict[int, tuple[int, tuple[int, ...]]] = {}
        self._valid: dict[MaskConfig, int] = {}
        self._combos: dict[tuple[int, int], tuple[IntConfig, ...]] = {}
        self._compat: dict[int, int] = {}
        self._slot_keys: dict[MaskConfig, list] = {}
        # pair_ok[b]: mask of labels that co-occur with b in some allowed
        # configuration.  A label addition can only be valid when every
        # other slot is a subset of pair_ok[new label] — a single mask
        # test that rejects most invalid additions without enumeration.
        pair_ok: dict[int, int] = {}
        for partial in table.partials:
            if len(partial) == 2:
                first, second = partial
                pair_ok[first] = pair_ok.get(first, 0) | (1 << second)
                pair_ok[second] = pair_ok.get(second, 0) | (1 << first)
        self.pair_ok = pair_ok
        # complete[m]: the mask of labels b with insert(m, b) allowed,
        # for every allowed configuration minus one occurrence.  Turns
        # "which labels complete this choice multiset" into one lookup.
        complete: dict[IntConfig, int] = {}
        for config in table.allowed:
            previous = None
            for position, bit in enumerate(config):
                if bit == previous:
                    continue
                previous = bit
                rest = config[:position] + config[position + 1 :]
                complete[rest] = complete.get(rest, 0) | (1 << bit)
        self.complete = complete

    def bits(self, mask: int) -> tuple[int, ...]:
        got = self._bits.get(mask)
        if got is None:
            got = bits_of(mask)
            self._bits[mask] = got
        return got

    def key(self, mask: int) -> tuple[int, tuple[int, ...]]:
        got = self._keys.get(mask)
        if got is None:
            got = mask_sort_key(mask)
            self._keys[mask] = got
        return got

    def canonical(self, masks) -> MaskConfig:
        """Canonical multiset-of-sets form: masks sorted by cached key."""
        return tuple(sorted(masks, key=self.key))

    def combos(self, mask: int, count: int) -> tuple[IntConfig, ...]:
        """All multisets of ``count`` labels from ``mask``, materialized
        once per (mask, count) — the choices a group of ``count``
        identical slots contributes."""
        memo_key = (mask, count)
        got = self._combos.get(memo_key)
        if got is None:
            got = tuple(combinations_with_replacement(self.bits(mask), count))
            self._combos[memo_key] = got
        return got

    def compat_mask(self, union_mask: int, candidate_mask: int) -> int:
        """Candidate labels pair-compatible with *every* label in
        ``union_mask``: the intersection of their ``pair_ok`` masks.

        A label outside this mask cannot be a valid addition next to any
        slot covered by ``union_mask`` (pairwise necessary condition).
        Cached per union mask — the key space is tiny.
        """
        got = self._compat.get(union_mask)
        if got is None:
            got = candidate_mask
            pair_ok = self.pair_ok
            for bit in self.bits(union_mask):
                got &= pair_ok.get(bit, 0)
                if not got:
                    break
            self._compat[union_mask] = got
        return got

    def slot_keys(self, masks: MaskConfig) -> list:
        """The cached sort keys of a canonical mask tuple (for bisect)."""
        got = self._slot_keys.get(masks)
        if got is None:
            got = [self.key(mask) for mask in masks]
            self._slot_keys[masks] = got
        return got

    def choice_multisets(self, others: MaskConfig) -> frozenset[IntConfig] | None:
        """The distinct sorted multisets generated by one choice per slot
        of ``others`` — or None when some generated multiset is not even
        a sub-multiset of an allowed configuration (then *no* label can
        be validly added next to these slots).

        Built level by level with set deduplication: permutation-
        equivalent branches of the choice product collapse, so the work
        is bounded by the number of distinct multisets, not the product
        size.
        """
        combos = self.combos
        partials = self.table.partials
        frontier: set[IntConfig] = {()}
        start = 0
        count = len(others)
        while start < count:
            mask = others[start]
            stop = start
            while stop < count and others[stop] == mask:
                stop += 1
            grown_frontier: set[IntConfig] = set()
            for acc in frontier:
                for combo in combos(mask, stop - start):
                    grown = tuple(sorted(acc + combo))
                    if grown in grown_frontier:
                        continue
                    if grown not in partials:
                        return None
                    grown_frontier.add(grown)
            frontier = grown_frontier
            start = stop
        return frozenset(frontier)

    def valid_additions(self, others: MaskConfig, candidate_mask: int) -> int:
        """The mask of labels whose addition next to ``others`` keeps
        every choice allowed.

        Addition validity only involves the *other* slots and the new
        label — never the slot being grown — so the verdict for a whole
        ``others`` tuple is one mask, shared by every configuration and
        every slot position that produces these others.  Cached per
        ``others``.
        """
        got = self._valid.get(others)
        if got is None:
            union = 0
            for mask in others:
                union |= mask
            got = self.compat_mask(union, candidate_mask)
            if got:
                choices = self.choice_multisets(others)
                if choices is None:
                    got = 0
                else:
                    complete = self.complete
                    for multiset in choices:
                        got &= complete.get(multiset, 0)
                        if not got:
                            break
            self._valid[others] = got
        return got

    def exists_choice(self, slot_masks) -> bool:
        """∃ choice (one label per slot) forming an allowed configuration?

        DFS over slots ordered smallest-first, with identical slots
        grouped into multiset choices and the partial-extension table
        pruning dead branches after every group.
        """
        ordered = sorted(slot_masks, key=self.key)
        groups: list[tuple[int, int]] = []
        for mask in ordered:
            if groups and groups[-1][0] == mask:
                groups[-1] = (mask, groups[-1][1] + 1)
            else:
                groups.append((mask, 1))

        allowed = self.table.allowed
        partials = self.table.partials

        if not groups:
            return () in allowed

        combos = self.combos
        last = len(groups) - 1

        def recurse(group_index: int, acc: IntConfig) -> bool:
            mask, count = groups[group_index]
            if group_index == last:
                for combo in combos(mask, count):
                    if tuple(sorted(acc + combo)) in allowed:
                        return True
                return False
            for combo in combos(mask, count):
                grown = tuple(sorted(acc + combo))
                if grown in partials and recurse(group_index + 1, grown):
                    return True
            return False

        return recurse(0, ())


def maximal_mask_configs(
    table: ConstraintTable, candidate_bits, budget: int
) -> frozenset[MaskConfig]:
    """All maximal set configurations of a compiled constraint, as mask
    tuples (the kernel form of ``maximal_set_configurations``).

    ``candidate_bits`` are the ascending bit indices of the labels
    eligible as additions (the alphabet passed by the caller; seeds may
    use further labels occurring in the constraint itself).

    The search structure — seed order, slot/label iteration order, the
    "count every popped configuration" budget — mirrors the reference
    implementation exactly, so both engines raise
    :class:`SolverLimitError` at the same budget.
    """
    arity = table.arity
    candidate_mask = 0
    for bit in candidate_bits:
        candidate_mask |= 1 << bit
    context = _SearchContext(table)
    seeds = sorted(
        {
            context.canonical(tuple(1 << bit for bit in config))
            for config in table.allowed
        },
        key=lambda config: tuple(context.key(mask) for mask in config),
    )
    # ``seen`` holds known-valid configurations only (seeds are valid by
    # construction; additions are vetted before entering).  Push-time
    # dedup means each config is popped at most once, mirroring the
    # reference loop, and — because validity of a set configuration
    # depends only on the multiset, not the path — ``grown in seen``
    # certifies an addition valid without re-running the check.
    seen: set[MaskConfig] = set(seeds)
    maximal: set[MaskConfig] = set()
    stack = list(seeds)
    key = context.key
    bits = context.bits
    slot_keys = context.slot_keys
    valid_additions = context.valid_additions
    steps = 0
    while stack:
        config = stack.pop()
        steps += 1
        if steps > budget:
            raise SolverLimitError(
                f"maximal-configuration search exceeded budget {budget}"
            )
        extendable = False
        for index in range(arity):
            slot = config[index]
            others = config[:index] + config[index + 1 :]
            valid_bits = valid_additions(others, candidate_mask) & ~slot
            if not valid_bits:
                continue
            extendable = True
            # ``others`` inherits canonical order, so the grown config
            # is ``others`` with the enlarged slot bisected in by its
            # cached key — no re-sort per valid label.
            others_keys = slot_keys(others)
            for bit in bits(valid_bits):
                new_mask = slot | (1 << bit)
                position = bisect_right(others_keys, key(new_mask))
                grown = others[:position] + (new_mask,) + others[position:]
                if grown not in seen:
                    seen.add(grown)
                    stack.append(grown)
        if not extendable:
            maximal.add(config)
    return frozenset(maximal)


def maximal_set_configurations_kernel(
    constraint: Constraint, alphabet: frozenset[Label], budget: int
) -> frozenset[tuple[frozenset[Label], ...]]:
    """Kernel backend of ``maximal_set_configurations``: compile, search
    in the mask domain, decode to the reference's canonical form."""
    encoding = LabelEncoding.for_alphabet(frozenset(alphabet) | constraint.labels)
    table = ConstraintTable.compile(constraint, encoding)
    candidates = sorted(encoding.encode_label(label) for label in alphabet)
    maximal = maximal_mask_configs(table, candidates, budget)
    return frozenset(
        tuple(encoding.decode_mask(mask) for mask in config) for config in maximal
    )


def existential_white_masks(
    new_masks: list[int], white_context: _SearchContext, arity: int
) -> list[MaskConfig]:
    """All size-``arity`` multisets over ``new_masks`` admitting some
    choice in the compiled white constraint (the C′_W of R)."""
    return [
        combo
        for combo in combinations_with_replacement(new_masks, arity)
        if white_context.exists_choice(combo)
    ]


def apply_R_kernel(problem: Problem, budget: int) -> Problem:
    """The operator R of Appendix B, computed in the mask domain.

    Decodes back to the exact string-domain output of the reference
    implementation: same set-label names, same ``Problem`` equality.
    """
    encoding = LabelEncoding.for_alphabet(problem.alphabet)
    black_table = ConstraintTable.compile(problem.black, encoding)
    white_table = ConstraintTable.compile(problem.white, encoding)

    maximal = maximal_mask_configs(black_table, range(encoding.size), budget)

    white_context = _SearchContext(white_table)
    new_masks = sorted(
        {mask for config in maximal for mask in config}, key=white_context.key
    )
    names: dict[int, Label] = {
        mask: set_label(encoding.decode_mask(mask)) for mask in new_masks
    }
    black_configs = [
        Configuration(names[mask] for mask in config) for config in maximal
    ]
    white_configs = [
        Configuration(names[mask] for mask in combo)
        for combo in existential_white_masks(
            new_masks, white_context, problem.white_arity
        )
    ]
    return Problem.from_constraints(
        white=Constraint(white_configs),
        black=Constraint(black_configs),
        name=f"R({problem.name})",
    )
