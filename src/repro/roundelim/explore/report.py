"""The exploration result object and its canonical JSON payload.

The report is the deterministic artifact of one exploration run.  Its
payload obeys the same contract as the experiment runner's: it depends
only on (roots, policy, limits) — never on wall-clock, worker count or
store temperature — so ``--jobs 4`` output is byte-identical to serial
and a warm resumed run reproduces the cold run's bytes.  Store telemetry
(hit/miss counters) *does* depend on temperature, so it lives on the
dataclass, outside :meth:`ExplorationReport.payload`, mirroring how
:class:`~repro.experiments.scenarios.ScenarioResult` keeps wall seconds
out of its payload.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.utils.serialization import canonical_dumps, result_digest

REPORT_SCHEMA = "repro.explore/report-v1"


@dataclass(frozen=True)
class ExplorationReport:
    """Everything one frontier search discovered."""

    roots: tuple[str, ...]
    policy: dict
    limits: dict
    nodes: dict[str, dict]
    edges: tuple[dict, ...]
    steps: tuple[dict, ...]
    sequences: tuple[dict, ...]
    counts: dict
    store_stats: dict = field(compare=False, default_factory=dict)

    @property
    def visited(self) -> int:
        return self.counts["visited"]

    @property
    def expanded(self) -> int:
        return self.counts["expanded"]

    @property
    def dedup_hits(self) -> int:
        return self.counts["dedup_hits"]

    @property
    def fixed_points(self) -> list[str]:
        """Digests classified as exact fixed points (RE(Π) ≅ Π)."""
        return [
            digest
            for digest, node in sorted(self.nodes.items())
            if node.get("exact_fixed_point") is True
        ]

    @property
    def relaxation_fixed_points(self) -> list[str]:
        """Digests whose problem relaxes its own RE (Corollary 5.5)."""
        return [
            digest
            for digest, node in sorted(self.nodes.items())
            if node.get("relaxation_fixed_point") is True
        ]

    @property
    def zero_round_nodes(self) -> list[str]:
        return [
            digest
            for digest, node in sorted(self.nodes.items())
            if node.get("zero_round") is True
        ]

    @property
    def verified_sequences(self) -> list[dict]:
        return [entry for entry in self.sequences if entry["verified"]]

    @property
    def best_sequence_length(self) -> int:
        lengths = [entry["length"] for entry in self.verified_sequences]
        return max(lengths, default=0)

    def payload(self) -> dict:
        """The deterministic canonical-JSON document of this run."""
        body = {
            "schema": REPORT_SCHEMA,
            "roots": list(self.roots),
            "policy": self.policy,
            "limits": self.limits,
            "nodes": self.nodes,
            "edges": list(self.edges),
            "steps": list(self.steps),
            "sequences": list(self.sequences),
            "fixed_points": self.fixed_points,
            "relaxation_fixed_points": self.relaxation_fixed_points,
            "zero_round": self.zero_round_nodes,
            "counts": self.counts,
        }
        body["digest"] = result_digest(body)
        return body

    def canonical_json(self, indent: int | None = None) -> str:
        return canonical_dumps(self.payload(), indent=indent)
