"""Frontier search over the round elimination problem graph.

Nodes are canonical problems (content-addressed through the
:class:`~repro.roundelim.explore.store.ProblemStore`); moves are the
operators R / R̄ / RE plus bounded *merge* relaxations (quotienting two
labels — every quotient is a label-map relaxation of its source, so
merge children extend lower bound chains soundly).  The search is
breadth-first or best-first (smallest alphabet first), with per-path
depth and total expansion budgets, and classifies every node as it goes
(zero-round solvability, exact / relaxation fixed points).

Determinism contract — the pillar everything else leans on:

* expansion *batches* are chosen by the policy only (whole BFS layer, or
  a fixed-size best-first slice), never by worker count;
* workers run the pure :func:`~repro.roundelim.explore.store.compute_step`
  and return plain dicts; the parent merges results into the store in
  task order, so the visited set, the edge list and the report are
  byte-identical for any ``jobs``;
* a store rooted on disk short-circuits every previously computed step,
  which makes a killed run resumable: re-running expands zero
  already-expanded nodes and reproduces the cold report byte for byte.

After the search, a *linking pass* turns the raw move graph into lower
bound evidence: for every RE edge Π → RE(Π), it searches the visited set
for problems that RE(Π) relaxes onto (label maps first, ordered
configuration maps as the general fallback — the §2 notion) and chains
the resulting steps into candidate :class:`LowerBoundSequence`s, each
re-verified mechanically by :meth:`LowerBoundSequence.verify`.
"""

from __future__ import annotations

import multiprocessing
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field

from repro.formalism.problems import Problem
from repro.roundelim.explore.classify import (
    ZERO_ROUND_MODES,
    exhaustive_zero_round,
    uniform_zero_round,
)
from repro.roundelim.explore.report import ExplorationReport
from repro.roundelim.explore.store import (
    OPERATORS,
    STATUS_OK,
    WITNESS_NONE,
    ProblemStore,
    _compute_task,
)
from repro.roundelim.operators import DEFAULT_ENGINE
from repro.roundelim.sequences import LowerBoundSequence
from repro.utils import InvalidParameterError, SolverLimitError
from repro.utils.serialization import canonical_dumps

#: Operator budget exploration uses by default: small enough that one
#: blown-up RE step cannot stall a whole search (exhaustion is recorded
#: as a terminal edge, not raised).
DEFAULT_STEP_BUDGET = 200_000

MOVES = OPERATORS + ("merge",)

ORDERS = ("bfs", "min-alphabet")

#: Path-enumeration guard: maximal simple paths can be exponential in a
#: dense step graph, so the DFS stops (deterministically) after this
#: many recorded paths.
MAX_ENUMERATED_PATHS = 512


@dataclass(frozen=True)
class ExplorationLimits:
    """Hard budgets of one search."""

    max_depth: int = 2
    max_nodes: int = 32

    def __post_init__(self) -> None:
        if self.max_depth < 1 or self.max_nodes < 1:
            raise InvalidParameterError("exploration limits must be >= 1")

    def describe(self) -> dict:
        return {"max_depth": self.max_depth, "max_nodes": self.max_nodes}


@dataclass(frozen=True)
class ExplorationPolicy:
    """Pluggable expansion behaviour.

    ``order`` picks the frontier discipline; ``moves`` the edge kinds;
    ``batch_size`` the best-first slice (fixed so the expansion order is
    independent of ``jobs``); the two caps gate the quadratic merge move
    and the relaxation-linking pass to small alphabets.
    """

    order: str = "bfs"
    moves: tuple[str, ...] = ("RE",)
    batch_size: int = 4
    step_budget: int = DEFAULT_STEP_BUDGET
    engine: str = DEFAULT_ENGINE
    merge_alphabet_cap: int = 5
    link_alphabet_cap: int = 12
    zero_round: str = "uniform"
    max_sequences: int = 3
    verify_sequences: bool = True

    def __post_init__(self) -> None:
        if self.order not in ORDERS:
            raise InvalidParameterError(
                f"unknown frontier order {self.order!r}; known: {list(ORDERS)}"
            )
        unknown = [move for move in self.moves if move not in MOVES]
        if unknown:
            raise InvalidParameterError(
                f"unknown moves {unknown}; known: {list(MOVES)}"
            )
        if self.zero_round not in ZERO_ROUND_MODES:
            raise InvalidParameterError(
                f"unknown zero-round mode {self.zero_round!r}; "
                f"known: {list(ZERO_ROUND_MODES)}"
            )
        if self.batch_size < 1:
            raise InvalidParameterError("batch_size must be >= 1")

    def describe(self) -> dict:
        return {
            "order": self.order,
            "moves": list(self.moves),
            "batch_size": self.batch_size,
            "step_budget": self.step_budget,
            "merge_alphabet_cap": self.merge_alphabet_cap,
            "link_alphabet_cap": self.link_alphabet_cap,
            "zero_round": self.zero_round,
            "max_sequences": self.max_sequences,
            "verify_sequences": self.verify_sequences,
        }


@dataclass
class _Search:
    """Mutable state of one exploration run (parent process only)."""

    store: ProblemStore
    policy: ExplorationPolicy
    limits: ExplorationLimits
    jobs: int
    nodes: dict[str, dict] = field(default_factory=dict)
    edges: list[dict] = field(default_factory=list)
    expanded: int = 0
    dedup_hits: int = 0
    budget_exhausted_ops: int = 0
    _problem_cache: dict[str, Problem] = field(default_factory=dict)

    def ensure_node(self, digest: str, depth: int, name: str | None = None) -> bool:
        """Register a visited node; True when it is new."""
        node = self.nodes.get(digest)
        if node is not None:
            self.dedup_hits += 1
            return False
        payload = self.store.payload_of(digest)
        self.nodes[digest] = {
            "name": name or digest[:10],
            "depth": depth,
            "alphabet_size": payload["alphabet_size"],
            "white_configs": len(payload["white"]),
            "black_configs": len(payload["black"]),
            "expanded": False,
        }
        return True

    def problem(self, digest: str) -> Problem:
        cached = self._problem_cache.get(digest)
        if cached is None:
            cached = self.store.problem_of(digest, name=self.nodes[digest]["name"])
            self._problem_cache[digest] = cached
        return cached


def _select_batch(search: _Search) -> list[str]:
    """The next expansion batch — a pure function of search state."""
    eligible = [
        digest
        for digest, node in search.nodes.items()
        if not node["expanded"] and node["depth"] < search.limits.max_depth
    ]
    if not eligible:
        return []
    quota = search.limits.max_nodes - search.expanded
    if quota <= 0:
        return []
    if search.policy.order == "bfs":
        layer = min(search.nodes[digest]["depth"] for digest in eligible)
        batch = sorted(
            digest for digest in eligible if search.nodes[digest]["depth"] == layer
        )
    else:  # min-alphabet best-first
        batch = sorted(
            eligible,
            key=lambda digest: (
                search.nodes[digest]["alphabet_size"],
                digest,
            ),
        )[: search.policy.batch_size]
    return batch[:quota]


def _operator_moves(policy: ExplorationPolicy) -> list[str]:
    return [move for move in policy.moves if move in OPERATORS]


def _compute_missing(search: _Search, batch: Sequence[str]) -> None:
    """Fill the store with every operator result the batch needs.

    Cache misses are shipped to a worker pool (when ``jobs > 1``); the
    parent records results in task order, so the store contents after
    this call do not depend on worker scheduling.
    """
    tasks = []
    for digest in batch:
        for op in _operator_moves(search.policy):
            if search.store.lookup(digest, op, search.policy.step_budget) is None:
                tasks.append((digest, op))
    if not tasks:
        return
    arguments = [
        (
            search.store.payload_of(digest),
            op,
            search.policy.step_budget,
            search.policy.engine,
        )
        for digest, op in tasks
    ]
    # Daemonic workers (e.g. the experiments runner's own pool) cannot
    # fork children; computing serially there changes wall-clock only —
    # outcomes, merge order and the report are identical by contract.
    use_pool = (
        search.jobs > 1
        and len(arguments) > 1
        and not multiprocessing.current_process().daemon
    )
    if use_pool:
        with multiprocessing.Pool(
            processes=min(search.jobs, len(arguments))
        ) as pool:
            outcomes = pool.map(_compute_task, arguments)
    else:
        outcomes = [_compute_task(argument) for argument in arguments]
    for (digest, op), outcome in zip(tasks, outcomes):
        search.store.stats.computed += 1
        search.store.record(digest, op, search.policy.step_budget, outcome)


def _merge_children(problem: Problem) -> list[tuple[str, Problem]]:
    """All single-pair label quotients, tagged by canonical indices.

    Mapping label ``xi`` onto ``xj`` yields a problem every solution of
    the original rewrites into — a label-map relaxation by construction.
    Only unordered pairs are generated: the ``j → i`` quotient is the
    ``i → j`` one with the surviving label respelled, so both intern to
    the same digest.
    """
    labels = sorted(problem.alphabet, key=lambda lab: (len(lab), lab))
    children = []
    for i, source in enumerate(labels):
        for j in range(i + 1, len(labels)):
            target = labels[j]
            quotient = Problem.from_constraints(
                white=problem.white.map_labels({source: target}),
                black=problem.black.map_labels({source: target}),
                name=f"merge({problem.name})",
            )
            children.append((f"merge:{i}+{j}", quotient))
    return children


def _expand(search: _Search, digest: str) -> None:
    """Apply every enabled move to one node, recording edges and children."""
    node = search.nodes[digest]
    depth = node["depth"]
    for op in _operator_moves(search.policy):
        entry = search.store.apply(
            digest, op, search.policy.step_budget, engine=search.policy.engine
        )
        edge = {"source": digest, "move": op, "status": entry["status"],
                "target": entry["child"]}
        search.edges.append(edge)
        if entry["status"] != STATUS_OK:
            search.budget_exhausted_ops += 1
            continue
        search.ensure_node(entry["child"], depth + 1)
    if "merge" in search.policy.moves and (
        node["alphabet_size"] <= search.policy.merge_alphabet_cap
    ):
        problem = search.problem(digest)
        for move, quotient in _merge_children(problem):
            child = search.store.intern(quotient)
            search.edges.append(
                {"source": digest, "move": move, "status": STATUS_OK,
                 "target": child.digest}
            )
            search.ensure_node(child.digest, depth + 1)
    node["expanded"] = True
    search.expanded += 1


def _classify(search: _Search) -> None:
    """Zero-round and fixed-point classification of every visited node."""
    for digest in sorted(search.nodes):
        node = search.nodes[digest]
        problem = search.problem(digest)
        node["zero_round"] = uniform_zero_round(problem)
        if (
            search.policy.zero_round in ("exhaustive", "exhaustive-sat")
            and not node["zero_round"]
        ):
            method = (
                "sat" if search.policy.zero_round == "exhaustive-sat"
                else "bruteforce"
            )
            exact = exhaustive_zero_round(problem, method=method)
            if exact is not None:
                node["zero_round"] = exact
        # apply(), not lookup(): a tiny LRU may have evicted the RE memo
        # entry by now, and classification must not degrade with store
        # capacity (the report depends only on roots/policy/limits).
        re_entry = (
            search.store.apply(
                digest, "RE", search.policy.step_budget,
                engine=search.policy.engine,
            )
            if node["expanded"] and "RE" in search.policy.moves
            else None
        )
        if re_entry is None or re_entry["status"] != STATUS_OK:
            node["exact_fixed_point"] = None
            node["relaxation_fixed_point"] = None
            continue
        node["exact_fixed_point"] = re_entry["child"] == digest
        eliminated_size = search.store.payload_of(re_entry["child"])["alphabet_size"]
        if node["exact_fixed_point"]:
            node["relaxation_fixed_point"] = True
        elif (
            # The label-map search branches over the *eliminated*
            # problem's labels, so both alphabets gate it.
            node["alphabet_size"] <= search.policy.link_alphabet_cap
            and eliminated_size <= search.policy.link_alphabet_cap
        ):
            witness = search.store.relaxation(re_entry["child"], digest)["witness"]
            node["relaxation_fixed_point"] = witness != WITNESS_NONE
        else:
            node["relaxation_fixed_point"] = None


def _merge_adjacency(search: _Search) -> dict[str, list[str]]:
    """source digest → merge-child digests, built once per linking pass."""
    adjacency: dict[str, list[str]] = {}
    for edge in search.edges:
        if edge["move"].startswith("merge:") and edge["target"] is not None:
            adjacency.setdefault(edge["source"], []).append(edge["target"])
    return adjacency


def _merge_reachable(adjacency: dict[str, list[str]], start: str) -> list[str]:
    """Digests reachable from ``start`` through merge edges only."""
    reached: list[str] = []
    seen = {start}
    queue = [start]
    while queue:
        current = queue.pop(0)
        for child in adjacency.get(current, ()):
            if child not in seen:
                seen.add(child)
                reached.append(child)
                queue.append(child)
    return reached


def _link_steps(search: _Search) -> list[dict]:
    """Turn RE edges into lower-bound *steps* via relaxation witnesses.

    A step Π → Π′ certifies that Π′ is a relaxation of RE(Π).  Witness
    kinds, cheapest first: RE(Π) itself (identity), a merge quotient of
    it (label map by construction), a searched label map onto another
    visited problem, or a searched ordered-configuration map (the
    paper's general §2 notion — required e.g. for the Lemma 4.5
    matching steps).  The witness searches run through the store's
    memoized relaxation queries, so a warm run answers them from cache.
    """
    steps: list[dict] = []
    recorded: set[tuple[str, str]] = set()

    def add(source: str, target: str, witness: str) -> None:
        if (source, target) not in recorded:
            recorded.add((source, target))
            steps.append({"source": source, "target": target, "witness": witness})

    cap = search.policy.link_alphabet_cap
    merge_adjacency = _merge_adjacency(search)
    for edge in search.edges:
        if edge["move"] != "RE" or edge["status"] != STATUS_OK:
            continue
        source, child = edge["source"], edge["target"]
        add(source, child, "identity")
        for quotient in _merge_reachable(merge_adjacency, child):
            add(source, quotient, "merge")
        if search.nodes[child]["alphabet_size"] > cap:
            continue
        child_payload = search.store.payload_of(child)
        for target in sorted(search.nodes):
            if target == child or (source, target) in recorded:
                continue
            other = search.nodes[target]
            if other["alphabet_size"] > cap:
                continue
            target_payload = search.store.payload_of(target)
            if (
                target_payload["white_arity"] != child_payload["white_arity"]
                or target_payload["black_arity"] != child_payload["black_arity"]
            ):
                continue
            witness = search.store.relaxation(child, target)["witness"]
            if witness != WITNESS_NONE:
                add(source, target, witness)
    return steps


def _longest_paths(steps: Iterable[dict], nodes: Iterable[str]) -> list[list[str]]:
    """Maximal simple paths through the step graph, best first.

    Exhaustive DFS — visited sets are small by construction (the node
    budget), and self-loops (fixed points) are excluded here because
    they are reported as constant sequences instead.
    """
    adjacency: dict[str, list[str]] = {}
    for step in steps:
        if step["source"] != step["target"]:
            adjacency.setdefault(step["source"], []).append(step["target"])
    for targets in adjacency.values():
        targets.sort()
    paths: list[list[str]] = []

    def walk(path: list[str], seen: set[str]) -> None:
        if len(paths) >= MAX_ENUMERATED_PATHS:
            return
        extended = False
        for nxt in adjacency.get(path[-1], ()):
            if nxt not in seen:
                extended = True
                walk(path + [nxt], seen | {nxt})
        if not extended and len(path) > 1:
            paths.append(path)

    for start in sorted(nodes):
        walk([start], {start})
    paths.sort(key=lambda path: (-len(path), path))
    return paths


def _extract_sequences(search: _Search, steps: list[dict]) -> list[dict]:
    """Candidate lower bound sequences, re-verified mechanically."""
    candidates: list[tuple[str, list[str]]] = []
    for path in _longest_paths(steps, search.nodes):
        candidates.append(("path", path))
        if len(candidates) >= search.policy.max_sequences:
            break
    for digest in sorted(search.nodes):
        if search.nodes[digest].get("relaxation_fixed_point"):
            candidates.append(("constant", [digest, digest, digest]))
    entries = []
    for kind, digests in candidates:
        problems = tuple(search.problem(digest) for digest in digests)
        entry = {
            "kind": kind,
            "digests": list(digests),
            "length": len(digests) - 1,
            "verified": False,
            "verify_skipped": False,
            "witnesses": 0,
        }
        # The witness search of ``verify`` branches over the eliminated
        # problems' labels; past the linking cap it can dwarf the whole
        # search, so oversized chains are reported unverified-by-policy.
        oversized = any(
            len(problem.alphabet) > search.policy.link_alphabet_cap
            for problem in problems
        )
        if search.policy.verify_sequences and not oversized:
            try:
                witnesses = LowerBoundSequence(problems=problems).verify(
                    budget=search.policy.step_budget, engine=search.policy.engine
                )
                entry["verified"] = True
                entry["witnesses"] = len(witnesses)
            except (ValueError, SolverLimitError):
                entry["verified"] = False
        else:
            entry["verify_skipped"] = True
        entries.append(entry)
    return entries


def explore(
    roots: Sequence[Problem],
    policy: ExplorationPolicy | None = None,
    limits: ExplorationLimits | None = None,
    store: ProblemStore | None = None,
    jobs: int = 1,
) -> ExplorationReport:
    """Search the problem graph reachable from ``roots``.

    ``store`` may be shared across calls (warm memoization) or rooted on
    disk (resumable); ``jobs`` adds worker processes without changing a
    byte of the report.
    """
    if not roots:
        raise InvalidParameterError("exploration needs at least one root problem")
    if jobs < 1:
        raise InvalidParameterError("jobs must be >= 1")
    policy = policy or ExplorationPolicy()
    limits = limits or ExplorationLimits()
    store = store or ProblemStore()
    search = _Search(store=store, policy=policy, limits=limits, jobs=jobs)

    root_digests: list[str] = []
    for problem in roots:
        form = store.intern(problem)
        search.ensure_node(form.digest, depth=0, name=problem.name)
        if form.digest not in root_digests:
            root_digests.append(form.digest)

    while True:
        batch = _select_batch(search)
        if not batch:
            break
        _compute_missing(search, batch)
        for digest in batch:
            _expand(search, digest)

    _classify(search)
    steps = _link_steps(search)
    sequences = _extract_sequences(search, steps)
    # A completed search is a graceful "shutdown" of the store: leave the
    # manifest marker so the next run resumes without an eager sweep.
    store.flush()

    counts = {
        "visited": len(search.nodes),
        "expanded": search.expanded,
        "dedup_hits": search.dedup_hits,
        "budget_exhausted_ops": search.budget_exhausted_ops,
        "edges": len(search.edges),
        "steps": len(steps),
    }
    return ExplorationReport(
        roots=tuple(root_digests),
        policy=policy.describe(),
        limits=limits.describe(),
        nodes=search.nodes,
        edges=tuple(search.edges),
        steps=tuple(steps),
        sequences=tuple(sequences),
        counts=counts,
        store_stats=store.stats.as_dict(),
    )


def reports_identical(first: ExplorationReport, second: ExplorationReport) -> bool:
    """Byte-level equality of two reports' canonical JSON."""
    return canonical_dumps(first.payload()) == canonical_dumps(second.payload())
