"""Per-node classification: zero-round solvability and fixed points.

Every node the frontier visits is classified so the search can stop
walking chains that already prove something:

* **zero-round solvable** — the chain below this problem adds no lower
  bound rounds.  The cheap *uniform* test (∃ℓ with ℓ^{d_W} ∈ C_W and
  ℓ^{d_B} ∈ C_B: every node outputs ℓ everywhere) is sufficient but not
  necessary; the *exhaustive* test brute-forces the full 0-round
  algorithm space of :mod:`repro.core.zero_round` on the smallest
  (d_W, d_B)-biregular support and is exact on that support — but
  exponential, so it is gated to tiny instances and returns ``None``
  (unknown) beyond them.
* **fixed point** — RE(Π) ≅ Π (Lemma 5.4's notion).  Content addressing
  makes the exact check free: canonical digests are equal iff the
  problems are isomorphic.  The weaker *relaxation* fixed point (Π is a
  relaxation of RE(Π), all Corollary 5.5 needs) reuses
  :func:`repro.formalism.relaxations.find_label_relaxation`, exactly as
  :mod:`repro.roundelim.fixed_points` does.
"""

from __future__ import annotations

import networkx as nx

from repro.formalism.configurations import Configuration
from repro.formalism.problems import Problem
from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
)
from repro.utils import SolverError

#: Edge-count cap for the exhaustive zero-round check: the subgraph
#: enumeration alone is 2^edges, and the algorithm space is exponential
#: on top of it.
EXHAUSTIVE_EDGE_CAP = 6

#: Alphabet cap for the exhaustive zero-round check.
EXHAUSTIVE_ALPHABET_CAP = 3

#: The SAT-gated envelope is wider: the Theorem 3.2 lift-and-solve gate
#: replaces the 2^edges × algorithm-space brute force with one CDCL
#: solve, so larger supports and alphabets stay tractable.
SAT_EDGE_CAP = 9

SAT_ALPHABET_CAP = 4

ZERO_ROUND_MODES = ("uniform", "exhaustive", "exhaustive-sat")


def uniform_zero_round(problem: Problem) -> bool:
    """∃ℓ: the all-ℓ labeling satisfies both constraints at full degree.

    Sufficient for 0-round solvability in the Supported LOCAL model:
    every white node outputs ℓ on every incident input edge without
    looking at anything.
    """
    for label in sorted(problem.alphabet):
        if (
            Configuration([label] * problem.white_arity) in problem.white
            and Configuration([label] * problem.black_arity) in problem.black
        ):
            return True
    return False


def _smallest_biregular_support(white_arity: int, black_arity: int) -> nx.Graph:
    """K_{d_B, d_W} with colors: white degree d_W, black degree d_B."""
    graph = nx.Graph()
    whites = [f"w{index}" for index in range(black_arity)]
    blacks = [f"b{index}" for index in range(white_arity)]
    for node in whites:
        graph.add_node(node, color="white")
    for node in blacks:
        graph.add_node(node, color="black")
    for white in whites:
        for black in blacks:
            graph.add_edge(white, black)
    return graph


def exhaustive_zero_round(
    problem: Problem, method: str = "bruteforce"
) -> bool | None:
    """Exact 0-round existence on the smallest biregular support.

    ``None`` means the instance exceeds the method's envelope — the
    caller records "unknown", never a guess.  ``method="bruteforce"``
    enumerates the full 0-round algorithm space
    (:func:`repro.core.zero_round.exists_zero_round_algorithm`);
    ``method="sat"`` decides the equivalent Theorem 3.2 lift gate with
    the CDCL backend, which widens the tractable envelope
    (``SAT_EDGE_CAP`` / ``SAT_ALPHABET_CAP``) — the exploration policy's
    ``exhaustive-sat`` mode.  Both methods answer identically inside the
    shared envelope (Theorem 3.2 is the proven equivalence, and the
    zero-round test suite asserts it).
    """
    if problem.white_arity < 1 or problem.black_arity < 1:
        return None
    if method == "sat":
        return _exhaustive_zero_round_sat(problem)
    from repro.core.zero_round import exists_zero_round_algorithm

    if problem.white_arity * problem.black_arity > EXHAUSTIVE_EDGE_CAP:
        return None
    if len(problem.alphabet) > EXHAUSTIVE_ALPHABET_CAP:
        return None
    support = _smallest_biregular_support(problem.white_arity, problem.black_arity)
    try:
        return exists_zero_round_algorithm(
            support, problem, edge_limit=EXHAUSTIVE_EDGE_CAP
        )
    except SolverError:
        return None


def _exhaustive_zero_round_sat(problem: Problem) -> bool | None:
    """The SAT fast path: lift to the smallest support and CDCL-solve."""
    from repro.core.zero_round import zero_round_solvable

    if problem.white_arity * problem.black_arity > SAT_EDGE_CAP:
        return None
    if len(problem.alphabet) > SAT_ALPHABET_CAP:
        return None
    support = _smallest_biregular_support(problem.white_arity, problem.black_arity)
    try:
        return zero_round_solvable(problem=problem, graph=support, backend="sat")
    except SolverError:
        return None


def is_relaxation_fixed_point(
    problem: Problem, eliminated: Problem, config_map_white_cap: int = 8
) -> bool:
    """Π is a relaxation of RE(Π) — Corollary 5.5's requirement.

    ``eliminated`` is the (canonical) RE output.  The label-map search
    of :func:`repro.roundelim.fixed_points.analyze_fixed_point` runs
    first; when it fails, the general ordered-configuration-map notion
    (§2) is tried, because some family endpoints — e.g. Π_3(2,1) of the
    Δ=3 matching family — are fixed points only under the general
    definition.  The fallback is capped on the eliminated problem's
    white-constraint size (its search permutes target configurations).
    """
    if find_label_relaxation(eliminated, problem) is not None:
        return True
    if len(eliminated.white) > config_map_white_cap:
        return False
    return find_config_map_relaxation(eliminated, problem) is not None
