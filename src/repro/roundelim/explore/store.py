"""The content-addressed problem store.

Problems are *interned* to their canonical form
(:mod:`repro.formalism.normalize`) and addressed by the canonical
digest, so every label-renaming of a problem shares one identity, one
node record and one memoized result per operator.  Two tiers:

* an **in-memory LRU** of operator results, bounded by ``capacity``;
* an optional **on-disk tier** (canonical JSON under ``root/``),
  written through on every record and consulted on every memory miss —
  a store reopened on the same directory resumes with every previously
  computed step available, which is what makes exploration runs
  kill-and-resume safe.

Layout of the disk tier::

    root/nodes/<digest>.json               canonical problem payload
    root/ops/<digest>.<op>.<budget>.json   operator outcome
    root/links/<strict>.<relaxed>.json     relaxation-witness outcome

An operator outcome records ``status`` (``"ok"`` or
``"budget_exhausted"``) and the child digest; results are stored as
canonical payloads, so everything the store returns is byte-identical
no matter which engine computed it, in which process, or in which run.
The memo key deliberately includes the *budget* (exhaustion depends on
it) and excludes the *engine* (the operator contract makes results
engine-independent — the ``explore`` differential oracle enforces it).

Relaxation-witness queries ("does problem A relax onto problem B?") are
memoized the same way: witness existence is a property of the two
canonical forms only, and the searches behind it (label-map and ordered
configuration-map backtracking) dominate warm exploration wall-clock if
recomputed, so they are first-class store entries alongside R / R̄ / RE.

The disk tier is crash-safe (:mod:`repro.reliability.atomic`): atomic
checksummed writes, quarantine-and-recompute for corrupt entries (an op
entry whose child node was lost is quarantined too — recomputing brings
the payload back), and a ``manifest.json`` graceful-shutdown marker
(:meth:`ProblemStore.flush`) that decides between lazy and eager
validation on reopen.  Entries written before the checksum layer are
accepted as-is.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path

from repro.formalism.normalize import (
    NormalForm,
    normal_form,
    problem_from_payload,
)
from repro.formalism.problems import Problem
from repro.reliability.atomic import (
    CorruptEntryError,
    open_with_recovery,
    quarantine_entry,
    read_checked_json,
    write_checked_json,
)
from repro.reliability.faults import FaultClock, InjectedFault
from repro.roundelim.operators import (
    DEFAULT_ENGINE,
    apply_R,
    apply_R_bar,
    round_elimination,
)
from repro.utils import InvalidParameterError, SolverLimitError

NODE_SCHEMA = "repro.explore/node-v1"
OP_SCHEMA = "repro.explore/op-v1"
LINK_SCHEMA = "repro.explore/link-v1"
STORE_MANIFEST_SCHEMA = "repro.explore/manifest-v1"

#: The disk-tier subdirectories a rooted store owns.
STORE_SUBDIRS = ("nodes", "ops", "links")

#: The operators the store can memoize.
OPERATORS = ("R", "R_bar", "RE")

_OPERATOR_FNS = {
    "R": apply_R,
    "R_bar": apply_R_bar,
    "RE": round_elimination,
}

STATUS_OK = "ok"
STATUS_BUDGET = "budget_exhausted"

#: Relaxation-witness kinds a memoized link query can resolve to.
WITNESS_LABEL_MAP = "label_map"
WITNESS_CONFIG_MAP = "config_map"
WITNESS_NONE = "none"

#: The ordered-configuration-map search permutes target configurations
#: per source configuration; past this many source white configurations
#: it is skipped and the query resolves against label maps only.  Part
#: of the memoized query's semantics, so a module constant, not policy.
CONFIG_MAP_WHITE_CAP = 8


def compute_relaxation(strict_payload: dict, relaxed_payload: dict) -> dict:
    """Search for a relaxation witness between two canonical problems.

    Label maps first (the common case), then the paper's general ordered
    configuration maps (capped, see :data:`CONFIG_MAP_WHITE_CAP`).  A
    ``"none"`` answer means *no witness found under these semantics* —
    callers must treat it as inconclusive beyond the cap, never as a
    refutation.
    """
    from repro.formalism.relaxations import (
        find_config_map_relaxation,
        find_label_relaxation,
    )

    strict = problem_from_payload(strict_payload)
    relaxed = problem_from_payload(relaxed_payload)
    if (
        strict.white_arity != relaxed.white_arity
        or strict.black_arity != relaxed.black_arity
    ):
        return {"witness": WITNESS_NONE}
    if find_label_relaxation(strict, relaxed) is not None:
        return {"witness": WITNESS_LABEL_MAP}
    if (
        len(strict.white) <= CONFIG_MAP_WHITE_CAP
        and find_config_map_relaxation(strict, relaxed) is not None
    ):
        return {"witness": WITNESS_CONFIG_MAP}
    return {"witness": WITNESS_NONE}


def compute_step(payload: dict, op: str, budget: int, engine: str) -> dict:
    """Apply one operator to a canonical payload — the pure worker body.

    Stateless and picklable-argument-only so the frontier can ship it to
    :mod:`multiprocessing` workers; the result is a plain dict merged
    into the store by the parent.  Budget exhaustion is an *outcome*,
    not an error: a search must record it and move on.
    """
    if op not in _OPERATOR_FNS:
        raise InvalidParameterError(
            f"unknown store operator {op!r}; known: {list(OPERATORS)}"
        )
    problem = problem_from_payload(payload)
    try:
        result = _OPERATOR_FNS[op](problem, budget=budget, engine=engine)
    except SolverLimitError:
        return {"status": STATUS_BUDGET, "child": None, "child_payload": None}
    child = normal_form(result)
    return {
        "status": STATUS_OK,
        "child": child.digest,
        "child_payload": child.payload,
    }


def _compute_task(task: tuple[dict, str, int, str]) -> dict:
    """Tuple adapter for :func:`multiprocessing.Pool.map`."""
    payload, op, budget, engine = task
    return compute_step(payload, op, budget, engine)


@dataclass
class StoreStats:
    """Where answers came from during a store's lifetime."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    computed: int = 0
    computed_links: int = 0
    evictions: int = 0
    quarantined: int = 0
    write_failures: int = 0

    def as_dict(self) -> dict:
        return {
            "memory_hits": self.memory_hits,
            "disk_hits": self.disk_hits,
            "misses": self.misses,
            "computed": self.computed,
            "computed_links": self.computed_links,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "write_failures": self.write_failures,
        }


@dataclass
class ProblemStore:
    """Content-addressed, two-tier memo store for operator results."""

    capacity: int = 4096
    root: Path | None = None
    stats: StoreStats = field(default_factory=StoreStats)
    fault_clock: FaultClock | None = None

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise InvalidParameterError("store capacity must be >= 1")
        self.recovery = {"graceful": True, "checked": 0, "quarantined": 0,
                         "tmp_removed": 0}
        if self.root is not None:
            self.root = Path(self.root)
            self.recovery = open_with_recovery(self.root, STORE_SUBDIRS)
            self.stats.quarantined += self.recovery["quarantined"]
        self._results: OrderedDict[tuple[str, str, int], dict] = OrderedDict()
        self._payloads: dict[str, dict] = {}
        self._dirty = False

    def _write_entry(self, target: Path, body: dict) -> None:
        """One crash-safe disk-tier write; failures degrade durability only."""
        self._mark_dirty()
        try:
            write_checked_json(
                target, body, fault_clock=self.fault_clock, site="store.write"
            )
        except (InjectedFault, OSError):
            self.stats.write_failures += 1

    def _mark_dirty(self) -> None:
        """Drop the graceful-shutdown marker before the first mutation."""
        if not self._dirty:
            self._dirty = True
            (self.root / "manifest.json").unlink(missing_ok=True)

    def _read_entry(self, target: Path) -> dict | None:
        """Load one disk entry; corrupt entries are quarantined (→ None)."""
        try:
            return read_checked_json(target)
        except CorruptEntryError:
            quarantine_entry(target, self.root)
            self.stats.quarantined += 1
            return None

    def flush(self) -> Path | None:
        """Write the shutdown manifest; its presence marks a graceful stop.

        A reopened store with a valid manifest trusts its entries and
        validates them lazily; without one it sweeps eagerly (see
        :mod:`repro.reliability.atomic`).  No-op off disk; a failed
        manifest write is counted and swallowed.
        """
        if self.root is None:
            return None
        census = {
            sub: len(list((self.root / sub).glob("*.json")))
            for sub in STORE_SUBDIRS
        }
        try:
            target = write_checked_json(
                self.root / "manifest.json",
                {
                    "schema": STORE_MANIFEST_SCHEMA,
                    "entries": census,
                    "stats": self.stats.as_dict(),
                },
                fault_clock=self.fault_clock,
                site="store.write",
            )
        except (InjectedFault, OSError):
            self.stats.write_failures += 1
            return None
        self._dirty = False
        return target

    # -- interning ---------------------------------------------------------

    def intern(self, problem: Problem) -> NormalForm:
        """Canonicalize a problem and register its payload."""
        form = normal_form(problem)
        self.register_payload(form.digest, form.payload)
        return form

    def register_payload(self, digest: str, payload: dict) -> None:
        """Record a canonical payload under its digest (both tiers)."""
        if digest not in self._payloads:
            self._payloads[digest] = payload
            if self.root is not None:
                target = self.root / "nodes" / f"{digest}.json"
                if not target.exists():
                    self._write_entry(target, {"schema": NODE_SCHEMA, **payload})

    def payload_of(self, digest: str) -> dict:
        """The canonical payload of an interned digest (memory, then disk).

        A corrupt node entry is quarantined and reported as unknown —
        callers that got the digest from an op entry treat that as a
        cache miss and recompute (the outcome carries the payload back).
        """
        payload = self._payloads.get(digest)
        if payload is not None:
            return payload
        if self.root is not None:
            target = self.root / "nodes" / f"{digest}.json"
            if target.exists():
                loaded = self._read_entry(target)
                if loaded is not None:
                    loaded.pop("schema", None)
                    self._payloads[digest] = loaded
                    return loaded
        raise InvalidParameterError(f"unknown problem digest {digest!r}")

    def has_payload(self, digest: str) -> bool:
        """True when :meth:`payload_of` can answer for ``digest``."""
        try:
            self.payload_of(digest)
            return True
        except InvalidParameterError:
            return False

    def problem_of(self, digest: str, name: str | None = None) -> Problem:
        """Rebuild the canonical problem behind a digest."""
        return problem_from_payload(self.payload_of(digest), name=name or digest[:8])

    # -- memoized operator results ----------------------------------------

    def lookup(self, digest: str, op: str, budget: int) -> dict | None:
        """A previously recorded outcome, or None (counts a miss)."""
        key = (digest, op, budget)
        entry = self._results.get(key)
        if entry is not None:
            self._results.move_to_end(key)
            self.stats.memory_hits += 1
            return entry
        if self.root is not None:
            target = self.root / "ops" / f"{digest}.{op}.{budget}.json"
            if target.exists():
                loaded = self._read_entry(target)
                if loaded is not None and (
                    loaded.get("child") is None
                    or self.has_payload(loaded["child"])
                ):
                    entry = {"status": loaded["status"], "child": loaded["child"]}
                    self._remember(key, entry)
                    self.stats.disk_hits += 1
                    return entry
                if loaded is not None:
                    # The op entry is intact but its child node was lost
                    # (quarantined or never persisted): a hit would leave
                    # an unresolvable digest in the graph, so quarantine
                    # the op entry too and recompute — compute_step's
                    # outcome carries the child payload back.
                    quarantine_entry(target, self.root)
                    self.stats.quarantined += 1
        self.stats.misses += 1
        return None

    def record(self, digest: str, op: str, budget: int, outcome: dict) -> dict:
        """Merge one computed outcome into both tiers; returns the entry."""
        entry = {"status": outcome["status"], "child": outcome.get("child")}
        if outcome.get("child_payload") is not None:
            self.register_payload(outcome["child"], outcome["child_payload"])
        self._remember((digest, op, budget), entry)
        if self.root is not None:
            self._write_entry(
                self.root / "ops" / f"{digest}.{op}.{budget}.json",
                {
                    "schema": OP_SCHEMA,
                    "digest": digest,
                    "op": op,
                    "budget": budget,
                    **entry,
                },
            )
        return entry

    def _remember(self, key: tuple[str, str, int], entry: dict) -> None:
        self._results[key] = entry
        self._results.move_to_end(key)
        while len(self._results) > self.capacity:
            self._results.popitem(last=False)
            self.stats.evictions += 1

    def apply(
        self,
        digest: str,
        op: str,
        budget: int,
        engine: str = DEFAULT_ENGINE,
    ) -> dict:
        """Memoized operator application on an interned problem.

        Returns ``{"status": ..., "child": digest|None}``; computes (and
        records) only on a two-tier miss.
        """
        entry = self.lookup(digest, op, budget)
        if entry is not None:
            return entry
        outcome = compute_step(self.payload_of(digest), op, budget, engine)
        self.stats.computed += 1
        return self.record(digest, op, budget, outcome)

    # -- memoized relaxation witnesses ------------------------------------

    def relaxation(self, strict_digest: str, relaxed_digest: str) -> dict:
        """Memoized relaxation-witness query between interned problems.

        Returns ``{"witness": "label_map"|"config_map"|"none"}``; the
        answer depends only on the two canonical forms, so it is cached
        under the digest pair in both tiers.
        """
        key = (strict_digest, f"relax>{relaxed_digest}", 0)
        entry = self._results.get(key)
        if entry is not None:
            self._results.move_to_end(key)
            self.stats.memory_hits += 1
            return entry
        if self.root is not None:
            target = self.root / "links" / f"{strict_digest}.{relaxed_digest}.json"
            if target.exists():
                loaded = self._read_entry(target)
                if loaded is not None:
                    entry = {"witness": loaded["witness"]}
                    self._remember(key, entry)
                    self.stats.disk_hits += 1
                    return entry
        self.stats.misses += 1
        entry = compute_relaxation(
            self.payload_of(strict_digest), self.payload_of(relaxed_digest)
        )
        self.stats.computed_links += 1
        self._remember(key, entry)
        if self.root is not None:
            self._write_entry(
                self.root / "links" / f"{strict_digest}.{relaxed_digest}.json",
                {
                    "schema": LINK_SCHEMA,
                    "strict": strict_digest,
                    "relaxed": relaxed_digest,
                    **entry,
                },
            )
        return entry
