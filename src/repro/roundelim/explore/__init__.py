"""The round-elimination exploration engine.

Walks the graph of problems reachable from seed problems under R / R̄ /
RE and bounded relaxation moves, deduplicating through a
content-addressed store of canonical problems, classifying each node
(zero-round solvable, fixed point) and extracting mechanically verified
lower bound sequences.

* :mod:`~repro.roundelim.explore.store` — canonical interning, the
  two-tier (LRU + on-disk) memo store, the pure worker step;
* :mod:`~repro.roundelim.explore.frontier` — the breadth-first /
  best-first search, parallel workers, relaxation linking and sequence
  extraction;
* :mod:`~repro.roundelim.explore.classify` — zero-round and fixed-point
  classification;
* :mod:`~repro.roundelim.explore.report` — the deterministic
  :class:`ExplorationReport` payload.
"""

from repro.roundelim.explore.classify import (
    exhaustive_zero_round,
    is_relaxation_fixed_point,
    uniform_zero_round,
)
from repro.roundelim.explore.frontier import (
    DEFAULT_STEP_BUDGET,
    MOVES,
    ORDERS,
    ExplorationLimits,
    ExplorationPolicy,
    explore,
    reports_identical,
)
from repro.roundelim.explore.report import REPORT_SCHEMA, ExplorationReport
from repro.roundelim.explore.store import (
    CONFIG_MAP_WHITE_CAP,
    OPERATORS,
    STATUS_BUDGET,
    STATUS_OK,
    WITNESS_CONFIG_MAP,
    WITNESS_LABEL_MAP,
    WITNESS_NONE,
    ProblemStore,
    StoreStats,
    compute_relaxation,
    compute_step,
)

__all__ = [
    "CONFIG_MAP_WHITE_CAP",
    "DEFAULT_STEP_BUDGET",
    "ExplorationLimits",
    "ExplorationPolicy",
    "ExplorationReport",
    "MOVES",
    "OPERATORS",
    "ORDERS",
    "ProblemStore",
    "REPORT_SCHEMA",
    "STATUS_BUDGET",
    "STATUS_OK",
    "StoreStats",
    "WITNESS_CONFIG_MAP",
    "WITNESS_LABEL_MAP",
    "WITNESS_NONE",
    "compute_relaxation",
    "compute_step",
    "exhaustive_zero_round",
    "explore",
    "is_relaxation_fixed_point",
    "reports_identical",
    "uniform_zero_round",
]
