"""Fixed points under round elimination (paper Lemma 5.4).

A problem Π is a *fixed point* when RE(Π) is Π again (up to renaming of the
mechanically-generated set labels).  Fixed points yield lower bound
sequences of infinite length (Corollary 5.5): the constant sequence
Π, Π, Π, … qualifies because Π is a relaxation of RE(Π).

Two notions are implemented, ordered by strength:

* :func:`is_fixed_point` — RE(Π) is *isomorphic* to Π (exact);
* :func:`is_fixed_point_up_to_relaxation` — Π is a relaxation of RE(Π),
  which is all that lower bound sequences need.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.formalism.relaxations import find_label_relaxation
from repro.roundelim.operators import (
    DEFAULT_BUDGET,
    DEFAULT_ENGINE,
    compress_labels,
    round_elimination,
)


@dataclass(frozen=True)
class FixedPointReport:
    """Outcome of a fixed point check, with witnesses."""

    problem: Problem
    eliminated: Problem
    isomorphism: dict[Label, Label] | None
    relaxation_map: dict[Label, Label] | None

    @property
    def is_exact_fixed_point(self) -> bool:
        """RE(Π) ≅ Π."""
        return self.isomorphism is not None

    @property
    def is_relaxation_fixed_point(self) -> bool:
        """Π is a relaxation of RE(Π) — enough for infinite sequences."""
        return self.relaxation_map is not None


def analyze_fixed_point(
    problem: Problem, budget: int = DEFAULT_BUDGET, engine: str = DEFAULT_ENGINE
) -> FixedPointReport:
    """Run RE once and report how the output relates to the input."""
    eliminated, _ = compress_labels(
        round_elimination(problem, budget=budget, engine=engine)
    )
    isomorphism = eliminated.find_isomorphism(problem)
    if isomorphism is not None:
        relaxation_map: dict[Label, Label] | None = dict(isomorphism)
    else:
        relaxation_map = find_label_relaxation(eliminated, problem)
    return FixedPointReport(
        problem=problem,
        eliminated=eliminated,
        isomorphism=isomorphism,
        relaxation_map=relaxation_map,
    )


def is_fixed_point(
    problem: Problem, budget: int = DEFAULT_BUDGET, engine: str = DEFAULT_ENGINE
) -> bool:
    """True if RE(Π) is isomorphic to Π."""
    return analyze_fixed_point(
        problem, budget=budget, engine=engine
    ).is_exact_fixed_point


def is_fixed_point_up_to_relaxation(
    problem: Problem, budget: int = DEFAULT_BUDGET, engine: str = DEFAULT_ENGINE
) -> bool:
    """True if Π is a relaxation of RE(Π) (Corollary 5.5's requirement)."""
    return analyze_fixed_point(
        problem, budget=budget, engine=engine
    ).is_relaxation_fixed_point
