"""Round elimination (paper Appendix B): R, R̄, RE, fixed points, sequences."""

from repro.roundelim.fixed_points import (
    FixedPointReport,
    analyze_fixed_point,
    is_fixed_point,
    is_fixed_point_up_to_relaxation,
)
from repro.roundelim.operators import (
    DEFAULT_ENGINE,
    ENGINES,
    apply_R,
    apply_R_bar,
    compress_labels,
    decode_label_sets,
    maximal_set_configurations,
    round_elimination,
)
from repro.roundelim.sequences import (
    LowerBoundSequence,
    SequenceStepWitness,
    constant_sequence,
    sequence_from_family,
)
from repro.roundelim.explore import (
    ExplorationLimits,
    ExplorationPolicy,
    ExplorationReport,
    ProblemStore,
    explore,
)

__all__ = [
    "ExplorationLimits",
    "ExplorationPolicy",
    "ExplorationReport",
    "ProblemStore",
    "explore",
    "DEFAULT_ENGINE",
    "ENGINES",
    "FixedPointReport",
    "LowerBoundSequence",
    "SequenceStepWitness",
    "analyze_fixed_point",
    "apply_R",
    "apply_R_bar",
    "compress_labels",
    "constant_sequence",
    "decode_label_sets",
    "is_fixed_point",
    "is_fixed_point_up_to_relaxation",
    "maximal_set_configurations",
    "round_elimination",
    "sequence_from_family",
]
