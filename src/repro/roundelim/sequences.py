"""Lower bound sequences (paper §2).

A sequence Π_0, …, Π_k is a *lower bound sequence* if each Π_i (i ≥ 1) is a
relaxation of RE(Π_{i-1}).  The framework of Theorems 3.4 / B.2 consumes
such sequences: non-0-round-solvability of Π_k in the Supported LOCAL model
yields an Ω(min{2k, girth}) lower bound for Π_0.

This module represents sequences, verifies them mechanically (running RE
and searching for relaxation witnesses), and builds the two kinds the paper
uses: constant sequences from fixed points (Corollary 5.5) and parametric
family sequences (Corollary 4.6, via family-specific step lemmas).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence
from dataclasses import dataclass

from repro.formalism.configurations import Label
from repro.formalism.problems import Problem
from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
)
from repro.roundelim.operators import (
    DEFAULT_BUDGET,
    DEFAULT_ENGINE,
    compress_labels,
    round_elimination,
)


@dataclass(frozen=True)
class SequenceStepWitness:
    """Witness that Π_{i} is a relaxation of RE(Π_{i-1}).

    Either a label map or (when label maps are insufficient — e.g. the
    Lemma 4.5 matching steps, which need the general per-configuration
    notion) an ordered-configuration map.
    """

    index: int
    eliminated: Problem
    relaxation_map: dict[Label, Label] | None
    config_map: dict[tuple[Label, ...], tuple[Label, ...]] | None = None


@dataclass(frozen=True)
class LowerBoundSequence:
    """A candidate lower bound sequence Π_0, …, Π_k."""

    problems: tuple[Problem, ...]

    def __post_init__(self) -> None:
        if not self.problems:
            raise ValueError("a lower bound sequence needs at least one problem")

    @property
    def length(self) -> int:
        """k: the number of RE steps the sequence certifies."""
        return len(self.problems) - 1

    @property
    def first(self) -> Problem:
        return self.problems[0]

    @property
    def last(self) -> Problem:
        return self.problems[-1]

    def verify(
        self, budget: int = DEFAULT_BUDGET, engine: str = DEFAULT_ENGINE
    ) -> list[SequenceStepWitness]:
        """Mechanically verify every step, returning the witnesses.

        Tries the cheap label-map search first and falls back to the
        general ordered-configuration-map search (the paper's §2 notion;
        needed e.g. for the Lemma 4.5 matching steps).  Raises ValueError
        on the first unverifiable step.  ``engine`` selects the round
        elimination backend (outputs are engine-independent).
        """
        witnesses: list[SequenceStepWitness] = []
        for index in range(1, len(self.problems)):
            eliminated, _ = compress_labels(
                round_elimination(self.problems[index - 1], budget=budget, engine=engine)
            )
            label_map = find_label_relaxation(eliminated, self.problems[index])
            config_map = None
            if label_map is None:
                config_map = find_config_map_relaxation(
                    eliminated, self.problems[index]
                )
                if config_map is None:
                    raise ValueError(
                        f"step {index}: {self.problems[index].name} is not a "
                        f"relaxation of RE({self.problems[index - 1].name}) "
                        f"(neither label-map nor config-map witness found)"
                    )
            witnesses.append(
                SequenceStepWitness(
                    index=index,
                    eliminated=eliminated,
                    relaxation_map=label_map,
                    config_map=config_map,
                )
            )
        return witnesses


def constant_sequence(problem: Problem, length: int) -> LowerBoundSequence:
    """The constant sequence of a fixed point (Corollary 5.5).

    Valid whenever Π is a relaxation of RE(Π); ``verify`` checks exactly
    that for each (identical) step.
    """
    return LowerBoundSequence(problems=tuple([problem] * (length + 1)))


def sequence_from_family(
    family: Callable[[int], Problem], indices: Sequence[int]
) -> LowerBoundSequence:
    """Build a sequence from a parametric family, e.g. i ↦ Π_Δ(x + i·y, y)."""
    return LowerBoundSequence(
        problems=tuple(family(index) for index in indices)
    )
