"""Command line for chaos testing: ``python -m repro.reliability``.

Subcommands::

    sites    print the fault-site catalog (site, supported kinds)
    plan     derive and print the seeded fault plan for a seed
    chaos    run a seed x scenario chaos matrix (the CI chaos job body)

``chaos`` exits non-zero when any case violates byte parity or daemon
survival; failing schedules are greedily minimized and written (plus the
full matrix summary) to ``--out`` for upload as CI artifacts.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from pathlib import Path

from repro.reliability.chaos import SCENARIOS, chaos_matrix, seeded_case_plan
from repro.reliability.faults import FAULT_SITES, SITE_DESCRIPTIONS
from repro.utils import ReproError
from repro.utils.serialization import canonical_dumps, write_json


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.reliability",
        description="Deterministic fault injection and chaos testing",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("sites", help="print the fault-site catalog")

    plan = sub.add_parser("plan", help="print the seeded plan for a seed")
    plan.add_argument("--seed", type=int, required=True)
    plan.add_argument("--scenario", choices=SCENARIOS, default=None,
                      help="restrict sites to one chaos scenario's")

    chaos = sub.add_parser("chaos", help="run a seeded chaos matrix")
    chaos.add_argument("--seeds", default="0:8",
                       help="seed range 'start:stop' or comma list")
    chaos.add_argument("--scenarios", default=",".join(SCENARIOS),
                       help="comma-separated subset of "
                            f"{'/'.join(SCENARIOS)}")
    chaos.add_argument("--workdir", default=None,
                       help="scratch directory (default: a temp dir)")
    chaos.add_argument("--out", default=None,
                       help="write the matrix summary JSON here")
    chaos.add_argument("--no-minimize", action="store_true",
                       help="skip shrinking failing schedules")

    return parser


def _parse_seeds(text: str) -> list[int]:
    if ":" in text:
        start, stop = text.split(":", 1)
        return list(range(int(start), int(stop)))
    return [int(part) for part in text.split(",") if part.strip()]


def _cmd_sites(_args) -> int:
    for site in sorted(FAULT_SITES):
        kinds = "/".join(FAULT_SITES[site])
        print(f"{site:16s} [{kinds}]  {SITE_DESCRIPTIONS[site]}")
    return 0


def _cmd_plan(args) -> int:
    if args.scenario is not None:
        plan = seeded_case_plan(args.scenario, args.seed)
    else:
        from repro.reliability.faults import FaultPlan

        plan = FaultPlan.seeded(args.seed)
    print(canonical_dumps(plan.as_dict(), indent=2))
    return 0


def _cmd_chaos(args) -> int:
    seeds = _parse_seeds(args.seeds)
    scenarios = tuple(
        part.strip() for part in args.scenarios.split(",") if part.strip()
    )
    for scenario in scenarios:
        if scenario not in SCENARIOS:
            print(f"error: unknown scenario {scenario!r}", file=sys.stderr)
            return 2
    if args.workdir is not None:
        summary = chaos_matrix(
            seeds, args.workdir, scenarios=scenarios,
            minimize=not args.no_minimize,
        )
    else:
        with tempfile.TemporaryDirectory(prefix="repro-chaos-") as scratch:
            summary = chaos_matrix(
                seeds, scratch, scenarios=scenarios,
                minimize=not args.no_minimize,
            )
    if args.out:
        write_json(Path(args.out), summary)
    for case in summary["cases"]:
        verdict = "ok" if case["ok"] else "FAIL"
        fired = len(case.get("cold", {}).get("faults_fired", []))
        print(
            f"{case['scenario']:10s} seed={case['seed']:<4d} "
            f"faults_fired={fired} {verdict}"
        )
    for failure in summary["failures"]:
        print(
            f"FAIL {failure['scenario']} seed={failure['seed']}: "
            f"{'; '.join(failure['failures'])}",
            file=sys.stderr,
        )
        print(
            "  minimized plan: "
            + canonical_dumps(failure["minimized_plan"]),
            file=sys.stderr,
        )
    total, bad = len(summary["cases"]), len(summary["failures"])
    print(f"chaos matrix: {total - bad}/{total} cases ok")
    return 0 if summary["ok"] else 1


_COMMANDS = {"sites": _cmd_sites, "plan": _cmd_plan, "chaos": _cmd_chaos}


def main(argv=None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); not a failure.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
