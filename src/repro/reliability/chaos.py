"""The chaos harness: byte parity between faulted and fault-free runs.

Every scenario runs the same scripted workload twice — once clean, once
under a :class:`~repro.reliability.faults.FaultPlan` — and asserts the
headline invariant: for every seeded fault schedule that does not
exhaust the retry budget, the answers are **byte-identical** to the
fault-free run, the daemon survives, and a restart after a simulated
kill loses nothing but the entries the schedule itself corrupted.

Three scenarios cover the three fault surfaces:

``service``
    a :class:`~repro.service.server.SolveService` with an on-disk cache:
    submit the workload under faults (bounded per-request retries for
    ``timeout``/fault results), kill the daemon without flushing, reopen
    the cache directory, and replay — cold bodies, warm bodies and
    recovery bodies must all equal the clean bodies, and the warm pass
    may recompute at most the entries the plan's storage faults lost.
``explore``
    a disk-rooted exploration run: the faulted
    :class:`~repro.roundelim.explore.report.ExplorationReport` payload,
    and the payload of a resumed run over the recovered store, must be
    byte-identical to the clean report.
``transport``
    a real HTTP daemon with a fault-injected
    :class:`~repro.service.client.ServiceClient`: dropped connections
    are retried (idempotent by digest) and the final responses must
    equal the clean ones.

:func:`minimize_plan` greedily shrinks a failing schedule to a minimal
one (the artifact CI uploads); :func:`chaos_matrix` runs a seed matrix
and aggregates.
"""

from __future__ import annotations

from pathlib import Path

from repro.reliability.faults import FaultClock, FaultPlan
from repro.utils.serialization import canonical_dumps

#: Per-request resubmission budget inside a scenario (the fault results
#: a retry can heal: a timed-out hang, an injected worker error).
DEFAULT_RETRIES = 3

#: Error codes a scenario retry is allowed to heal.  Anything else is a
#: real failure and fails the case immediately.
RETRYABLE_CODES = frozenset(
    {"timeout", "overloaded", "injected-fault", "worker-crash"}
)

CHAOS_SCHEMA = "repro.reliability/chaos-v1"

SCENARIOS = ("service", "explore", "transport")

#: Sites that can fire during each scenario (used both to derive seeded
#: plans that actually bite and to bound warm-pass recompute claims).
SCENARIO_SITES = {
    "service": (
        "cache.write",
        "cache.manifest",
        "worker.exec",
        "worker.solver",
    ),
    "explore": ("store.write",),
    "transport": ("client.send", "client.recv", "worker.exec", "cache.write"),
}


def _workload() -> list[dict]:
    """The scripted request sequence every service scenario replays.

    Small on purpose (chaos cases run in a matrix): three distinct
    solves — one on the SAT backend so ``worker.solver`` degradation has
    something to degrade — a duplicate, and one roundelim step.
    """
    from repro.service.protocol import roundelim_request, solve_request

    spec, algorithm = "maximal-matching:delta=3", "matching:proposal"
    return [
        solve_request(spec, algorithm=algorithm, n=24, seed=0),
        solve_request(spec, algorithm=algorithm, n=24, seed=1),
        solve_request(spec, algorithm=algorithm, n=24, seed=2, solver="sat"),
        solve_request(spec, algorithm=algorithm, n=24, seed=0),
        roundelim_request("sinkless-orientation:delta=3", op="R"),
    ]


def _body(response: dict) -> str | None:
    """The canonical bytes of a response's result body (None for errors).

    Envelopes differ legitimately between runs (``cached`` flips once an
    entry is warm), so parity is asserted on the record body alone.
    """
    if response.get("status") != "ok":
        return None
    record = response.get("report", response.get("result"))
    return canonical_dumps(record)


def _error_code(response: dict) -> str:
    return response.get("error", {}).get("code", "unknown")


def _submit_with_retries(service, request, retries: int):
    """Submit one request, healing retryable fault results by resubmission.

    Returns ``(response, attempts)``; a still-failing response after the
    budget means the schedule exhausted the retry budget (the invariant
    carve-out) — the caller reports it as such rather than as a parity
    failure.
    """
    attempts = 0
    while True:
        attempts += 1
        response = service.submit(request)
        if response.get("status") == "ok":
            return response, attempts
        if _error_code(response) not in RETRYABLE_CODES or attempts > retries:
            return response, attempts


def _failure(case: dict, detail: str) -> dict:
    case["ok"] = False
    case["failures"].append(detail)
    return case


def service_baseline(requests: list[dict] | None = None) -> dict:
    """The fault-free run: per-request body bytes + execution census.

    Memoize per workload and reuse across a whole seed matrix — the
    clean run is identical for every plan by the determinism contract.
    """
    from repro.service.server import SolveService

    requests = requests if requests is not None else _workload()
    with SolveService(jobs=1) as service:
        bodies = [_body(service.submit(request)) for request in requests]
        executions = service.pool.executions
    return {"bodies": bodies, "executions": executions}


def run_service_case(
    plan: FaultPlan,
    workdir: str | Path,
    *,
    baseline: dict | None = None,
    retries: int = DEFAULT_RETRIES,
    deadline: float | None = 30.0,
) -> dict:
    """One service chaos case: faulted cold run, kill, recovery replay."""
    from repro.service.server import SolveService

    requests = _workload()
    if baseline is None:
        baseline = service_baseline(requests)
    workdir = Path(workdir)
    case = {
        "scenario": "service",
        "plan": plan.as_dict(),
        "ok": True,
        "retry_budget_exhausted": False,
        "failures": [],
    }
    clock = FaultClock(plan)
    cold = SolveService(
        cache_dir=workdir / "cache", jobs=1, deadline=deadline, fault_clock=clock
    )
    try:
        for index, request in enumerate(requests):
            response, _attempts = _submit_with_retries(cold, request, retries)
            body = _body(response)
            if body is None:
                if _error_code(response) in RETRYABLE_CODES:
                    case["retry_budget_exhausted"] = True
                else:
                    _failure(
                        case,
                        f"request {index} failed non-retryably: "
                        f"{_error_code(response)}",
                    )
                continue
            if body != baseline["bodies"][index]:
                _failure(case, f"request {index} cold bytes differ from clean run")
        case["cold"] = {
            "executions": cold.pool.executions,
            "solves_computed": cold.solves_computed,
            "faults_fired": list(clock.fired),
        }
        # Completed executions must match the clean run exactly: a crash
        # consumes its one re-dispatch, a timed-out hang never completed
        # and its resubmission completes once.  Any surplus is a
        # double-dispatch — the planted bug the oracle must catch.
        if not case["retry_budget_exhausted"] and (
            cold.pool.executions != baseline["executions"]
        ):
            _failure(
                case,
                f"cold run completed {cold.pool.executions} executions, "
                f"clean run {baseline['executions']} — re-dispatch is not "
                f"exactly-once",
            )
    finally:
        # The simulated daemon kill: no drain, no manifest flush.
        cold.abandon()

    # Recovery: a fresh daemon on the killed daemon's cache directory.
    warm = SolveService(cache_dir=workdir / "cache", jobs=1, deadline=deadline)
    try:
        for index, request in enumerate(requests):
            response, _attempts = _submit_with_retries(warm, request, retries)
            body = _body(response)
            if body is None or body != baseline["bodies"][index]:
                _failure(case, f"request {index} recovery bytes differ")
        lossy = sum(1 for spec in plan.faults if spec.site == "cache.write")
        case["warm"] = {
            "solves_computed": warm.solves_computed,
            "recovery": dict(warm.cache.recovery),
            "lossy_faults": lossy,
        }
        # Only entries the plan itself tore/corrupted/blocked may need
        # recomputing; every clean entry must be served from disk.
        if warm.solves_computed > lossy:
            _failure(
                case,
                f"recovery recomputed {warm.solves_computed} entries but the "
                f"plan only lost {lossy}",
            )
    finally:
        warm.close()
    return case


def explore_baseline() -> dict:
    """The fault-free exploration report bytes for the chaos workload."""
    from repro.api import ProblemSpec
    from repro.roundelim.explore import (
        ExplorationLimits,
        ExplorationPolicy,
        explore,
    )

    roots = [ProblemSpec.parse("sinkless-orientation:delta=3").build()]
    policy = ExplorationPolicy(moves=("RE",), zero_round="uniform")
    limits = ExplorationLimits(max_depth=2, max_nodes=6)
    report = explore(roots, policy=policy, limits=limits)
    return {
        "bytes": report.canonical_json(),
        "roots": roots,
        "policy": policy,
        "limits": limits,
    }


def run_explore_case(
    plan: FaultPlan, workdir: str | Path, *, baseline: dict | None = None
) -> dict:
    """One exploration chaos case: faulted run, then recovery resume."""
    from repro.roundelim.explore import ProblemStore, explore

    if baseline is None:
        baseline = explore_baseline()
    workdir = Path(workdir)
    case = {
        "scenario": "explore",
        "plan": plan.as_dict(),
        "ok": True,
        "retry_budget_exhausted": False,
        "failures": [],
    }
    clock = FaultClock(plan)
    store = ProblemStore(root=workdir / "store", fault_clock=clock)
    report = explore(
        baseline["roots"],
        policy=baseline["policy"],
        limits=baseline["limits"],
        store=store,
    )
    if report.canonical_json() != baseline["bytes"]:
        _failure(case, "faulted exploration report differs from clean run")
    case["cold"] = {
        "faults_fired": list(clock.fired),
        "quarantined": store.stats.quarantined,
        "write_failures": store.stats.write_failures,
    }
    # Simulated kill: the store never flushed a manifest, so reopening
    # must take the recovery path (eager sweep) and still reproduce the
    # clean bytes with at most the lost entries recomputed.
    resumed = ProblemStore(root=workdir / "store")
    case["recovery"] = dict(resumed.recovery)
    second = explore(
        baseline["roots"],
        policy=baseline["policy"],
        limits=baseline["limits"],
        store=resumed,
    )
    if second.canonical_json() != baseline["bytes"]:
        _failure(case, "resumed exploration report differs from clean run")
    lossy = sum(1 for spec in plan.faults if spec.site == "store.write")
    case["warm"] = {"computed": resumed.stats.computed, "lossy_faults": lossy}
    if resumed.stats.computed > lossy:
        _failure(
            case,
            f"resume recomputed {resumed.stats.computed} steps but the plan "
            f"only lost {lossy}",
        )
    return case


def run_transport_case(
    plan: FaultPlan,
    workdir: str | Path,
    *,
    baseline: dict | None = None,
    retries: int = DEFAULT_RETRIES,
) -> dict:
    """One transport chaos case: injected connection drops over real HTTP."""
    from repro.service.client import ServiceClient, ServiceUnavailableError
    from repro.service.httpd import start_http_service
    from repro.service.server import SolveService

    requests = _workload()
    if baseline is None:
        baseline = service_baseline(requests)
    case = {
        "scenario": "transport",
        "plan": plan.as_dict(),
        "ok": True,
        "retry_budget_exhausted": False,
        "failures": [],
    }
    clock = FaultClock(plan)
    service = SolveService(
        cache_dir=Path(workdir) / "cache", jobs=1, deadline=30.0, fault_clock=clock
    )
    server, thread = start_http_service(service)
    try:
        client = ServiceClient(
            server.url,
            retries=max(retries, len(plan)),
            backoff=0.01,
            fault_clock=clock,
        )
        for index, request in enumerate(requests):
            try:
                response = client.request(request)
            except ServiceUnavailableError:
                case["retry_budget_exhausted"] = True
                continue
            body = _body(response)
            if body is None and _error_code(response) in RETRYABLE_CODES:
                case["retry_budget_exhausted"] = True
            elif body != baseline["bodies"][index]:
                _failure(case, f"request {index} transport bytes differ")
        if not client.ping():
            _failure(case, "daemon stopped answering after the fault schedule")
        case["cold"] = {
            "faults_fired": list(clock.fired),
            "retried": client.stats["retried"],
        }
    finally:
        server.shutdown()
        thread.join(timeout=10)
        service.close()
    return case


_RUNNERS = {
    "service": run_service_case,
    "explore": run_explore_case,
    "transport": run_transport_case,
}


def run_case(
    scenario: str, plan: FaultPlan, workdir: str | Path, **kwargs
) -> dict:
    """Dispatch one chaos case; unknown scenarios fail loudly."""
    from repro.utils import InvalidParameterError

    runner = _RUNNERS.get(scenario)
    if runner is None:
        raise InvalidParameterError(
            f"unknown chaos scenario {scenario!r}; known: {list(SCENARIOS)}"
        )
    return runner(plan, workdir, **kwargs)


def seeded_case_plan(scenario: str, seed: int) -> FaultPlan:
    """The seeded plan a matrix entry runs: sites limited to the scenario."""
    return FaultPlan.seeded(seed, sites=SCENARIO_SITES[scenario])


def minimize_plan(plan: FaultPlan, still_fails) -> FaultPlan:
    """Greedily shrink a failing plan while ``still_fails(plan)`` holds.

    One pass per size: try dropping each fault; recurse on the first
    drop that still fails.  The result is 1-minimal — removing any
    single remaining fault makes the case pass — which is what a human
    debugging a chaos artifact wants to read.
    """
    index = 0
    while index < len(plan.faults):
        candidate = plan.without(index)
        if len(candidate) and still_fails(candidate):
            plan = candidate
            index = 0
        else:
            index += 1
    return plan


def chaos_matrix(
    seeds,
    workdir: str | Path,
    *,
    scenarios=SCENARIOS,
    minimize: bool = True,
) -> dict:
    """Run a seed × scenario matrix; aggregate and minimize failures."""
    workdir = Path(workdir)
    baselines = {}
    cases = []
    failures = []
    for scenario in scenarios:
        if scenario == "explore":
            baselines[scenario] = {"baseline": explore_baseline()}
        else:
            baselines[scenario] = {"baseline": service_baseline()}
        for seed in seeds:
            plan = seeded_case_plan(scenario, seed)
            casedir = workdir / f"{scenario}-{seed}"
            case = run_case(scenario, plan, casedir, **baselines[scenario])
            case["seed"] = seed
            cases.append(case)
            if not case["ok"]:
                minimized = plan
                if minimize:
                    counter = [0]

                    def still_fails(candidate: FaultPlan) -> bool:
                        counter[0] += 1
                        attempt = run_case(
                            scenario,
                            candidate,
                            workdir / f"{scenario}-{seed}-min{counter[0]}",
                            **baselines[scenario],
                        )
                        return not attempt["ok"]

                    minimized = minimize_plan(plan, still_fails)
                failures.append(
                    {
                        "scenario": scenario,
                        "seed": seed,
                        "failures": case["failures"],
                        "plan": plan.as_dict(),
                        "minimized_plan": minimized.as_dict(),
                    }
                )
    return {
        "schema": CHAOS_SCHEMA,
        "scenarios": list(scenarios),
        "seeds": list(seeds),
        "cases": cases,
        "failures": failures,
        "ok": not failures,
    }
