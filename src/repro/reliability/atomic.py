"""Crash-safe storage primitives: atomic writes, checksums, quarantine.

Every disk-tier entry of the :class:`~repro.service.cache.ReportCache`
and the :class:`~repro.roundelim.explore.store.ProblemStore` goes
through this module:

* **atomic writes** — render to a temporary file in the target
  directory, then ``os.replace``; a crash (or injected torn write) at
  any point leaves either the old entry or a stray ``*.tmp``, never a
  half-written visible file;
* **checksum footers** — every entry carries a ``checksum`` field over
  the canonical encoding of the rest of the record, so silent on-disk
  corruption (truncation, bit rot, a concurrent non-atomic writer) is
  *detected* at read time instead of surfacing as a JSON error or —
  worse — a wrong answer;
* **quarantine** — a corrupt entry is moved to ``root/quarantine/``
  (never deleted: it is evidence) and the caller recomputes;
* **recovery sweep** — on reopening a store whose shutdown manifest is
  missing (an ungraceful shutdown), every entry is validated eagerly,
  corrupt ones are quarantined, and stray temporary files are removed.

Entries written before the checksum layer existed (no ``checksum``
field) are accepted as long as they parse — the footer is verified only
when present, so old store directories resume without recomputation.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from pathlib import Path

from repro.reliability.faults import (
    FaultClock,
    InjectedFault,
    StorageFault,
    TornWriteFault,
    check_fault,
    fault_error,
)
from repro.utils import ReproError
from repro.utils.serialization import canonical_dumps

CHECKSUM_KEY = "checksum"

#: Directory (under a store root) corrupt entries are moved into.
QUARANTINE_DIR = "quarantine"


class CorruptEntryError(ReproError):
    """An on-disk entry failed validation (torn, truncated, tampered)."""

    code = "corrupt-entry"


def body_checksum(body: dict) -> str:
    """sha256 over the canonical encoding of ``body`` (checksum excluded)."""
    keyed = {key: value for key, value in body.items() if key != CHECKSUM_KEY}
    encoded = canonical_dumps(keyed).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()


def write_checked_json(
    path: str | Path,
    value: dict,
    *,
    indent: int | None = 2,
    fault_clock: FaultClock | None = None,
    site: str | None = None,
) -> Path:
    """Atomically write ``value`` as canonical JSON with a checksum footer.

    The rendered bytes land in a ``*.tmp`` sibling first and are moved
    over the target with ``os.replace``, so the visible file is always
    either the previous version or the complete new one.  When a fault
    clock and site are given, scheduled faults fire here:

    * ``error`` — raises before anything is written;
    * ``torn_write`` — writes half the bytes to the temp file, then
      raises (the stray temp file is recovery-sweep food);
    * ``corrupt`` — the write *succeeds*, then the visible file is
      truncated in place: the silent-corruption case checksums catch.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    body = {**value, CHECKSUM_KEY: body_checksum(value)}
    data = (canonical_dumps(body, indent=indent) + "\n").encode("utf-8")
    spec = check_fault(fault_clock, site) if site is not None else None
    if spec is not None and spec.kind == "error":
        raise StorageFault(spec)
    fd, tmp_name = tempfile.mkstemp(
        dir=target.parent, prefix=f"{target.name}.", suffix=".tmp"
    )
    with os.fdopen(fd, "wb") as handle:
        if spec is not None and spec.kind == "torn_write":
            handle.write(data[: len(data) // 2])
            handle.flush()
            raise TornWriteFault(spec)
        handle.write(data)
    os.replace(tmp_name, target)
    if spec is not None and spec.kind == "corrupt":
        raw = target.read_bytes()
        target.write_bytes(raw[: len(raw) // 2])
    elif spec is not None and spec.kind not in ("error", "torn_write"):
        raise fault_error(spec)
    return target


def read_checked_json(path: str | Path) -> dict:
    """Load one entry, verifying its checksum footer when present.

    Returns the entry *without* the ``checksum`` key.  Raises
    :class:`CorruptEntryError` for every way an entry can be bad:
    unreadable, empty, truncated, not JSON, not an object, or failing
    its checksum.  Entries without a footer (written before the
    checksum layer) are accepted if they parse.
    """
    target = Path(path)
    try:
        text = target.read_text()
    except OSError as error:
        raise CorruptEntryError(f"unreadable entry {target.name}: {error}") from error
    if not text.strip():
        raise CorruptEntryError(f"empty entry {target.name}")
    try:
        loaded = json.loads(text)
    except json.JSONDecodeError as error:
        raise CorruptEntryError(
            f"entry {target.name} is not JSON: {error}"
        ) from error
    if not isinstance(loaded, dict):
        raise CorruptEntryError(
            f"entry {target.name} is {type(loaded).__name__}, expected an object"
        )
    stored = loaded.pop(CHECKSUM_KEY, None)
    if stored is not None and stored != body_checksum(loaded):
        raise CorruptEntryError(f"entry {target.name} fails its checksum")
    return loaded


def quarantine_entry(path: str | Path, root: str | Path) -> Path | None:
    """Move a bad entry into ``root/quarantine/``; returns its new home.

    Never deletes: a quarantined entry is the forensic record of what
    corruption looked like.  Name collisions get a numeric suffix.
    Returns None when the entry vanished before it could be moved.
    """
    source = Path(path)
    target_dir = Path(root) / QUARANTINE_DIR
    target_dir.mkdir(parents=True, exist_ok=True)
    candidate = target_dir / source.name
    suffix = 0
    while candidate.exists():
        suffix += 1
        candidate = target_dir / f"{source.name}.{suffix}"
    try:
        os.replace(source, candidate)
    except OSError:
        return None
    return candidate


def sweep_tree(root: str | Path, subdirs) -> dict:
    """Validate every entry under ``root``'s subdirs; quarantine the bad.

    The eager half of recovery: called when a store reopens without a
    graceful-shutdown manifest.  Stray ``*.tmp`` files (torn or
    interrupted atomic writes) are removed; every ``*.json`` entry is
    checksum-validated and corrupt ones move to quarantine.  Returns a
    summary (``checked`` / ``quarantined`` / ``tmp_removed``).
    """
    root = Path(root)
    summary = {"checked": 0, "quarantined": 0, "tmp_removed": 0}
    for sub in subdirs:
        directory = root / sub
        if not directory.is_dir():
            continue
        for stray in sorted(directory.glob("*.tmp")):
            stray.unlink(missing_ok=True)
            summary["tmp_removed"] += 1
        for entry in sorted(directory.glob("*.json")):
            summary["checked"] += 1
            try:
                read_checked_json(entry)
            except CorruptEntryError:
                quarantine_entry(entry, root)
                summary["quarantined"] += 1
    return summary


def open_with_recovery(
    root: str | Path,
    subdirs,
    *,
    manifest_name: str = "manifest.json",
) -> dict:
    """Prepare a store directory, recovering from ungraceful shutdowns.

    Creates the subdirectories, then decides between the two trust
    levels:

    * a readable, checksum-valid manifest means the previous shutdown
      was graceful — entries are trusted and validated lazily on read;
    * a missing or corrupt manifest means a crash — every entry is
      swept eagerly (see :func:`sweep_tree`), and a corrupt manifest is
      itself quarantined.

    Returns a recovery summary ``{"graceful", "checked", "quarantined",
    "tmp_removed"}`` the store keeps for telemetry.
    """
    root = Path(root)
    for sub in subdirs:
        (root / sub).mkdir(parents=True, exist_ok=True)
    manifest = root / manifest_name
    graceful = False
    if manifest.exists():
        try:
            read_checked_json(manifest)
            graceful = True
        except CorruptEntryError:
            quarantine_entry(manifest, root)
    summary = {"checked": 0, "quarantined": 0, "tmp_removed": 0}
    if not graceful:
        summary = sweep_tree(root, subdirs)
    return {"graceful": graceful, **summary}


__all__ = [
    "CHECKSUM_KEY",
    "CorruptEntryError",
    "InjectedFault",
    "QUARANTINE_DIR",
    "body_checksum",
    "open_with_recovery",
    "quarantine_entry",
    "read_checked_json",
    "sweep_tree",
    "write_checked_json",
]
