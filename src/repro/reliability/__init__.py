"""Deterministic fault injection, crash-safe storage, chaos testing.

The reliability layer is what lets the rest of the system promise
*byte-identical outputs under injected faults* — the same contract the
experiments runner makes for ``jobs=N`` and the exploration store makes
for kill-and-resume, extended to torn writes, corrupted entries, dead
and hung workers, and dropped connections:

* :mod:`repro.reliability.faults` — :class:`FaultPlan` (a seeded,
  replayable schedule of named fault sites) and :class:`FaultClock`
  (the runtime hit counter that fires them exactly once);
* :mod:`repro.reliability.atomic` — atomic temp-file+rename writes,
  per-entry checksum footers, quarantine, and manifest-driven recovery
  for the disk tiers;
* :mod:`repro.reliability.supervise` — :class:`SupervisedWorkerPool`:
  worker restart with exactly-once re-dispatch, per-request deadlines
  (stable ``timeout`` wire code), SAT→CSP degradation;
* :mod:`repro.reliability.chaos` — the harness asserting the byte-parity
  invariant over seeded fault schedules, with greedy plan minimization;
* :mod:`repro.reliability.cli` — ``python -m repro.reliability``
  (``sites`` / ``plan`` / ``chaos``).
"""

from repro.reliability.atomic import (
    CHECKSUM_KEY,
    QUARANTINE_DIR,
    CorruptEntryError,
    body_checksum,
    open_with_recovery,
    quarantine_entry,
    read_checked_json,
    sweep_tree,
    write_checked_json,
)
from repro.reliability.chaos import (
    CHAOS_SCHEMA,
    SCENARIOS,
    chaos_matrix,
    minimize_plan,
    run_case,
    seeded_case_plan,
)
from repro.reliability.faults import (
    FAULT_KINDS,
    FAULT_SITES,
    PLAN_SCHEMA,
    BackendCrashFault,
    FaultClock,
    FaultPlan,
    FaultSpec,
    HungSolveFault,
    InjectedFault,
    StorageFault,
    TornWriteFault,
    TransportDropFault,
    WorkerCrashFault,
    check_fault,
    fault_error,
)
from repro.reliability.supervise import (
    RequestTimeoutError,
    SupervisedWorkerPool,
    WorkerCrashError,
)

__all__ = [
    "CHAOS_SCHEMA",
    "CHECKSUM_KEY",
    "FAULT_KINDS",
    "FAULT_SITES",
    "PLAN_SCHEMA",
    "QUARANTINE_DIR",
    "SCENARIOS",
    "BackendCrashFault",
    "CorruptEntryError",
    "FaultClock",
    "FaultPlan",
    "FaultSpec",
    "HungSolveFault",
    "InjectedFault",
    "RequestTimeoutError",
    "StorageFault",
    "SupervisedWorkerPool",
    "TornWriteFault",
    "TransportDropFault",
    "WorkerCrashError",
    "WorkerCrashFault",
    "body_checksum",
    "chaos_matrix",
    "check_fault",
    "fault_error",
    "minimize_plan",
    "open_with_recovery",
    "quarantine_entry",
    "read_checked_json",
    "run_case",
    "seeded_case_plan",
    "sweep_tree",
    "write_checked_json",
]
