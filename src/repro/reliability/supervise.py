"""Worker supervision: restart dead workers, time out hung ones.

:class:`SupervisedWorkerPool` keeps the
:class:`~repro.service.worker.WorkerPool` batch contract (``run_batch``:
canonical requests in, results in task order, failures as data) and adds
the self-healing layer the service daemon needs to survive a hostile
world:

* **dead workers** — a worker process that dies mid-request (a real
  broken pool, or an injected ``worker.exec``/``crash`` fault) is
  detected, the pool is restarted, and the in-flight request is
  re-dispatched **exactly once**; a second death returns a
  ``worker-crash`` error result instead of looping.
* **hung workers** — with a ``deadline`` configured, a request that
  does not answer in time (a stuck pooled worker, or an injected
  ``hang`` fault) resolves to the stable ``timeout`` wire code and the
  wedged pool is recycled so the slot comes back.
* **graceful degradation** — when a ``worker.solver`` fault marks a
  non-default solver backend as crashed, the request is re-executed on
  the default backend and counted in ``degraded``.  Backends are
  observationally equivalent (request digests and records exclude
  them), so degradation is visible in telemetry and *never* in bytes.

Every fault decision happens in the parent at dispatch time (see
:mod:`repro.reliability.faults`), so the same plan produces the same
faults for ``jobs=1`` and ``jobs=N``.  ``executions`` counts actual
request dispatches — the counter the ``reliability`` differential
oracle compares to prove exactly-once re-dispatch.
"""

from __future__ import annotations

import multiprocessing
import multiprocessing.pool

from repro.reliability.faults import FaultClock, check_fault
from repro.utils import InvalidParameterError, ReproError


class RequestTimeoutError(ReproError):
    """A request exceeded its per-request deadline."""

    code = "timeout"


class WorkerCrashError(ReproError):
    """A worker died and its one re-dispatch died too."""

    code = "worker-crash"


def timeout_result(deadline: float | None) -> dict:
    """The result a hung request resolves to (stable ``timeout`` code)."""
    return {
        "ok": False,
        "code": RequestTimeoutError.code,
        "message": (
            "RequestTimeoutError: request exceeded its deadline"
            + (f" of {deadline}s" if deadline is not None else "")
        ),
    }


class SupervisedWorkerPool:
    """Batch executor with supervision, deadlines, and fault hooks.

    Drop-in for :class:`~repro.service.worker.WorkerPool`: inline when
    ``jobs=1``, a lazily created process pool otherwise, results always
    in task order, a failed request always a *result*.
    """

    def __init__(
        self,
        jobs: int = 1,
        *,
        deadline: float | None = None,
        fault_clock: FaultClock | None = None,
        worker_fn=None,
    ) -> None:
        if jobs < 1:
            raise InvalidParameterError("worker jobs must be >= 1")
        if deadline is not None and deadline <= 0:
            raise InvalidParameterError("deadline must be positive seconds")
        if worker_fn is None:
            # Lazy: the storage layers import this package, and the
            # worker module sits behind repro.service's own __init__.
            from repro.service.worker import compute_result as worker_fn
        self.jobs = jobs
        self.deadline = deadline
        self.fault_clock = fault_clock
        self.worker_fn = worker_fn
        self._pool = None
        # Supervision telemetry: mutated only by the single dispatcher
        # thread that owns run_batch, read by status().
        self.executions = 0
        self.worker_crashes = 0
        self.worker_restarts = 0
        self.redispatched = 0
        self.timeouts = 0
        self.degraded = 0

    # -- fault planning (parent side, deterministic) -----------------------

    def _plan_request(self, canonical: dict) -> tuple[str, dict]:
        """Decide this request's injected fate: ``(action, executable)``.

        ``action`` is ``"run"`` (normal), ``"crash"`` (the first
        dispatch is killed; the executable runs as the one re-dispatch)
        or ``"hang"`` (never answers; resolves to ``timeout``).  The
        executable may carry a degraded solver backend.
        """
        run = canonical
        solver_fault = check_fault(self.fault_clock, "worker.solver")
        if (
            solver_fault is not None
            and run.get("solver") is not None
            and run.get("solver") != "csp"
        ):
            # The non-default backend "crashed": fall back to the
            # default.  Digests and records exclude the backend, so the
            # answer bytes cannot change — only this counter does.
            self.degraded += 1
            run = {**run, "solver": "csp"}
        exec_fault = check_fault(self.fault_clock, "worker.exec")
        if exec_fault is not None and exec_fault.kind == "hang":
            return "hang", run
        if exec_fault is not None and exec_fault.kind == "crash":
            return "crash", run
        return "run", run

    # -- execution ---------------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            try:
                self._pool = multiprocessing.Pool(processes=self.jobs)
            except (AssertionError, ValueError, OSError):
                self._pool = False  # pools unavailable here: stay inline
        return self._pool

    def _restart_pool(self) -> None:
        """Tear down a broken/wedged pool; the next batch forks fresh."""
        self.worker_restarts += 1
        pool = self._pool
        self._pool = None
        if pool:
            try:
                pool.terminate()
                pool.join()
            except Exception:  # noqa: BLE001 - a dead pool may misbehave
                pass

    def _execute_inline(self, canonical: dict) -> dict:
        self.executions += 1
        try:
            return self.worker_fn(canonical)
        except Exception as error:  # noqa: BLE001 - failures are results
            # worker_fn already converts failures to results; this is
            # the belt for a worker body that itself crashed.
            return {
                "ok": False,
                "code": WorkerCrashError.code,
                "message": f"{type(error).__name__}: {error}",
            }

    def _redispatch(self, canonical: dict) -> dict:
        """Re-run one in-flight request after its worker died — once."""
        self.redispatched += 1
        return self._execute_inline(canonical)

    def run_batch(self, batch: list[dict]) -> list[dict]:
        """Execute a batch of canonical requests, results in task order."""
        planned = [self._plan_request(canonical) for canonical in batch]
        results: list[dict | None] = [None] * len(batch)
        pooled_indices = []
        for index, (action, run) in enumerate(planned):
            if action == "hang":
                self.timeouts += 1
                results[index] = timeout_result(self.deadline)
            elif action == "crash":
                # The dispatched worker was "killed" before answering:
                # restart the (conceptual) worker and re-dispatch the
                # request exactly once.
                self.worker_crashes += 1
                self._restart_pool()
                results[index] = self._redispatch(run)
            else:
                pooled_indices.append(index)
        live = [(index, planned[index][1]) for index in pooled_indices]
        if len(live) > 1 and self.jobs > 1:
            pool = self._ensure_pool()
            if pool:
                self._run_pooled(pool, live, results)
                return results  # type: ignore[return-value]
        for index, run in live:
            results[index] = self._execute_inline(run)
        return results  # type: ignore[return-value]

    def _run_pooled(self, pool, live, results) -> None:
        """Pool execution with real dead/hung worker supervision.

        Each request is an ``apply_async`` collected with the deadline:
        a timeout recycles the wedged pool and resolves to the
        ``timeout`` code; a broken pool re-dispatches the affected
        request inline exactly once (requests whose async results died
        with the same pool each get their own single re-dispatch).
        """
        asyncs = []
        for index, run in live:
            self.executions += 1
            asyncs.append((index, run, pool.apply_async(self.worker_fn, (run,))))
        for index, run, pending in asyncs:
            try:
                results[index] = pending.get(self.deadline)
            except multiprocessing.TimeoutError:
                self.timeouts += 1
                self._restart_pool()
                results[index] = timeout_result(self.deadline)
            except Exception:  # noqa: BLE001 - the pool died under us
                self.worker_crashes += 1
                self._restart_pool()
                results[index] = self._redispatch(run)

    # -- lifecycle / telemetry ---------------------------------------------

    def close(self) -> None:
        if self._pool:
            self._pool.close()
            self._pool.join()
        self._pool = None

    def telemetry(self) -> dict:
        """The supervision counters (shape is part of the status schema)."""
        return {
            "executions": self.executions,
            "worker_crashes": self.worker_crashes,
            "worker_restarts": self.worker_restarts,
            "redispatched": self.redispatched,
            "timeouts": self.timeouts,
            "degraded": self.degraded,
        }
