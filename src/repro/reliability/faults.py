"""Deterministic, seeded fault injection: plans, clocks, typed faults.

A :class:`FaultPlan` is a *schedule*: a set of (site, hit, kind) triples
saying "the ``kind`` fault fires the ``hit``-th time execution passes the
named ``site``".  Plans are canonical JSON (schema
``repro.reliability/plan-v1``) and derivable from a seed, so a chaos run
is replayable bit-for-bit: same plan, same faults, same recovery path.

A :class:`FaultClock` is the runtime half: components that opt into
injection call :func:`check_fault` (or :meth:`FaultClock.raise_if`) at
their named sites; the clock counts hits, fires the scheduled faults
exactly once each, and keeps a log of what fired for telemetry.

Every injection decision is taken in the *parent* process — the worker
pool decides crash/hang/degrade faults at dispatch time, before a
request is shipped to a subprocess — so schedules stay deterministic no
matter how work is distributed (``jobs=1`` and ``jobs=N`` see the same
hit counts in the same order for the same request sequence).

Fault kinds:

``error``
    the operation raises (a failed syscall); nothing was written.
``torn_write``
    the write stops halfway through the *temporary* file and raises —
    with atomic renames the visible entry is never torn, only a stray
    ``*.tmp`` is left for recovery to sweep.
``corrupt``
    the write completes, then the on-disk bytes are truncated — the
    silent-corruption case the checksum footer exists to catch.
``crash``
    the worker process (or backend) dies before producing a result.
``hang``
    the worker never answers; with a deadline this surfaces as the
    stable ``timeout`` wire code.
``drop``
    the transport loses the connection (before the request or mid-way
    through the response).
"""

from __future__ import annotations

import random
import threading
from dataclasses import dataclass

from repro.utils import InvalidParameterError, ReproError

PLAN_SCHEMA = "repro.reliability/plan-v1"

#: Every fault kind a schedule may carry.
FAULT_KINDS = ("error", "torn_write", "corrupt", "crash", "hang", "drop")

#: The fault-site catalog: injection point -> the kinds it supports.
#: Sites are stable names — plans reference them, telemetry reports
#: them, and the README documents them.
FAULT_SITES: dict[str, tuple[str, ...]] = {
    "cache.write": ("torn_write", "corrupt", "error"),
    "cache.manifest": ("torn_write", "error"),
    "store.write": ("torn_write", "corrupt", "error"),
    "worker.exec": ("crash", "hang"),
    "worker.solver": ("crash",),
    "client.send": ("drop",),
    "client.recv": ("drop",),
}

SITE_DESCRIPTIONS = {
    "cache.write": "ReportCache disk-tier entry write (reports/<digest>.json)",
    "cache.manifest": "ReportCache shutdown-manifest write",
    "store.write": "ProblemStore disk-tier write (nodes/ ops/ links/)",
    "worker.exec": "worker-pool request execution (kill or hang a worker)",
    "worker.solver": "non-default solver backend crash (degrades to default)",
    "client.send": "HTTP transport: connection drops before the request",
    "client.recv": "HTTP transport: connection drops mid-response",
}


class InjectedFault(ReproError):
    """Base of every injected fault; carries the spec that fired."""

    code = "injected-fault"
    kind = "error"

    def __init__(self, spec: "FaultSpec") -> None:
        super().__init__(
            f"injected {spec.kind} fault at {spec.site} (hit {spec.hit})"
        )
        self.spec = spec


class StorageFault(InjectedFault):
    """A storage write failed outright (simulated failed syscall)."""

    kind = "error"


class TornWriteFault(InjectedFault):
    """A storage write died halfway through its temporary file."""

    kind = "torn_write"


class WorkerCrashFault(InjectedFault):
    """A worker process died before returning its result."""

    kind = "crash"


class HungSolveFault(InjectedFault):
    """A worker stopped answering; only a deadline gets the slot back."""

    kind = "hang"


class BackendCrashFault(InjectedFault):
    """A solver backend crashed mid-solve (degrades to the default)."""

    kind = "crash"


class TransportDropFault(InjectedFault):
    """The HTTP transport lost its connection."""

    kind = "drop"


#: kind -> exception class, for sites without a more specific mapping.
_KIND_ERRORS = {
    "error": StorageFault,
    "torn_write": TornWriteFault,
    "crash": WorkerCrashFault,
    "hang": HungSolveFault,
    "drop": TransportDropFault,
}


def fault_error(spec: "FaultSpec") -> InjectedFault:
    """The typed exception a fired fault spec raises."""
    if spec.site == "worker.solver":
        return BackendCrashFault(spec)
    return _KIND_ERRORS[spec.kind](spec)


@dataclass(frozen=True, order=True)
class FaultSpec:
    """One scheduled fault: ``kind`` fires on the ``hit``-th pass of ``site``."""

    site: str
    hit: int
    kind: str

    def __post_init__(self) -> None:
        if self.site not in FAULT_SITES:
            raise InvalidParameterError(
                f"unknown fault site {self.site!r}; known: {sorted(FAULT_SITES)}"
            )
        if self.kind not in FAULT_SITES[self.site]:
            raise InvalidParameterError(
                f"fault site {self.site!r} does not support kind {self.kind!r}; "
                f"supported: {list(FAULT_SITES[self.site])}"
            )
        if not isinstance(self.hit, int) or isinstance(self.hit, bool) or self.hit < 1:
            raise InvalidParameterError(
                f"fault hit count must be an int >= 1, got {self.hit!r}"
            )

    def as_dict(self) -> dict:
        return {"site": self.site, "hit": self.hit, "kind": self.kind}

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultSpec":
        return cls(
            site=payload["site"], hit=payload["hit"], kind=payload["kind"]
        )


@dataclass(frozen=True)
class FaultPlan:
    """A replayable fault schedule (canonical, seed-derivable)."""

    name: str = "empty"
    seed: int | None = None
    faults: tuple[FaultSpec, ...] = ()

    def __post_init__(self) -> None:
        keys = [(spec.site, spec.hit) for spec in self.faults]
        if len(keys) != len(set(keys)):
            raise InvalidParameterError(
                "a fault plan may schedule at most one fault per (site, hit)"
            )

    def __len__(self) -> int:
        return len(self.faults)

    def as_dict(self) -> dict:
        return {
            "schema": PLAN_SCHEMA,
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.as_dict() for spec in self.faults],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "FaultPlan":
        schema = payload.get("schema", PLAN_SCHEMA)
        if schema != PLAN_SCHEMA:
            raise InvalidParameterError(
                f"unsupported fault-plan schema {schema!r}; expected "
                f"{PLAN_SCHEMA!r}"
            )
        return cls(
            name=payload.get("name", "unnamed"),
            seed=payload.get("seed"),
            faults=tuple(
                FaultSpec.from_dict(entry) for entry in payload.get("faults", ())
            ),
        )

    @classmethod
    def from_faults(cls, faults, name: str = "explicit") -> "FaultPlan":
        """Build a plan from ``(site, hit, kind)`` triples or spec dicts."""
        specs = []
        for entry in faults:
            if isinstance(entry, FaultSpec):
                specs.append(entry)
            elif isinstance(entry, dict):
                specs.append(FaultSpec.from_dict(entry))
            else:
                site, hit, kind = entry
                specs.append(FaultSpec(site=site, hit=hit, kind=kind))
        return cls(name=name, faults=tuple(specs))

    @classmethod
    def seeded(
        cls,
        seed: int,
        *,
        sites=None,
        max_faults: int = 3,
        max_hit: int = 4,
    ) -> "FaultPlan":
        """Derive a schedule deterministically from a seed.

        The RNG stream depends only on the arguments, so a seed names
        the same chaos schedule on every machine and every run — the
        property that makes a failing CI seed replayable locally.
        """
        if max_faults < 1 or max_hit < 1:
            raise InvalidParameterError("max_faults and max_hit must be >= 1")
        pool = sorted(sites) if sites is not None else sorted(FAULT_SITES)
        for site in pool:
            if site not in FAULT_SITES:
                raise InvalidParameterError(
                    f"unknown fault site {site!r}; known: {sorted(FAULT_SITES)}"
                )
        rng = random.Random(f"repro.reliability:{seed}")
        count = rng.randint(1, max_faults)
        specs: dict[tuple[str, int], FaultSpec] = {}
        for _ in range(count):
            site = rng.choice(pool)
            kind = rng.choice(FAULT_SITES[site])
            hit = rng.randint(1, max_hit)
            specs.setdefault((site, hit), FaultSpec(site=site, hit=hit, kind=kind))
        return cls(
            name=f"seed-{seed}", seed=seed, faults=tuple(sorted(specs.values()))
        )

    def without(self, index: int) -> "FaultPlan":
        """The plan minus its ``index``-th fault (for minimization)."""
        kept = tuple(
            spec for position, spec in enumerate(self.faults) if position != index
        )
        return FaultPlan(name=f"{self.name}-minus-{index}", seed=self.seed, faults=kept)


class FaultClock:
    """Counts hits per site and fires the scheduled faults (thread-safe).

    One clock drives one run.  ``check`` increments the site's hit
    counter and returns the scheduled :class:`FaultSpec` if this exact
    hit is scheduled (each scheduled fault fires at most once, because
    hit counts only move forward).  ``fired`` is the replay log.
    """

    def __init__(self, plan: FaultPlan | None = None) -> None:
        self.plan = plan if plan is not None else FaultPlan()
        self._schedule = {
            (spec.site, spec.hit): spec for spec in self.plan.faults
        }
        self._hits: dict[str, int] = {}
        self._lock = threading.Lock()
        self.fired: list[dict] = []

    def check(self, site: str) -> FaultSpec | None:
        """Count one pass of ``site``; the fault to inject, or None."""
        if site not in FAULT_SITES:
            raise InvalidParameterError(
                f"unknown fault site {site!r}; known: {sorted(FAULT_SITES)}"
            )
        with self._lock:
            self._hits[site] = self._hits.get(site, 0) + 1
            spec = self._schedule.get((site, self._hits[site]))
            if spec is not None:
                self.fired.append(spec.as_dict())
        return spec

    def raise_if(self, site: str) -> None:
        """``check`` and raise the mapped exception when a fault fires."""
        spec = self.check(site)
        if spec is not None:
            raise fault_error(spec)

    def hits(self) -> dict[str, int]:
        """A copy of the per-site hit counters."""
        with self._lock:
            return dict(self._hits)

    def exhausted(self) -> bool:
        """True once every scheduled fault has fired."""
        with self._lock:
            return len(self.fired) == len(self._schedule)


def check_fault(clock: FaultClock | None, site: str) -> FaultSpec | None:
    """:meth:`FaultClock.check` that tolerates ``clock=None`` (no-op)."""
    if clock is None:
        return None
    return clock.check(site)
