"""End-to-end façade: ``solve()``, ``check()`` and ``simulate()``.

One call composes the whole pipeline the paper's experiments repeat —
resolve a problem spec, pick a registered algorithm, run it on an engine
backend, validate the output, measure rounds::

    from repro import api
    report = api.solve("matching:Δ=4,x=0,y=1",
                       algorithm="matching:proposal",
                       engine="batched", seed=0)
    assert report.valid and report.rounds > 0

``solve`` returns a :class:`~repro.api.types.SolveReport`; ``check``
validates an existing solution against a problem spec; ``simulate`` runs
an algorithm on an engine and returns the raw
(:class:`~repro.local.simulator.RunResult`,
:class:`~repro.local.measurement.Measurement`) pair without finalizing
or checking.
"""

from __future__ import annotations

from collections.abc import Callable

import networkx as nx

from repro.api.engines import DEFAULT_ENGINE, Engine, resolve_engine
from repro.api.errors import AlgorithmMismatchError, SpecError
from repro.api.registry import (
    Algorithm,
    available_algorithms,
    resolve_algorithm,
)
from repro.api.types import ProblemSpec, SolveReport
from repro.checkers import (
    CheckResult,
    check_arbdefective_coloring,
    check_mis,
    check_proper_coloring,
    check_ruling_set,
    check_sinkless_orientation,
    check_x_maximal_y_matching,
)
from repro.local.measurement import EngineProbe, Measurement, timed
from repro.local.network import Network
from repro.local.simulator import RoundTrace, RunResult


def _check_matching(graph: nx.Graph, spec: ProblemSpec, solution) -> CheckResult:
    return check_x_maximal_y_matching(
        graph,
        solution,
        x=spec.param("x", 0),
        y=spec.param("y", 1),
        # The spec's Δ is the problem parameter; only when the spec omits
        # it does the checker fall back to the graph's max degree.
        delta=spec.param("delta"),
    )


def _check_maximal_matching(
    graph: nx.Graph, spec: ProblemSpec, solution
) -> CheckResult:
    return check_x_maximal_y_matching(graph, solution, x=0, y=1)


def _check_mis(graph: nx.Graph, spec: ProblemSpec, solution) -> CheckResult:
    return check_mis(graph, solution)


def _check_coloring(graph: nx.Graph, spec: ProblemSpec, solution) -> CheckResult:
    result = check_proper_coloring(graph, solution)
    colors = spec.param("colors")
    if result and colors is not None:
        used = len(set(solution.values()))
        if used > colors:
            return CheckResult(
                valid=False,
                reason=f"uses {used} colors > c = {colors} of the spec",
            )
    return result


def _check_ruling(graph: nx.Graph, spec: ProblemSpec, solution) -> CheckResult:
    return check_ruling_set(
        graph, solution, beta=spec.param("beta", 1), independent=True
    )


def _check_arbdefective(
    graph: nx.Graph, spec: ProblemSpec, solution
) -> CheckResult:
    # Spec parameters take precedence over the solution's self-declared
    # ones, and the claimed α is capped by the family's ⌊Δ/c⌋ — a
    # solution must not be able to certify itself by inflating α.
    colors = spec.param("colors", solution["colors"])
    alpha = solution["alpha"]
    delta = spec.param("delta")
    if delta is not None and colors:
        alpha_cap = delta // colors
        if alpha > alpha_cap:
            return CheckResult(
                valid=False,
                reason=f"claimed α = {alpha} exceeds ⌊Δ/c⌋ = {alpha_cap}",
            )
    return check_arbdefective_coloring(
        graph,
        solution["color_of"],
        solution["orientation"],
        alpha,
        colors,
    )


def _check_orientation(graph: nx.Graph, spec: ProblemSpec, solution) -> CheckResult:
    return check_sinkless_orientation(graph, solution)


#: Family → checker(graph, spec, solution) used by check() and solve().
FAMILY_CHECKERS: dict[
    str, Callable[[nx.Graph, ProblemSpec, object], CheckResult]
] = {
    "matching": _check_matching,
    "maximal-matching": _check_maximal_matching,
    "mis": _check_mis,
    "coloring": _check_coloring,
    "ruling-set": _check_ruling,
    "arbdefective": _check_arbdefective,
    "sinkless-orientation": _check_orientation,
}


def _family_check(spec: ProblemSpec, graph: nx.Graph, solution) -> CheckResult:
    try:
        checker = FAMILY_CHECKERS[spec.family]
    except KeyError:
        raise SpecError(
            f"no validity checker registered for family {spec.family!r}; "
            f"checkable families: {sorted(FAMILY_CHECKERS)}"
        ) from None
    return checker(graph, spec, solution)


def check(problem: ProblemSpec | str, graph, solution) -> CheckResult:
    """Validate ``solution`` to ``problem`` on ``graph``.

    Dispatches on the spec's family to the matching concrete checker;
    accepts a :class:`Network` or a bare graph.
    """
    spec = ProblemSpec.parse(problem)
    if isinstance(graph, Network):
        graph = graph.graph
    return _family_check(spec, graph, solution)


def _resolve_network(
    algorithm: Algorithm,
    spec: ProblemSpec,
    network: Network | None,
    graph: nx.Graph | None,
    n: int | None,
    seed: int,
) -> Network:
    if network is not None and graph is not None:
        raise SpecError("pass either network= or graph=, not both")
    if network is not None:
        return network
    if graph is not None:
        return Network(graph=graph)
    return algorithm.default_network(spec, n=n, seed=seed)


def _resolve_pair(
    problem: ProblemSpec | str, algorithm: Algorithm | str
) -> tuple[ProblemSpec, Algorithm]:
    """Parse the spec and match it to the algorithm.

    Parsing already range-validates parameters cheaply (see
    :func:`repro.problems.registry.validate_parameters`); the formalism
    problem itself is *not* built here — its condensed configurations
    expand exponentially in Δ, and the façade never needs the expansion.
    """
    spec = ProblemSpec.parse(problem)
    resolved = (
        algorithm
        if isinstance(algorithm, Algorithm)
        else resolve_algorithm(algorithm)
    )
    if not resolved.supports(spec.family):
        raise AlgorithmMismatchError(
            resolved.name,
            spec.family,
            solves=list(resolved.families),
            alternatives=available_algorithms(spec.family),
        )
    return spec, resolved


def _execute(
    algo: Algorithm,
    spec: ProblemSpec,
    net: Network,
    eng: Engine,
    *,
    seed: int,
    max_rounds: int,
    options: dict,
    probe: Callable[[RoundTrace], None] | None = None,
) -> tuple[RunResult, Measurement]:
    """Run ``algo`` on ``eng`` — the one execution path solve()/simulate()
    share.

    For a ``"global"``-kind algorithm the engine and probe are unused (no
    message rounds exist to observe): the returned outputs are the
    solution object and the measurement carries only the accounted
    rounds.
    """
    if algo.kind != "message":
        (solution, rounds), wall = timed(algo.run_global, net, spec, options, seed)
        measurement = Measurement(
            rounds=rounds,
            wall_seconds=wall,
            messages_delivered=0,
            messages_dropped=0,
            peak_live_nodes=0,
        )
        return RunResult(outputs=solution, rounds=rounds), measurement
    program = algo.program(net, spec, options)
    internal = EngineProbe()
    observer: Callable[[RoundTrace], None] = internal
    if probe is not None:
        extern = probe

        def observer(trace: RoundTrace) -> None:
            internal(trace)
            extern(trace)

        def _note_engine_path(path: str) -> None:
            internal.note_engine_path(path)
            note = getattr(extern, "note_engine_path", None)
            if note is not None:
                note(path)

        observer.note_engine_path = _note_engine_path

    result, wall = timed(
        eng.run, net, program, seed=seed, max_rounds=max_rounds, probe=observer
    )
    return result, internal.summarize(wall_seconds=wall)


def simulate(
    problem: ProblemSpec | str,
    *,
    algorithm: Algorithm | str,
    engine: Engine | str = DEFAULT_ENGINE,
    network: Network | None = None,
    graph: nx.Graph | None = None,
    n: int | None = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    probe: Callable[[RoundTrace], None] | None = None,
    **options,
) -> tuple[RunResult, Measurement]:
    """Run an algorithm on an engine; return raw (result, measurement).

    No finalization, no checking — the low-level entry point.  See
    :func:`_execute` for ``"global"``-kind semantics.
    """
    spec, algo = _resolve_pair(problem, algorithm)
    eng = resolve_engine(engine)
    net = _resolve_network(algo, spec, network, graph, n, seed)
    return _execute(
        algo, spec, net, eng,
        seed=seed, max_rounds=max_rounds, options=options, probe=probe,
    )


def solve(
    problem: ProblemSpec | str,
    *,
    algorithm: Algorithm | str,
    engine: Engine | str = DEFAULT_ENGINE,
    network: Network | None = None,
    graph: nx.Graph | None = None,
    n: int | None = None,
    seed: int = 0,
    max_rounds: int = 10_000,
    check: bool = True,
    **options,
) -> SolveReport:
    """Solve ``problem`` with ``algorithm`` on ``engine``; report everything.

    When neither ``network`` nor ``graph`` is given, the algorithm's
    default family network on ~``n`` nodes (seeded) is used.  Extra
    keyword ``options`` are forwarded to the algorithm (e.g.
    ``input_edges=...`` for ``"matching:proposal"``).  ``check=False``
    skips validation (``report.valid`` is then ``None``).
    """
    spec, algo = _resolve_pair(problem, algorithm)
    eng = resolve_engine(engine)
    net = _resolve_network(algo, spec, network, graph, n, seed)
    result, measurement = _execute(
        algo, spec, net, eng, seed=seed, max_rounds=max_rounds, options=options
    )
    solution = (
        algo.finalize(net, spec, options, result.outputs)
        if algo.kind == "message"
        else result.outputs
    )
    check_result = _family_check(spec, net.graph, solution) if check else None
    return SolveReport(
        problem=spec.spec,
        family=spec.family,
        algorithm=algo.name,
        engine=eng.name,
        seed=seed,
        n=net.n,
        rounds=result.rounds,
        outputs=solution,
        check=check_result,
        messages_delivered=measurement.messages_delivered,
        messages_dropped=measurement.messages_dropped,
        peak_live_nodes=measurement.peak_live_nodes,
        wall_seconds=measurement.wall_seconds,
    )
