"""Pluggable execution engines behind a common ``Engine.run`` contract.

An *engine* executes a :class:`~repro.api.types.MessagePassingProgram` on
a network and returns a :class:`~repro.local.simulator.RunResult`.  All
engines implement::

    engine.run(network, program, *, seed=0, max_rounds=10_000, probe=None)

and must be observationally equivalent: same outputs, same round count,
same delivered/dropped counters, same protocol-violation errors — the
property CI's engine-parity job and ``tests/api/test_engine_parity.py``
enforce.  Only speed may differ.

Three backends ship:

* ``"object"`` — the reference engine,
  :func:`repro.local.simulator.run_synchronous`, unchanged;
* ``"batched"`` — :func:`repro.local.batched.run_batched`, which compiles
  the network into CSR-style adjacency arrays and runs send/deliver/
  receive as per-round batch loops over preallocated inboxes (measured
  ≥1.5× on the matching suite at n ≥ 2000; see
  ``benchmarks/bench_engines.py``);
* ``"vectorized"`` — :func:`repro.local.vectorized.run_vectorized`, which
  runs opted-in algorithms as numpy struct-of-arrays kernels with zero
  per-node Python in the hot loop (and falls back to object semantics
  for the rest).  numpy is an optional extra: the engine registers only
  where numpy imports, and is simply absent otherwise.
"""

from __future__ import annotations

from collections.abc import Callable

from repro.api.errors import UnknownEngineError
from repro.api.types import MessagePassingProgram
from repro.local.batched import run_batched
from repro.local.network import Network
from repro.local.simulator import RoundTrace, RunResult, run_synchronous
from repro.utils import InvalidParameterError

#: Engine registry: name → engine instance.
ENGINES: dict[str, "Engine"] = {}

#: The engine used when a caller does not pick one.
DEFAULT_ENGINE = "object"


class Engine:
    """An execution backend for message-passing programs."""

    name: str = ""

    def run(
        self,
        network: Network,
        program: MessagePassingProgram,
        *,
        seed: int = 0,
        max_rounds: int = 10_000,
        probe: Callable[[RoundTrace], None] | None = None,
    ) -> RunResult:
        raise NotImplementedError


class _SimulatorEngine(Engine):
    """An engine delegating to a ``run_synchronous``-compatible runner."""

    def __init__(self, name: str, runner: Callable[..., RunResult]) -> None:
        self.name = name
        self._runner = runner

    def run(
        self,
        network: Network,
        program: MessagePassingProgram,
        *,
        seed: int = 0,
        max_rounds: int = 10_000,
        probe: Callable[[RoundTrace], None] | None = None,
    ) -> RunResult:
        rng_for = (
            program.rng_streams(network, seed) if program.rng_streams else None
        )
        return self._runner(
            network,
            program.factory,
            max_rounds=max_rounds,
            extra=program.extra,
            rng_for=rng_for,
            on_round=probe,
        )


class _VectorizedEngine(_SimulatorEngine):
    """The vectorized engine: same runner protocol plus the kernel spec.

    Identical to :class:`_SimulatorEngine` except that the program's
    :class:`~repro.api.types.VectorizedSpec` is forwarded so the runner
    can pick a batch kernel (or fall back to object semantics).
    """

    def run(
        self,
        network: Network,
        program: MessagePassingProgram,
        *,
        seed: int = 0,
        max_rounds: int = 10_000,
        probe: Callable[[RoundTrace], None] | None = None,
    ) -> RunResult:
        rng_for = (
            program.rng_streams(network, seed) if program.rng_streams else None
        )
        return self._runner(
            network,
            program.factory,
            max_rounds=max_rounds,
            extra=program.extra,
            rng_for=rng_for,
            on_round=probe,
            vectorized=program.vectorized,
        )


def register_engine(engine: Engine) -> Engine:
    """Register (and return) an engine instance under its name."""
    if not engine.name:
        raise InvalidParameterError("engine must have a non-empty name")
    ENGINES[engine.name] = engine
    return engine


def available_engines() -> list[str]:
    """Sorted names of registered engines."""
    return sorted(ENGINES)


def resolve_engine(engine: "Engine | str") -> Engine:
    """Look an engine up by name (instances pass through)."""
    if isinstance(engine, Engine):
        return engine
    try:
        return ENGINES[engine]
    except KeyError:
        raise UnknownEngineError(engine, available_engines()) from None


register_engine(_SimulatorEngine("object", run_synchronous))
register_engine(_SimulatorEngine("batched", run_batched))

try:
    from repro.local.vectorized import run_vectorized
except ModuleNotFoundError:  # numpy is an optional extra
    pass
else:
    register_engine(_VectorizedEngine("vectorized", run_vectorized))
