"""Default benchmark networks for each problem family.

:func:`repro.api.solve` can be called with just a problem spec — no graph
— and still return a meaningful report; this module supplies the network
it runs on.  Each family gets a seeded random substrate shaped like the
paper's experiments use it: matchings run on 2-colored bipartite double
covers, sinkless orientation on a min-degree-2 graph (a tree component
admits no sinkless orientation), everything else on a random Δ-regular
graph.
"""

from __future__ import annotations

import networkx as nx

from repro.api.types import ProblemSpec
from repro.graphs import bipartite_double_cover
from repro.local.network import Network

#: Node count used when the caller gives neither a graph nor ``n``.
DEFAULT_N = 64


def _random_regular(n: int, degree: int, seed: int) -> nx.Graph:
    """A seeded random ``degree``-regular graph on ~``n`` nodes.

    Adjusts ``n`` upward to the nearest feasible value (n > degree and
    n·degree even).
    """
    n = max(n, degree + 1)
    if (n * degree) % 2:
        n += 1
    return nx.random_regular_graph(degree, n, seed=seed)


def family_network(spec: ProblemSpec, *, n: int | None, seed: int) -> Network:
    """The default network for ``spec``'s family, on ~``n`` nodes."""
    n = DEFAULT_N if n is None else n
    delta = spec.param("delta", 3)
    if spec.family in ("matching", "maximal-matching"):
        # The §4 experiments run on 2-colored double covers; halve the
        # base graph so the cover lands on ~n nodes.
        base = _random_regular(max(n // 2, delta + 1), delta, seed)
        return Network(graph=bipartite_double_cover(base))
    if spec.family in ("sinkless-orientation", "sinkless-coloring"):
        return Network(graph=_random_regular(n, max(delta, 2), seed))
    return Network(graph=_random_regular(n, delta, seed))
