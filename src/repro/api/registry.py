"""The :class:`Algorithm` protocol and its name registry.

An *algorithm* is a registered, problem-aware adapter around one of the
library's distributed algorithms.  Registration gives it a stable name
(``"matching:proposal"``, ``"mis:aapr23"``), declares which problem
families it can solve, and binds the three pieces the façade needs:

* how to compile itself into a :class:`MessagePassingProgram` for an
  engine (``kind = "message"``), or how to run directly from global
  knowledge (``kind = "global"`` — the Supported LOCAL constructions
  whose round counts are *accounted*, not simulated);
* how to turn raw per-node engine outputs into a solution object
  (:meth:`Algorithm.finalize`);
* what network to run on when the caller supplies none
  (:meth:`Algorithm.default_network`).

The :mod:`repro.algorithms` modules register themselves on import; this
module must therefore never import them (the façade package's
``__init__`` closes the loop).
"""

from __future__ import annotations

from repro.api.errors import EngineMismatchError, UnknownAlgorithmError
from repro.api.networks import family_network
from repro.api.types import MessagePassingProgram, ProblemSpec
from repro.local.network import Network
from repro.utils import InvalidParameterError

#: Algorithm registry: name → registered instance.
ALGORITHMS: dict[str, "Algorithm"] = {}


class Algorithm:
    """Base class for registered algorithms.

    Subclasses set ``name``, ``families`` and ``kind``, then override
    :meth:`program`/:meth:`finalize` (message-passing algorithms) or
    :meth:`run_global` (global-knowledge constructions).
    """

    #: Registry name, conventionally ``"<family>:<variant>"``.
    name: str = ""
    #: Problem families (registry names) this algorithm can solve.
    families: tuple[str, ...] = ()
    #: ``"message"`` (engine-executed) or ``"global"`` (direct).
    kind: str = "message"
    description: str = ""

    def program(
        self, network: Network, spec: ProblemSpec, options: dict
    ) -> MessagePassingProgram:
        """Compile into an engine-executable program (``kind="message"``)."""
        raise EngineMismatchError(
            f"algorithm {self.name!r} is {self.kind!r}-kind and does not "
            f"compile to a message-passing program"
        )

    def finalize(
        self, network: Network, spec: ProblemSpec, options: dict, outputs: dict
    ) -> object:
        """Convert raw per-node engine outputs into the solution object."""
        return outputs

    def run_global(
        self, network: Network, spec: ProblemSpec, options: dict, seed: int
    ) -> tuple[object, int]:
        """Run directly, returning (solution, accounted rounds)."""
        raise EngineMismatchError(
            f"algorithm {self.name!r} is {self.kind!r}-kind and has no "
            f"global-knowledge execution"
        )

    def default_network(
        self, spec: ProblemSpec, *, n: int | None, seed: int
    ) -> Network:
        """The network :func:`repro.api.solve` uses when given none."""
        return family_network(spec, n=n, seed=seed)

    def supports(self, family: str) -> bool:
        return family in self.families


def register_algorithm(algorithm: Algorithm) -> Algorithm:
    """Register (and return) an algorithm instance under its name."""
    if not algorithm.name or ":" not in algorithm.name:
        raise InvalidParameterError(
            f"algorithm name {algorithm.name!r} must look like "
            f"'<family>:<variant>'"
        )
    if not algorithm.families:
        raise InvalidParameterError(
            f"algorithm {algorithm.name!r} declares no compatible families"
        )
    if algorithm.kind not in ("message", "global"):
        raise InvalidParameterError(
            f"algorithm {algorithm.name!r} has unknown kind {algorithm.kind!r}"
        )
    existing = ALGORITHMS.get(algorithm.name)
    if existing is not None and type(existing) is not type(algorithm):
        raise InvalidParameterError(
            f"algorithm name {algorithm.name!r} is already registered "
            f"by {type(existing).__name__}"
        )
    ALGORITHMS[algorithm.name] = algorithm
    return algorithm


def available_algorithms(family: str | None = None) -> list[str]:
    """Sorted registered names, optionally filtered by problem family."""
    return sorted(
        name
        for name, algorithm in ALGORITHMS.items()
        if family is None or algorithm.supports(family)
    )


def resolve_algorithm(name: str) -> Algorithm:
    try:
        return ALGORITHMS[name]
    except KeyError:
        raise UnknownAlgorithmError(name, available_algorithms()) from None
