"""Introspection helpers: the registries as data.

The façade's registries used to be enumerable only through the
hand-rolled listings embedded in error messages and the experiments CLI.
These helpers expose the same information as structured records, and the
error messages / ``python -m repro.experiments list`` are rebuilt on top
of them — one description of "what exists", rendered everywhere:

* :func:`list_algorithms` — every registered algorithm with its
  families, kind and description;
* :func:`list_engines` — every execution backend (and which one is the
  default);
* :func:`describe` — everything the façade knows about one problem
  spec: canonical spelling, parameters, compatible algorithms, whether
  a validity checker exists.

All records are plain JSON-able dicts, so the solve service's
``/v1/status`` endpoint can embed them verbatim.
"""

from __future__ import annotations

from repro.api.engines import DEFAULT_ENGINE, ENGINES, available_engines
from repro.api.registry import ALGORITHMS, available_algorithms
from repro.api.types import ProblemSpec
from repro.problems.registry import family_parameters


def list_algorithms(family: str | None = None) -> list[dict]:
    """Registered algorithms as records, optionally filtered by family.

    Each record: ``{"name", "families", "kind", "description"}``, sorted
    by name (the order :func:`available_algorithms` guarantees).
    """
    return [
        {
            "name": name,
            "families": list(ALGORITHMS[name].families),
            "kind": ALGORITHMS[name].kind,
            "description": ALGORITHMS[name].description,
        }
        for name in available_algorithms(family)
    ]


def list_engines() -> list[dict]:
    """Registered engines as records: ``{"name", "default"}``, sorted."""
    return [
        {
            "name": name,
            "default": name == DEFAULT_ENGINE,
            "type": type(ENGINES[name]).__name__,
        }
        for name in available_engines()
    ]


def list_solvers() -> list[dict]:
    """Registered solver backends as records, sorted by name.

    Each record: ``{"name", "default", "description", "budget_unit"}`` —
    the decision-procedure registry of :mod:`repro.solvers.backends`
    (the CSP/SAT pair), as opposed to the simulation engines of
    :func:`list_engines`.
    """
    from repro.solvers.backends import BACKENDS, DEFAULT_BACKEND

    return [
        {
            "name": name,
            "default": name == DEFAULT_BACKEND,
            "description": description,
            "budget_unit": unit,
        }
        for name, (_factory, description, unit) in sorted(BACKENDS.items())
    ]


def describe(problem: ProblemSpec | str) -> dict:
    """Everything the façade knows about one problem spec.

    Parses (and therefore validates) the spec, then reports its
    canonical spelling, the normalized parameters, the family's full
    constructor-parameter list, the algorithms declaring the family,
    whether :func:`repro.api.check` can validate solutions for it, and
    the engines any of those algorithms may run on.
    """
    # Imported here: facade imports the registries this module also
    # imports, so a module-level import would be circular during
    # ``repro.api`` package initialization.
    from repro.api.facade import FAMILY_CHECKERS

    spec = ProblemSpec.parse(problem)
    return {
        "spec": spec.spec,
        "family": spec.family,
        "parameters": spec.parameters,
        "family_parameters": family_parameters(spec.family),
        "algorithms": available_algorithms(spec.family),
        "checkable": spec.family in FAMILY_CHECKERS,
        "engines": available_engines(),
    }
