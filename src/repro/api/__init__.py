"""Unified façade: problems × algorithms × engines × checkers.

The paper's pipeline — pick a problem family, run a LOCAL-model algorithm
on a graph, check the output, measure rounds — as one coherent API:

* **problems** are named by spec strings (``"matching:Δ=4,x=0,y=1"``)
  resolved through :mod:`repro.problems.registry`
  (:class:`ProblemSpec`);
* **algorithms** are name-registered adapters with declared problem
  compatibility (``"matching:proposal"``, ``"mis:aapr23"``, ...) — the
  :mod:`repro.algorithms` modules register themselves on import
  (:class:`Algorithm`, :func:`available_algorithms`);
* **engines** are pluggable execution backends behind a common
  ``Engine.run(network, program, *, seed, max_rounds, probe)`` contract —
  ``"object"`` (the reference simulator) and ``"batched"`` (CSR-flattened
  batch delivery loops) ship, and both must be observationally identical
  (:class:`Engine`, :func:`available_engines`);
* the façade functions :func:`solve`, :func:`check` and :func:`simulate`
  compose them end-to-end, returning a unified :class:`SolveReport`.

Quickstart::

    from repro import api
    report = api.solve("matching:Δ=4,x=0,y=1",
                       algorithm="matching:proposal",
                       engine="batched", seed=0)
    assert report.valid and report.rounds > 0
"""

from repro.api.engines import (
    DEFAULT_ENGINE,
    ENGINES,
    Engine,
    available_engines,
    register_engine,
    resolve_engine,
)
from repro.api.errors import (
    AlgorithmMismatchError,
    ApiError,
    EngineMismatchError,
    SpecError,
    UnknownAlgorithmError,
    UnknownEngineError,
    error_code,
)
from repro.api.networks import family_network
from repro.api.registry import (
    ALGORITHMS,
    Algorithm,
    available_algorithms,
    register_algorithm,
    resolve_algorithm,
)
from repro.api.types import (
    REPORT_SCHEMA,
    MessagePassingProgram,
    ProblemSpec,
    SolveReport,
)

# Importing repro.algorithms triggers the self-registration of every
# algorithm module; it must come after the registry import above and
# before the façade is usable.
import repro.algorithms  # noqa: E402,F401  (imported for registration side effect)

from repro.api.facade import FAMILY_CHECKERS, check, simulate, solve
from repro.api.introspection import (
    describe,
    list_algorithms,
    list_engines,
    list_solvers,
)

__all__ = [
    "ALGORITHMS",
    "Algorithm",
    "AlgorithmMismatchError",
    "ApiError",
    "DEFAULT_ENGINE",
    "ENGINES",
    "Engine",
    "EngineMismatchError",
    "FAMILY_CHECKERS",
    "MessagePassingProgram",
    "ProblemSpec",
    "REPORT_SCHEMA",
    "SolveReport",
    "SpecError",
    "UnknownAlgorithmError",
    "UnknownEngineError",
    "available_algorithms",
    "available_engines",
    "check",
    "describe",
    "error_code",
    "family_network",
    "list_algorithms",
    "list_engines",
    "list_solvers",
    "register_algorithm",
    "register_engine",
    "resolve_algorithm",
    "resolve_engine",
    "simulate",
    "solve",
]
