"""Core value types of the :mod:`repro.api` façade.

Three small, dependency-light types shared by the registries, the engines
and the façade functions:

* :class:`ProblemSpec` — a parsed problem specification (family +
  normalized parameters), resolvable to a formalism
  :class:`~repro.formalism.problems.Problem` via the family registry;
* :class:`MessagePassingProgram` — a fully-bound message-passing
  computation (node factory, per-node knowledge, optional randomness),
  the unit an :class:`~repro.api.engines.Engine` executes;
* :class:`SolveReport` — the unified result of a façade
  :func:`~repro.api.solve` call: rounds, outputs, check result, message
  counters and timing, with a canonical JSON rendering.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.api.errors import SpecError
from repro.checkers import CheckResult
from repro.formalism.problems import Problem
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm, NodeContext
from repro.problems.registry import build_problem, normalize_parameters, parse_spec
from repro.utils import InvalidParameterError
from repro.utils.serialization import canonical_dumps

#: Schema tag stamped into every serialized :class:`SolveReport` record.
#: Version the *payload*, not the class: consumers (the solve service's
#: report cache, the differential oracles, archived BENCH files) must be
#: able to reject records from a future incompatible shape.
REPORT_SCHEMA = "repro.api/report-v1"


@dataclass(frozen=True)
class ProblemSpec:
    """A problem family plus normalized constructor parameters.

    Construct via :meth:`parse` (spec strings like
    ``"matching:Δ=4,x=0,y=1"``) or :meth:`create` (keyword parameters).
    Parameters are stored alias-resolved (``Δ`` → ``delta``) and sorted,
    so equal specs compare and render equal.
    """

    family: str
    params: tuple[tuple[str, int], ...] = ()

    @classmethod
    def parse(cls, problem: "ProblemSpec | str") -> "ProblemSpec":
        """Coerce a spec string (or pass through a ProblemSpec)."""
        if isinstance(problem, ProblemSpec):
            return problem
        if not isinstance(problem, str):
            raise SpecError(
                f"expected a problem spec string or ProblemSpec, "
                f"got {type(problem).__name__}"
            )
        try:
            family, parameters = parse_spec(problem)
        except InvalidParameterError as error:
            raise SpecError(str(error)) from None
        return cls(family=family, params=tuple(sorted(parameters.items())))

    @classmethod
    def create(cls, family: str, **parameters: int) -> "ProblemSpec":
        """Build a spec from a family name and (possibly aliased) keywords."""
        try:
            normalized = normalize_parameters(family, parameters)
        except InvalidParameterError as error:
            raise SpecError(str(error)) from None
        return cls(family=family, params=tuple(sorted(normalized.items())))

    @property
    def parameters(self) -> dict[str, int]:
        return dict(self.params)

    def param(self, name: str, default: int | None = None) -> int | None:
        return self.parameters.get(name, default)

    @property
    def spec(self) -> str:
        """The canonical spec string (sorted, alias-free)."""
        if not self.params:
            return self.family
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.family}:{rendered}"

    def build(self) -> Problem:
        """The formalism problem this spec names (validates parameters)."""
        return build_problem(self.family, **self.parameters)


@dataclass(frozen=True)
class VectorizedSpec:
    """An algorithm's opt-in to the vectorized (struct-of-arrays) engine.

    ``kernel`` names a batch implementation in the vectorized engine's
    kernel registry (:data:`repro.local.vectorized.KERNELS`); ``data``
    carries the per-run knowledge that implementation needs — the same
    information ``extra`` closes over, but in bulk form (a coloring dict,
    an input-edge set) instead of a per-node callable.  The spec itself
    is plain data: building one never imports numpy, so algorithms can
    always attach it and engines that cannot use it simply ignore it.
    """

    kernel: str
    data: dict = field(default_factory=dict)


@dataclass(frozen=True)
class MessagePassingProgram:
    """A bound message-passing computation, ready for any engine.

    ``factory`` builds one :class:`NodeAlgorithm` per node; ``extra``
    injects per-node auxiliary knowledge; ``rng_streams`` (for randomized
    algorithms) maps ``(network, seed)`` to a per-node random source in a
    way that depends only on the network and seed — never on the engine —
    so every backend draws identical randomness.  ``vectorized``
    (optional) declares a batch implementation for the vectorized engine;
    engines without batch support ignore it, and the vectorized engine
    falls back to per-node object semantics when it is absent.
    """

    factory: Callable[[NodeContext], NodeAlgorithm]
    extra: Callable[[object], dict] | None = None
    rng_streams: (
        Callable[[Network, int], Callable[[object], random.Random]] | None
    ) = None
    vectorized: VectorizedSpec | None = None


@dataclass(frozen=True)
class SolveReport:
    """Everything one :func:`repro.api.solve` call observed.

    ``outputs`` is the algorithm's finalized solution (a matching set, a
    color dict, ...), not raw per-node engine outputs.  ``valid`` is the
    check verdict (``None`` when checking was skipped).  ``engine`` and
    ``wall_seconds`` describe *how* the run executed and are excluded
    from :meth:`as_record`, whose canonical JSON must be byte-identical
    across engine backends.
    """

    problem: str
    family: str
    algorithm: str
    engine: str
    seed: int
    n: int
    rounds: int
    outputs: object
    check: CheckResult | None
    messages_delivered: int
    messages_dropped: int
    peak_live_nodes: int
    wall_seconds: float = field(compare=False, default=0.0)

    @property
    def valid(self) -> bool | None:
        """Check verdict: True/False, or None when checking was skipped."""
        return None if self.check is None else bool(self.check)

    def as_record(self) -> dict:
        """The deterministic JSON-ready dict (engine and wall clock excluded)."""
        return {
            "schema": REPORT_SCHEMA,
            "problem": self.problem,
            "family": self.family,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "n": self.n,
            "rounds": self.rounds,
            "outputs": self.outputs,
            "valid": self.valid,
            "check_reason": "" if self.check is None else self.check.reason,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "peak_live_nodes": self.peak_live_nodes,
        }

    def canonical_json(self) -> str:
        """Canonical serialization of :meth:`as_record` (engine-parity key)."""
        return canonical_dumps(self.as_record())

    @classmethod
    def from_record(cls, record: dict) -> "SolveReport":
        """Rebuild a report from a serialized :meth:`as_record` dict.

        The inverse direction of the wire format: encode → decode →
        encode must be byte-stable (``from_record(json.loads(
        report.canonical_json())).canonical_json() ==
        report.canonical_json()`` — the serialization differential
        oracle's property).  ``engine`` and ``wall_seconds`` are
        execution details excluded from records, so they come back as
        ``""``/``0.0``; ``outputs`` come back in their JSON spelling
        (sets as sorted lists), which canonical serialization maps to
        the same bytes.
        """
        if not isinstance(record, dict):
            raise SpecError(
                f"expected a SolveReport record dict, got {type(record).__name__}"
            )
        schema = record.get("schema")
        if schema != REPORT_SCHEMA:
            raise SpecError(
                f"unsupported report schema {schema!r}; expected {REPORT_SCHEMA!r}"
            )
        missing = [
            key
            for key in (
                "problem", "family", "algorithm", "seed", "n", "rounds",
                "outputs", "valid", "check_reason", "messages_delivered",
                "messages_dropped", "peak_live_nodes",
            )
            if key not in record
        ]
        if missing:
            raise SpecError(f"report record is missing fields: {missing}")
        valid = record["valid"]
        check = (
            None
            if valid is None
            else CheckResult(valid=bool(valid), reason=record["check_reason"])
        )
        return cls(
            problem=record["problem"],
            family=record["family"],
            algorithm=record["algorithm"],
            engine="",
            seed=record["seed"],
            n=record["n"],
            rounds=record["rounds"],
            outputs=record["outputs"],
            check=check,
            messages_delivered=record["messages_delivered"],
            messages_dropped=record["messages_dropped"],
            peak_live_nodes=record["peak_live_nodes"],
        )
