"""Core value types of the :mod:`repro.api` façade.

Three small, dependency-light types shared by the registries, the engines
and the façade functions:

* :class:`ProblemSpec` — a parsed problem specification (family +
  normalized parameters), resolvable to a formalism
  :class:`~repro.formalism.problems.Problem` via the family registry;
* :class:`MessagePassingProgram` — a fully-bound message-passing
  computation (node factory, per-node knowledge, optional randomness),
  the unit an :class:`~repro.api.engines.Engine` executes;
* :class:`SolveReport` — the unified result of a façade
  :func:`~repro.api.solve` call: rounds, outputs, check result, message
  counters and timing, with a canonical JSON rendering.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass, field

from repro.checkers import CheckResult
from repro.formalism.problems import Problem
from repro.local.network import Network
from repro.local.simulator import NodeAlgorithm, NodeContext
from repro.problems.registry import build_problem, normalize_parameters, parse_spec
from repro.utils import InvalidParameterError
from repro.utils.serialization import canonical_dumps


@dataclass(frozen=True)
class ProblemSpec:
    """A problem family plus normalized constructor parameters.

    Construct via :meth:`parse` (spec strings like
    ``"matching:Δ=4,x=0,y=1"``) or :meth:`create` (keyword parameters).
    Parameters are stored alias-resolved (``Δ`` → ``delta``) and sorted,
    so equal specs compare and render equal.
    """

    family: str
    params: tuple[tuple[str, int], ...] = ()

    @classmethod
    def parse(cls, problem: "ProblemSpec | str") -> "ProblemSpec":
        """Coerce a spec string (or pass through a ProblemSpec)."""
        if isinstance(problem, ProblemSpec):
            return problem
        if not isinstance(problem, str):
            raise InvalidParameterError(
                f"expected a problem spec string or ProblemSpec, "
                f"got {type(problem).__name__}"
            )
        family, parameters = parse_spec(problem)
        return cls(family=family, params=tuple(sorted(parameters.items())))

    @classmethod
    def create(cls, family: str, **parameters: int) -> "ProblemSpec":
        """Build a spec from a family name and (possibly aliased) keywords."""
        normalized = normalize_parameters(family, parameters)
        return cls(family=family, params=tuple(sorted(normalized.items())))

    @property
    def parameters(self) -> dict[str, int]:
        return dict(self.params)

    def param(self, name: str, default: int | None = None) -> int | None:
        return self.parameters.get(name, default)

    @property
    def spec(self) -> str:
        """The canonical spec string (sorted, alias-free)."""
        if not self.params:
            return self.family
        rendered = ",".join(f"{key}={value}" for key, value in self.params)
        return f"{self.family}:{rendered}"

    def build(self) -> Problem:
        """The formalism problem this spec names (validates parameters)."""
        return build_problem(self.family, **self.parameters)


@dataclass(frozen=True)
class MessagePassingProgram:
    """A bound message-passing computation, ready for any engine.

    ``factory`` builds one :class:`NodeAlgorithm` per node; ``extra``
    injects per-node auxiliary knowledge; ``rng_streams`` (for randomized
    algorithms) maps ``(network, seed)`` to a per-node random source in a
    way that depends only on the network and seed — never on the engine —
    so every backend draws identical randomness.
    """

    factory: Callable[[NodeContext], NodeAlgorithm]
    extra: Callable[[object], dict] | None = None
    rng_streams: (
        Callable[[Network, int], Callable[[object], random.Random]] | None
    ) = None


@dataclass(frozen=True)
class SolveReport:
    """Everything one :func:`repro.api.solve` call observed.

    ``outputs`` is the algorithm's finalized solution (a matching set, a
    color dict, ...), not raw per-node engine outputs.  ``valid`` is the
    check verdict (``None`` when checking was skipped).  ``engine`` and
    ``wall_seconds`` describe *how* the run executed and are excluded
    from :meth:`as_record`, whose canonical JSON must be byte-identical
    across engine backends.
    """

    problem: str
    family: str
    algorithm: str
    engine: str
    seed: int
    n: int
    rounds: int
    outputs: object
    check: CheckResult | None
    messages_delivered: int
    messages_dropped: int
    peak_live_nodes: int
    wall_seconds: float = field(compare=False, default=0.0)

    @property
    def valid(self) -> bool | None:
        """Check verdict: True/False, or None when checking was skipped."""
        return None if self.check is None else bool(self.check)

    def as_record(self) -> dict:
        """The deterministic JSON-ready dict (engine and wall clock excluded)."""
        return {
            "problem": self.problem,
            "family": self.family,
            "algorithm": self.algorithm,
            "seed": self.seed,
            "n": self.n,
            "rounds": self.rounds,
            "outputs": self.outputs,
            "valid": self.valid,
            "check_reason": "" if self.check is None else self.check.reason,
            "messages_delivered": self.messages_delivered,
            "messages_dropped": self.messages_dropped,
            "peak_live_nodes": self.peak_live_nodes,
        }

    def canonical_json(self) -> str:
        """Canonical serialization of :meth:`as_record` (engine-parity key)."""
        return canonical_dumps(self.as_record())
