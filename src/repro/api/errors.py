"""Typed exception hierarchy of the :mod:`repro.api` façade.

Every error the façade raises carries a stable machine-readable ``code``
alongside its human message, so programmatic callers — most importantly
the solve service (:mod:`repro.service`), which must map failures to
structured wire responses — never parse message text.  All classes
subclass :class:`~repro.utils.exceptions.InvalidParameterError`, so
existing ``except InvalidParameterError`` call sites (and the test
suite's expectations) keep working unchanged.

The listings embedded in the messages ("registered algorithms are ...")
are built from the same registries the introspection helpers
(:mod:`repro.api.introspection`) expose — one source of truth for what
exists, whether it is rendered into an error or returned as data.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.utils import (
    FormalismError,
    InvalidParameterError,
    ReproError,
    SolverLimitError,
)


class ApiError(InvalidParameterError):
    """Base class for façade errors; ``code`` is part of the wire contract."""

    code = "api-error"


class SpecError(ApiError):
    """A problem spec (or a façade argument) is malformed or unusable."""

    code = "bad-spec"


class UnknownAlgorithmError(ApiError):
    """A name resolved against the algorithm registry does not exist."""

    code = "unknown-algorithm"

    def __init__(self, name: str, available: Sequence[str]) -> None:
        super().__init__(
            f"unknown algorithm {name!r}; registered: {list(available)}"
        )
        self.name = name
        self.available = list(available)


class UnknownEngineError(ApiError):
    """A name resolved against the engine registry does not exist."""

    code = "unknown-engine"

    def __init__(self, name: str, available: Sequence[str]) -> None:
        super().__init__(f"unknown engine {name!r}; registered: {list(available)}")
        self.name = name
        self.available = list(available)


class AlgorithmMismatchError(ApiError):
    """A registered algorithm was asked to solve a family it does not declare."""

    code = "algorithm-mismatch"

    def __init__(
        self, algorithm: str, family: str,
        solves: Sequence[str], alternatives: Sequence[str],
    ) -> None:
        super().__init__(
            f"algorithm {algorithm!r} does not solve family {family!r} "
            f"(it solves: {list(solves)}); algorithms for {family!r}: "
            f"{list(alternatives)}"
        )
        self.algorithm = algorithm
        self.family = family


class EngineMismatchError(ApiError):
    """An algorithm was driven through an execution path its kind forbids
    (compiling a ``"global"`` algorithm to a message-passing program, or
    running a ``"message"`` algorithm from global knowledge)."""

    code = "engine-mismatch"


def error_code(error: BaseException) -> str:
    """The stable wire code for an exception.

    Typed façade errors carry their own ``code``; everything else gets a
    coarse bucket so a service response is always classifiable:
    ``budget-exhausted`` (truncated searches), ``bad-problem`` (formalism
    parse/shape errors), ``bad-parameter`` (untyped parameter errors),
    ``library-error`` (other :class:`ReproError`), and ``internal`` for
    anything unexpected.
    """
    code = getattr(error, "code", None)
    if isinstance(code, str) and code:
        return code
    if isinstance(error, SolverLimitError):
        return "budget-exhausted"
    if isinstance(error, FormalismError):
        return "bad-problem"
    if isinstance(error, InvalidParameterError):
        return "bad-parameter"
    if isinstance(error, ReproError):
        return "library-error"
    return "internal"
