"""Constraints of the black-white formalism (paper §2).

A constraint is a finite set of configurations, all of the same size
(``d_W`` for the white constraint, ``d_B`` for the black one).  Beyond plain
membership, solvers need two derived queries that this module precomputes:

* ``allows_partial``: can a partially-assigned node still be completed to an
  allowed configuration?  (Used for propagation in the CSP solver.)
* ``completions``: which labels may still be placed given a partial multiset?

Both queries are answered against the explicit configuration list, which is
feasible for every problem in the paper at verification scale (the families
of Definitions 4.2 / 5.2 / 6.2 instantiated at small Δ).
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator
from functools import cached_property

from repro.formalism.configurations import (
    CondensedConfiguration,
    Configuration,
    Label,
)
from repro.utils import ArityMismatchError, UnknownLabelError


class Constraint:
    """An immutable set of same-size configurations."""

    def __init__(self, configurations: Iterable[Configuration]) -> None:
        configs = frozenset(configurations)
        sizes = {config.size for config in configs}
        if len(sizes) > 1:
            raise ArityMismatchError(
                f"constraint mixes configuration sizes {sorted(sizes)}"
            )
        self._configs = configs
        self._size = sizes.pop() if sizes else 0

    @classmethod
    def from_condensed(
        cls, condensed_configs: Iterable[CondensedConfiguration]
    ) -> "Constraint":
        """Build a constraint as the union of condensed expansions."""
        configs: set[Configuration] = set()
        for condensed_config in condensed_configs:
            configs.update(condensed_config.expand())
        return cls(configs)

    @property
    def configurations(self) -> frozenset[Configuration]:
        """The explicit set of allowed configurations."""
        return self._configs

    @property
    def size(self) -> int:
        """The common arity of all configurations (0 if empty)."""
        return self._size

    @property
    def is_empty(self) -> bool:
        """True when no configuration is allowed."""
        return not self._configs

    @cached_property
    def labels(self) -> frozenset[Label]:
        """All labels used by at least one configuration."""
        used: set[Label] = set()
        for config in self._configs:
            used.update(config.support)
        return frozenset(used)

    def allows(self, config: Configuration) -> bool:
        """Membership test for a full configuration."""
        return config in self._configs

    def allows_multiset(self, labels: Iterable[Label]) -> bool:
        """Membership test from a raw label iterable."""
        return Configuration(labels) in self._configs

    def allows_partial(self, partial: Counter[Label], assigned: int) -> bool:
        """Can ``partial`` (with ``assigned`` labels placed so far) extend to
        an allowed configuration?

        ``assigned`` must equal ``sum(partial.values())``; it is passed
        explicitly because callers maintain it incrementally.
        """
        if assigned > self._size:
            return False
        return any(config.extends(partial) for config in self._configs)

    def completions(self, partial: Counter[Label]) -> frozenset[Label]:
        """Labels ℓ such that ``partial + {ℓ}`` still extends to an allowed
        configuration."""
        placed = sum(partial.values())
        if placed >= self._size:
            return frozenset()
        result: set[Label] = set()
        for config in self._configs:
            if not config.extends(partial):
                continue
            for label, count in config.counter.items():
                if count > partial.get(label, 0):
                    result.add(label)
        return frozenset(result)

    def restrict_labels(self, keep: frozenset[Label]) -> "Constraint":
        """Drop every configuration that uses a label outside ``keep``."""
        return Constraint(
            config for config in self._configs if config.support <= keep
        )

    def map_labels(self, mapping: dict[Label, Label]) -> "Constraint":
        """Apply a label renaming to every configuration."""
        return Constraint(config.map_labels(mapping) for config in self._configs)

    def check_alphabet(self, alphabet: frozenset[Label]) -> None:
        """Raise UnknownLabelError if a configuration escapes ``alphabet``."""
        for config in self._configs:
            extra = config.support - alphabet
            if extra:
                raise UnknownLabelError(
                    f"configuration {config} uses labels {sorted(extra)} "
                    f"outside the alphabet"
                )

    def label_occurrence_signature(self, label: Label) -> tuple[int, ...]:
        """A renaming-invariant signature of how ``label`` is used.

        Sorted vector of per-configuration multiplicities (including zeros),
        used to prune the isomorphism search in
        :meth:`repro.formalism.problems.Problem.find_isomorphism`.
        """
        return tuple(sorted(config.count(label) for config in self._configs))

    def __contains__(self, config: Configuration) -> bool:
        return config in self._configs

    def __iter__(self) -> Iterator[Configuration]:
        return iter(sorted(self._configs, key=lambda c: c.labels))

    def __len__(self) -> int:
        return len(self._configs)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self._configs == other._configs

    def __hash__(self) -> int:
        return hash(self._configs)

    def __str__(self) -> str:
        return "\n".join(str(config) for config in self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Constraint({len(self._configs)} configs, size={self._size})"


def partial_is_extendable(
    constraint: Constraint, partial: Iterable[Label]
) -> bool:
    """Standalone convenience wrapper around :meth:`Constraint.allows_partial`."""
    counter = Counter(partial)
    return constraint.allows_partial(counter, sum(counter.values()))


def sub_multiset_closure(constraint: Constraint) -> frozenset[tuple[Label, ...]]:
    """All canonical sub-multisets of allowed configurations.

    Exposed for the brute-force cross-checks in the test-suite; the solver
    itself uses the incremental queries above.
    """
    from repro.utils.multiset import submultisets

    closure: set[tuple[Label, ...]] = set()
    for config in constraint.configurations:
        for size in range(config.size + 1):
            closure.update(submultisets(config.counter, size))
    return frozenset(closure)
