"""Strength relations and diagrams (paper §2).

For a constraint C and labels X, Y: *X is at least as strong as Y w.r.t. C*
if, for every configuration of C containing Y, replacing an arbitrary number
of occurrences of Y with X yields a configuration that is also in C.

The *diagram* of a problem w.r.t. C is the directed graph on Σ with an edge
(or more generally a path) from Y to X whenever X is at least as strong as
Y.  A set S of labels is *right-closed* w.r.t. a diagram when every label
reachable from a member of S is also in S.  Right-closed sets are exactly
the labels of the lift operator (Definition 3.1), so this module is the
foundation of :mod:`repro.core.lift`.
"""

from __future__ import annotations

from collections.abc import Iterable, Iterator
from itertools import combinations

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem


def is_at_least_as_strong(
    strong: Label, weak: Label, constraint: Constraint
) -> bool:
    """Decide the strength relation ``strong ≥ weak`` w.r.t. ``constraint``.

    It suffices to check single replacements: if replacing one occurrence
    always stays inside C, replacing any number does too (induction on the
    number of replaced occurrences, each intermediate configuration being in
    C and containing one fewer ``weak``).
    """
    if strong == weak:
        return True
    for config in constraint.configurations:
        if not config.contains(weak):
            continue
        if config.replace_one(weak, strong) not in constraint:
            return False
    return True


def strength_relation(
    alphabet: Iterable[Label], constraint: Constraint
) -> set[tuple[Label, Label]]:
    """All ordered pairs (weak, strong) with strong ≥ weak, strong ≠ weak."""
    labels = sorted(set(alphabet))
    relation: set[tuple[Label, Label]] = set()
    for weak, strong in ((a, b) for a in labels for b in labels if a != b):
        if is_at_least_as_strong(strong, weak, constraint):
            relation.add((weak, strong))
    return relation


def diagram(alphabet: Iterable[Label], constraint: Constraint) -> nx.DiGraph:
    """The diagram of a constraint: edge Y→X iff X ≥ Y (X ≠ Y).

    The graph carries the *full* (transitively closed) relation; use
    :func:`diagram_reduction` for the Hasse-style rendering of Figures 1-2.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(sorted(set(alphabet)))
    graph.add_edges_from(strength_relation(alphabet, constraint))
    return graph


def black_diagram(problem: Problem) -> nx.DiGraph:
    """The diagram of a problem w.r.t. its black constraint."""
    return diagram(problem.alphabet, problem.black)


def white_diagram(problem: Problem) -> nx.DiGraph:
    """The diagram of a problem w.r.t. its white constraint."""
    return diagram(problem.alphabet, problem.white)


def diagram_reduction(graph: nx.DiGraph) -> nx.DiGraph:
    """Transitive reduction after collapsing strength-equivalent labels.

    Labels that are mutually at-least-as-strong form cycles; the transitive
    reduction of a DAG is only defined after condensing those.  Each
    condensed node is represented by its sorted member tuple.
    """
    condensation = nx.condensation(graph)
    reduced = nx.transitive_reduction(condensation)
    rendered = nx.DiGraph()
    members = condensation.nodes(data="members")
    label_of = {
        node: "≡".join(sorted(member_set)) for node, member_set in members
    }
    rendered.add_nodes_from(label_of[node] for node in reduced.nodes)
    rendered.add_edges_from(
        (label_of[u], label_of[v]) for u, v in reduced.edges
    )
    return rendered


def successors_closure(graph: nx.DiGraph, labels: Iterable[Label]) -> frozenset[Label]:
    """All labels reachable from ``labels`` (including themselves)."""
    closure: set[Label] = set()
    for label in labels:
        if label not in graph:
            raise KeyError(f"label {label!r} not in diagram")
        closure.add(label)
        closure.update(nx.descendants(graph, label))
    return frozenset(closure)


def is_right_closed(graph: nx.DiGraph, labels: frozenset[Label]) -> bool:
    """True if ``labels`` is right-closed w.r.t. the diagram."""
    return successors_closure(graph, labels) == labels


def right_closed_subsets(graph: nx.DiGraph) -> Iterator[frozenset[Label]]:
    """Enumerate all non-empty right-closed subsets of the diagram.

    A right-closed set is a union of closures of single labels, so we
    enumerate unions of the (finitely many) distinct single-label closures.
    Deduplicated; order is deterministic (sorted by size then members).
    """
    base_closures = sorted(
        {successors_closure(graph, [label]) for label in graph.nodes},
        key=lambda closure: (len(closure), sorted(closure)),
    )
    found: set[frozenset[Label]] = set()
    for count in range(1, len(base_closures) + 1):
        for combo in combinations(base_closures, count):
            union = frozenset().union(*combo)
            if union not in found:
                found.add(union)
    yield from sorted(found, key=lambda closure: (len(closure), sorted(closure)))


def right_closure(graph: nx.DiGraph, labels: Iterable[Label]) -> frozenset[Label]:
    """The smallest right-closed superset of ``labels``."""
    return successors_closure(graph, labels)


def diagram_edges(graph: nx.DiGraph) -> frozenset[tuple[Label, Label]]:
    """The edge set of a diagram as a frozenset (testing convenience)."""
    return frozenset(graph.edges)
