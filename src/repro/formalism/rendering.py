"""Human-readable rendering of problems and diagrams.

Regenerates the paper's figures as text: Figure 1 and Figure 2 are label
diagrams (we print nodes, edges and the Hasse-style reduction); constraint
listings are grouped back into condensed form where possible.
"""

from __future__ import annotations

from collections import Counter

import networkx as nx

from repro.formalism.configurations import Label
from repro.formalism.diagrams import diagram_reduction
from repro.formalism.problems import Problem


def render_diagram(graph: nx.DiGraph, title: str = "diagram") -> str:
    """Render a diagram as an adjacency listing plus its reduction.

    The full relation and the transitive reduction are both shown; the
    reduction is what the paper draws in Figures 1 and 2.
    """
    lines = [f"{title}:"]
    lines.append("  labels: " + ", ".join(str(node) for node in sorted(graph.nodes)))
    edges = sorted(graph.edges)
    if edges:
        lines.append("  strength relation (weak -> strong):")
        lines.extend(f"    {weak} -> {strong}" for weak, strong in edges)
    else:
        lines.append("  strength relation: (empty)")
    reduced = diagram_reduction(graph)
    reduced_edges = sorted(reduced.edges)
    if reduced_edges:
        lines.append("  transitive reduction (as drawn in the paper):")
        lines.extend(f"    {weak} -> {strong}" for weak, strong in reduced_edges)
    return "\n".join(lines)


def render_problem(problem: Problem) -> str:
    """Render a problem with condensed-form constraint grouping."""
    lines = [f"Problem {problem.name}"]
    lines.append(f"  Σ = {{{', '.join(sorted(problem.alphabet))}}}")
    lines.append(f"  white constraint (arity {problem.white_arity}):")
    lines.extend(f"    {line}" for line in condensed_listing(problem, "white"))
    lines.append(f"  black constraint (arity {problem.black_arity}):")
    lines.extend(f"    {line}" for line in condensed_listing(problem, "black"))
    return "\n".join(lines)


def condensed_listing(problem: Problem, side: str) -> list[str]:
    """List a constraint's configurations in exponent notation.

    Full condensed re-grouping (recovering brackets) is intentionally not
    attempted — it is not unique — but exponent compression keeps listings
    readable for wide configurations.
    """
    constraint = problem.white if side == "white" else problem.black
    rendered = []
    for config in constraint:
        counter = Counter(config.labels)
        parts = []
        for label in sorted(counter):
            count = counter[label]
            parts.append(label if count == 1 else f"{label}^{count}")
        rendered.append(" ".join(parts))
    return sorted(rendered)


def render_label_sets(sets: list[frozenset[Label]]) -> str:
    """Render a list of label sets compactly, e.g. for lift alphabets."""
    rendered = sorted("".join(sorted(label_set)) for label_set in sets)
    return ", ".join(rendered)
