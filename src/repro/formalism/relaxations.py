"""Relaxations between problems (paper §2).

Π′ is a *relaxation* of Π when there is a map f from the (ordered) white
configurations of Π to those of Π′ such that, writing r(ℓ) for the set of
labels that f ever sends an occurrence of ℓ to, every black configuration
{ℓ1,…,ℓdB} of Π satisfies: every choice over r(ℓ1)×…×r(ℓdB) lies in the
black constraint of Π′.  Intuitively, white nodes can rewrite a valid
Π-solution into a valid Π′-solution without communication.

Two checkers are provided:

* label maps (``g : Σ_Π → Σ_Π′``), the common case, with a complete
  backtracking search (:func:`find_label_relaxation`); a label map induces
  a configuration map with r(ℓ) = {g(ℓ)};
* explicit ordered-configuration maps (:func:`is_relaxation_via_config_map`),
  matching the paper's general definition verbatim.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Mapping, Sequence
from itertools import product

from repro.formalism.configurations import Configuration, Label
from repro.formalism.problems import Problem
from repro.utils import FormalismError


def is_relaxation_via_label_map(
    strict: Problem, relaxed: Problem, mapping: Mapping[Label, Label]
) -> bool:
    """Check that ``mapping`` witnesses: ``relaxed`` is a relaxation of
    ``strict``.

    Conditions: every white configuration of ``strict`` maps into the white
    constraint of ``relaxed``, and every black configuration of ``strict``
    maps into the black constraint of ``relaxed`` (with r(ℓ) = {g(ℓ)} the
    paper's product condition degenerates to this).
    """
    missing = {label for config in strict.white for label in config.support
               if label not in mapping}
    missing.update(label for config in strict.black for label in config.support
                   if label not in mapping)
    if missing:
        raise FormalismError(f"label map misses labels {sorted(missing)}")

    for config in strict.white:
        image = Configuration(mapping[label] for label in config)
        if image not in relaxed.white:
            return False
    for config in strict.black:
        image = Configuration(mapping[label] for label in config)
        if image not in relaxed.black:
            return False
    return True


def _partial_image_extendable(
    partial_image: Counter[Label], total_size: int, constraint
) -> bool:
    """Prune: can a partially-mapped configuration image still land inside
    ``constraint``?  True iff some allowed configuration contains the image
    of the already-mapped positions."""
    return constraint.allows_partial(partial_image, sum(partial_image.values()))


def find_label_relaxation(
    strict: Problem, relaxed: Problem, *, backend: str | None = None
) -> dict[Label, Label] | None:
    """Complete search for a label map witnessing relaxation.

    Returns a witness map or None if *no label map* works.  Note that the
    paper's relaxation notion is more general (per-configuration maps); a
    None here does not by itself refute relaxation, so callers that need
    refutation should fall back to :func:`is_relaxation_via_config_map`
    with candidate maps or to semantic arguments.

    ``backend="sat"`` compiles the map search to CNF (one-hot map
    variables, blocking clauses from the relaxed problem's
    partial-extension tables) and decides it with the CDCL solver; both
    backends agree on existence, though they may return different
    witnesses.
    """
    from repro.solvers.backends import resolve_backend

    if resolve_backend(backend) == "sat":
        return _find_label_relaxation_sat(strict, relaxed)
    source_labels = sorted(strict.white.labels | strict.black.labels)
    target_labels = sorted(relaxed.alphabet)
    if not source_labels:
        return {}

    white_configs = list(strict.white)
    black_configs = list(strict.black)

    def viable(mapping: dict[Label, Label]) -> bool:
        for config in white_configs:
            partial = Counter(
                mapping[label] for label in config if label in mapping
            )
            if not _partial_image_extendable(partial, config.size, relaxed.white):
                return False
        for config in black_configs:
            partial = Counter(
                mapping[label] for label in config if label in mapping
            )
            if not _partial_image_extendable(partial, config.size, relaxed.black):
                return False
        return True

    # Assign the most-used labels first: they constrain the search hardest.
    usage = Counter()
    for config in white_configs + black_configs:
        usage.update(config.support)
    order = sorted(source_labels, key=lambda label: -usage[label])

    def backtrack(index: int, mapping: dict[Label, Label]):
        if index == len(order):
            if is_relaxation_via_label_map(strict, relaxed, mapping):
                return dict(mapping)
            return None
        label = order[index]
        for target in target_labels:
            mapping[label] = target
            if viable(mapping):
                found = backtrack(index + 1, mapping)
                if found is not None:
                    return found
            del mapping[label]
        return None

    return backtrack(0, {})


def _find_label_relaxation_sat(
    strict: Problem, relaxed: Problem
) -> dict[Label, Label] | None:
    """The SAT path of :func:`find_label_relaxation`.

    Variables ``("m", s, t)`` one-hot-select the image of each used
    source label; per strict configuration, a DFS over its *distinct*
    labels' image choices emits a blocking clause at the first prefix
    whose induced image multiset the relaxed constraint table rejects.
    The decoded witness is re-verified through
    :func:`is_relaxation_via_label_map` before being returned.
    """
    from repro.formalism.encoding import ConstraintTable, LabelEncoding
    from repro.solvers.sat.cnf import CnfFormula
    from repro.solvers.sat.solver import CdclSolver

    source_labels = sorted(strict.white.labels | strict.black.labels)
    target_labels = sorted(relaxed.alphabet)
    if not source_labels:
        return {}
    if not target_labels:
        return None
    encoding = LabelEncoding.for_alphabet(relaxed.alphabet)
    tables = {
        "white": ConstraintTable.compile(relaxed.white, encoding),
        "black": ConstraintTable.compile(relaxed.black, encoding),
    }
    formula = CnfFormula()
    selector = {
        (source, code): formula.var(("m", source, target))
        for source in source_labels
        for code, target in enumerate(target_labels)
    }
    for source in source_labels:
        row = [selector[(source, code)] for code in range(len(target_labels))]
        formula.add_clause(row)
        for first in range(len(row)):
            for second in range(first + 1, len(row)):
                formula.add_clause([-row[first], -row[second]])

    def encode_config(config: Configuration, side: str) -> None:
        table = tables[side]
        items = sorted(config.counter.items())  # (label, multiplicity)
        chosen: list[int] = []

        def blocking() -> list[int]:
            return [
                -selector[(items[position][0], chosen[position])]
                for position in range(len(chosen))
            ]

        def visit(depth: int) -> None:
            image: list[int] = []
            for position in range(depth):
                image.extend([chosen[position]] * items[position][1])
            image.sort()
            if depth == len(items):
                if not table.allows(tuple(image)):
                    formula.add_clause(blocking())
                return
            if not table.extends(tuple(image)):
                formula.add_clause(blocking())
                return
            for code in range(len(target_labels)):
                chosen.append(code)
                visit(depth + 1)
                chosen.pop()

        visit(0)

    for config in strict.white:
        encode_config(config, "white")
    for config in strict.black:
        encode_config(config, "black")

    solver = CdclSolver(formula, seed=formula.digest())
    if not solver.solve():
        return None
    model = solver.model()
    mapping = {}
    for source in source_labels:
        for code, target in enumerate(target_labels):
            if model[selector[(source, code)]]:
                mapping[source] = target
                break
    assert is_relaxation_via_label_map(strict, relaxed, mapping)
    return mapping


ConfigMap = Mapping[tuple[Label, ...], tuple[Label, ...]]


def receiver_sets(config_map: ConfigMap) -> dict[Label, frozenset[Label]]:
    """Compute r(ℓ) for an ordered-configuration map (paper §2).

    r(ℓ) is the set of labels some occurrence of ℓ is ever mapped to.
    """
    receivers: dict[Label, set[Label]] = {}
    for source, target in config_map.items():
        if len(source) != len(target):
            raise FormalismError(
                f"config map changes arity: {source} -> {target}"
            )
        for src_label, dst_label in zip(source, target):
            receivers.setdefault(src_label, set()).add(dst_label)
    return {label: frozenset(images) for label, images in receivers.items()}


def is_relaxation_via_config_map(
    strict: Problem, relaxed: Problem, config_map: ConfigMap
) -> bool:
    """Check the paper's general relaxation condition for an explicit map.

    ``config_map`` sends ordered white configurations of ``strict`` to
    ordered white configurations of ``relaxed``; every white configuration
    of ``strict`` must appear (in some order) among the keys.
    """
    covered = {Configuration(key) for key in config_map}
    if covered != set(strict.white.configurations):
        return False
    for key, value in config_map.items():
        if Configuration(value) not in relaxed.white:
            return False

    receivers = receiver_sets(config_map)
    for config in strict.black:
        choice_sets: list[Sequence[Label]] = []
        for label in config:
            images = receivers.get(label)
            if images is None:
                # A label never output by white nodes cannot appear in a
                # valid solution, so the condition on it is vacuous; the
                # paper's definition quantifies over r(ℓ) which is empty.
                choice_sets.append(())
            else:
                choice_sets.append(sorted(images))
        if any(len(choices) == 0 for choices in choice_sets):
            continue
        for choice in product(*choice_sets):
            if Configuration(choice) not in relaxed.black:
                return False
    return True


def is_trivially_self_relaxing(problem: Problem) -> bool:
    """Sanity law: every problem relaxes itself via the identity map."""
    identity = {label: label for label in problem.alphabet}
    return is_relaxation_via_label_map(problem, problem, identity)


def _ordered_targets(relaxed: Problem) -> list[tuple[Label, ...]]:
    """Every ordered form of every white configuration of the target."""
    from itertools import permutations

    ordered: set[tuple[Label, ...]] = set()
    for config in relaxed.white:
        ordered.update(permutations(config.labels))
    return sorted(ordered)


def find_config_map_relaxation(
    strict: Problem, relaxed: Problem
) -> dict[tuple[Label, ...], tuple[Label, ...]] | None:
    """Complete search for an ordered-configuration-map relaxation witness.

    This implements the paper's *general* relaxation notion (§2): unlike a
    label map, a configuration map may send two occurrences of the same
    label — in the same or different configurations — to different target
    labels.  The search assigns each white configuration of ``strict`` an
    ordered target configuration, growing the receiver sets r(ℓ) and
    pruning as soon as some black configuration of ``strict`` admits a
    choice over the current r(ℓ) outside the target's black constraint
    (receiver sets only grow, so a violation can never heal).
    """
    sources = sorted(strict.white, key=lambda config: config.labels)
    if not sources:
        return {}
    targets = _ordered_targets(relaxed)
    if not targets:
        return None
    black_configs = [config.labels for config in strict.black]

    def black_violated(receivers: dict[Label, set[Label]]) -> bool:
        for config in black_configs:
            choice_sets = [sorted(receivers.get(label, ())) for label in config]
            if any(not choices for choices in choice_sets):
                continue  # some label has no receiver yet: vacuous for now
            for choice in product(*choice_sets):
                if not relaxed.black.allows_multiset(choice):
                    return True
        return False

    assignment: dict[tuple[Label, ...], tuple[Label, ...]] = {}

    def backtrack(index: int, receivers: dict[Label, set[Label]]):
        if index == len(sources):
            return dict(assignment)
        source = tuple(sources[index].labels)
        for target in targets:
            if len(target) != len(source):
                continue
            added: list[tuple[Label, Label]] = []
            for src_label, dst_label in zip(source, target):
                bucket = receivers.setdefault(src_label, set())
                if dst_label not in bucket:
                    bucket.add(dst_label)
                    added.append((src_label, dst_label))
            if not black_violated(receivers):
                assignment[source] = target
                found = backtrack(index + 1, receivers)
                if found is not None:
                    return found
                del assignment[source]
            for src_label, dst_label in added:
                receivers[src_label].discard(dst_label)
        return None

    return backtrack(0, {})
