"""Label conventions, including set-valued labels.

Base labels are plain strings (``M``, ``O``, ``P1`` …).  Two constructions in
the paper produce labels that *are sets of base labels*:

* the round elimination operators R / R̄ (Appendix B), whose output alphabet
  is a subset of 2^Σ, and
* the lift operator (Definition 3.1), whose labels are the non-empty
  right-closed subsets of Σ.

This module fixes a canonical, parseable string encoding for such label
sets — ``{M,O,X}`` with members sorted — so that lifted / RE'd problems are
ordinary :class:`~repro.formalism.problems.Problem` objects and the whole
formalism stack (diagrams, relaxations, solvers) applies to them unchanged.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.utils import ParseError

Label = str


def set_label(members: Iterable[Label]) -> Label:
    """Canonical string encoding of a set of base labels."""
    ordered = sorted(set(members))
    if not ordered:
        raise ParseError("a set label must be non-empty")
    return "{" + ",".join(ordered) + "}"


def is_set_label(label: Label) -> bool:
    """Return True if ``label`` is a set-label encoding."""
    return label.startswith("{") and label.endswith("}")


def set_label_members(label: Label) -> frozenset[Label]:
    """Decode a set-label back to its member set.

    Splitting is brace-depth aware so that nested set labels (produced by
    iterating round elimination, e.g. ``{{M,O},{M}}``) decode correctly.
    """
    if not is_set_label(label):
        raise ParseError(f"{label!r} is not a set label")
    body = label[1:-1]
    if not body:
        raise ParseError("empty set label {} is not allowed")
    members: list[str] = []
    current: list[str] = []
    depth = 0
    for char in body:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced braces in set label {label!r}")
        if char == "," and depth == 0:
            members.append("".join(current))
            current = []
        else:
            current.append(char)
    if depth != 0:
        raise ParseError(f"unbalanced braces in set label {label!r}")
    members.append("".join(current))
    if any(not member for member in members):
        raise ParseError(f"empty member in set label {label!r}")
    return frozenset(members)


def color_label(colors: Iterable[int]) -> Label:
    """The paper's ℓ(C) labels for color sets C ⊆ {1..c} (Definitions 5.2/6.2).

    Encoded as a set label over stringified colors, e.g. ``{1,3}``; sorting
    is numeric so ``{2,10}`` renders deterministically.
    """
    ordered = sorted(set(colors))
    if not ordered:
        raise ParseError("a color label needs at least one color")
    if any(color < 1 for color in ordered):
        raise ParseError("colors are 1-based positive integers")
    return "{" + ",".join(str(color) for color in ordered) + "}"


def color_label_members(label: Label) -> frozenset[int]:
    """Decode a color label back to its color set."""
    members = set_label_members(label)
    try:
        return frozenset(int(member) for member in members)
    except ValueError as exc:
        raise ParseError(f"{label!r} is not a color label") from exc
