"""Configurations of the black-white formalism (paper §2).

A *configuration* is a multiset of labels; a white (black) node of degree
exactly ``d_W`` (``d_B``) must see a multiset of incident edge labels that is
one of the configurations of the white (black) constraint.

A *condensed configuration* such as ``[AB][CD]E`` denotes the set of all
configurations obtained by picking one label per bracket
(``ACE, ADE, BCE, BDE`` in the example).  Condensed configurations are the
form in which the paper states every problem family (Definitions 4.2, 5.2,
6.2), so the library supports them as first-class objects.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass
from functools import cached_property
from itertools import product

from repro.utils import ArityMismatchError
from repro.utils.multiset import canonical, is_submultiset, replace_one

Label = str


@dataclass(frozen=True)
class Configuration:
    """An immutable multiset of labels.

    The canonical representation is a sorted tuple, so two configurations
    compare equal exactly when they are equal as multisets.
    """

    labels: tuple[Label, ...]

    def __init__(self, labels: Iterable[Label]) -> None:
        object.__setattr__(self, "labels", canonical(labels))

    @cached_property
    def counter(self) -> Counter[Label]:
        """Multiplicity map of this configuration."""
        return Counter(self.labels)

    @property
    def size(self) -> int:
        """Number of labels, counted with multiplicity (the arity)."""
        return len(self.labels)

    @property
    def support(self) -> frozenset[Label]:
        """The set of distinct labels appearing in this configuration."""
        return frozenset(self.labels)

    def count(self, label: Label) -> int:
        """Multiplicity of ``label`` in this configuration."""
        return self.counter.get(label, 0)

    def contains(self, label: Label) -> bool:
        """Return True if ``label`` occurs at least once."""
        return label in self.counter

    def replace_one(self, old: Label, new: Label) -> "Configuration":
        """Return the configuration with one ``old`` replaced by ``new``."""
        return Configuration(replace_one(self.labels, old, new))

    def replace_all(self, old: Label, new: Label) -> "Configuration":
        """Return the configuration with every ``old`` replaced by ``new``."""
        return Configuration(new if lab == old else lab for lab in self.labels)

    def map_labels(self, mapping: dict[Label, Label]) -> "Configuration":
        """Apply a label renaming; labels absent from the map are kept."""
        return Configuration(mapping.get(lab, lab) for lab in self.labels)

    def is_submultiset_of(self, other: "Configuration") -> bool:
        """Return True if self ⊆ other as multisets."""
        return is_submultiset(self.counter, other.counter)

    def extends(self, partial: Counter[Label]) -> bool:
        """Return True if ``partial`` is a sub-multiset of this configuration."""
        return is_submultiset(partial, self.counter)

    def __iter__(self) -> Iterator[Label]:
        return iter(self.labels)

    def __len__(self) -> int:
        return len(self.labels)

    def __str__(self) -> str:
        return render_configuration(self)

    def __repr__(self) -> str:  # pragma: no cover - debug helper
        return f"Configuration({render_configuration(self)!r})"


def render_configuration(config: Configuration) -> str:
    """Render a configuration using exponent notation, e.g. ``M O^3``.

    Labels are rendered in sorted order; multiplicities above one use ``^k``.
    The output re-parses to the same configuration via
    :func:`repro.formalism.parsing.parse_configuration`.
    """
    parts = []
    for label in sorted(config.counter):
        count = config.counter[label]
        parts.append(label if count == 1 else f"{label}^{count}")
    return " ".join(parts)


@dataclass(frozen=True)
class CondensedConfiguration:
    """A condensed configuration: a sequence of label alternatives.

    ``slots[i]`` is the frozenset of labels admissible in position ``i``.
    The condensed configuration denotes all configurations obtained by one
    choice per slot; ``expand`` enumerates them without duplicates.
    """

    slots: tuple[frozenset[Label], ...]

    def __init__(self, slots: Iterable[Iterable[Label]]) -> None:
        normalized = tuple(frozenset(slot) for slot in slots)
        if any(not slot for slot in normalized):
            raise ArityMismatchError("condensed configuration has an empty slot")
        object.__setattr__(self, "slots", normalized)

    @property
    def size(self) -> int:
        """The arity (number of slots)."""
        return len(self.slots)

    def expand(self) -> frozenset[Configuration]:
        """All configurations denoted by this condensed configuration."""
        return frozenset(
            Configuration(choice) for choice in product(*self.slots)
        )

    def contains(self, config: Configuration) -> bool:
        """Return True if ``config`` is one of the denoted configurations.

        Decided by bipartite matching between slots and label occurrences
        (exact, no expansion), so it stays cheap even for wide slots.
        """
        if config.size != self.size:
            return False
        return _slots_match(list(self.slots), list(config.labels))

    def __str__(self) -> str:
        parts = []
        for slot in self.slots:
            ordered = sorted(slot)
            if len(ordered) == 1:
                parts.append(ordered[0])
            else:
                parts.append("[" + " ".join(ordered) + "]")
        return " ".join(parts)


def _slots_match(slots: list[frozenset[Label]], labels: list[Label]) -> bool:
    """Exact test: can ``labels`` be assigned bijectively to ``slots``?

    Uses augmenting paths (Hungarian-style bipartite matching on a small
    instance); slot i may host label j iff labels[j] ∈ slots[i].
    """
    n = len(slots)
    match_of_label: list[int | None] = [None] * n

    def try_assign(slot: int, visited: list[bool]) -> bool:
        for j in range(n):
            if visited[j] or labels[j] not in slots[slot]:
                continue
            visited[j] = True
            if match_of_label[j] is None or try_assign(match_of_label[j], visited):
                match_of_label[j] = slot
                return True
        return False

    for i in range(n):
        if not try_assign(i, [False] * n):
            return False
    return True


def condensed(*slots: Sequence[Label] | str) -> CondensedConfiguration:
    """Convenience constructor: ``condensed("MX", "PO", "PO")``.

    String arguments are interpreted as sets of single-character labels;
    sequence arguments are taken as-is.  Multi-character labels must be
    passed as sequences (or use the parser in
    :mod:`repro.formalism.parsing`).
    """
    normalized: list[Iterable[Label]] = []
    for slot in slots:
        if isinstance(slot, str):
            normalized.append(tuple(slot))
        else:
            normalized.append(tuple(slot))
    return CondensedConfiguration(normalized)
