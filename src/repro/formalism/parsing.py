"""Parsing of configurations and constraints from text.

The paper writes configurations in two notations, both supported here:

* plain configurations with exponents, e.g. ``X^y M O^3`` (instantiated
  exponents only: ``X^2 M O^3``),
* condensed configurations with bracketed alternatives, e.g.
  ``[MZPOX]^2 [MX] [POX]^3``.

Inside brackets, single-character labels may be juxtaposed (``[MX]``);
multi-character labels must be separated by spaces or commas
(``[P1 U1]``, ``[{A},{A,B}]``).  Exponents apply to the preceding item.

Constraints parse from multi-line strings, one (condensed) configuration per
non-empty line; lines starting with ``#`` are comments.
"""

from __future__ import annotations

import re

from repro.formalism.configurations import (
    CondensedConfiguration,
    Configuration,
    Label,
)
from repro.formalism.constraints import Constraint
from repro.utils import ParseError

_TOKEN_RE = re.compile(
    r"""
    (?P<bracket>\[[^\[\]]*\])     # [ ... ]  alternatives
  | (?P<label>[^\s\[\]^]+)        # a bare label
  | (?P<caret>\^(?P<exp>\d+))     # ^k exponent
    """,
    re.VERBOSE,
)


def _split_alternatives(body: str) -> list[Label]:
    """Split the inside of a bracket into labels.

    With separators (spaces/commas) present, split on them; otherwise each
    character is its own label (the paper's ``[MZPOX]`` style).  Brace
    groups ``{...}`` are kept intact even in character mode, so set-valued
    labels like ``{A,B}`` survive.
    """
    body = body.strip()
    if not body:
        raise ParseError("empty bracket [] in condensed configuration")
    if re.search(r"[,\s]", _strip_braces(body)):
        return _split_outside_braces(body)
    # Character mode, but keep {...} groups atomic.
    labels: list[Label] = []
    index = 0
    while index < len(body):
        char = body[index]
        if char == "{":
            closing = body.find("}", index)
            if closing == -1:
                raise ParseError(f"unbalanced brace in bracket [{body}]")
            labels.append(body[index : closing + 1])
            index = closing + 1
        else:
            labels.append(char)
            index += 1
    return labels


def _strip_braces(body: str) -> str:
    """Remove brace groups so separator detection ignores commas inside sets."""
    return re.sub(r"\{[^{}]*\}", "", body)


def _split_outside_braces(body: str) -> list[Label]:
    """Split on commas/whitespace that are not inside a ``{...}`` group."""
    parts: list[Label] = []
    current: list[str] = []
    depth = 0
    for char in body:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
            if depth < 0:
                raise ParseError(f"unbalanced brace in bracket [{body}]")
        if depth == 0 and (char == "," or char.isspace()):
            if current:
                parts.append("".join(current))
                current = []
            continue
        current.append(char)
    if depth != 0:
        raise ParseError(f"unbalanced brace in bracket [{body}]")
    if current:
        parts.append("".join(current))
    return parts


def parse_condensed(text: str) -> CondensedConfiguration:
    """Parse one condensed configuration."""
    items: list[frozenset[Label]] = []
    position = 0
    text = text.strip()
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(text, position)
        if match is None:
            raise ParseError(f"cannot parse configuration at: {text[position:]!r}")
        position = match.end()
        if match.group("bracket") is not None:
            alternatives = frozenset(_split_alternatives(match.group("bracket")[1:-1]))
            items.append(alternatives)
        elif match.group("label") is not None:
            items.append(frozenset([match.group("label")]))
        else:  # exponent
            if not items:
                raise ParseError(f"exponent with no preceding item in {text!r}")
            exponent = int(match.group("exp"))
            if exponent < 1:
                raise ParseError(f"exponent must be >= 1 in {text!r}")
            items.extend([items[-1]] * (exponent - 1))
    if not items:
        raise ParseError("empty configuration string")
    return CondensedConfiguration(items)


def parse_configuration(text: str) -> Configuration:
    """Parse one plain configuration (no brackets allowed)."""
    if "[" in text or "]" in text:
        raise ParseError(
            f"brackets are only allowed in condensed configurations: {text!r}"
        )
    condensed_config = parse_condensed(text)
    expansion = condensed_config.expand()
    # A bracket-free condensed configuration expands to exactly one config.
    (config,) = expansion
    return config


def _constraint_lines(text: str) -> list[str]:
    lines = []
    for raw_line in text.splitlines():
        line = raw_line.strip()
        if line and not line.startswith("#"):
            lines.append(line)
    return lines


def parse_constraint(text: str) -> Constraint:
    """Parse a constraint: one (possibly condensed) configuration per line."""
    condensed_configs = [parse_condensed(line) for line in _constraint_lines(text)]
    return Constraint.from_condensed(condensed_configs)
