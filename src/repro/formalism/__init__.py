"""The black-white formalism (paper §2).

Public surface: configurations, constraints, problems, parsing, strength
diagrams, right-closed sets, relaxation checking and rendering.
"""

from repro.formalism.configurations import (
    CondensedConfiguration,
    Configuration,
    Label,
    condensed,
    render_configuration,
)
from repro.formalism.constraints import Constraint
from repro.formalism.diagrams import (
    black_diagram,
    diagram,
    diagram_edges,
    diagram_reduction,
    is_at_least_as_strong,
    is_right_closed,
    right_closed_subsets,
    right_closure,
    successors_closure,
    white_diagram,
)
from repro.formalism.encoding import (
    ConstraintTable,
    LabelEncoding,
    ProblemEncoding,
    bits_of,
    mask_sort_key,
)
from repro.formalism.labels import (
    color_label,
    color_label_members,
    is_set_label,
    set_label,
    set_label_members,
)
from repro.formalism.normalize import (
    NormalForm,
    canonical_digest,
    normal_form,
    problem_from_payload,
)
from repro.formalism.parsing import (
    parse_condensed,
    parse_configuration,
    parse_constraint,
)
from repro.formalism.problems import Problem, problem_from_lines
from repro.formalism.relaxations import (
    find_config_map_relaxation,
    find_label_relaxation,
    is_relaxation_via_config_map,
    is_relaxation_via_label_map,
)
from repro.formalism.rendering import render_diagram, render_problem

__all__ = [
    "CondensedConfiguration",
    "Configuration",
    "Constraint",
    "ConstraintTable",
    "Label",
    "LabelEncoding",
    "NormalForm",
    "Problem",
    "ProblemEncoding",
    "bits_of",
    "black_diagram",
    "canonical_digest",
    "color_label",
    "color_label_members",
    "condensed",
    "diagram",
    "diagram_edges",
    "diagram_reduction",
    "find_config_map_relaxation",
    "find_label_relaxation",
    "is_at_least_as_strong",
    "is_relaxation_via_config_map",
    "is_relaxation_via_label_map",
    "is_right_closed",
    "is_set_label",
    "mask_sort_key",
    "normal_form",
    "parse_condensed",
    "parse_configuration",
    "parse_constraint",
    "problem_from_lines",
    "problem_from_payload",
    "render_configuration",
    "render_diagram",
    "render_problem",
    "right_closed_subsets",
    "right_closure",
    "set_label",
    "set_label_members",
    "successors_closure",
    "white_diagram",
]
