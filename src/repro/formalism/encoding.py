"""Integer encodings of the black-white formalism (the kernel domain).

The round elimination operators (paper Appendix B) spend their time on
three primitive queries over a fixed alphabet Σ:

* "is this multiset of labels an allowed configuration?"
* "does this partial multiset extend to an allowed configuration?"
* "is this label set a subset of that one?"

All three are string/frozenset operations in the reference
implementation.  This module compiles a problem into an *integer
domain* where they become hash-set lookups and mask arithmetic:

* each alphabet label gets a bit index (alphabetical order, so the
  integer order of indices mirrors the string order of labels);
* a configuration becomes a sorted tuple of small ints;
* a label *set* becomes a single bitmask (subset test:
  ``mask & other == mask``);
* a constraint becomes a :class:`ConstraintTable`: a hash set of int
  tuples plus a *partial-extension table* holding every sorted
  sub-multiset of an allowed configuration, so extendability of a
  partial choice is one set lookup instead of a scan over all
  configurations.

Because bit indices are assigned in sorted-label order, every canonical
order used by the reference implementation (sorted label tuples, slots
ordered by ``(len(slot), sorted(slot))``) has an exact integer mirror
(sorted index tuples, masks ordered by ``(popcount, bit indices)``) —
the property the kernel's output-equality and budget-parity guarantees
rest on (see :mod:`repro.roundelim.kernel`).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from functools import cached_property

from repro.formalism.configurations import Configuration, Label
from repro.formalism.constraints import Constraint
from repro.formalism.problems import Problem
from repro.utils import UnknownLabelError
from repro.utils.multiset import submultisets

#: A configuration in the integer domain: a sorted tuple of bit indices.
IntConfig = tuple[int, ...]


def bits_of(mask: int) -> tuple[int, ...]:
    """The set bit indices of ``mask``, ascending."""
    bits = []
    while mask:
        low = mask & -mask
        bits.append(low.bit_length() - 1)
        mask ^= low
    return tuple(bits)


def mask_sort_key(mask: int) -> tuple[int, tuple[int, ...]]:
    """The integer mirror of the reference slot order ``(len, sorted)``.

    Masks sorted by this key appear in exactly the order the decoded
    label sets would sort under ``(len(slot), sorted(slot))``.
    """
    bits = bits_of(mask)
    return (len(bits), bits)


@dataclass(frozen=True)
class LabelEncoding:
    """A bijection between an alphabet and bit indices 0..|Σ|-1.

    Labels are numbered in sorted order, so the encoding is
    order-preserving: comparing sorted index tuples is the same as
    comparing sorted label tuples.
    """

    labels: tuple[Label, ...]

    @classmethod
    def for_alphabet(cls, alphabet) -> "LabelEncoding":
        return cls(labels=tuple(sorted(alphabet)))

    @cached_property
    def index(self) -> dict[Label, int]:
        return {label: position for position, label in enumerate(self.labels)}

    @property
    def size(self) -> int:
        return len(self.labels)

    @property
    def full_mask(self) -> int:
        """The mask of the whole alphabet."""
        return (1 << len(self.labels)) - 1

    def encode_label(self, label: Label) -> int:
        try:
            return self.index[label]
        except KeyError:
            raise UnknownLabelError(
                f"label {label!r} is not in the encoded alphabet "
                f"{list(self.labels)}"
            ) from None

    def decode_label(self, bit: int) -> Label:
        return self.labels[bit]

    def encode_config(self, config: Configuration) -> IntConfig:
        """Encode a configuration as a sorted int tuple.

        ``config.labels`` is already sorted and the index map is
        order-preserving, so no re-sort is needed.
        """
        index = self.index
        try:
            return tuple(index[label] for label in config.labels)
        except KeyError as exc:
            raise UnknownLabelError(
                f"configuration {config} uses label {exc.args[0]!r} outside "
                f"the encoded alphabet"
            ) from None

    def decode_config(self, items: IntConfig) -> Configuration:
        return Configuration(self.labels[bit] for bit in items)

    def encode_set(self, members) -> int:
        """Encode a label set as a bitmask."""
        mask = 0
        for label in members:
            mask |= 1 << self.encode_label(label)
        return mask

    def decode_mask(self, mask: int) -> frozenset[Label]:
        return frozenset(self.labels[bit] for bit in bits_of(mask))


@dataclass(frozen=True)
class ConstraintTable:
    """A constraint compiled to the integer domain.

    ``allowed`` holds the configurations as sorted int tuples;
    ``partials`` holds every sorted sub-multiset (all lengths 0..arity)
    of an allowed configuration — the per-prefix partial-extension
    table.  A sorted partial choice extends to an allowed configuration
    iff it is in ``partials`` (sub-multiset extendability is exactly
    sub-multiset containment in some configuration), and a full-length
    tuple is in ``partials`` iff it is in ``allowed``.
    """

    arity: int
    allowed: frozenset[IntConfig]
    partials: frozenset[IntConfig]

    @classmethod
    def compile(cls, constraint: Constraint, encoding: LabelEncoding) -> "ConstraintTable":
        allowed = frozenset(
            encoding.encode_config(config) for config in constraint.configurations
        )
        partials: set[IntConfig] = set()
        for config in allowed:
            counter = Counter(config)
            for size in range(len(config) + 1):
                partials.update(submultisets(counter, size))
        return cls(
            arity=constraint.size,
            allowed=allowed,
            partials=frozenset(partials),
        )

    def allows(self, items: IntConfig) -> bool:
        """Full-configuration membership (``items`` must be sorted)."""
        return items in self.allowed

    def extends(self, partial: IntConfig) -> bool:
        """Can the sorted partial tuple extend to an allowed config?"""
        return partial in self.partials


@dataclass(frozen=True)
class ProblemEncoding:
    """A problem compiled to the integer domain: encoding + both tables."""

    encoding: LabelEncoding
    white: ConstraintTable
    black: ConstraintTable

    @classmethod
    def compile(cls, problem: Problem) -> "ProblemEncoding":
        encoding = LabelEncoding.for_alphabet(problem.alphabet)
        return cls(
            encoding=encoding,
            white=ConstraintTable.compile(problem.white, encoding),
            black=ConstraintTable.compile(problem.black, encoding),
        )
